"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in environments whose setuptools/pip cannot
build PEP 660 editable wheels (e.g. no ``wheel`` package and no network).
"""

from setuptools import setup

setup()

"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import _COMMANDS, main


def test_all_experiments_have_commands():
    assert set(_COMMANDS) == {"table1", "table2", "fig6", "fig7",
                              "faults", "ablations", "cluster",
                              "experiments"}


def test_table2_runs(capsys):
    assert main(["table2"]) == 0
    output = capsys.readouterr().out
    assert "Table 2" in output
    assert "mvedsua-2" in output


def test_table1_runs(capsys):
    assert main(["table1"]) == 0
    output = capsys.readouterr().out
    assert "Average rules/update: 0.85" in output


def test_lint_dispatches_with_its_own_flags(capsys):
    assert main(["lint", "--app", "snort"]) == 0
    output = capsys.readouterr().out
    assert "mvelint: analyzed snort" in output


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_missing_argument_rejected():
    with pytest.raises(SystemExit):
        main([])

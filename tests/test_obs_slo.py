"""The SLO engine: exact histograms vs a sorted-list oracle, the
``repro-slo/1`` report, critical-path attribution, and the CLI.

The histogram properties are the load-bearing ones: ``quantile`` must
be the true nearest-rank percentile and ``merge`` must be lossless,
because the ``--workers N`` byte-identity guarantee is nothing but
those two properties composed.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram
from repro.obs.slo import (
    BLAME,
    SLO_SCHEMA,
    SloSpec,
    attribute_request,
    collect_cell,
    effective_phase,
    percentile_oracle,
    summarize_latencies,
    validate_slo_report,
)
from repro.obs.slo_cli import slo_main
from repro.obs.slo_scenarios import SLO_SPECS, run_slo_scenario
from repro.obs.spans import SpanCollector

values_lists = st.lists(st.integers(min_value=0, max_value=10**12),
                        min_size=1, max_size=200)
quantiles = st.one_of(st.floats(min_value=0.0, max_value=1.0,
                                allow_nan=False),
                      st.sampled_from([0.0, 0.5, 0.99, 0.999, 1.0]))


# ---------------------------------------------------------------------------
# Histogram vs oracle (satellite: exact quantile/merge)
# ---------------------------------------------------------------------------


class TestHistogramProperties:
    @given(values=values_lists, q=quantiles)
    @settings(max_examples=200, deadline=None)
    def test_quantile_matches_the_sorted_list_oracle(self, values, q):
        hist = Histogram("h")
        for value in values:
            hist.observe(value)
        assert hist.quantile(q) == percentile_oracle(values, q)

    @given(a=values_lists, b=values_lists, q=quantiles)
    @settings(max_examples=200, deadline=None)
    def test_merge_is_lossless(self, a, b, q):
        left, right, combined = (Histogram(n) for n in "lrc")
        for value in a:
            left.observe(value)
        for value in b:
            right.observe(value)
        for value in a + b:
            combined.observe(value)
        merged = left.merge(right)
        assert merged is left
        assert merged.quantile(q) == combined.quantile(q)
        assert merged.count == combined.count
        assert merged.total == combined.total
        assert merged.min_value == combined.min_value
        assert merged.max_value == combined.max_value

    def test_quantile_edge_cases(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) is None
        assert percentile_oracle([], 0.5) is None
        hist.observe(7)
        assert hist.quantile(0.0) == 7
        assert hist.quantile(1.0) == 7
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            percentile_oracle([1], -0.1)

    def test_summarize_latencies_uses_the_same_ranks(self):
        values = list(range(1, 1001))
        summary = summarize_latencies(values)
        assert summary == {"latency_p50_ns": 500,
                           "latency_p99_ns": 990,
                           "latency_p999_ns": 999}


# ---------------------------------------------------------------------------
# SloSpec
# ---------------------------------------------------------------------------


class TestSloSpec:
    def test_shipped_specs_are_well_formed(self):
        for name, spec in SLO_SPECS.items():
            assert spec.problems() == [], name

    def test_malformed_specs_are_caught(self):
        assert SloSpec("").problems()
        assert SloSpec("x", p99_ns=0).problems()
        assert SloSpec("x", p99_ns=-5).problems()
        assert SloSpec("x", availability=1.5).problems()
        assert any("non-decreasing" in p for p in
                   SloSpec("x", p50_ns=100, p99_ns=50).problems())

    def test_round_trips_through_dict(self):
        spec = SLO_SPECS["fig7"]
        again = SloSpec.from_dict(spec.as_dict())
        assert again.as_dict() == spec.as_dict()


# ---------------------------------------------------------------------------
# Attribution on a hand-built span tree
# ---------------------------------------------------------------------------


def _request_with_waits():
    c = SpanCollector()
    request = c.open("request", "gateway", 0)
    c.add("mve.ring-stall", "mve", 10, 30)
    c.close(request, 100)
    # A background quiesce overlapping [40, 90] of the request, not a
    # descendant: contributes its *overlap*, not its full duration.
    c.add("dsu.quiesce", "dsu", 40, 200, parent=None)
    return c, request


class TestAttribution:
    def test_dominant_wait_wins(self):
        c, request = _request_with_waits()
        attribution = attribute_request(request, c)
        assert attribution["blame"] == "quiesce-pause"
        assert attribution["blame_ns"] == 60  # overlap of [40, 100]
        assert attribution["breakdown"]["ring-stall"] == 20

    def test_unblamed_latency_is_self(self):
        c = SpanCollector()
        request = c.open("request", "gateway", 0)
        c.close(request, 50)
        attribution = attribute_request(request, c)
        assert attribution["blame"] == "self"
        assert attribution["blame_ns"] == 50

    def test_blame_table_never_names_the_umbrella(self):
        # dsu.update is the umbrella over quiesce+fork+xform; blaming it
        # too would double-count every pause.
        assert "dsu.update" not in BLAME

    def test_effective_phase_retags_requests_over_a_pause(self):
        c = SpanCollector()
        hit = c.open("request", "gateway", 0)
        c.close(hit, 100)
        c.add("dsu.quiesce", "dsu", 50, 80)
        miss = c.open("request", "gateway", 200)
        c.close(miss, 210)
        assert effective_phase(hit, c) == "quiesce-pause"
        assert effective_phase(miss, c) == "normal"


# ---------------------------------------------------------------------------
# The report: determinism, sharding byte-identity, validation
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def quick_fig7():
    return run_slo_scenario("fig7", seed=1, quick=True)


class TestReport:
    def test_report_validates_and_has_the_key_shape(self, quick_fig7):
        report = quick_fig7
        assert validate_slo_report(report) == []
        assert report["schema"] == SLO_SCHEMA
        assert report["requests"] > 0
        assert "quiesce-pause" in report["phases"]
        # The acceptance attribution: at least one violating request
        # blamed on the masked DSU pause.
        assert any(a["blame"] == "quiesce-pause"
                   for a in report["attributions"])
        # Worker count must never leak into the artifact.
        assert "workers" not in json.dumps(report)

    def test_report_is_deterministic(self, quick_fig7):
        again = run_slo_scenario("fig7", seed=1, quick=True)
        assert json.dumps(again, sort_keys=True) \
            == json.dumps(quick_fig7, sort_keys=True)

    def test_sharded_run_is_byte_identical(self, quick_fig7):
        sharded = run_slo_scenario("fig7", seed=1, quick=True, workers=2)
        assert json.dumps(sharded, sort_keys=True) \
            == json.dumps(quick_fig7, sort_keys=True)

    def test_tampering_is_caught(self, quick_fig7):
        tampered = json.loads(json.dumps(quick_fig7))
        tampered["schema"] = "repro-slo/0"
        assert any("schema" in p for p in validate_slo_report(tampered))
        tampered = json.loads(json.dumps(quick_fig7))
        tampered["requests"] += 1
        assert validate_slo_report(tampered)
        tampered = json.loads(json.dumps(quick_fig7))
        tampered["phases"]["quiesce-pause"]["count"] = "many"
        assert validate_slo_report(tampered)
        tampered = json.loads(json.dumps(quick_fig7))
        tampered["spec"]["p99_ns"] = -1
        assert validate_slo_report(tampered)
        assert validate_slo_report({}) != []

    def test_collect_cell_is_pickle_shaped(self):
        # Cells cross process boundaries under --workers: plain dicts
        # of str/int only, reconstructed into Histograms on merge.
        c, _ = _request_with_waits()
        cell = collect_cell(c, "unit", SloSpec("unit", p99_ns=10))
        assert cell["cell"] == "unit"
        assert cell["requests"] == 1
        assert cell["violations"][0]["blame"] == "quiesce-pause"
        json.dumps(cell)  # JSON-safe implies pickle-safe here


# ---------------------------------------------------------------------------
# The CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_quick_run_writes_and_checks(self, tmp_path, capsys):
        out = tmp_path / "slo.json"
        spans = tmp_path / "spans.jsonl"
        code = slo_main(["fig7", "--quick", "--check",
                         "--out", str(out), "--spans", str(spans)])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "schema ok" in stdout
        assert "quiesce-pause" in stdout
        report = json.loads(out.read_text())
        assert validate_slo_report(report) == []
        from repro.obs.spans import validate_span_file
        assert validate_span_file(str(spans)) == []

    def test_unknown_scenario_is_rejected(self, capsys):
        with pytest.raises(SystemExit):
            slo_main(["nosuch"])
        assert "invalid choice" in capsys.readouterr().err

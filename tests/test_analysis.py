"""Tests for mvelint (repro.analysis): the analyzers, the catalog,
and the ``python -m repro lint`` CLI (the fleet-topology analyzer is
covered in tests/test_fleet.py)."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Severity,
    audit_paths,
    audit_transforms,
    check_coverage,
    default_catalog,
    lint_fault_plan,
    lint_main,
    lint_rules,
    run_app,
    run_catalog,
    seeded_heap,
)
from repro.chaos import Fault, FaultPlan, Trigger, at_stage, on_call
from repro.dsu.transform import TransformRegistry
from repro.dsu.version import ServerVersion, VersionRegistry
from repro.mve.dsl import Direction, RuleSet, parse_rules, rewrite_write
from tests.fixtures import bad_rules, bad_transforms
from tests.fixtures.bad_catalog import APP, BadKVVersion
from tests.fixtures.bad_catalog import catalog as bad_catalog
from tests.fixtures.bad_workloads import APP as BADLOAD_APP
from tests.fixtures.bad_workloads import catalog as bad_workloads_catalog

FIXTURE_CATALOG = str(Path(__file__).parent / "fixtures" / "bad_catalog.py")
FIXTURE_WORKLOADS = str(Path(__file__).parent / "fixtures"
                        / "bad_workloads.py")


def codes(findings):
    return {f.code for f in findings}


def by_code(findings, code):
    return [f for f in findings if f.code == code]


class _TextVersion(ServerVersion):
    """Bare version carrying only response texts (for rule lint)."""

    app = "toy"

    def __init__(self, name, texts):
        self.name = name
        self._texts = frozenset(texts)

    def response_texts(self):
        return self._texts


class _TextKV(BadKVVersion):
    """BadKV with overridable static response texts (for coverage)."""

    def __init__(self, name, extra, texts):
        super().__init__(name, extra)
        self._texts = frozenset(texts)

    def response_texts(self):
        return self._texts


# ---------------------------------------------------------------------------
# Analyzer 1: rule-set lint
# ---------------------------------------------------------------------------


class TestRulesLint:
    def test_shadowed_rule_is_error(self):
        findings = lint_rules(bad_rules.shadowed_rules())
        flagged = by_code(findings, "MVE102")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.ERROR
        assert "narrow" in flagged[0].location
        assert "broad" in flagged[0].message

    def test_conflicting_overlap_is_warning(self):
        findings = lint_rules(bad_rules.conflicting_rules())
        assert "MVE102" not in codes(findings)
        flagged = by_code(findings, "MVE103")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.WARNING
        assert "by_prefix" in flagged[0].message

    def test_duplicate_name_reported_once(self):
        findings = lint_rules(bad_rules.duplicate_name_rules())
        flagged = by_code(findings, "MVE101")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.ERROR

    def test_dead_direction_is_error(self):
        old = _TextVersion("1", [b"old banner\r\n"])
        new = _TextVersion("2", [b"new banner\r\n"])
        rules = bad_rules.dead_direction_rules(b"old banner\r\n",
                                               b"new banner\r\n")
        findings = lint_rules(rules, old_version=old, new_version=new)
        flagged = by_code(findings, "MVE104")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.ERROR

    def test_correctly_tagged_direction_is_clean(self):
        old = _TextVersion("1", [b"old banner\r\n"])
        new = _TextVersion("2", [b"new banner\r\n"])
        rules = RuleSet().add(rewrite_write(
            "forward", lambda d: d == b"new banner\r\n",
            lambda d: b"old banner\r\n",
            direction=Direction.UPDATED_LEADER))
        findings = lint_rules(rules, old_version=old, new_version=new)
        assert "MVE104" not in codes(findings)

    def test_pinned_fd_is_warning(self):
        findings = lint_rules(bad_rules.pinned_fd_rules())
        flagged = by_code(findings, "MVE105")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.WARNING
        assert "fd 5" in flagged[0].message

    def test_unused_binding_is_info(self):
        findings = lint_rules(bad_rules.unused_var_rules())
        flagged = by_code(findings, "MVE106")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.INFO
        assert "'s'" in flagged[0].message

    def test_hot_dispatch_bucket_is_warning(self):
        # Six same-stage rules all keyed (WRITE, ANY_FD): the dispatch
        # index cannot tell them apart, so every WRITE probes all six.
        rules = RuleSet()
        for i in range(6):
            rules.add(rewrite_write(f"w{i}", lambda d, i=i:
                                    d.startswith(b"%d" % i), lambda d: d))
        findings = lint_rules(rules)
        flagged = by_code(findings, "MVE107")
        assert len(flagged) == 1  # one finding per bucket, not per rule
        assert flagged[0].severity is Severity.WARNING
        assert "6" in flagged[0].message
        assert "ANY_FD" in flagged[0].message

    def test_dispatch_buckets_are_per_stage(self):
        # The same six rules split across the two stages: no stage's
        # engine ever sees more than three candidates, so no finding.
        rules = RuleSet()
        for i in range(6):
            direction = (Direction.OUTDATED_LEADER if i % 2
                         else Direction.UPDATED_LEADER)
            rules.add(rewrite_write(f"w{i}", lambda d, i=i:
                                    d.startswith(b"%d" % i), lambda d: d,
                                    direction=direction))
        assert "MVE107" not in codes(lint_rules(rules))

    def test_small_buckets_stay_quiet(self):
        rules = RuleSet()
        for i in range(4):  # at the limit, not over it
            rules.add(rewrite_write(f"w{i}", lambda d, i=i:
                                    d.startswith(b"%d" % i), lambda d: d))
        assert "MVE107" not in codes(lint_rules(rules))

    def test_shipped_kvstore_rules_are_clean(self):
        from repro.servers.kvstore.rules import kv_rules_from_dsl
        from repro.servers.kvstore.versions import kvstore_registry

        registry = kvstore_registry()
        findings = lint_rules(kv_rules_from_dsl(), app="kvstore",
                              old_version=registry.get("kvstore", "1.0"),
                              new_version=registry.get("kvstore", "2.0"))
        assert findings == []


# ---------------------------------------------------------------------------
# Analyzer 2: coverage cross-check
# ---------------------------------------------------------------------------


class TestCoverage:
    def test_uncovered_added_command(self):
        old = BadKVVersion("1", frozenset())
        new = BadKVVersion("2", frozenset({"BOOM"}))
        findings = check_coverage(APP, old, new, RuleSet())
        flagged = by_code(findings, "MVE201")
        assert {f.severity for f in flagged} == {Severity.ERROR,
                                                 Severity.WARNING}
        assert all("BOOM" in f.location for f in flagged)
        # The paper's asymmetry: the validation window gates, the
        # post-promotion window (§3.3.2) merely warns.
        for finding in flagged:
            if finding.severity is Severity.ERROR:
                assert "outdated-leader" in finding.location
            else:
                assert "updated-leader" in finding.location

    def test_covering_rule_silences_mve201(self):
        old = BadKVVersion("1", frozenset())
        new = BadKVVersion("2", frozenset({"BOOM"}))
        rules = RuleSet()
        for rule in parse_rules(r'''
            rule boom both:
                read(fd, s) where startswith(s, "BOOM")
                    => read(fd, "bad-cmd\r\n")
        '''):
            rules.add(rule)
        findings = check_coverage(APP, old, new, rules)
        assert "MVE201" not in codes(findings)

    def test_uncovered_response_text_delta(self):
        old = _TextKV("1", frozenset(), [b"old banner\r\n"])
        new = _TextKV("2", frozenset(), [b"new banner\r\n"])
        findings = check_coverage(APP, old, new, RuleSet())
        flagged = by_code(findings, "MVE202")
        assert {f.severity for f in flagged} == {Severity.ERROR,
                                                 Severity.WARNING}

    def test_covering_write_rules_silence_mve202(self):
        old = _TextKV("1", frozenset(), [b"old banner\r\n"])
        new = _TextKV("2", frozenset(), [b"new banner\r\n"])
        rules = RuleSet()
        rules.add(rewrite_write("fwd", lambda d: d == b"old banner\r\n",
                                lambda d: b"new banner\r\n",
                                direction=Direction.OUTDATED_LEADER))
        rules.add(rewrite_write("rev", lambda d: d == b"new banner\r\n",
                                lambda d: b"old banner\r\n",
                                direction=Direction.UPDATED_LEADER))
        findings = check_coverage(APP, old, new, rules)
        assert "MVE202" not in codes(findings)

    def test_unknown_command_reference(self):
        old = BadKVVersion("1", frozenset())
        new = BadKVVersion("2", frozenset())
        findings = check_coverage(APP, old, new,
                                  bad_rules.shadowed_rules())
        flagged = by_code(findings, "MVE203")
        assert flagged, "rules referencing 'PUT' should be flagged"
        assert all(f.severity is Severity.WARNING for f in flagged)


# ---------------------------------------------------------------------------
# Analyzer 3: transformer audit
# ---------------------------------------------------------------------------


def _audit(transformer):
    versions = VersionRegistry()
    versions.register(BadKVVersion("1", frozenset()))
    versions.register(BadKVVersion("2", frozenset()))
    transforms = TransformRegistry()
    transforms.register(APP, "1", "2", transformer)
    return audit_transforms(APP, versions, transforms,
                            (b"SET alpha one", b"SET beta two"))


class TestTransformAudit:
    def test_seeded_heap_replays_requests(self):
        heap = seeded_heap(BadKVVersion("1", frozenset()),
                           (b"SET a 1", b"SET b 2", b"garbage"))
        assert heap["table"] == {"a": "1", "b": "2"}
        assert heap["stats"]["requests"] == 3

    def test_key_drop(self):
        flagged = by_code(_audit(bad_transforms.xform_drop_table), "MVE302")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.ERROR
        assert "'table'" in flagged[0].message

    def test_entry_drop(self):
        flagged = by_code(_audit(bad_transforms.xform_drop_entries),
                          "MVE302")
        assert len(flagged) == 1
        assert "entries dropped" in flagged[0].message

    def test_kind_change(self):
        flagged = by_code(_audit(bad_transforms.xform_change_kind), "MVE303")
        assert len(flagged) == 1
        assert "dict -> sequence" in flagged[0].message

    def test_non_heap_return(self):
        flagged = by_code(_audit(bad_transforms.xform_not_a_heap), "MVE303")
        assert len(flagged) == 1
        assert "not a heap" in flagged[0].message

    def test_input_aliasing(self):
        findings = _audit(bad_transforms.xform_alias_input)
        assert "MVE304" in codes(findings)
        assert "MVE305" not in codes(findings)

    def test_in_place_mutation_is_accepted(self):
        def in_place(heap):
            heap["table"] = dict(heap["table"])
            return heap

        assert _audit(in_place) == []

    def test_non_determinism(self):
        findings = _audit(bad_transforms.make_nondeterministic())
        flagged = by_code(findings, "MVE305")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.ERROR

    def test_uninitialised_field(self):
        findings = _audit(bad_transforms.xform_none_field)
        flagged = by_code(findings, "MVE306")
        assert flagged
        assert all(f.severity is Severity.WARNING for f in flagged)
        assert all("'typ'" in f.message for f in flagged)

    def test_raising_transformer(self):
        flagged = by_code(_audit(bad_transforms.xform_raises), "MVE301")
        assert len(flagged) == 1
        assert "raised" in flagged[0].message

    def test_none_returning_transformer(self):
        flagged = by_code(_audit(bad_transforms.xform_returns_none),
                          "MVE301")
        assert len(flagged) == 1
        assert "no heap" in flagged[0].message

    def test_shipped_kvstore_transforms_are_clean(self):
        from repro.servers.kvstore.transforms import kv_transforms
        from repro.servers.kvstore.versions import kvstore_registry

        findings = audit_transforms(
            "kvstore", kvstore_registry(), kv_transforms(),
            (b"PUT alpha one", b"PUT beta two"))
        assert [f for f in findings if f.severity is Severity.ERROR] == []


# ---------------------------------------------------------------------------
# Analyzer 4: update-path audit
# ---------------------------------------------------------------------------


def _three_versions():
    versions = VersionRegistry()
    for name in ("1", "2", "3"):
        versions.register(BadKVVersion(name, frozenset()))
    return versions


class TestPathAudit:
    def test_missing_transformer_and_unreachable_version(self):
        transforms = TransformRegistry()
        transforms.register(APP, "1", "2", lambda heap: dict(heap))
        findings = audit_paths(APP, _three_versions(), transforms,
                               lambda old, new: RuleSet())
        missing = by_code(findings, "MVE401")
        assert len(missing) == 1
        assert missing[0].location == "2->3"
        assert missing[0].severity is Severity.ERROR
        unreachable = by_code(findings, "MVE403")
        assert len(unreachable) == 1
        assert "3" in unreachable[0].location
        assert unreachable[0].severity is Severity.WARNING

    def test_broken_ruleset_factory(self):
        transforms = TransformRegistry()
        transforms.register(APP, "1", "2", lambda heap: dict(heap))
        transforms.register(APP, "2", "3", lambda heap: dict(heap))

        def raising(old, new):
            raise KeyError(f"{old}->{new}")

        findings = audit_paths(APP, _three_versions(), transforms, raising)
        assert len(by_code(findings, "MVE402")) == 2

        findings = audit_paths(APP, _three_versions(), transforms,
                               lambda old, new: None)
        assert len(by_code(findings, "MVE402")) == 2

    def test_dangling_transformer_edge(self):
        versions = VersionRegistry()
        versions.register(BadKVVersion("1", frozenset()))
        versions.register(BadKVVersion("2", frozenset()))
        transforms = TransformRegistry()
        transforms.register(APP, "1", "2", lambda heap: dict(heap))
        transforms.register(APP, "2", "9", lambda heap: dict(heap))
        findings = audit_paths(APP, versions, transforms,
                               lambda old, new: RuleSet())
        flagged = by_code(findings, "MVE404")
        assert len(flagged) == 1
        assert "'9'" in flagged[0].message
        assert codes(findings) == {"MVE404"}

    def test_complete_graph_is_clean(self):
        transforms = TransformRegistry()
        transforms.register(APP, "1", "2", lambda heap: dict(heap))
        transforms.register(APP, "2", "3", lambda heap: dict(heap))
        findings = audit_paths(APP, _three_versions(), transforms,
                               lambda old, new: RuleSet())
        assert findings == []


# ---------------------------------------------------------------------------
# MVE6xx: fault-plan lint
# ---------------------------------------------------------------------------


class TestChaosLint:
    def test_unknown_site_is_mve601_error(self):
        plan = FaultPlan("p", (Fault("kernel.reed", "econnreset",
                                     on_call(1)),))
        findings = lint_fault_plan(APP, plan)
        flagged = by_code(findings, "MVE601")
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.ERROR
        assert "kernel.reed" in flagged[0].message

    def test_illegal_kind_at_site_is_mve601_error(self):
        plan = FaultPlan("p", (Fault("mve.leader", "corrupt-record",
                                     on_call(1)),))
        findings = lint_fault_plan(APP, plan)
        flagged = by_code(findings, "MVE601")
        assert len(flagged) == 1
        assert "corrupt-record" in flagged[0].message

    def test_malformed_trigger_is_mve602_error(self):
        plan = FaultPlan("p", (
            Fault("kernel.read", "econnreset", on_call(0)),
            Fault("kernel.write", "epipe", at_stage("promoted")),
            Fault("sim.event", "drop", Trigger("predicate")),
        ))
        findings = lint_fault_plan(APP, plan)
        flagged = by_code(findings, "MVE602")
        assert len(flagged) == 3
        assert all(f.severity is Severity.ERROR for f in flagged)

    def test_valid_plan_is_clean(self):
        plan = FaultPlan("p", (
            Fault("mve.follower", "corrupt-record", on_call(2)),
            Fault("kernel.read", "short-read", at_stage("outdated-leader"),
                  param={"bytes": 5}),
        ))
        assert lint_fault_plan(APP, plan) == []


# ---------------------------------------------------------------------------
# Catalog + CLI
# ---------------------------------------------------------------------------


class TestCatalogAndCli:
    def test_default_catalog_has_no_blocking_findings(self):
        report = run_catalog(default_catalog())
        assert not report.has_errors
        assert sorted(report.apps) == ["kvstore", "memcached", "redis",
                                       "snort", "vsftpd"]
        # The three §3.3.2-tolerated kvstore deltas are surfaced but
        # explicitly accepted in the catalog.
        allowlisted = [f for f in report.findings if f.allowlisted]
        assert {f.code for f in allowlisted} == {"MVE201"}
        assert len(allowlisted) == 3

    def test_bad_catalog_trips_every_analyzer(self):
        report = run_app(bad_catalog()[APP])
        assert report.has_errors
        per_analyzer = {f.analyzer: set() for f in report.findings}
        for finding in report.findings:
            per_analyzer[finding.analyzer].add(finding.code)
        assert "MVE102" in per_analyzer["rules"]
        assert "MVE201" in per_analyzer["coverage"]
        assert "MVE302" in per_analyzer["transform"]
        assert "MVE401" in per_analyzer["paths"]
        assert "MVE403" in per_analyzer["paths"]
        assert "MVE501" in per_analyzer["trace"]
        assert "MVE601" in per_analyzer["chaos-lint"]

    def test_cli_default_catalog_exits_zero(self, capsys):
        assert lint_main(["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["errors"] == 0
        assert payload["allowlisted"] == 3

    def test_cli_bad_catalog_exits_nonzero(self, capsys):
        assert lint_main(["--json", "--catalog", FIXTURE_CATALOG]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        found = {f["code"] for f in payload["findings"]}
        assert {"MVE102", "MVE201", "MVE302", "MVE401",
                "MVE403", "MVE501", "MVE601"} <= found

    def test_cli_app_filter(self, capsys):
        assert lint_main(["--json", "--app", "vsftpd"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["apps"] == ["vsftpd"]

    def test_cli_unknown_app_errors(self, capsys):
        with pytest.raises(SystemExit):
            lint_main(["--app", "nosuch"])
        assert "unknown app(s): nosuch" in capsys.readouterr().err

    def test_human_output_mentions_summary(self, capsys):
        assert lint_main(["--app", "snort"]) == 0
        out = capsys.readouterr().out
        assert "mvelint: analyzed snort" in out
        assert "ok: no blocking findings" in out


class TestWorkloadLint:
    """Satellite: the MVE10xx workload-spec analyzer, pinned against
    tests/fixtures/bad_workloads.py (one factory per code)."""

    def test_bad_workloads_trip_each_code_exactly_once(self):
        report = run_app(bad_workloads_catalog()[BADLOAD_APP])
        assert report.has_errors
        workload = [f for f in report.findings
                    if f.analyzer == "workload-lint"]
        assert sorted(f.code for f in workload) == [
            "MVE1001", "MVE1002", "MVE1003", "MVE1004", "MVE1005"]
        assert all(f.severity is Severity.ERROR for f in workload)
        # Every finding names the app and the offending spec.
        for finding in workload:
            assert finding.app == BADLOAD_APP
            assert BADLOAD_APP in finding.location
        # The broken specs are the catalog's only defects.
        assert {f.analyzer for f in report.findings} == {"workload-lint"}

    def test_cli_bad_workloads_exits_nonzero(self, capsys):
        assert lint_main(["--json", "--catalog", FIXTURE_WORKLOADS]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        found = {f["code"] for f in payload["findings"]}
        assert {"MVE1001", "MVE1002", "MVE1003",
                "MVE1004", "MVE1005"} <= found

    def test_default_catalog_specs_are_clean(self):
        from repro.analysis.workload_lint import lint_workload_specs
        for name, config in default_catalog().items():
            assert lint_workload_specs(name, config.workload_specs) == []


class TestReportDedupeAndOrdering:
    """Satellite: LintReport folds cross-analyzer duplicates and sorts
    findings deterministically (severity rank, code, subject)."""

    @staticmethod
    def _finding(code="MVE201", severity=Severity.ERROR, analyzer="a",
                 app="app", location="loc", message="msg",
                 allowlisted=False):
        from repro.analysis import Finding
        return Finding(code, severity, analyzer, app, location, message,
                       allowlisted)

    def test_identical_findings_from_two_analyzers_dedupe(self):
        from repro.analysis import LintReport
        report = LintReport(apps=["app"])
        report.extend([self._finding(analyzer="coverage"),
                       self._finding(analyzer="prove")])
        assert len(report.deduped_findings()) == 1
        assert report.count(Severity.ERROR) == 1
        # First analyzer name wins, deterministically.
        assert report.sorted_findings()[0].analyzer == "coverage"

    def test_allowlisted_copy_allowlists_the_survivor(self):
        from repro.analysis import LintReport
        report = LintReport(apps=["app"])
        report.extend([self._finding(analyzer="prove", allowlisted=True),
                       self._finding(analyzer="coverage")])
        survivor = report.sorted_findings()[0]
        assert survivor.allowlisted
        assert not report.has_errors

    def test_distinct_messages_do_not_dedupe(self):
        from repro.analysis import LintReport
        report = LintReport(apps=["app"])
        report.extend([self._finding(message="one"),
                       self._finding(message="two")])
        assert len(report.deduped_findings()) == 2

    def test_ordering_is_severity_code_subject(self):
        from repro.analysis import LintReport
        report = LintReport(apps=["app"])
        report.extend([
            self._finding(code="MVE301", severity=Severity.WARNING),
            self._finding(code="MVE101", severity=Severity.WARNING),
            self._finding(code="MVE801", severity=Severity.ERROR),
            self._finding(code="MVE101", severity=Severity.WARNING,
                          location="aaa"),
        ])
        ordered = [(f.severity.value, f.code, f.location)
                   for f in report.sorted_findings()]
        assert ordered == [("error", "MVE801", "loc"),
                           ("warning", "MVE101", "aaa"),
                           ("warning", "MVE101", "loc"),
                           ("warning", "MVE301", "loc")]

    def test_ordering_independent_of_insertion_order(self):
        import random
        from repro.analysis import LintReport
        base = [self._finding(code=c, severity=s, location=l)
                for c, s, l in
                [("MVE101", Severity.ERROR, "x"),
                 ("MVE201", Severity.WARNING, "y"),
                 ("MVE801", Severity.INFO, "z"),
                 ("MVE801", Severity.ERROR, "w")]]
        rng = random.Random(7)
        reference = None
        for _ in range(5):
            shuffled = list(base)
            rng.shuffle(shuffled)
            report = LintReport(apps=["app"])
            report.extend(shuffled)
            rendered = [f.render() for f in report.sorted_findings()]
            if reference is None:
                reference = rendered
            assert rendered == reference


class TestCliExitCodesAndFormats:
    """Satellite: exit-code contract (0/1/2) and report formats."""

    def test_exit_zero_on_clean(self, capsys):
        assert lint_main(["--app", "snort"]) == 0
        capsys.readouterr()

    def test_exit_one_on_error_findings(self, capsys):
        assert lint_main(["--catalog", FIXTURE_CATALOG]) == 1
        capsys.readouterr()

    def test_exit_two_on_analyzer_crash(self, capsys, monkeypatch):
        import repro.analysis.cli as cli_mod
        def boom(*args, **kwargs):
            raise RuntimeError("analyzer exploded")
        monkeypatch.setattr(cli_mod, "run_catalog", boom)
        assert cli_mod.lint_main(["--app", "snort"]) == 2
        assert "internal error" in capsys.readouterr().err

    def test_format_json_matches_json_flag_byte_for_byte(self, capsys):
        assert lint_main(["--json", "--app", "kvstore"]) == 0
        via_flag = capsys.readouterr().out
        assert lint_main(["--format", "json", "--app", "kvstore"]) == 0
        via_format = capsys.readouterr().out
        assert via_flag == via_format

    def test_conflicting_format_flags_rejected(self, capsys):
        with pytest.raises(SystemExit):
            lint_main(["--json", "--format", "sarif"])
        capsys.readouterr()

    def test_sarif_document_shape(self, capsys):
        assert lint_main(["--format", "sarif", "--app", "kvstore"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "mvelint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        # Every analyzer's codes are registered, MVE1xx through MVE8xx.
        for code in ("MVE101", "MVE201", "MVE301", "MVE401", "MVE501",
                     "MVE601", "MVE701", "MVE801", "MVE804"):
            assert code in rule_ids
        # kvstore's three allowlisted MVE201 findings are suppressed.
        results = run["results"]
        assert len(results) == 3
        assert all(r["ruleId"] == "MVE201" for r in results)
        assert all(r["suppressions"][0]["kind"] == "inSource"
                   for r in results)

    def test_sarif_levels_map_severities(self, capsys):
        assert lint_main(["--format", "sarif", "--catalog",
                          FIXTURE_CATALOG]) == 1
        doc = json.loads(capsys.readouterr().out)
        levels = {r["level"] for r in doc["runs"][0]["results"]}
        assert "error" in levels

    def test_lint_prove_flag_runs_analyzer_eight(self, capsys):
        assert lint_main(["--json", "--app", "kvstore", "--prove"]) == 0
        payload = json.loads(capsys.readouterr().out)
        prover_findings = [f for f in payload["findings"]
                           if f["analyzer"] == "prove"]
        assert prover_findings
        assert all(f["allowlisted"] for f in prover_findings)

"""Property-based tests (hypothesis) for core system invariants.

These encode the correctness arguments the paper relies on:

* the *state relation* (Figure 3): after any command history, the new
  version's state equals the transform of the old version's state;
* MVE transparency: a follower running identical code never diverges and
  converges to the leader's state, for any workload;
* the rule engine is the identity when no rule matches;
* servers are deterministic functions of their input bytes, regardless
  of how those bytes are chunked by the network.
"""

from hypothesis import given, settings, strategies as st

from repro.mve import VaranRuntime
from repro.mve.dsl import RuleEngine
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    xform_1_to_2,
)
from repro.servers.native import NativeRuntime
from repro.servers.redis import RedisServer, redis_version
from repro.syscalls.costs import PROFILES
from repro.syscalls.model import Sys, SyscallRecord
from repro.workloads import VirtualClient

# -- strategies ---------------------------------------------------------------

keys = st.sampled_from(["alpha", "beta", "gamma", "delta"])
values = st.text(alphabet="abcdefghij0123456789", min_size=1, max_size=8)

v1_commands = st.one_of(
    st.tuples(st.just("PUT"), keys, values).map(
        lambda t: f"{t[0]} {t[1]} {t[2]}".encode()),
    keys.map(lambda k: f"GET {k}".encode()),
)

typed_commands = st.one_of(
    st.tuples(st.sampled_from(["PUT-number", "PUT-date", "PUT-string"]),
              keys, values).map(lambda t: f"{t[0]} {t[1]} {t[2]}".encode()),
    keys.map(lambda k: f"TYPE {k}".encode()),
)


# -- the state relation (Figure 3) ---------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(v1_commands, max_size=30))
def test_state_relation_holds_for_any_v1_history(commands):
    """xform(v1 state after H) == v2 state after H, for any history H."""
    v1, v2 = KVStoreV1(), KVStoreV2()
    heap1, heap2 = v1.initial_heap(), v2.initial_heap()
    for command in commands:
        v1.handle(heap1, command)
        v2.handle(heap2, command)
    assert xform_1_to_2(heap1) == heap2


@settings(max_examples=40, deadline=None)
@given(st.lists(st.one_of(v1_commands, typed_commands), max_size=25))
def test_rejected_commands_preserve_the_relation(commands):
    """With typed commands redirected to bad-cmd (Rule 1), the relation
    still holds: what v1 rejects, the redirected v2 also rejects."""
    v1, v2 = KVStoreV1(), KVStoreV2()
    heap1, heap2 = v1.initial_heap(), v2.initial_heap()
    for command in commands:
        v1.handle(heap1, command)
        # Model the outdated-leader stage: commands v1 rejects reach the
        # follower as bad-cmd.
        verb = command.split(b" ", 1)[0]
        if verb.startswith(b"PUT-") or verb == b"TYPE":
            v2.handle(heap2, b"bad-cmd")
        else:
            v2.handle(heap2, command)
    assert xform_1_to_2(heap1) == heap2


# -- MVE transparency ------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.lists(v1_commands, min_size=1, max_size=20))
def test_identical_follower_never_diverges(commands):
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["kvstore"],
                           ring_capacity=1 << 12)
    client = VirtualClient(kernel, server.address)
    runtime.fork_follower(0)
    now = 0
    for command in commands:
        _, now = client.request(runtime, command + b"\r\n", now)
    runtime.drain_follower()
    assert runtime.last_divergence is None
    assert runtime.follower is not None
    assert runtime.follower.server.heap == runtime.leader.server.heap


@settings(max_examples=25, deadline=None)
@given(st.lists(st.one_of(v1_commands, typed_commands),
                min_size=1, max_size=20))
def test_updated_follower_with_rules_never_diverges(commands):
    """The full outdated-leader stage, for arbitrary mixed workloads."""
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["kvstore"],
                           ring_capacity=1 << 12, rules=kv_rules())
    client = VirtualClient(kernel, server.address)
    child = server.fork()
    child.apply_version(KVStoreV2(), xform_1_to_2(dict(child.heap)))
    runtime.fork_follower(0, server=child)
    now = 0
    for command in commands:
        _, now = client.request(runtime, command + b"\r\n", now)
    runtime.drain_follower()
    assert runtime.last_divergence is None
    # And the state relation held the whole way.
    assert runtime.follower.server.heap == xform_1_to_2(
        {"table": dict(runtime.leader.server.heap["table"])})


# -- rule engine -------------------------------------------------------------------

record_strategy = st.builds(
    SyscallRecord,
    name=st.sampled_from([Sys.READ, Sys.WRITE, Sys.CLOSE]),
    fd=st.integers(0, 5),
    data=st.binary(max_size=12),
)


@settings(max_examples=80, deadline=None)
@given(st.lists(record_strategy, max_size=30))
def test_rule_engine_without_rules_is_identity(records):
    engine = RuleEngine([])
    out = []
    for record in records:
        engine.offer(record)
        while engine.has_ready():
            out.append(engine.next_expected())
    engine.flush()
    while engine.has_ready():
        out.append(engine.next_expected())
    assert out == records


@settings(max_examples=60, deadline=None)
@given(st.lists(record_strategy, max_size=30))
def test_non_matching_rules_are_identity(records):
    from repro.mve.dsl import redirect_read
    rule = redirect_read("never", lambda d: d.startswith(b"\xff\xfe"),
                         b"unused")
    engine = RuleEngine([rule])
    out = []
    for record in records:
        engine.offer(record)
        while engine.has_ready():
            out.append(engine.next_expected())
    engine.flush()
    while engine.has_ready():
        out.append(engine.next_expected())
    matched = [r for r in records if r.name is Sys.READ
               and r.data.startswith(b"\xff\xfe")]
    if not matched:
        assert out == records


# -- chunking invariance ----------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.lists(v1_commands, min_size=1, max_size=10),
       st.data())
def test_server_responses_invariant_under_chunking(commands, data):
    """However the network fragments the request stream, responses and
    final state are identical."""
    stream = b"".join(command + b"\r\n" for command in commands)

    def run(chunks):
        kernel = VirtualKernel()
        server = KVStoreServer(KVStoreV1())
        server.attach(kernel)
        runtime = NativeRuntime(kernel, server, PROFILES["kvstore"])
        client = VirtualClient(kernel, server.address)
        responses = b""
        now = 0
        for chunk in chunks:
            reply, now = client.request(runtime, chunk, now)
            responses += reply
        return responses, server.heap

    # One big write vs random fragmentation.
    whole = run([stream])
    cut_points = sorted(data.draw(st.lists(
        st.integers(1, max(1, len(stream) - 1)), max_size=6)))
    pieces = []
    last = 0
    for cut in cut_points:
        pieces.append(stream[last:cut])
        last = cut
    pieces.append(stream[last:])
    fragmented = run([p for p in pieces if p])
    assert whole == fragmented


# -- server determinism -----------------------------------------------------------

redis_commands = st.one_of(
    st.tuples(keys, values).map(lambda t: b"SET %s %s" % (
        t[0].encode(), t[1].encode())),
    keys.map(lambda k: b"GET %s" % k.encode()),
    st.tuples(keys, values).map(lambda t: b"LPUSH %s %s" % (
        t[0].encode(), t[1].encode())),
    keys.map(lambda k: b"LRANGE %s 0 -1" % k.encode()),
    st.tuples(keys, keys, values).map(lambda t: b"HSET %s %s %s" % (
        t[0].encode(), t[1].encode(), t[2].encode())),
    keys.map(lambda k: b"TYPE %s" % k.encode()),
)


@settings(max_examples=30, deadline=None)
@given(st.lists(redis_commands, max_size=25))
def test_redis_replies_are_deterministic(commands):
    def run():
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0"))
        server.attach(kernel)
        runtime = NativeRuntime(kernel, server, PROFILES["redis"])
        client = VirtualClient(kernel, server.address)
        return [client.command(runtime, c) for c in commands]

    assert run() == run()

"""The chaos campaign: grid generation, outcome classification, the
``repro-chaos/1`` report, and the ``python -m repro chaos`` CLI."""

import json

import pytest

from repro.chaos import Fault, FaultPlan, at_time, on_call
from repro.chaos.campaign import (
    CHAOS_SCHEMA,
    OUTCOMES,
    cell_entry,
    classify,
    default_grid,
    probe_site_calls,
    run_campaign,
    run_cell,
    validate_report,
)
from repro.chaos.cli import chaos_main
from repro.chaos.plans import NAMED_PLANS
from repro.chaos.scenarios import run_kv_update_scenario


@pytest.fixture(scope="module")
def full_report():
    return run_campaign("kvstore", seed=1)


@pytest.fixture(scope="module")
def golden():
    return run_kv_update_scenario()


# ---------------------------------------------------------------------------
# The golden baseline and the grid
# ---------------------------------------------------------------------------


class TestGoldenAndGrid:
    def test_golden_run_finalizes_on_the_new_version(self, golden):
        assert golden.finalized
        assert golden.final_version == "2.0"
        assert golden.stage == "single-leader"
        assert all(reply is not None for reply in golden.replies())

    def test_probe_reaches_every_site_family(self):
        calls = probe_site_calls()
        for site in ("kernel.read", "kernel.write", "kernel.accept",
                     "mve.leader", "mve.follower", "mve.ring",
                     "dsu.update", "dsu.quiesce", "dsu.transform"):
            assert calls.get(site, 0) >= 1, site

    def test_default_grid_is_valid_and_large_enough(self):
        grid = default_grid(probe_site_calls(), seed=1)
        assert len(grid) >= 200
        for fault in grid:
            assert FaultPlan("cell", (fault,)).validate() == []
        # Cell names are unique: they key the report's grid entries.
        names = [fault.describe() for fault in grid]
        assert len(names) == len(set(names))


# ---------------------------------------------------------------------------
# Outcome classification
# ---------------------------------------------------------------------------


class TestClassification:
    def test_never_triggered_fault_is_masked(self, golden):
        result = run_cell(FaultPlan("never", (
            Fault("kernel.read", "econnreset", on_call(9999)),)))
        outcome, detail = classify(result, golden)
        assert outcome == "masked"
        assert detail == "fault never triggered"

    def test_corrupt_record_rolls_back_with_forensics(self, golden):
        result = run_cell(FaultPlan("corrupt", (
            Fault("mve.follower", "corrupt-record", on_call(2)),)))
        outcome, detail = classify(result, golden)
        assert outcome == "recovered-rollback"
        assert result.forensics is not None
        assert result.final_version == "1.0"

    def test_leader_crash_during_mve_promotes_the_follower(self, golden):
        result = run_cell(FaultPlan("crash", (
            Fault("mve.leader", "crash", at_time(6_500_000_000)),)))
        outcome, detail = classify(result, golden)
        assert outcome == "recovered-demotion"
        assert result.promoted_after_crash

    def test_slow_quiescence_aborts_cleanly(self, golden):
        result = run_cell(FaultPlan("slow", (
            Fault("dsu.quiesce", "delay", on_call(1),
                  param={"delay_ns": 60_000_000}),)))
        outcome, detail = classify(result, golden)
        assert outcome == "recovered-rollback"
        assert not result.update_ok

    def test_client_facing_reset_is_honest_availability_loss(self, golden):
        result = run_cell(FaultPlan("reset", (
            Fault("kernel.read", "econnreset", on_call(1)),)))
        outcome, detail = classify(result, golden)
        assert outcome == "availability-loss"

    def test_negative_recovery_delta_is_a_loud_ordering_anomaly(self, golden):
        plan = FaultPlan("corrupt", (
            Fault("mve.follower", "corrupt-record", on_call(2)),))
        result = run_cell(plan)
        assert result.injections and result.recovery_at is not None
        first_at = result.injections[0]["at"]
        entry = cell_entry("corrupt", plan, result, golden)
        # The raw signed delta is recorded, not clamped to zero.
        assert entry["recovery_latency_ns"] == result.recovery_at - first_at
        assert entry["outcome"] != "ordering-anomaly"
        # Rewind the recovery before the injection: the classifier must
        # not normalise it away.
        result.recovery_at = first_at - 7
        anomaly = cell_entry("corrupt", plan, result, golden)
        assert anomaly["outcome"] == "ordering-anomaly"
        assert anomaly["recovery_latency_ns"] == -7
        assert "predates" in anomaly["detail"]


# ---------------------------------------------------------------------------
# The full campaign and its report
# ---------------------------------------------------------------------------


class TestCampaignReport:
    def test_campaign_covers_the_grid_with_no_violations(self, full_report):
        assert full_report["schema"] == CHAOS_SCHEMA
        assert full_report["cells"] >= 200
        assert full_report["outcomes"]["invariant-violation"] == 0
        # A negative recovery delta would be a simulator causality bug.
        assert full_report["outcomes"]["ordering-anomaly"] == 0
        # Every healthy outcome class is actually exercised.
        for outcome in OUTCOMES:
            if outcome in ("ordering-anomaly", "invariant-violation"):
                continue
            assert full_report["outcomes"][outcome] > 0, outcome

    def test_report_is_bit_identical_across_runs(self, full_report):
        again = run_campaign("kvstore", seed=1)
        first = json.dumps(full_report, sort_keys=True)
        second = json.dumps(again, sort_keys=True)
        assert first == second

    def test_report_validates_and_tampering_is_caught(self, full_report):
        assert validate_report(full_report) == []
        tampered = json.loads(json.dumps(full_report))
        tampered["outcomes"]["masked"] += 1
        assert any("tally" in p for p in validate_report(tampered))
        tampered = json.loads(json.dumps(full_report))
        tampered["schema"] = "repro-chaos/0"
        assert any("schema" in p for p in validate_report(tampered))

    def test_rollback_cells_capture_forensics(self, full_report):
        corrupt = [entry for entry in full_report["grid"]
                   if entry["kind"] == "corrupt-record"
                   and entry["outcome"] == "recovered-rollback"]
        assert corrupt
        assert any("forensics" in entry for entry in corrupt)

    def test_recovery_latency_is_reported_for_dsu_faults(self, full_report):
        e1 = [entry for entry in full_report["grid"]
              if entry["name"] == "dsu.update/buggy-version@on-call:1"]
        assert len(e1) == 1
        # Injected at the update, detected at the first post-update
        # replay: a strictly positive virtual-time recovery latency.
        assert e1[0]["recovery_latency_ns"] > 0

    def test_single_plan_campaign_runs_one_cell(self):
        plan = FaultPlan("just-one", (
            Fault("mve.follower", "crash", on_call(1)),))
        report = run_campaign("kvstore", plan=plan)
        assert report["cells"] == 1
        assert report["grid"][0]["name"] == "just-one"
        assert validate_report(report) == []

    def test_max_cells_truncates_deterministically(self, full_report):
        small = run_campaign("kvstore", seed=1, max_cells=10)
        assert small["cells"] == 10
        names = [entry["name"] for entry in small["grid"]]
        assert names == [entry["name"]
                         for entry in full_report["grid"][:10]]


# ---------------------------------------------------------------------------
# Named plans (E1/E2/E3)
# ---------------------------------------------------------------------------


class TestNamedPlans:
    def test_shipped_plans_validate(self):
        assert set(NAMED_PLANS) == {"e1-new-code", "e2-transform"}
        for name, factory in NAMED_PLANS.items():
            plan = factory()
            assert plan.validate() == [], name


# ---------------------------------------------------------------------------
# The CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_smoke_run_writes_a_valid_report(self, tmp_path, capsys):
        report_path = tmp_path / "chaos.json"
        code = chaos_main(["kvstore", "--max-cells", "20",
                           "--report", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos campaign" in out
        payload = json.loads(report_path.read_text())
        assert validate_report(payload) == []
        assert payload["cells"] == 20

    def test_plan_file_runs_as_a_single_cell(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.py"
        plan_path.write_text(
            "from repro.chaos import Fault, FaultPlan, on_call\n"
            "def plan():\n"
            "    return FaultPlan('file-plan', "
            "(Fault('mve.follower', 'crash', on_call(1)),))\n")
        report_path = tmp_path / "chaos.json"
        code = chaos_main(["kvstore", "--plan", str(plan_path),
                           "--report", str(report_path)])
        capsys.readouterr()
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["cells"] == 1
        assert payload["grid"][0]["name"] == "file-plan"

    def test_unknown_scenario_is_rejected(self, capsys):
        with pytest.raises(SystemExit):
            chaos_main(["nosuch"])
        assert "invalid choice" in capsys.readouterr().err

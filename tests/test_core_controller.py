"""Tests for the operator console and the auto-pilot policy."""

from repro.core import AutoPilot, Mvedsua, OperatorConsole, Stage
from repro.dsu.transform import TransformRegistry
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    kv_transforms,
    xform_drop_table,
)
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def deployment(transforms=None):
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["kvstore"],
                      transforms=transforms or kv_transforms())
    client = VirtualClient(kernel, server.address)
    return mvedsua, client


class TestOperatorConsole:
    def test_single_leader_status(self):
        mvedsua, client = deployment()
        client.command(mvedsua, b"PUT k v")
        status = OperatorConsole(mvedsua).status()
        assert status.stage == "single-leader"
        assert status.serving_version == "1.0"
        assert status.validating_version is None
        assert status.divergence is None
        assert status.updates_completed == 0

    def test_outdated_leader_status(self):
        mvedsua, client = deployment()
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        client.command(mvedsua, b"PUT-number x 1", now=2 * SECOND)
        status = OperatorConsole(mvedsua).status()
        assert status.stage == "outdated-leader"
        assert status.serving_version == "1.0"
        assert status.validating_version == "2.0"
        assert status.rules_fired >= 1

    def test_rollback_counted(self):
        registry = TransformRegistry()
        registry.register("kvstore", "1.0", "2.0", xform_drop_table)
        mvedsua, client = deployment(transforms=registry)
        client.command(mvedsua, b"PUT k v")
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        client.command(mvedsua, b"GET k", now=2 * SECOND)
        status = OperatorConsole(mvedsua).status()
        assert status.updates_rolled_back == 1
        assert status.divergence is not None

    def test_render_status_is_one_screen(self):
        mvedsua, client = deployment()
        text = OperatorConsole(mvedsua).render_status()
        assert "stage:" in text and "serving:" in text
        assert len(text.splitlines()) <= 10


class TestAutoPilot:
    def drive(self, mvedsua, client, pilot, *, seconds, start):
        """Issue one request per virtual second, observing after each."""
        actions = []
        for tick in range(seconds):
            now = (start + tick) * SECOND
            client.command(mvedsua, b"PUT k%d v" % tick, now=now)
            action = pilot.observe(now)
            if action:
                actions.append((tick, action))
        return actions

    def test_full_auto_lifecycle(self):
        mvedsua, client = deployment()
        pilot = AutoPilot(mvedsua, warmup_ns=5 * SECOND,
                          min_validated_requests=3,
                          confirm_ns=5 * SECOND)
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        actions = self.drive(mvedsua, client, pilot, seconds=30, start=2)
        kinds = [action for _, action in actions]
        assert kinds == ["promoted", "finalized"]
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.current_version == "2.0"
        assert mvedsua.last_outcome().succeeded()

    def test_does_not_promote_before_warmup(self):
        mvedsua, client = deployment()
        pilot = AutoPilot(mvedsua, warmup_ns=3600 * SECOND,
                          min_validated_requests=1)
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        actions = self.drive(mvedsua, client, pilot, seconds=10, start=2)
        assert actions == []
        assert mvedsua.stage is Stage.OUTDATED_LEADER

    def test_does_not_promote_without_traffic(self):
        mvedsua, client = deployment()
        pilot = AutoPilot(mvedsua, warmup_ns=1 * SECOND,
                          min_validated_requests=50)
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        # Plenty of time passes but only 5 requests are validated.
        for tick in range(5):
            client.command(mvedsua, b"PUT k%d v" % tick,
                           now=(10 + tick * 100) * SECOND)
            assert pilot.observe((10 + tick * 100) * SECOND) is None
        assert mvedsua.stage is Stage.OUTDATED_LEADER

    def test_idle_in_single_leader(self):
        mvedsua, client = deployment()
        pilot = AutoPilot(mvedsua)
        assert pilot.observe(SECOND) is None

    def test_rollback_resets_the_pilot(self):
        registry = TransformRegistry()
        registry.register("kvstore", "1.0", "2.0", xform_drop_table)
        mvedsua, client = deployment(transforms=registry)
        client.command(mvedsua, b"PUT seed v")
        pilot = AutoPilot(mvedsua, warmup_ns=SECOND,
                          min_validated_requests=1)
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        # The divergence rolls the update back before any promotion.
        client.command(mvedsua, b"GET seed", now=10 * SECOND)
        assert pilot.observe(10 * SECOND) is None
        assert mvedsua.stage is Stage.SINGLE_LEADER

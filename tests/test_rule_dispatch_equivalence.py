"""Property test: indexed rule dispatch ≡ the naive reference engine.

The optimized :class:`~repro.mve.dsl.rules.RuleEngine` buckets rules by
their first pattern's dispatch key and skips rule evaluation entirely
for pass-through records.  Correctness rests on the argument that both
``matches_prefix`` and ``viable`` evaluate ``pattern[0]`` against
``window[0]``, so filtering candidates by first-position compatibility
is exact.  This test checks that argument empirically: random rule
catalogs offered random record streams must produce byte-identical
outputs and identical ``fired`` telemetry through both engines.
"""

from hypothesis import given, settings, strategies as st

from repro.mve.dsl.rules import (ANY_FD, DispatchIndex, RewriteRule,
                                 RuleEngine, SyscallPattern)
from repro.syscalls.model import Sys, SyscallRecord


class NaiveRuleEngine:
    """The pre-index engine: every rule probed against every window.

    A faithful copy of the original ``_reduce`` loop, kept here as the
    executable specification the dispatch index must agree with.
    """

    def __init__(self, rules):
        self.rules = list(rules)
        self._window = []
        self._ready = []
        self.fired = []

    def offer(self, record):
        self._window.append(record)
        self._reduce(flush=False)

    def flush(self):
        self._reduce(flush=True)

    def take_ready(self):
        ready, self._ready = self._ready, []
        return ready

    def _reduce(self, flush):
        while self._window:
            fired = False
            any_viable = False
            for rule in self.rules:
                if rule.matches_prefix(self._window):
                    consumed = len(rule.pattern)
                    self._ready.extend(rule.apply(self._window))
                    del self._window[:consumed]
                    self.fired.append(rule.name)
                    fired = True
                    break
                if rule.viable(self._window):
                    any_viable = True
            if fired:
                continue
            if any_viable and not flush:
                return
            self._ready.append(self._window.pop(0))


# A deliberately tiny vocabulary so patterns and records collide often —
# collisions are where dispatch shortcuts could diverge from the spec.
_SYSCALLS = [Sys.READ, Sys.WRITE, Sys.CLOSE]
_FDS = [ANY_FD, 3, 4]
_PAYLOADS = [b"", b"a", b"ab", b"b"]

_records = st.lists(
    st.builds(SyscallRecord,
              name=st.sampled_from(_SYSCALLS),
              fd=st.sampled_from([3, 4, 5]),
              data=st.sampled_from(_PAYLOADS)),
    max_size=30)


def _predicate_for(prefix):
    if prefix is None:
        return None
    return lambda data: data.startswith(prefix)


_patterns = st.builds(
    lambda name, fd, prefix: SyscallPattern(name, fd, _predicate_for(prefix)),
    st.sampled_from(_SYSCALLS),
    st.sampled_from(_FDS),
    st.sampled_from([None, b"a", b"ab"]))


def _make_rule(index, pattern_list, retag):
    def action(records):
        expected = list(records)
        if retag:  # distinguishable output so rule identity is observable
            head = expected[0]
            expected[0] = SyscallRecord(head.name, head.fd,
                                        head.data + b"!%d" % index,
                                        head.result, head.aux)
        return expected
    return RewriteRule(f"rule-{index}", tuple(pattern_list), action)


_rules = st.lists(
    st.builds(lambda patterns, retag: (patterns, retag),
              st.lists(_patterns, min_size=1, max_size=3),
              st.booleans()),
    max_size=8).map(lambda specs: [_make_rule(i, patterns, retag)
                                   for i, (patterns, retag)
                                   in enumerate(specs)])


@settings(max_examples=300, deadline=None)
@given(_rules, _records, st.booleans())
def test_indexed_engine_matches_naive_reference(rules, records, flush):
    indexed = RuleEngine(DispatchIndex(rules))
    naive = NaiveRuleEngine(rules)
    for record in records:
        indexed.offer(record)
        naive.offer(record)
    if flush:
        indexed.flush()
        naive.flush()
    assert indexed.fired == naive.fired
    indexed_out = [(r.name, r.fd, r.data) for r in indexed.take_ready()]
    naive_out = [(r.name, r.fd, r.data) for r in naive.take_ready()]
    assert indexed_out == naive_out
    assert indexed.pending_window() == len(naive._window)


@given(_rules, _records)
def test_incremental_drain_matches_bulk_drain(rules, records):
    """next_expected() one-by-one sees the same stream as take_ready()."""
    incremental = RuleEngine(DispatchIndex(rules))
    bulk = RuleEngine(DispatchIndex(rules))
    drained = []
    for record in records:
        incremental.offer(record)
        bulk.offer(record)
        while incremental.has_ready():
            drained.append(incremental.next_expected())
    incremental.flush()
    bulk.flush()
    while incremental.has_ready():
        drained.append(incremental.next_expected())
    assert [r.key() for r in drained] == [r.key() for r in bulk.take_ready()]

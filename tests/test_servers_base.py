"""Unit tests for the shared server skeleton (fork, sessions, framing)."""

from repro.net import VirtualKernel
from repro.servers.base import Server, Session
from repro.servers.kvstore import KVStoreServer, KVStoreV1
from repro.servers.native import NativeRuntime
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def deployment():
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["kvstore"])
    client = VirtualClient(kernel, server.address)
    return kernel, server, runtime, client


class TestFork:
    def test_fork_deep_copies_heap(self):
        kernel, server, runtime, client = deployment()
        client.command(runtime, b"PUT shared before")
        child = server.fork()
        # Mutating the parent does not leak into the child...
        client.command(runtime, b"PUT shared after")
        assert child.heap["table"]["shared"] == "before"
        # ...and vice versa.
        child.heap["table"]["child-only"] = "x"
        assert "child-only" not in server.heap["table"]

    def test_fork_deep_copies_sessions(self):
        kernel, server, runtime, client = deployment()
        client.command(runtime, b"PUT a 1")
        child = server.fork()
        parent_session = next(iter(server.sessions.values()))
        child_session = next(iter(child.sessions.values()))
        assert parent_session is not child_session
        assert parent_session.fd == child_session.fd

    def test_fork_shares_kernel_but_not_gateway(self):
        kernel, server, runtime, client = deployment()
        child = server.fork()
        assert child.kernel is kernel
        assert child.gateway is None
        assert child.domain == server.domain

    def test_fork_preserves_program_linkage(self):
        _, server, _, _ = deployment()
        child = server.fork()
        assert child.program is not server.program
        assert child.program.heap is child.heap
        assert child.program.version is child.version


class TestSessions:
    def test_session_created_on_accept(self):
        kernel, server, runtime, client = deployment()
        runtime.pump(0)
        assert set(server.sessions) == {next(iter(server.sessions))}
        session = next(iter(server.sessions.values()))
        assert isinstance(session, Session)
        assert session.buffer == b""

    def test_unknown_fd_session_adopted(self):
        """A follower forked before a connection existed adopts its
        session on first read (the _service_fd fallback)."""
        kernel, server, runtime, client = deployment()
        # Simulate the fallback directly: drop the session record.
        client.command(runtime, b"PUT a 1")
        fd = next(iter(server.sessions))
        del server.sessions[fd]
        assert client.command(runtime, b"GET a") == b"1\r\n"
        assert fd in server.sessions

    def test_apply_version_rewires_program(self):
        from repro.servers.kvstore import KVStoreV2
        _, server, _, _ = deployment()
        new_heap = {"table": {}}
        server.apply_version(KVStoreV2(), new_heap)
        assert server.version.name == "2.0"
        assert server.heap is new_heap
        assert server.program.heap is new_heap
        assert server.program.version is server.version


class TestFraming:
    def test_carriage_return_required(self):
        kernel, server, runtime, client = deployment()
        reply, _ = client.request(runtime, b"PUT a 1\n", 0)  # bare LF
        assert reply == b""  # buffered, not framed
        reply, _ = client.request(runtime, b"\r\n", 10)
        # Now framed as "PUT a 1\n" + "" -> first is malformed-ish but
        # handled; the server never wedges.
        assert reply.endswith(b"\r\n")

    def test_empty_line_is_a_request(self):
        kernel, server, runtime, client = deployment()
        reply, _ = client.request(runtime, b"\r\n", 0)
        assert reply == b"-ERR unknown command\r\n"

    def test_greeting_hook_default_empty(self):
        _, server, runtime, _ = deployment()
        assert server.on_connect(Session(fd=99)) == []

"""Tests for the Redis analogue: commands, AOF ordering, versions, rules."""

import pytest

from repro.core import Mvedsua, Stage
from repro.errors import ServerCrash
from repro.net import VirtualKernel
from repro.servers.native import NativeRuntime
from repro.servers.redis import (
    REDIS_VERSIONS,
    RedisServer,
    redis_rules,
    redis_transforms,
    redis_version,
)
from repro.servers.redis import commands as redis_commands
from repro.servers.redis.server import AOF_PATH, AOF_PREFIX
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.syscalls.model import Sys
from repro.workloads import VirtualClient


@pytest.fixture
def deployment():
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0"))
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["redis"])
    client = VirtualClient(kernel, server.address)
    return kernel, server, runtime, client


class TestCommands:
    """Direct command-layer tests (no wire protocol)."""

    def setup_method(self):
        self.heap = redis_commands.initial_heap()
        self.ctx = {"hmget_bug": False}

    def run(self, line):
        return redis_commands.dispatch(self.heap, line, self.ctx)

    def test_ping_and_echo(self):
        assert self.run(b"PING") == b"+PONG\r\n"
        assert self.run(b"ECHO hi") == b"$2\r\nhi\r\n"

    def test_set_get_roundtrip(self):
        assert self.run(b"SET k v") == b"+OK\r\n"
        assert self.run(b"GET k") == b"$1\r\nv\r\n"

    def test_get_missing_is_nil(self):
        assert self.run(b"GET nope") == b"$-1\r\n"

    def test_setnx(self):
        assert self.run(b"SETNX k v") == b":1\r\n"
        assert self.run(b"SETNX k w") == b":0\r\n"
        assert self.run(b"GET k") == b"$1\r\nv\r\n"

    def test_getset(self):
        assert self.run(b"GETSET k new") == b"$-1\r\n"
        assert self.run(b"GETSET k newer") == b"$3\r\nnew\r\n"

    def test_append(self):
        self.run(b"SET k ab")
        assert self.run(b"APPEND k cd") == b":4\r\n"
        assert self.run(b"GET k") == b"$4\r\nabcd\r\n"

    def test_del_and_exists(self):
        self.run(b"SET a 1")
        self.run(b"SET b 2")
        assert self.run(b"EXISTS a") == b":1\r\n"
        assert self.run(b"DEL a b c") == b":2\r\n"
        assert self.run(b"EXISTS a") == b":0\r\n"

    def test_incr_decr(self):
        assert self.run(b"INCR n") == b":1\r\n"
        assert self.run(b"INCRBY n 10") == b":11\r\n"
        assert self.run(b"DECR n") == b":10\r\n"
        assert self.run(b"DECRBY n 5") == b":5\r\n"

    def test_incr_non_numeric_errors(self):
        self.run(b"SET k abc")
        assert b"not an integer" in self.run(b"INCR k")

    def test_type_reporting(self):
        self.run(b"SET s v")
        self.run(b"LPUSH l v")
        self.run(b"SADD st v")
        self.run(b"HSET h f v")
        assert self.run(b"TYPE s") == b"+string\r\n"
        assert self.run(b"TYPE l") == b"+list\r\n"
        assert self.run(b"TYPE st") == b"+set\r\n"
        assert self.run(b"TYPE h") == b"+hash\r\n"
        assert self.run(b"TYPE nope") == b"+none\r\n"

    def test_keys_and_dbsize(self):
        self.run(b"SET user:1 a")
        self.run(b"SET user:2 b")
        self.run(b"SET other c")
        assert self.run(b"DBSIZE") == b":3\r\n"
        assert self.run(b"KEYS user:*") == \
            b"*2\r\n$6\r\nuser:1\r\n$6\r\nuser:2\r\n"

    def test_flushdb(self):
        self.run(b"SET k v")
        assert self.run(b"FLUSHDB") == b"+OK\r\n"
        assert self.run(b"DBSIZE") == b":0\r\n"

    def test_expire_ttl_persist(self):
        self.run(b"SET k v")
        assert self.run(b"TTL k") == b":-1\r\n"
        assert self.run(b"EXPIRE k 100") == b":1\r\n"
        assert self.run(b"TTL k") == b":100\r\n"
        assert self.run(b"PERSIST k") == b":1\r\n"
        assert self.run(b"TTL k") == b":-1\r\n"
        assert self.run(b"TTL missing") == b":-2\r\n"

    def test_rename(self):
        self.run(b"SET a v")
        assert self.run(b"RENAME a b") == b"+OK\r\n"
        assert self.run(b"GET b") == b"$1\r\nv\r\n"
        assert b"no such key" in self.run(b"RENAME missing x")

    def test_list_operations(self):
        self.run(b"RPUSH l a")
        self.run(b"RPUSH l b")
        self.run(b"LPUSH l z")
        assert self.run(b"LLEN l") == b":3\r\n"
        assert self.run(b"LRANGE l 0 -1") == \
            b"*3\r\n$1\r\nz\r\n$1\r\na\r\n$1\r\nb\r\n"
        assert self.run(b"LINDEX l 1") == b"$1\r\na\r\n"
        assert self.run(b"LPOP l") == b"$1\r\nz\r\n"
        assert self.run(b"RPOP l") == b"$1\r\nb\r\n"

    def test_set_operations(self):
        assert self.run(b"SADD s a b c") == b":3\r\n"
        assert self.run(b"SADD s a") == b":0\r\n"
        assert self.run(b"SCARD s") == b":3\r\n"
        assert self.run(b"SISMEMBER s a") == b":1\r\n"
        assert self.run(b"SREM s a") == b":1\r\n"
        assert self.run(b"SISMEMBER s a") == b":0\r\n"
        assert self.run(b"SMEMBERS s") == b"*2\r\n$1\r\nb\r\n$1\r\nc\r\n"

    def test_hash_operations(self):
        assert self.run(b"HSET h f1 v1") == b":1\r\n"
        assert self.run(b"HSET h f1 v2") == b":0\r\n"
        assert self.run(b"HGET h f1") == b"$2\r\nv2\r\n"
        assert self.run(b"HLEN h") == b":1\r\n"
        assert self.run(b"HEXISTS h f1") == b":1\r\n"
        assert self.run(b"HDEL h f1") == b":1\r\n"
        assert self.run(b"HLEN h") == b":0\r\n"

    def test_hmget_on_hash(self):
        self.run(b"HSET h f1 v1")
        assert self.run(b"HMGET h f1 f2") == b"*2\r\n$2\r\nv1\r\n$-1\r\n"

    def test_hmget_wrong_type_without_bug(self):
        self.run(b"SET s v")
        assert b"wrong kind of value" in self.run(b"HMGET s f")

    def test_hmget_wrong_type_with_bug_crashes(self):
        self.run(b"SET s v")
        with pytest.raises(ServerCrash, match="7fb16bac"):
            redis_commands.dispatch(self.heap, b"HMGET s f",
                                    {"hmget_bug": True})

    def test_wrong_type_errors(self):
        self.run(b"SET s v")
        assert b"wrong kind" in self.run(b"LPUSH s x")
        assert b"wrong kind" in self.run(b"SADD s x")
        assert b"wrong kind" in self.run(b"HSET s f v")

    def test_unknown_command(self):
        assert b"unknown command" in self.run(b"BOGUS x")

    def test_wrong_arity(self):
        assert b"wrong number of arguments" in self.run(b"SET onlykey")

    def test_is_write_classification(self):
        assert redis_commands.is_write_command(b"SET k v")
        assert redis_commands.is_write_command(b"LPUSH l v")
        assert not redis_commands.is_write_command(b"GET k")
        assert not redis_commands.is_write_command(b"HMGET h f")
        assert not redis_commands.is_write_command(b"NOPE")


class TestVersions:
    def test_release_set(self):
        assert REDIS_VERSIONS == ("2.0.0", "2.0.1", "2.0.2", "2.0.3")

    def test_aof_ordering_flag(self):
        assert not redis_version("2.0.0").aof_before_reply
        for name in ("2.0.1", "2.0.2", "2.0.3"):
            assert redis_version(name).aof_before_reply

    def test_hmget_bug_default_and_removal(self):
        assert redis_version("2.0.0").has_hmget_bug
        assert not redis_version("2.0.0", hmget_bug=False).has_hmget_bug

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            redis_version("9.9.9")

    def test_heap_entries_counts_db(self):
        version = redis_version("2.0.0")
        heap = version.initial_heap()
        version.handle(heap, b"SET a 1")
        version.handle(heap, b"SET b 2")
        assert version.heap_entries(heap) == 2


class TestAofSyscallOrder:
    def trace_names(self, version_name):
        kernel = VirtualKernel()
        server = RedisServer(redis_version(version_name))
        server.attach(kernel)
        runtime = NativeRuntime(kernel, server, PROFILES["redis"])
        client = VirtualClient(kernel, server.address)
        client.command(runtime, b"PING")  # accept + warm
        runtime.gateway.begin_iteration()
        client.send(b"SET k v\r\n")
        runtime.pump(SECOND)
        return [(r.name, r.fd) for r in runtime.gateway.trace.records]

    def test_200_replies_then_appends(self):
        names = self.trace_names("2.0.0")
        write_fds = [fd for name, fd in names if name is Sys.WRITE]
        assert write_fds[-1] == -3  # AOF last

    def test_201_appends_then_replies(self):
        names = self.trace_names("2.0.1")
        write_fds = [fd for name, fd in names if name is Sys.WRITE]
        assert write_fds[0] == -3  # AOF first

    def test_reads_do_not_touch_aof(self, deployment):
        kernel, server, runtime, client = deployment
        client.command(runtime, b"SET k v")
        aof_after_write = kernel.fs.read_file(AOF_PATH)
        client.command(runtime, b"GET k")
        assert kernel.fs.read_file(AOF_PATH) == aof_after_write

    def test_aof_contents_replay_commands(self, deployment):
        kernel, server, runtime, client = deployment
        client.command(runtime, b"SET a 1")
        client.command(runtime, b"DEL a")
        aof = kernel.fs.read_file(AOF_PATH)
        assert aof == AOF_PREFIX + b"SET a 1\r\n" + AOF_PREFIX + b"DEL a\r\n"

    def test_aof_can_be_disabled(self):
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0"), aof_enabled=False)
        server.attach(kernel)
        runtime = NativeRuntime(kernel, server, PROFILES["redis"])
        client = VirtualClient(kernel, server.address)
        client.command(runtime, b"SET k v")
        assert not kernel.fs.exists(AOF_PATH)


class TestSeed:
    def test_seed_populates_without_aof(self, deployment):
        kernel, server, runtime, client = deployment
        server.seed(1000)
        assert client.command(runtime, b"DBSIZE") == b":1000\r\n"
        assert not kernel.fs.exists(AOF_PATH)
        assert client.command(runtime, b"GET key:000000042") == \
            b"$16\r\n" + b"x" * 16 + b"\r\n"


class TestUpdatesUnderMvedsua:
    def make(self, old="2.0.0", hmget_bug=True):
        kernel = VirtualKernel()
        server = RedisServer(redis_version(old, hmget_bug=hmget_bug))
        server.attach(kernel)
        mvedsua = Mvedsua(kernel, server, PROFILES["redis"],
                          transforms=redis_transforms())
        client = VirtualClient(kernel, server.address)
        return kernel, mvedsua, client

    def test_200_to_201_with_rule_stays_in_sync(self):
        _, mvedsua, client = self.make()
        client.command(mvedsua, b"SET a 1")
        mvedsua.request_update(redis_version("2.0.1"), SECOND,
                               rules=redis_rules("2.0.0", "2.0.1"))
        client.command(mvedsua, b"SET b 2", now=2 * SECOND)
        client.command(mvedsua, b"GET b", now=3 * SECOND)
        assert mvedsua.stage is Stage.OUTDATED_LEADER
        assert mvedsua.runtime.last_divergence is None
        assert "aof_order" in mvedsua.runtime.rules_fired
        leader_db = mvedsua.runtime.leader.server.heap["db"]
        follower_db = mvedsua.runtime.follower.server.heap["db"]
        assert leader_db == follower_db

    def test_200_to_201_without_rule_diverges(self):
        _, mvedsua, client = self.make()
        mvedsua.request_update(redis_version("2.0.1"), SECOND)
        client.command(mvedsua, b"SET b 2", now=2 * SECOND)
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.last_outcome().rolled_back()

    def test_201_to_202_needs_no_rules(self):
        _, mvedsua, client = self.make(old="2.0.1")
        client.command(mvedsua, b"SET a 1")
        mvedsua.request_update(redis_version("2.0.2"), SECOND,
                               rules=redis_rules("2.0.1", "2.0.2"))
        client.command(mvedsua, b"SET b 2", now=2 * SECOND)
        client.command(mvedsua, b"HSET h f v", now=3 * SECOND)
        assert mvedsua.runtime.last_divergence is None
        assert mvedsua.stage is Stage.OUTDATED_LEADER

    def test_promotion_reverses_aof_rule(self):
        _, mvedsua, client = self.make()
        mvedsua.request_update(redis_version("2.0.1"), SECOND,
                               rules=redis_rules("2.0.0", "2.0.1"))
        mvedsua.promote(2 * SECOND)
        client.command(mvedsua, b"SET c 3", now=3 * SECOND)
        assert mvedsua.runtime.last_divergence is None
        assert "aof_order_rev" in mvedsua.runtime.rules_fired
        mvedsua.finalize(4 * SECOND)
        assert mvedsua.current_version == "2.0.1"

    def test_hmget_bug_in_new_code_rolls_back(self):
        """Paper §6.2 'Error in the New Code', exactly as staged there."""
        _, mvedsua, client = self.make(hmget_bug=False)
        client.command(mvedsua, b"SET s notahash")
        mvedsua.request_update(redis_version("2.0.1", hmget_bug=True),
                               SECOND, rules=redis_rules("2.0.0", "2.0.1"))
        # The bad HMGET crashes the follower; the leader answers the
        # client with the WRONGTYPE error and service continues.
        reply = client.command(mvedsua, b"HMGET s f", now=2 * SECOND)
        assert b"wrong kind of value" in reply
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.last_outcome().rolled_back()
        assert client.command(mvedsua, b"GET s", now=3 * SECOND) == \
            b"$8\r\nnotahash\r\n"

    def test_hmget_bug_with_kitsune_alone_crashes(self):
        """The contrast case: Kitsune without MVE takes the server down."""
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0", hmget_bug=False))
        server.attach(kernel)
        runtime = NativeRuntime(kernel, server, PROFILES["redis"],
                                with_kitsune=True)
        client = VirtualClient(kernel, server.address)
        client.command(runtime, b"SET s notahash")
        from repro.dsu import Kitsune
        result = runtime.apply_update(
            Kitsune(redis_transforms()),
            redis_version("2.0.1", hmget_bug=True), SECOND)
        assert result.ok
        with pytest.raises(ServerCrash):
            client.command(runtime, b"HMGET s f", now=2 * SECOND)
        # And the server stays down.
        with pytest.raises(ServerCrash):
            client.command(runtime, b"GET s", now=3 * SECOND)


class TestMultiKeyCommands:
    def setup_method(self):
        self.heap = redis_commands.initial_heap()
        self.ctx = {"hmget_bug": False}

    def run(self, line):
        return redis_commands.dispatch(self.heap, line, self.ctx)

    def test_mset_mget_round_trip(self):
        assert self.run(b"MSET a 1 b 2 c 3") == b"+OK\r\n"
        assert self.run(b"MGET a b missing c") == \
            b"*4\r\n$1\r\n1\r\n$1\r\n2\r\n$-1\r\n$1\r\n3\r\n"

    def test_mset_odd_arity_rejected(self):
        assert b"wrong number of arguments" in self.run(b"MSET a 1 b")

    def test_mget_wrong_type_reads_nil(self):
        self.run(b"LPUSH l x")
        self.run(b"SET s v")
        assert self.run(b"MGET l s") == b"*2\r\n$-1\r\n$1\r\nv\r\n"

    def test_setex_sets_value_and_ttl(self):
        assert self.run(b"SETEX k 100 v") == b"+OK\r\n"
        assert self.run(b"GET k") == b"$1\r\nv\r\n"
        assert self.run(b"TTL k") == b":100\r\n"

    def test_setex_invalid_expiry(self):
        assert b"invalid expire" in self.run(b"SETEX k 0 v")
        assert b"not an integer" in self.run(b"SETEX k soon v")

    def test_mset_is_write_command(self):
        assert redis_commands.is_write_command(b"MSET a 1")
        assert redis_commands.is_write_command(b"SETEX k 1 v")
        assert not redis_commands.is_write_command(b"MGET a")

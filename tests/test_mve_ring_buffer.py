"""Unit and property tests for the MVE ring buffer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.mve import ControlEvent, ControlKind, RingBuffer
from repro.mve.ring_buffer import BufferFull
from repro.syscalls.model import write_record


def rec(i):
    return write_record(4, f"payload-{i}".encode())


def test_push_pop_fifo():
    ring = RingBuffer(capacity=8)
    for i in range(5):
        ring.push(rec(i), produced_at=i * 10)
    out = [ring.pop() for _ in range(5)]
    assert [e.payload.data for e in out] == [rec(i).data for i in range(5)]
    assert [e.produced_at for e in out] == [0, 10, 20, 30, 40]


def test_push_when_full_raises():
    ring = RingBuffer(capacity=2)
    ring.push(rec(0), 0)
    ring.push(rec(1), 0)
    assert ring.is_full()
    with pytest.raises(BufferFull):
        ring.push(rec(2), 0)


def test_pop_frees_slot():
    ring = RingBuffer(capacity=1)
    ring.push(rec(0), 0)
    ring.pop()
    ring.push(rec(1), 0)  # must not raise
    assert len(ring) == 1


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        RingBuffer(capacity=4).pop()


def test_capacity_must_be_positive():
    with pytest.raises(SimulationError):
        RingBuffer(capacity=0)


def test_peek_does_not_consume():
    ring = RingBuffer(capacity=4)
    ring.push(rec(0), 0)
    ring.push(rec(1), 0)
    assert ring.peek(0).payload.data == rec(0).data
    assert ring.peek(1).payload.data == rec(1).data
    assert ring.peek(2) is None
    assert len(ring) == 2


def test_sequence_numbers_are_global():
    ring = RingBuffer(capacity=2)
    ring.push(rec(0), 0)
    ring.pop()
    entry = ring.push(rec(1), 0)
    assert entry.sequence == 1


def test_counters_and_watermark():
    ring = RingBuffer(capacity=4)
    for i in range(3):
        ring.push(rec(i), 0)
    ring.pop()
    assert ring.produced_total == 3
    assert ring.consumed_total == 1
    assert ring.high_watermark == 3


def test_clear_counts_as_consumption():
    ring = RingBuffer(capacity=4)
    for i in range(3):
        ring.push(rec(i), 0)
    ring.clear()
    assert ring.is_empty()
    assert ring.consumed_total == 3


def test_control_events_flow_through():
    ring = RingBuffer(capacity=4)
    ring.push(rec(0), 0)
    ring.push(ControlEvent(ControlKind.PROMOTE), 5)
    ring.pop()
    event = ring.pop().payload
    assert isinstance(event, ControlEvent)
    assert event.kind is ControlKind.PROMOTE
    assert "promote" in event.describe()


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 100)), max_size=200),
       st.integers(1, 16))
def test_fifo_invariant_under_random_ops(ops, capacity):
    """Pops always return pushes in order; occupancy never exceeds capacity."""
    ring = RingBuffer(capacity=capacity)
    pushed = []
    popped = []
    counter = 0
    for is_push, _ in ops:
        if is_push:
            if ring.is_full():
                with pytest.raises(BufferFull):
                    ring.push(rec(counter), counter)
            else:
                ring.push(rec(counter), counter)
                pushed.append(counter)
                counter += 1
        else:
            if not ring.is_empty():
                popped.append(ring.pop().produced_at)
        assert len(ring) <= capacity
    assert popped == pushed[:len(popped)]
    assert ring.produced_total == len(pushed)
    assert ring.consumed_total == len(popped)


# ---------------------------------------------------------------------------
# Batched push/pop (hot-path API used by the MVE runtime)
# ---------------------------------------------------------------------------


def test_push_many_preserves_fifo_and_sequences():
    ring = RingBuffer(capacity=8)
    ring.push(rec(0), 0)
    entries = ring.push_many([rec(1), rec(2), rec(3)], produced_at=7)
    assert [e.sequence for e in entries] == [1, 2, 3]
    assert all(e.produced_at == 7 for e in entries)
    out = [ring.pop() for _ in range(4)]
    assert [e.payload.data for e in out] == [rec(i).data for i in range(4)]
    assert ring.produced_total == 4
    assert ring.high_watermark == 4


def test_push_many_is_atomic_when_batch_does_not_fit():
    ring = RingBuffer(capacity=4)
    ring.push(rec(0), 0)
    ring.push(rec(1), 0)
    with pytest.raises(BufferFull):
        ring.push_many([rec(2), rec(3), rec(4)], produced_at=0)
    # Nothing was pushed: the batch either fits entirely or not at all.
    assert len(ring) == 2
    assert ring.produced_total == 2
    ring.push_many([rec(2), rec(3)], produced_at=0)
    assert len(ring) == 4


def test_push_many_empty_batch_is_a_noop():
    ring = RingBuffer(capacity=1)
    ring.push(rec(0), 0)
    assert ring.push_many([], produced_at=0) == []
    assert ring.produced_total == 1


def test_free_slots_tracks_occupancy():
    ring = RingBuffer(capacity=3)
    assert ring.free_slots() == 3
    ring.push(rec(0), 0)
    ring.push(rec(1), 0)
    assert ring.free_slots() == 1
    ring.pop()
    assert ring.free_slots() == 2


def test_pop_many_returns_oldest_in_order():
    ring = RingBuffer(capacity=8)
    for i in range(5):
        ring.push(rec(i), i)
    out = ring.pop_many(3)
    assert [e.produced_at for e in out] == [0, 1, 2]
    assert ring.consumed_total == 3
    assert len(ring) == 2


def test_pop_many_more_than_held_raises_with_counts():
    ring = RingBuffer(capacity=8)
    ring.push(rec(0), 0)
    with pytest.raises(SimulationError, match=r"pop_many\(3\).*holding 1"):
        ring.pop_many(3)
    assert len(ring) == 1  # nothing consumed on failure


@given(st.lists(st.integers(0, 6), max_size=60), st.integers(1, 16))
def test_batched_ops_match_singleton_ops(batch_sizes, capacity):
    """push_many/pop_many observe the same FIFO state as push/pop loops."""
    batched = RingBuffer(capacity=capacity)
    naive = RingBuffer(capacity=capacity)
    counter = 0
    for size in batch_sizes:
        payloads = [rec(counter + i) for i in range(size)]
        fits = size <= batched.free_slots()
        if fits:
            batched.push_many(payloads, produced_at=counter)
            for payload in payloads:
                naive.push(payload, produced_at=counter)
            counter += size
        else:
            with pytest.raises(BufferFull):
                batched.push_many(payloads, produced_at=counter)
            drain = min(size, len(batched))
            if drain:
                popped = batched.pop_many(drain)
                assert [e.payload.data for e in popped] == \
                    [naive.pop().payload.data for _ in range(drain)]
        assert len(batched) == len(naive)
        assert batched.produced_total == naive.produced_total
        assert batched.consumed_total == naive.consumed_total
        assert batched.high_watermark == naive.high_watermark

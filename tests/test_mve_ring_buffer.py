"""Unit and property tests for the MVE ring buffer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.mve import ControlEvent, ControlKind, RingBuffer
from repro.mve.ring_buffer import BufferFull
from repro.syscalls.model import write_record


def rec(i):
    return write_record(4, f"payload-{i}".encode())


def test_push_pop_fifo():
    ring = RingBuffer(capacity=8)
    for i in range(5):
        ring.push(rec(i), produced_at=i * 10)
    out = [ring.pop() for _ in range(5)]
    assert [e.payload.data for e in out] == [rec(i).data for i in range(5)]
    assert [e.produced_at for e in out] == [0, 10, 20, 30, 40]


def test_push_when_full_raises():
    ring = RingBuffer(capacity=2)
    ring.push(rec(0), 0)
    ring.push(rec(1), 0)
    assert ring.is_full()
    with pytest.raises(BufferFull):
        ring.push(rec(2), 0)


def test_pop_frees_slot():
    ring = RingBuffer(capacity=1)
    ring.push(rec(0), 0)
    ring.pop()
    ring.push(rec(1), 0)  # must not raise
    assert len(ring) == 1


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        RingBuffer(capacity=4).pop()


def test_capacity_must_be_positive():
    with pytest.raises(SimulationError):
        RingBuffer(capacity=0)


def test_peek_does_not_consume():
    ring = RingBuffer(capacity=4)
    ring.push(rec(0), 0)
    ring.push(rec(1), 0)
    assert ring.peek(0).payload.data == rec(0).data
    assert ring.peek(1).payload.data == rec(1).data
    assert ring.peek(2) is None
    assert len(ring) == 2


def test_sequence_numbers_are_global():
    ring = RingBuffer(capacity=2)
    ring.push(rec(0), 0)
    ring.pop()
    entry = ring.push(rec(1), 0)
    assert entry.sequence == 1


def test_counters_and_watermark():
    ring = RingBuffer(capacity=4)
    for i in range(3):
        ring.push(rec(i), 0)
    ring.pop()
    assert ring.produced_total == 3
    assert ring.consumed_total == 1
    assert ring.high_watermark == 3


def test_clear_counts_as_consumption():
    ring = RingBuffer(capacity=4)
    for i in range(3):
        ring.push(rec(i), 0)
    ring.clear()
    assert ring.is_empty()
    assert ring.consumed_total == 3


def test_control_events_flow_through():
    ring = RingBuffer(capacity=4)
    ring.push(rec(0), 0)
    ring.push(ControlEvent(ControlKind.PROMOTE), 5)
    ring.pop()
    event = ring.pop().payload
    assert isinstance(event, ControlEvent)
    assert event.kind is ControlKind.PROMOTE
    assert "promote" in event.describe()


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 100)), max_size=200),
       st.integers(1, 16))
def test_fifo_invariant_under_random_ops(ops, capacity):
    """Pops always return pushes in order; occupancy never exceeds capacity."""
    ring = RingBuffer(capacity=capacity)
    pushed = []
    popped = []
    counter = 0
    for is_push, _ in ops:
        if is_push:
            if ring.is_full():
                with pytest.raises(BufferFull):
                    ring.push(rec(counter), counter)
            else:
                ring.push(rec(counter), counter)
                pushed.append(counter)
                counter += 1
        else:
            if not ring.is_empty():
                popped.append(ring.pop().produced_at)
        assert len(ring) <= capacity
    assert popped == pushed[:len(popped)]
    assert ring.produced_total == len(pushed)
    assert ring.consumed_total == len(popped)

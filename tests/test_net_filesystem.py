"""Unit tests for the virtual filesystem."""

import pytest

from repro.errors import FileNotFound, KernelError
from repro.net import VirtualFilesystem


@pytest.fixture
def fs():
    return VirtualFilesystem()


def test_write_read_round_trip(fs):
    fs.write_file("/motd", b"welcome")
    assert fs.read_file("/motd") == b"welcome"
    assert fs.exists("/motd")
    assert fs.size("/motd") == 7


def test_paths_are_normalised(fs):
    fs.write_file("data.bin", b"x")
    assert fs.read_file("/data.bin") == b"x"
    assert fs.read_file("//data.bin") == b"x"


def test_overwrite_replaces_contents(fs):
    fs.write_file("/f", b"old")
    fs.write_file("/f", b"new")
    assert fs.read_file("/f") == b"new"


def test_append_creates_then_extends(fs):
    fs.append_file("/log", b"a")
    fs.append_file("/log", b"b")
    assert fs.read_file("/log") == b"ab"


def test_read_missing_file_raises(fs):
    with pytest.raises(FileNotFound):
        fs.read_file("/nope")


def test_unlink_removes_file(fs):
    fs.write_file("/f", b"x")
    fs.unlink("/f")
    assert not fs.exists("/f")
    with pytest.raises(FileNotFound):
        fs.unlink("/f")


def test_rename_moves_contents(fs):
    fs.write_file("/src", b"payload")
    fs.rename("/src", "/dst")
    assert not fs.exists("/src")
    assert fs.read_file("/dst") == b"payload"


def test_rename_missing_raises(fs):
    with pytest.raises(FileNotFound):
        fs.rename("/a", "/b")


def test_mkdir_and_listdir(fs):
    fs.mkdir("/pub")
    fs.write_file("/pub/a.txt", b"1")
    fs.write_file("/pub/b.txt", b"2")
    fs.mkdir("/pub/sub")
    assert fs.listdir("/pub") == ["a.txt", "b.txt", "sub"]
    assert fs.listdir("/") == ["pub"]


def test_mkdir_requires_parent(fs):
    with pytest.raises(FileNotFound):
        fs.mkdir("/a/b")


def test_mkdir_duplicate_raises(fs):
    fs.mkdir("/d")
    with pytest.raises(KernelError):
        fs.mkdir("/d")


def test_write_requires_parent_dir(fs):
    with pytest.raises(FileNotFound):
        fs.write_file("/missing/f", b"x")


def test_rmdir_only_when_empty(fs):
    fs.mkdir("/d")
    fs.write_file("/d/f", b"x")
    with pytest.raises(KernelError, match="not empty"):
        fs.rmdir("/d")
    fs.unlink("/d/f")
    fs.rmdir("/d")
    assert not fs.is_dir("/d")


def test_rmdir_root_forbidden(fs):
    with pytest.raises(KernelError):
        fs.rmdir("/")


def test_listdir_missing_raises(fs):
    with pytest.raises(FileNotFound):
        fs.listdir("/nope")

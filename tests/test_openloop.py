"""Tests for the open-loop workload engine (repro.workloads.openloop).

The property tests pin the three guarantees every downstream consumer
(the scenario driver, the fleet's --openloop mode, the perf gauges)
leans on: arrival streams are a deterministic pure function of the
seed, arrival times are strictly increasing at the offered rate, and
the flyweight pool's live-object count is bounded by the connection
count no matter how large the logical population is.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos.injector import ChaosInjector, chaos_active
from repro.chaos.plan import Fault, FaultPlan, at_time, on_call
from repro.sim.engine import SECOND
from repro.sim.rng import RngStreams
from repro.workloads.arrivals import (
    MmppArrivals,
    PoissonArrivals,
    arrival_problems,
    build_arrivals,
)
from repro.workloads.keyspace import (
    UniformKeys,
    ZipfKeys,
    build_keys,
    key_problems,
)
from repro.workloads.openloop import (
    LoadSpec,
    OpenLoopGenerator,
    format_request,
    spec_problems,
)
from repro.workloads.pool import FlyweightPool

seeds = st.integers(min_value=0, max_value=2**31)


def _rng(seed, name="t"):
    return RngStreams(seed).stream(name)


# -- arrivals -----------------------------------------------------------------

class TestArrivalProperties:
    @given(seed=seeds, rate=st.sampled_from([50.0, 1000.0, 25_000.0]))
    @settings(max_examples=25, deadline=None)
    def test_poisson_deterministic_and_increasing(self, seed, rate):
        first = list(PoissonArrivals(rate).times(_rng(seed), 300))
        again = list(PoissonArrivals(rate).times(_rng(seed), 300))
        assert first == again
        assert all(b > a for a, b in zip(first, first[1:]))
        assert all(isinstance(t, int) and t >= 1 for t in first)

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_mmpp_deterministic_and_increasing(self, seed):
        mmpp = MmppArrivals(2000.0, 20_000.0)
        first = list(mmpp.times(_rng(seed), 400))
        again = list(mmpp.times(_rng(seed), 400))
        assert first == again
        assert all(b > a for a, b in zip(first, first[1:]))

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_poisson_empirical_rate_within_tolerance(self, seed):
        rate = 4000.0
        times = list(PoissonArrivals(rate).times(_rng(seed), 2000))
        empirical = len(times) * SECOND / times[-1]
        # 2000 exponential gaps: the mean estimator's sigma is ~2.2%,
        # so +/-10% is a >4-sigma band — loose enough to never flake,
        # tight enough to catch a units or off-by-rate bug.
        assert rate * 0.9 <= empirical <= rate * 1.1

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_mmpp_rate_between_calm_and_burst(self, seed):
        mmpp = MmppArrivals(1000.0, 16_000.0)
        times = list(mmpp.times(_rng(seed), 2000))
        empirical = len(times) * SECOND / times[-1]
        assert 1000.0 * 0.9 <= empirical <= 16_000.0 * 1.1

    def test_start_ns_offsets_the_stream(self):
        base = list(PoissonArrivals(100.0).times(_rng(3), 50))
        offset = list(PoissonArrivals(100.0).times(_rng(3), 50,
                                                   start_ns=7_000))
        assert offset == [t + 7_000 for t in base]

    def test_arrival_problems_vocabulary(self):
        assert arrival_problems({"process": "poisson",
                                 "rate_per_sec": 10.0}) == []
        assert arrival_problems({"process": "uniform?",
                                 "rate_per_sec": 10.0})
        assert arrival_problems({"process": "poisson",
                                 "rate_per_sec": 0})
        assert arrival_problems({"process": "mmpp", "rate_per_sec": 5.0,
                                 "burst_rate_per_sec": -1})
        assert arrival_problems({"process": "mmpp", "rate_per_sec": 5.0,
                                 "burst_rate_per_sec": 50.0,
                                 "dwell_ns": 0})

    def test_build_arrivals_rejects_bad_payload(self):
        with pytest.raises(ValueError):
            build_arrivals({"process": "bogus"})


# -- keyspace -----------------------------------------------------------------

class TestKeyspace:
    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_samples_stay_in_range(self, seed):
        uniform, zipf = UniformKeys(500), ZipfKeys(500, exponent=1.2)
        u_rng, z_rng = _rng(seed, "u"), _rng(seed, "z")
        for _ in range(200):
            assert 0 <= uniform.sample(u_rng) < 500
            assert 0 <= zipf.sample(z_rng) < 500

    def test_zipf_is_head_heavy(self):
        zipf = ZipfKeys(10_000, exponent=1.1)
        rng = _rng(1)
        draws = [zipf.sample(rng) for _ in range(4000)]
        head = sum(1 for k in draws if k < 100)
        # Under zipf(1.1) the first 100 of 10,000 ranks carry well over
        # a third of the mass; uniform would put 1% there.
        assert head / len(draws) > 0.3

    def test_key_problems_vocabulary(self):
        assert key_problems({"distribution": "uniform",
                             "keyspace": 10}) == []
        assert key_problems({"distribution": "zipfian", "keyspace": 10})
        assert key_problems({"distribution": "zipf", "keyspace": 10,
                             "exponent": 0.0})
        assert key_problems({"distribution": "zipf", "keyspace": 10,
                             "exponent": 4.5})
        assert key_problems({"distribution": "uniform", "keyspace": 0})

    def test_build_keys_rejects_bad_payload(self):
        with pytest.raises(ValueError):
            build_keys({"distribution": "zipf", "keyspace": 10,
                        "exponent": 99.0})


# -- the flyweight pool -------------------------------------------------------

class TestFlyweightPool:
    @given(seed=seeds,
           population=st.sampled_from([64, 10_000, 1_000_000]),
           connections=st.sampled_from([1, 4, 32]))
    @settings(max_examples=25, deadline=None)
    def test_memory_bound_is_connections(self, seed, population,
                                         connections):
        # The headline flyweight property: millions of logical clients
        # cost O(connections) live objects, before and after any number
        # of assignments (= in-flight bound + churn never leaks).
        pool = FlyweightPool(population, connections, _rng(seed))
        assert pool.tracked_objects() == connections
        for at_ns in range(0, 400_000, 1_000):
            send_ns, slot, client = pool.assign(at_ns)
            assert send_ns >= at_ns
            assert 0 <= slot < connections
            assert 0 <= client < population
            assert pool.tracked_objects() <= connections
        assert pool.tracked_objects() == connections

    def test_churn_counters(self):
        pool = FlyweightPool(1_000_000, 2, _rng(5), session_requests=3,
                             reconnect_ns=1_000)
        for at_ns in range(0, 100_000, 100):
            pool.assign(at_ns)
        assert pool.sessions_started > 2  # slots churned past session 1
        # Every reconnect closed a started session; at most one session
        # per slot is still open (a session can end on its last assign
        # without the replacement having started yet).
        assert 0 <= pool.sessions_started - pool.reconnects <= 2
        assert pool.deferred_sends > 0  # reconnect windows deferred sends

    def test_degenerate_shapes_rejected(self):
        with pytest.raises(ValueError):
            FlyweightPool(10, 0, _rng(1))
        with pytest.raises(ValueError):
            FlyweightPool(3, 4, _rng(1))


# -- the LoadSpec DSL ---------------------------------------------------------

class TestLoadSpec:
    def test_default_spec_is_clean(self):
        assert LoadSpec().problems() == []

    def test_round_trips_through_dict(self):
        spec = LoadSpec(name="rt", population=99, connections=3,
                        requests=17)
        assert LoadSpec.from_dict(spec.as_dict()) == spec

    def test_from_dict_ignores_unknown_fields(self):
        spec = LoadSpec.from_dict({"name": "x", "schema_version": 9})
        assert spec.name == "x"

    def test_problem_categories_map_to_lint_codes(self):
        bad = LoadSpec(arrival={"process": "nope", "rate_per_sec": -1},
                       keys={"distribution": "zipf", "keyspace": 10,
                             "exponent": 7.0},
                       population=2, connections=8, requests=0)
        categories = {category for category, _ in spec_problems(bad)}
        assert categories == {"arrival-process", "arrival-rate",
                              "zipf-exponent", "churn", "shape"}

    def test_generator_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            OpenLoopGenerator(LoadSpec(requests=0), seed=1)


# -- the generator ------------------------------------------------------------

class TestOpenLoopGenerator:
    def test_deterministic_per_seed(self):
        spec = LoadSpec(requests=400, connections=8, population=10_000)
        first = list(OpenLoopGenerator(spec, seed=9).events())
        again = list(OpenLoopGenerator(spec, seed=9).events())
        other = list(OpenLoopGenerator(spec, seed=10).events())
        assert first == again
        assert first != other

    def test_events_sorted_and_complete(self):
        # High rate + slow reconnects: arrivals regularly land on a
        # slot mid-reconnect, so sends get deferred and reordered.
        spec = LoadSpec(requests=500, connections=4, population=1_000,
                        session_requests=5, reconnect_ns=1_000_000,
                        arrival={"process": "poisson",
                                 "rate_per_sec": 50_000.0})
        generator = OpenLoopGenerator(spec, seed=2)
        events = list(generator.events())
        assert len(events) == 500
        assert generator.offered == 500
        sends = [event.at_ns for event in events]
        assert sends == sorted(sends)
        assert generator.pool.deferred_sends > 0  # reorder heap exercised
        assert {event.seq for event in events} == set(range(500))

    def test_shared_stream_name_shares_arrival_skeleton(self):
        spec = LoadSpec(requests=300)
        a = list(OpenLoopGenerator(spec, 4, stream="cellpair").events())
        b = list(OpenLoopGenerator(spec, 4, stream="cellpair").events())
        c = list(OpenLoopGenerator(spec, 4, stream="other").events())
        assert a == b
        assert [e.at_ns for e in a] != [e.at_ns for e in c]

    def test_chaos_drop_swallows_arrivals(self):
        spec = LoadSpec(requests=100)
        # at-time(0) stays eligible on every call, so count=5 swallows
        # the first five arrivals (on-call matches one exact index).
        plan = FaultPlan("p", (
            Fault("openloop.arrival", "drop", at_time(0, count=5)),))
        with chaos_active(ChaosInjector(plan)):
            generator = OpenLoopGenerator(spec, seed=1)
            events = list(generator.events())
        assert generator.dropped == 5
        assert len(events) == 95

    def test_chaos_burst_multiplies_arrivals(self):
        spec = LoadSpec(requests=100)
        plan = FaultPlan("p", (
            Fault("openloop.arrival", "burst", on_call(10),
                  param={"extra": 4}),))
        with chaos_active(ChaosInjector(plan)):
            generator = OpenLoopGenerator(spec, seed=1)
            events = list(generator.events())
        assert generator.bursts == 1
        assert generator.offered == 104
        assert len(events) == 104

    def test_format_request_protocols(self):
        spec = LoadSpec(requests=40)
        events = list(OpenLoopGenerator(spec, seed=6).events())
        read = next(e for e in events if e.is_read)
        write = next(e for e in events if not e.is_read)
        assert format_request(read, "kvstore", "v").startswith(b"GET ol-")
        assert format_request(write, "kvstore", "v").startswith(b"PUT ol-")
        assert format_request(write, "redis", "v").startswith(b"SET ol-")
        assert b"\r\nvv\r\n" in format_request(write, "memcached", "vv")
        with pytest.raises(ValueError):
            format_request(read, "ftp", "v")


# -- the scenario driver + report --------------------------------------------

@pytest.fixture(scope="module")
def quick_report():
    from repro.workloads.openloop_scenarios import run_openloop_scenario
    return run_openloop_scenario("kvstore", seed=1, quick=True)


class TestOpenLoopScenario:
    def test_report_is_schema_valid(self, quick_report):
        from repro.workloads.openloop_scenarios import (
            validate_openloop_report)
        assert validate_openloop_report(quick_report) == []

    def test_contrast_checks_hold(self, quick_report):
        assert {check["check"]: check["ok"]
                for check in quick_report["checks"]} == {
            "closed-loop-understates-restart-p99": True,
            "restart-breaches-p99-budget": True,
            "mvedsua-within-p99-budget": True,
            "availability": True,
            "no-dropped-arrivals": True,
        }
        assert quick_report["ok"] is True

    def test_identical_arrival_skeleton_across_cells(self, quick_report):
        rows = quick_report["cells"]
        # All six cells consumed the same arrival stream: same offered
        # count, same request count, nothing dropped anywhere.
        assert len({row["offered"] for row in rows}) == 1
        assert len({row["requests"] for row in rows}) == 1
        assert all(row["dropped"] == 0 for row in rows)

    def test_flyweight_bound_survives_the_full_stack(self, quick_report):
        for row in quick_report["cells"]:
            assert row["tracked_objects"] <= \
                quick_report["spec"]["connections"]
            assert row["population"] == 1_000_000

    def test_workers_report_is_byte_identical(self, quick_report):
        from repro.workloads.openloop_scenarios import (
            run_openloop_scenario)
        parallel = run_openloop_scenario("kvstore", seed=1, quick=True,
                                         workers=2)
        assert json.dumps(parallel, sort_keys=False) == \
            json.dumps(quick_report, sort_keys=False)

    def test_validator_catches_flyweight_breach(self, quick_report):
        from repro.workloads.openloop_scenarios import (
            validate_openloop_report)
        broken = json.loads(json.dumps(quick_report))
        broken["cells"][0]["tracked_objects"] = 10_000
        assert any("flyweight" in problem
                   for problem in validate_openloop_report(broken))

    def test_validator_catches_schema_drift(self, quick_report):
        from repro.workloads.openloop_scenarios import (
            validate_openloop_report)
        broken = json.loads(json.dumps(quick_report))
        broken["schema"] = "repro-openloop/0"
        assert validate_openloop_report(broken)

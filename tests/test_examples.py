"""Every example script must run to completion (guards against rot)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples")
    .glob("*.py"))


def test_all_examples_present():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run([sys.executable, str(script)],
                            capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # examples narrate what they do


def test_quickstart_shows_the_lifecycle():
    quickstart = next(p for p in EXAMPLES if p.name == "quickstart.py")
    result = subprocess.run([sys.executable, str(quickstart)],
                            capture_output=True, text=True, timeout=120)
    out = result.stdout
    assert "single-leader stage" in out
    assert "update requested" in out
    assert "promoted" in out
    assert "update succeeded: True" in out

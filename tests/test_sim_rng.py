"""Unit tests for deterministic named RNG streams."""

from repro.sim import RngStreams


def test_same_name_same_stream_object():
    streams = RngStreams(42)
    assert streams.stream("memtier") is streams.stream("memtier")


def test_same_seed_reproduces_sequences():
    a = RngStreams(42).stream("memtier")
    b = RngStreams(42).stream("memtier")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RngStreams(42)
    first = streams.stream("alpha").random()
    # Drawing from another stream must not perturb the first.
    streams_2 = RngStreams(42)
    streams_2.stream("beta").random()
    assert streams_2.stream("alpha").random() == first


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random()
    b = RngStreams(2).stream("x").random()
    assert a != b


def test_reseed_replaces_stream_deterministically():
    streams = RngStreams(7)
    first_try = streams.reseed("retry", salt=1).random()
    second_try = streams.reseed("retry", salt=2).random()
    assert first_try != second_try
    # Replaying the same salt replays the same sequence.
    assert RngStreams(7).reseed("retry", salt=1).random() == first_try

"""The ``python -m repro trace`` CLI and its companion scenarios."""

import json

import pytest

from repro import __main__ as repro_main
from repro.obs import TRACE_SCENARIOS, run_trace_scenario, validate_trace_file
from repro.obs.cli import trace_main


def test_trace_scenarios_cover_the_experiments():
    assert set(TRACE_SCENARIOS) == {"fig6", "fig7", "table1", "table2",
                                    "faults"}


def test_run_trace_scenario_unknown_name():
    with pytest.raises(KeyError, match="unknown trace scenario"):
        run_trace_scenario("nope")


def test_trace_main_writes_valid_jsonl(tmp_path, capsys):
    out = tmp_path / "fig7.jsonl"
    code = trace_main(["fig7", "--quick", "--out", str(out), "--check"])
    assert code == 0
    assert validate_trace_file(str(out)) == []

    stdout = capsys.readouterr().out
    assert "repro trace fig7" in stdout
    assert "schema ok" in stdout
    # The tiny ring forces back-pressure; stalls must be on record.
    kinds = set()
    with open(out) as handle:
        for line in list(handle)[1:-1]:
            kinds.add(json.loads(line)["kind"])
    assert {"syscall", "ring.publish", "ring.replay", "ring.stall",
            "divergence.check"} <= kinds


def test_trace_main_faults_prints_forensics(tmp_path, capsys):
    out = tmp_path / "faults.jsonl"
    assert trace_main(["faults", "--quick", "--out", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "forensics bundle 0:" in stdout
    assert "expected:" in stdout and "issued:" in stdout


def test_trace_main_check_rejects_corrupt_file(tmp_path, capsys, monkeypatch):
    out = tmp_path / "bad.jsonl"
    monkeypatch.chdir(tmp_path)
    code = trace_main(["fig7", "--quick", "--out", str(out), "--check"])
    assert code == 0
    out.write_text('{"schema": "bogus/1"}\n')
    from repro.obs.trace import validate_trace_file as check
    assert check(str(out)) != []


def test_trace_main_respects_last_k(tmp_path, capsys):
    out = tmp_path / "faults.jsonl"
    assert trace_main(["faults", "--quick", "--out", str(out),
                       "--last-k", "2"]) == 0
    stdout = capsys.readouterr().out
    assert "last 2 records kept" in stdout


def test_main_dispatches_trace_subcommand(tmp_path, capsys):
    out = tmp_path / "t.jsonl"
    code = repro_main.main(["trace", "fig7", "--quick", "--out", str(out)])
    assert code == 0
    assert out.exists()


def test_run_trace_scenario_fig6_quick_has_dsu_lifecycle():
    tracer = run_trace_scenario("fig6", quick=True)
    kinds = set(tracer.kind_tally())
    assert {"syscall", "ring.publish", "ring.replay", "divergence.check",
            "dsu.request", "dsu.quiesce", "dsu.xform", "dsu.applied",
            "control.promote"} <= kinds
    snapshot = tracer.metrics.snapshot()
    assert snapshot["dsu.quiescence_wait_ns"]["count"] >= 1
    assert snapshot["rules.dispatch_hits"]["value"] >= 0

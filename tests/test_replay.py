"""Syscall-stream record/replay (``repro-stream/1``) and parallel
campaign execution: stream round-trips, offline divergence forensics,
byte-identical sharded reports, and the perf ``--diff`` regression
gate."""

import json

import pytest

from repro.chaos.campaign import default_grid, probe_site_calls, run_campaign
from repro.chaos.cli import chaos_main
from repro.chaos.scenarios import run_kv_update_scenario
from repro.errors import SimulationError
from repro.obs.cli import trace_main
from repro.perf.diff import diff_bench
from repro.perf.harness import (SCHEMA, WALL_CLOCK_KEYS, run_scenarios,
                                to_bench_dict, validate_bench)
from repro.replay.cli import replay_main
from repro.replay.engine import replay_file
from repro.replay.parallel import resolve_workers, shard_round_robin
from repro.replay.recorder import StreamRecorder, current_recorder, recording
from repro.replay.stream import StreamError, read_stream, validate_stream_file


@pytest.fixture(scope="module")
def kv_stream(tmp_path_factory):
    """A recorded kvstore update lifecycle (the chaos golden run)."""
    path = tmp_path_factory.mktemp("streams") / "kv.jsonl"
    recorder = StreamRecorder(scenario="kvstore")
    with recording(recorder):
        run_kv_update_scenario()
    recorder.write(str(path))
    return str(path)


# ---------------------------------------------------------------------------
# The stream artifact
# ---------------------------------------------------------------------------


class TestStreamArtifact:
    def test_recorded_stream_round_trips(self, kv_stream):
        stream = read_stream(kv_stream)
        assert stream.app == "kvstore"
        assert stream.initial_version == "1.0"
        assert stream.record_count() > 0
        assert len(stream.iterations()) > 0
        # The update lifecycle leaves at least one control entry.
        assert any(e["type"] == "control" for e in stream.entries)
        assert validate_stream_file(kv_stream) == []

    def test_truncated_stream_is_rejected(self, kv_stream, tmp_path):
        lines = open(kv_stream, encoding="utf-8").read().splitlines()
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
        with pytest.raises(StreamError, match="footer"):
            read_stream(str(truncated))
        assert validate_stream_file(str(truncated)) != []

    def test_corrupt_length_prefix_is_rejected(self, kv_stream, tmp_path):
        lines = open(kv_stream, encoding="utf-8").read().splitlines()
        lines[1] = "zzzzzzzz " + lines[1].split(" ", 1)[1]
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(StreamError, match="length prefix"):
            read_stream(str(corrupt))


# ---------------------------------------------------------------------------
# The recorder
# ---------------------------------------------------------------------------


def _fake_runtime(version="1.0"):
    class Obj:
        pass
    runtime = Obj()
    runtime.profile = Obj()
    runtime.profile.name = "kvstore"
    runtime.kernel = Obj()
    runtime.kernel.chaos = None
    runtime.leader = Obj()
    runtime.leader.version_name = version
    runtime.leader.server = Obj()
    runtime.ring = Obj()
    runtime.ring.capacity = 64
    return runtime


class TestRecorder:
    def test_disabled_by_default_and_costs_nothing(self):
        assert current_recorder() is None
        before = StreamRecorder.recorded_total
        run_kv_update_scenario()
        assert StreamRecorder.recorded_total == before

    def test_first_runtime_wins_the_claim(self):
        recorder = StreamRecorder(scenario="t")
        first, second = _fake_runtime(), _fake_runtime("2.0")
        assert recorder.claim(first) is True
        assert recorder.claim(second) is False
        # Idempotent for the holder.
        assert recorder.claim(first) is True
        assert recorder.header["initial_version"] == "1.0"

    def test_unclaimed_recorder_refuses_to_write(self, tmp_path):
        with pytest.raises(ValueError, match="never claimed"):
            StreamRecorder().write(str(tmp_path / "empty.jsonl"))


# ---------------------------------------------------------------------------
# Offline replay
# ---------------------------------------------------------------------------


class TestReplay:
    def test_same_version_replays_with_zero_divergences(self, kv_stream):
        report = replay_file(kv_stream)
        assert report.ok
        assert report.outcome == "match"
        assert report.iterations_replayed == report.iterations
        assert report.records_replayed > 0
        assert report.as_dict()["schema"] == "repro-replay/1"

    def test_newer_version_replays_through_the_rules(self, kv_stream):
        report = replay_file(kv_stream, against="2.0")
        assert report.ok
        assert report.iterations_replayed == report.iterations

    def test_buggy_candidate_diverges_with_forensics(self, kv_stream):
        report = replay_file(kv_stream, against="2.0-buggy")
        assert report.outcome == "divergence"
        assert not report.ok
        assert report.divergence["detail"]
        assert report.forensics is not None
        bundle = report.forensics.as_dict()
        assert bundle["reason"]
        assert bundle["version"] == "2.0-buggy"
        # The bundle carries the records around the mismatch.
        assert bundle["expected_records"]
        assert report.forensics.summary()

    def test_cli_exit_codes(self, kv_stream, tmp_path, capsys):
        assert replay_main([kv_stream]) == 0
        assert replay_main([kv_stream, "--against", "2.0-buggy"]) == 1
        assert replay_main([str(tmp_path / "missing.jsonl")]) == 2
        assert replay_main([kv_stream, "--validate"]) == 0
        out = capsys.readouterr().out
        assert "divergence" in out

    def test_cli_writes_json_report(self, kv_stream, tmp_path, capsys):
        out = tmp_path / "replay.json"
        assert replay_main([kv_stream, "--json", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-replay/1"
        assert payload["outcome"] == "match"


class TestTraceRecordRoundTrip:
    def test_fig6_records_and_replays_clean(self, tmp_path, capsys):
        stream = tmp_path / "STREAM_fig6.jsonl"
        trace = tmp_path / "TRACE_fig6.jsonl"
        assert trace_main(["fig6", "--quick", "--out", str(trace),
                           "--record", str(stream)]) == 0
        assert "wrote stream" in capsys.readouterr().out
        assert validate_stream_file(str(stream)) == []
        report = replay_file(str(stream))
        assert report.ok
        # The recorded update promotes 2.0.0 -> 2.0.1 mid-stream.
        assert report.final_version_recorded == "2.0.1"
        # The newer version also replays clean, through the rules.
        follower = replay_file(str(stream), against="2.0.1")
        assert follower.ok
        assert follower.rules_fired > 0


# ---------------------------------------------------------------------------
# Parallel campaign execution
# ---------------------------------------------------------------------------


class TestParallelCampaign:
    def test_sharded_report_is_byte_identical_to_serial(self):
        serial = run_campaign("kvstore", seed=1, max_cells=16)
        parallel = run_campaign("kvstore", seed=1, max_cells=16, workers=2)
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)

    def test_oncall_cap_widens_and_narrows_the_grid(self):
        calls = probe_site_calls()
        narrow = default_grid(calls, 1, oncall_cap=2)
        default = default_grid(calls, 1)
        assert len(narrow) < len(default)

    def test_campaign_validates_its_knobs(self):
        with pytest.raises(SimulationError, match="workers"):
            run_campaign("kvstore", max_cells=2, workers=0)
        with pytest.raises(SimulationError, match="oncall-cap"):
            run_campaign("kvstore", max_cells=2, oncall_cap=0)

    def test_cli_workers_and_record(self, tmp_path, capsys):
        report_path = tmp_path / "chaos.json"
        stream_path = tmp_path / "stream.jsonl"
        code = chaos_main(["kvstore", "--max-cells", "6", "--workers", "2",
                           "--record", str(stream_path),
                           "--report", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 workers" in out
        assert "wrote stream" in out
        assert json.loads(report_path.read_text())["cells"] == 6
        # The recorded golden baseline replays clean.
        assert replay_file(str(stream_path)).ok

    def test_cli_rejects_bad_workers_and_cap(self, capsys):
        with pytest.raises(SystemExit):
            chaos_main(["kvstore", "--workers", "0"])
        with pytest.raises(SystemExit):
            chaos_main(["kvstore", "--oncall-cap", "0"])

    def test_resolve_workers(self):
        assert resolve_workers("auto") >= 1
        assert resolve_workers("3") == 3
        assert resolve_workers(None) >= 1
        for bad in ("0", "-2", "many"):
            with pytest.raises(ValueError):
                resolve_workers(bad)

    def test_shard_round_robin_partitions_everything(self):
        shards = shard_round_robin(7, 3)
        assert sorted(i for shard in shards for i in shard) == list(range(7))
        assert all(shard for shard in shards)
        # More workers than items: no empty shards.
        assert shard_round_robin(2, 8) == [[0], [1]]


# ---------------------------------------------------------------------------
# Parallel perf harness + the --diff regression gate
# ---------------------------------------------------------------------------


def _bench_payload(rate=100.0, gauge=7, ops=10, wall_ms=5):
    return {
        "_meta": {"schema": SCHEMA, "quick": False, "ops": {"s": ops},
                  "python": "3", "workers": 1, "cpu_count": 1,
                  "scenario_order": ["s"]},
        "s": {"wall_s": 1.0, "vreq_per_s": rate, "syscalls_per_s": rate,
              "gauge": gauge, "setup_wall_ms": wall_ms},
    }


class TestPerfParallel:
    def test_sharded_results_match_serial_modulo_wall_clock(self):
        names = ["rules-redis-stream", "rules-vsftpd-stream"]
        serial = run_scenarios(names, ops=60)
        parallel = run_scenarios(names, ops=60, workers=2)

        def gauges(results):
            return [(r.name, r.ops, r.vrequests, r.syscalls, r.extras)
                    for r in results]
        assert gauges(serial) == gauges(parallel)

    def test_bench_meta_records_the_run_shape(self):
        results = run_scenarios(["rules-redis-stream"], ops=40)
        payload = to_bench_dict(results, quick=True, workers=3)
        meta = payload["_meta"]
        assert meta["schema"] == "repro-perf/4"
        assert meta["workers"] == 3
        assert meta["cpu_count"] >= 1
        assert meta["scenario_order"] == ["rules-redis-stream"]
        assert validate_bench(payload) == []

    def test_validate_bench_catches_tampering(self):
        payload = _bench_payload()
        assert validate_bench(payload) == []
        del payload["_meta"]["workers"]
        assert any("workers" in p for p in validate_bench(payload))
        payload["_meta"]["schema"] = "repro-perf/1"
        assert any("schema" in p for p in validate_bench(payload))

    def test_campaign_parallel_scenario_reports_identity(self):
        result = run_scenarios(["chaos-campaign-parallel"], ops=8)[0]
        assert result.extras["reports_identical"] == 1
        assert result.extras["campaign_cells"] == 8
        assert result.extras["campaign_workers"] == 8
        assert result.vrequests == 16


class TestDiffGate:
    def test_identical_payloads_pass(self):
        deltas = diff_bench(_bench_payload(), _bench_payload())
        assert [d.status for d in deltas] == ["ok"]
        assert all(d.ok for d in deltas)

    def test_timing_extras_are_exempt_but_gauges_are_not(self):
        current = _bench_payload(gauge=7, wall_ms=900)
        assert all(d.ok for d in diff_bench(current, _bench_payload()))
        drifted = _bench_payload(gauge=8)
        deltas = diff_bench(drifted, _bench_payload())
        assert deltas[0].status == "gauge-mismatch"
        assert "gauge" in deltas[0].problems[0]

    def test_rate_regression_is_ratio_gated(self):
        ok = diff_bench(_bench_payload(rate=60.0), _bench_payload(rate=100.0))
        assert all(d.ok for d in ok)
        bad = diff_bench(_bench_payload(rate=40.0), _bench_payload(rate=100.0))
        assert bad[0].status == "regression"
        strict = diff_bench(_bench_payload(rate=90.0),
                            _bench_payload(rate=100.0), tolerance=0.05)
        assert strict[0].status == "regression"

    def test_missing_scenario_fails_and_new_passes(self):
        baseline = _bench_payload()
        current = _bench_payload()
        current["extra-scenario"] = dict(current["s"])
        deltas = diff_bench(current, baseline)
        assert {d.name: d.status for d in deltas} \
            == {"s": "ok", "extra-scenario": "new"}
        missing = {k: v for k, v in baseline.items() if k == "_meta"}
        deltas = diff_bench(missing, baseline)
        assert deltas[0].status == "missing"
        assert not deltas[0].ok

    def test_ops_change_skips_the_comparison(self):
        current = _bench_payload(gauge=999, ops=50)
        deltas = diff_bench(current, _bench_payload(gauge=7, ops=10))
        assert deltas[0].status == "ops-changed"
        assert deltas[0].ok

    def test_tolerance_is_validated(self):
        with pytest.raises(ValueError):
            diff_bench(_bench_payload(), _bench_payload(), tolerance=1.5)


def test_wall_clock_keys_are_the_report_rates():
    assert WALL_CLOCK_KEYS == {"wall_s", "vreq_per_s", "syscalls_per_s"}

"""Tests for the native/Kitsune runtime (the non-MVE baseline)."""

import pytest

from repro.dsu import Kitsune
from repro.errors import ServerCrash
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_transforms,
)
from repro.servers.native import NativeRuntime
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES, QUIESCE_NS, ExecutionMode
from repro.workloads import VirtualClient


def deployment(with_kitsune=False):
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["kvstore"],
                            with_kitsune=with_kitsune)
    client = VirtualClient(kernel, server.address)
    return kernel, server, runtime, client


def test_mode_selection():
    _, _, plain, _ = deployment(with_kitsune=False)
    _, _, dsu, _ = deployment(with_kitsune=True)
    assert plain.mode() is ExecutionMode.NATIVE
    assert dsu.mode() is ExecutionMode.KITSUNE


def test_kitsune_build_is_slightly_slower():
    _, _, plain, client_a = deployment(with_kitsune=False)
    _, _, dsu, client_b = deployment(with_kitsune=True)
    client_a.command(plain, b"PUT k v")
    client_b.command(dsu, b"PUT k v")
    assert dsu.cpu.busy_until >= plain.cpu.busy_until


def test_update_requires_dsu_build():
    _, _, runtime, _ = deployment(with_kitsune=False)
    with pytest.raises(ServerCrash, match="non-DSU"):
        runtime.apply_update(Kitsune(kv_transforms()), KVStoreV2(), 0)


def test_update_swaps_version_and_pauses():
    _, server, runtime, client = deployment(with_kitsune=True)
    for index in range(100):
        client.command(runtime, b"PUT key%d v" % index)
    busy_before = runtime.cpu.busy_until
    result = runtime.apply_update(Kitsune(kv_transforms()), KVStoreV2(),
                                  SECOND)
    assert result.ok
    assert server.version.name == "2.0"
    expected_pause = (100 * PROFILES["kvstore"].xform_entry_ns
                      + result.pause_ns - result.pause_ns % 1)  # sanity
    assert runtime.cpu.busy_until >= SECOND + 100 * \
        PROFILES["kvstore"].xform_entry_ns + QUIESCE_NS
    assert runtime.cpu.busy_until > busy_before


def test_requests_after_update_use_new_version():
    _, _, runtime, client = deployment(with_kitsune=True)
    client.command(runtime, b"PUT k v")
    runtime.apply_update(Kitsune(kv_transforms()), KVStoreV2(), SECOND)
    assert client.command(runtime, b"TYPE k", now=2 * SECOND) == \
        b"string\r\n"


def test_requests_queue_behind_the_update_pause():
    _, server, runtime, client = deployment(with_kitsune=True)
    server.heap["table"].update({f"k{i}": "v" for i in range(100_000)})
    runtime.apply_update(Kitsune(kv_transforms()), KVStoreV2(), SECOND)
    # A request arriving mid-pause completes only after it.
    _, done = client.request(runtime, b"GET k0\r\n", now=SECOND + 1)
    assert done >= SECOND + 100_000 * PROFILES["kvstore"].xform_entry_ns
    assert client.latencies_ns[-1] > 100 * 10**6  # waited >100 ms


def test_crash_takes_the_server_down_for_good():
    class CrashV1(KVStoreV1):
        def handle(self, heap, request, session=None, io=None):
            if request.startswith(b"BOOM"):
                raise ServerCrash("bug")
            return super().handle(heap, request, session, io)

    kernel = VirtualKernel()
    server = KVStoreServer(CrashV1())
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["kvstore"])
    client = VirtualClient(kernel, server.address)
    client.command(runtime, b"PUT k v")
    with pytest.raises(ServerCrash):
        client.command(runtime, b"BOOM")
    with pytest.raises(ServerCrash, match="down"):
        client.command(runtime, b"GET k")


def test_completions_recorded_per_iteration():
    _, _, runtime, client = deployment()
    client.command(runtime, b"PUT a 1")
    client.command(runtime, b"GET a")
    requests = sum(count for _, count in runtime.completions)
    assert requests == 2

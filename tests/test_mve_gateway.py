"""Unit tests for the syscall gateways (direct and replay roles)."""

from collections import deque

import pytest

from repro.errors import DivergenceError
from repro.mve.gateway import GatewayRole, SyscallGateway
from repro.net import VirtualKernel
from repro.syscalls.model import Sys, SyscallRecord

ADDR = ("10.0.0.1", 80)


@pytest.fixture
def kernel():
    return VirtualKernel()


@pytest.fixture
def direct(kernel):
    domain = kernel.create_domain()
    return SyscallGateway(kernel, domain, GatewayRole.DIRECT)


def make_replay(kernel, expected):
    domain = kernel.create_domain()
    gateway = SyscallGateway(kernel, domain, GatewayRole.REPLAY)
    queue = deque(expected)
    gateway.expected_source = lambda: queue.popleft() if queue else None
    gateway.begin_iteration()
    return gateway


class TestDirectRole:
    def test_socket_lifecycle_traced(self, kernel, direct):
        listen_fd = direct.listen(ADDR)
        client_domain = kernel.create_domain()
        client_fd = kernel.connect(client_domain, ADDR)
        fd = direct.accept(listen_fd)
        kernel.write(client_domain, client_fd, b"hi")
        assert direct.read(fd) == b"hi"
        direct.write(fd, b"yo")
        direct.close(fd)
        names = [record.name for record in direct.trace.records]
        assert names == [Sys.LISTEN, Sys.ACCEPT, Sys.READ, Sys.WRITE,
                         Sys.CLOSE]
        assert direct.trace.bytes_transferred == 4

    def test_epoll_ctl_is_untraced_kernel_state(self, kernel, direct):
        listen_fd = direct.listen(ADDR)
        epfd = kernel.epoll_create(direct.domain)
        direct.begin_iteration()
        direct.epoll_ctl(epfd, listen_fd, add=True)
        assert direct.trace.records == []

    def test_epoll_wait_records_ready_set(self, kernel, direct):
        listen_fd = direct.listen(ADDR)
        epfd = kernel.epoll_create(direct.domain)
        direct.epoll_ctl(epfd, listen_fd, add=True)
        kernel.connect(kernel.create_domain(), ADDR)
        direct.begin_iteration()
        ready = direct.epoll_wait(epfd)
        assert ready == [listen_fd]
        record = direct.trace.records[0]
        assert record.name is Sys.EPOLL_WAIT
        assert record.result == (listen_fd,)

    def test_fs_ops_traced_and_applied(self, kernel, direct):
        direct.begin_iteration()
        direct.fs_write("/f", b"data")
        assert kernel.fs.read_file("/f") == b"data"
        assert direct.fs_read("/f") == b"data"
        assert direct.fs_stat("/f") == 4
        direct.fs_rename("/f", "/g")
        direct.fs_append("/g", b"+more")
        assert kernel.fs.read_file("/g") == b"data+more"
        direct.fs_unlink("/g")
        assert not kernel.fs.exists("/g")
        assert direct.fs_stat("/g") is None
        names = [r.name for r in direct.trace.records]
        assert Sys.RENAME in names and Sys.UNLINK in names

    def test_fs_dir_ops(self, kernel, direct):
        direct.begin_iteration()
        direct.fs_mkdir("/d")
        assert direct.fs_is_dir("/d")
        assert direct.fs_listdir("/") == ["d"]
        direct.fs_rmdir("/d")
        assert not kernel.fs.is_dir("/d")

    def test_note_request_counts(self, direct):
        direct.begin_iteration()
        direct.note_request()
        direct.note_request(2)
        assert direct.trace.requests_handled == 3


class TestReplayRole:
    def test_read_serves_recorded_data(self, kernel):
        expected = [SyscallRecord(Sys.READ, fd=4, data=b"GET k\r\n",
                                  result=7)]
        gateway = make_replay(kernel, expected)
        assert gateway.read(4) == b"GET k\r\n"
        gateway.finish_iteration()

    def test_matching_write_accepted(self, kernel):
        expected = [SyscallRecord(Sys.WRITE, fd=4, data=b"+OK\r\n",
                                  result=5)]
        gateway = make_replay(kernel, expected)
        assert gateway.write(4, b"+OK\r\n") == 5
        gateway.finish_iteration()

    def test_mismatched_write_data_diverges(self, kernel):
        expected = [SyscallRecord(Sys.WRITE, fd=4, data=b"+OK\r\n")]
        gateway = make_replay(kernel, expected)
        with pytest.raises(DivergenceError, match="mismatch"):
            gateway.write(4, b"-ERR\r\n")

    def test_mismatched_fd_diverges(self, kernel):
        expected = [SyscallRecord(Sys.WRITE, fd=4, data=b"x")]
        gateway = make_replay(kernel, expected)
        with pytest.raises(DivergenceError):
            gateway.write(9, b"x")

    def test_extra_syscall_diverges(self, kernel):
        gateway = make_replay(kernel, [])
        with pytest.raises(DivergenceError, match="extra"):
            gateway.write(4, b"anything")

    def test_missing_syscall_diverges_at_iteration_end(self, kernel):
        expected = [SyscallRecord(Sys.WRITE, fd=4, data=b"x")]
        gateway = make_replay(kernel, expected)
        with pytest.raises(DivergenceError, match="fewer"):
            gateway.finish_iteration()

    def test_accept_returns_recorded_fd(self, kernel):
        expected = [SyscallRecord(Sys.ACCEPT, fd=3, result=7)]
        gateway = make_replay(kernel, expected)
        assert gateway.accept(3) == 7

    def test_listen_returns_recorded_fd(self, kernel):
        expected = [SyscallRecord(Sys.LISTEN, data=b"127.0.0.1:20000",
                                  result=9)]
        gateway = make_replay(kernel, expected)
        assert gateway.listen(("127.0.0.1", 20000)) == 9

    def test_epoll_wait_returns_recorded_ready_set(self, kernel):
        expected = [SyscallRecord(Sys.EPOLL_WAIT, fd=3, result=(5, 6))]
        gateway = make_replay(kernel, expected)
        assert gateway.epoll_wait(3) == [5, 6]

    def test_replay_never_touches_kernel(self, kernel):
        expected = [
            SyscallRecord(Sys.OPEN, data=b"/f", result=0),
            SyscallRecord(Sys.WRITE, fd=-2, data=b"data", result=4),
        ]
        gateway = make_replay(kernel, expected)
        gateway.fs_write("/f", b"data")
        # The virtual fs was NOT modified: the leader already did it.
        assert not kernel.fs.exists("/f")

    def test_replay_fs_read_serves_recorded_content(self, kernel):
        expected = [
            SyscallRecord(Sys.OPEN, data=b"/f", result=0),
            SyscallRecord(Sys.READ, fd=-2, data=b"contents", result=8),
        ]
        gateway = make_replay(kernel, expected)
        assert gateway.fs_read("/f") == b"contents"

    def test_replay_stat_serves_recorded_result(self, kernel):
        expected = [SyscallRecord(Sys.STAT, data=b"/f", result=123)]
        gateway = make_replay(kernel, expected)
        assert gateway.fs_stat("/f") == 123

    def test_epoll_ctl_is_a_noop(self, kernel):
        gateway = make_replay(kernel, [])
        gateway.epoll_ctl(3, 4, add=True)  # must not touch the kernel
        gateway.finish_iteration()

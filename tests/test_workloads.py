"""Tests for workload generators and the FTP client."""

import pytest

from repro.net import VirtualKernel
from repro.servers.native import NativeRuntime
from repro.servers.redis import RedisServer, redis_version
from repro.servers.memcached import MemcachedServer, memcached_version
from repro.servers.vsftpd import VsftpdServer, vsftpd_version
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient
from repro.workloads.ftpclient import FtpClient
from repro.workloads.memtier import FtpBenchSpec, MemtierSpec


class TestMemtierSpec:
    def test_defaults_match_paper(self):
        spec = MemtierSpec()
        assert spec.read_fraction == 0.90
        assert spec.write_fraction == pytest.approx(0.10)
        assert spec.duration_ns == 360 * 10**9

    def test_mix_is_roughly_90_10(self):
        spec = MemtierSpec()
        commands = list(spec.commands(5_000, protocol="redis"))
        reads = sum(1 for c in commands if c.startswith(b"GET"))
        assert 0.88 < reads / len(commands) < 0.92

    def test_generation_is_deterministic(self):
        spec = MemtierSpec()
        first = list(spec.commands(100, seed=7))
        second = list(spec.commands(100, seed=7))
        assert first == second
        assert first != list(spec.commands(100, seed=8))

    def test_redis_commands_run_against_server(self):
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0"))
        server.attach(kernel)
        runtime = NativeRuntime(kernel, server, PROFILES["redis"])
        client = VirtualClient(kernel, server.address)
        for command in MemtierSpec().commands(200, protocol="redis"):
            response, _ = client.request(runtime, command, now=0)
            assert response.endswith(b"\r\n")

    def test_memcached_commands_run_against_server(self):
        kernel = VirtualKernel()
        server = MemcachedServer(memcached_version("1.2.2"))
        server.attach(kernel)
        runtime = NativeRuntime(kernel, server, PROFILES["memcached"])
        client = VirtualClient(kernel, server.address)
        for command in MemtierSpec().commands(200, protocol="memcached"):
            response, _ = client.request(runtime, command, now=0)
            assert response in (b"STORED\r\n", b"END\r\n") \
                or response.startswith(b"VALUE")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            list(MemtierSpec().commands(1, protocol="http"))

    def test_store_growth_saturates_at_keyspace(self):
        spec = MemtierSpec(keyspace=1_000)
        assert spec.expected_store_growth(100) < 1_000
        assert spec.expected_store_growth(10_000_000) == 1_000

    def test_store_growth_monotone(self):
        spec = MemtierSpec()
        values = [spec.expected_store_growth(n)
                  for n in (0, 100, 10_000, 1_000_000)]
        assert values == sorted(values)
        assert values[0] == 0

    # Golden hashes pin the exact byte stream across the refactor onto
    # the shared repro.workloads.keyspace sampler: a drift here silently
    # invalidates every Memtier-calibrated experiment.
    GOLDEN = {
        (0, "redis"):
            "60950f5cacc0a1ea6edbb1b56d8105eb"
            "02c4c6590667564520f769650ec6d75e",
        (0, "memcached"):
            "0467ce2e94229c1680997829867ad2e2"
            "6e4831886e7f27d8b1b206f91ea486c0",
        (7, "redis"):
            "3dda3dcbad0391c11055cb18302db35d"
            "861984024fd5ab7b8415063c8b57e04b",
        (7, "memcached"):
            "347d367bcf4c158b9a9e8ba23520e274"
            "03b8357df5b33b9994ea45d7ee0f3adf",
    }

    @pytest.mark.parametrize("seed,protocol", sorted(GOLDEN))
    def test_command_stream_matches_golden_hash(self, seed, protocol):
        import hashlib
        stream = b"".join(
            MemtierSpec().commands(500, protocol=protocol, seed=seed))
        digest = hashlib.sha256(stream).hexdigest()
        assert digest == self.GOLDEN[(seed, protocol)]


class TestFtpBenchSpec:
    def test_variants(self):
        assert FtpBenchSpec.small().file_size == 5
        assert FtpBenchSpec.large().file_size == 10 * 1024 * 1024
        assert FtpBenchSpec.small().duration_ns == 60 * 10**9

    def test_payload_size_and_determinism(self):
        spec = FtpBenchSpec.small()
        assert len(spec.payload()) == 5
        assert spec.payload() == spec.payload()

    def test_commands_repeat_retr(self):
        commands = FtpBenchSpec.small().commands(3)
        assert commands == [b"RETR bench.bin"] * 3

    def test_bench_loop_against_server(self):
        spec = FtpBenchSpec.small()
        kernel = VirtualKernel()
        kernel.fs.write_file("/" + spec.file_name, spec.payload())
        server = VsftpdServer(vsftpd_version("2.0.5"))
        server.attach(kernel)
        runtime = NativeRuntime(kernel, server, PROFILES["vsftpd-small"])
        client = FtpClient(kernel, server.address)
        client.login(runtime)
        for _ in range(5):
            _, data = client.retr(runtime, spec.file_name)
            assert data == spec.payload()


class TestVirtualClient:
    def test_latencies_recorded(self):
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0"))
        server.attach(kernel)
        runtime = NativeRuntime(kernel, server, PROFILES["redis"])
        client = VirtualClient(kernel, server.address)
        client.command(runtime, b"PING")
        client.command(runtime, b"PING")
        assert len(client.latencies_ns) == 2
        assert client.max_latency_ns() >= max(client.latencies_ns[0], 1)

    def test_max_latency_none_without_requests(self):
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0"))
        server.attach(kernel)
        client = VirtualClient(kernel, server.address)
        assert client.max_latency_ns() is None

    def test_command_appends_crlf(self):
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0"))
        server.attach(kernel)
        runtime = NativeRuntime(kernel, server, PROFILES["redis"])
        client = VirtualClient(kernel, server.address)
        assert client.command(runtime, b"PING") == b"+PONG\r\n"
        assert client.command(runtime, b"PING\r\n") == b"+PONG\r\n"


class TestFtpClientParsing:
    def test_pasv_reply_parsing(self):
        reply = b"227 Entering Passive Mode (127,0,0,1,78,32).\r\n"
        assert FtpClient._parse_data_port(reply) == 78 * 256 + 32

    def test_epsv_reply_parsing(self):
        reply = b"229 Entering Extended Passive Mode (|||20007|).\r\n"
        assert FtpClient._parse_data_port(reply) == 20007

    def test_garbage_reply_rejected(self):
        from repro.errors import KernelError
        with pytest.raises(KernelError):
            FtpClient._parse_data_port(b"500 nope\r\n")

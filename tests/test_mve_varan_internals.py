"""Deeper tests of the MVE runtime's corner cases."""

import pytest

from repro.errors import ServerCrash, SimulationError
from repro.mve import VaranRuntime
from repro.mve.gateway import IterationTrace
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    xform_1_to_2,
)
from repro.syscalls.costs import PROFILES, ExecutionMode
from repro.syscalls.model import read_record, write_record
from repro.workloads import VirtualClient


def make_runtime(**kwargs):
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["kvstore"], **kwargs)
    client = VirtualClient(kernel, server.address)
    return kernel, runtime, client


def fork_v2(runtime, now=0):
    child = runtime.leader.server.fork()
    child.apply_version(KVStoreV2(), xform_1_to_2(dict(child.heap)))
    return runtime.fork_follower(now, server=child)


class TestIterationCost:
    def test_cost_combines_compute_syscalls_bytes(self):
        _, runtime, _ = make_runtime()
        trace = IterationTrace(
            records=[read_record(4, b"x" * 10), write_record(4, b"y" * 5)],
            requests_handled=2, bytes_transferred=15)
        profile = PROFILES["kvstore"]
        cost = runtime.iteration_cost(trace, ExecutionMode.NATIVE)
        assert cost == (2 * profile.compute_ns
                        + 2 * profile.syscall_ns)  # byte_ns is 0

    def test_zero_request_iteration_still_charges_syscalls(self):
        _, runtime, _ = make_runtime()
        trace = IterationTrace(records=[read_record(4, b"partial")],
                               requests_handled=0, bytes_transferred=7)
        assert runtime.iteration_cost(trace, ExecutionMode.NATIVE) == \
            PROFILES["kvstore"].syscall_ns

    def test_leader_mode_costs_more(self):
        _, runtime, _ = make_runtime()
        trace = IterationTrace(records=[read_record(4, b"q")],
                               requests_handled=1, bytes_transferred=1)
        native = runtime.iteration_cost(trace, ExecutionMode.NATIVE)
        leader = runtime.iteration_cost(trace, ExecutionMode.MVEDSUA_LEADER)
        assert leader > native


class TestCompletions:
    def test_completions_track_requests(self):
        _, runtime, client = make_runtime()
        client.command(runtime, b"PUT a 1")
        client.command(runtime, b"GET a")
        served = sum(count for _, count in runtime.completions)
        assert served == 2
        times = [at for at, _ in runtime.completions]
        assert times == sorted(times)


class TestCrashRedelivery:
    class FlakyV1(KVStoreV1):
        """Crashes on the first DIE request only (heap-flag latch)."""

        def handle(self, heap, request, session=None, io=None):
            if request.startswith(b"DIE") and not heap.get("died"):
                heap["died"] = True
                raise ServerCrash("first-hit bug")
            if request.startswith(b"DIE"):
                return [b"+SURVIVED\r\n"]
            return super().handle(heap, request, session, io)

    def test_crashing_request_redelivered_to_promoted_follower(self):
        kernel = VirtualKernel()
        server = KVStoreServer(self.FlakyV1())
        server.attach(kernel)
        runtime = VaranRuntime(kernel, server, PROFILES["kvstore"])
        client = VirtualClient(kernel, server.address)
        client.command(runtime, b"PUT a 1")
        runtime.fork_follower(10**9)  # identical (equally buggy) version
        # The leader crashes; the follower is promoted and the request is
        # re-delivered — but the identical follower carries the same bug,
        # so it crashes on the re-delivered request too, and with no
        # survivor left the crash propagates loudly (never silently).
        with pytest.raises(ServerCrash, match="no healthy follower"):
            client.command(runtime, b"DIE now", now=2 * 10**9)
        assert "leader-crash" in runtime.event_kinds()

    def test_crash_redelivery_with_fixed_follower(self):
        kernel = VirtualKernel()
        server = KVStoreServer(self.FlakyV1())
        server.attach(kernel)
        runtime = VaranRuntime(kernel, server, PROFILES["kvstore"])
        client = VirtualClient(kernel, server.address)
        client.command(runtime, b"PUT a 1")
        # Fork a follower running the *fixed* version (v2 has no DIE bug).
        fork_v2(runtime, now=10**9)
        reply = client.command(runtime, b"DIE now", now=2 * 10**9)
        # v2 rejects DIE as unknown — but it *served* it: state kept.
        assert reply == b"-ERR unknown command\r\n"
        assert runtime.leader.version_name == "2.0"
        assert client.command(runtime, b"GET a",
                              now=3 * 10**9) == b"1\r\n"


class TestPromoteUnderBacklog:
    def test_promote_drains_backlog_first(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        fork_v2(runtime)
        for index in range(10):
            client.command(runtime, b"PUT k%d v" % index,
                           now=10**9 + index)
        assert not runtime.ring.is_empty()
        t5 = runtime.promote(2 * 10**9)
        assert runtime.ring.is_empty()
        assert runtime.leader.version_name == "2.0"
        # The new leader observed every pre-promotion write.
        assert len(runtime.leader.server.heap["table"]) == 10
        assert t5 >= 2 * 10**9

    def test_divergence_while_draining_for_promotion(self):
        """A bad rule set discovered during the promotion drain still
        rolls back cleanly (old leader survives)."""
        _, runtime, client = make_runtime(rules=None)  # no rules!
        fork_v2(runtime)
        client.command(runtime, b"PUT-number pi 3", now=10**9)
        # The backlog still holds the divergent iteration; the promotion
        # drain discovers it, terminates the follower, and the swap never
        # happens — the old leader stays in charge.
        runtime.promote(2 * 10**9)
        assert runtime.leader.version_name == "1.0"
        assert runtime.follower is None
        assert "divergence" in runtime.event_kinds()
        assert not runtime.leader_is_updated
        # Service continues on the old version.
        assert client.command(runtime, b"PUT ok 1",
                              now=3 * 10**9) == b"+OK\r\n"


class TestFinalizeVariants:
    def test_finalize_drains_then_terminates(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        fork_v2(runtime)
        client.command(runtime, b"PUT a 1", now=10**9)
        runtime.promote(2 * 10**9)
        client.command(runtime, b"PUT b 2", now=3 * 10**9)
        assert not runtime.ring.is_empty()
        runtime.finalize(4 * 10**9)
        assert not runtime.in_mve_mode
        assert runtime.ring.is_empty()
        assert runtime.leader.version_name == "2.0"

    def test_events_log_has_full_story(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        fork_v2(runtime)
        client.command(runtime, b"PUT a 1", now=10**9)
        runtime.promote(2 * 10**9)
        runtime.finalize(3 * 10**9)
        kinds = runtime.event_kinds()
        assert kinds[0] == "fork"
        assert "demote-requested" in kinds
        assert "promoted" in kinds
        assert kinds[-1] == "follower-terminated"
        # Log timestamps are monotone.
        times = [event.at for event in runtime.events]
        assert times == sorted(times)


class TestObserver:
    def test_observer_sees_every_event(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        seen = []
        runtime.observer = lambda event: seen.append(event.kind)
        fork_v2(runtime)
        runtime.promote(10**9)
        runtime.finalize(2 * 10**9)
        assert seen == runtime.event_kinds()


class TestTerminationPaths:
    def test_public_terminate_follower(self):
        _, runtime, client = make_runtime()
        runtime.fork_follower(0)
        at = runtime.terminate_follower(10**9, reason="operator")
        assert at >= 10**9
        assert not runtime.in_mve_mode
        assert runtime.ring.is_empty()
        assert runtime.events[-1].detail == "operator"

    def test_terminate_without_follower_rejected(self):
        _, runtime, _ = make_runtime()
        with pytest.raises(SimulationError):
            runtime.terminate_follower(0)

    def test_follower_death_during_backpressure_unblocks_leader(self):
        """If the follower diverges while the leader is blocked on a
        full ring, the leader resumes at full speed immediately."""
        _, runtime, client = make_runtime(ring_capacity=16, rules=None)
        fork_v2(runtime)
        # This command diverges on the follower (no rules installed),
        # but the follower only replays under back-pressure.
        client.command(runtime, b"PUT-number pi 3", now=10**9)
        for index in range(30):
            client.command(runtime, b"PUT k%02d v" % index,
                           now=10**9 + index)
        # The divergence fired during a back-pressure drain; the leader
        # finished everything without a giant stall.
        assert runtime.follower is None
        assert "divergence" in runtime.event_kinds()
        assert client.command(runtime, b"GET k00",
                              now=2 * 10**9) == b"v\r\n"

    def test_fork_after_rollback_allowed(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        fork_v2(runtime)
        runtime.terminate_follower(10**9)
        # A retry forks a fresh follower cleanly.
        fork_v2(runtime, now=2 * 10**9)
        client.command(runtime, b"PUT again 1", now=3 * 10**9)
        runtime.drain_follower()
        assert runtime.last_divergence is None
        assert runtime.follower is not None

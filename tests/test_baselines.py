"""Tests for the comparator baselines (§2.2 / §7 systems)."""

import pytest

from repro.baselines import (
    CheckpointRestart,
    LOCKSTEP_SYSTEMS,
    StopRestart,
    TTSTValidator,
    TTSTVerdict,
    checkpoint_pause_ns,
)
from repro.baselines.restart import (
    CHECKPOINT_PATH,
    IncompatibleCheckpoint,
    RESTART_BASE_NS,
)
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    xform_1_to_2,
    xform_2_to_1,
    xform_drop_table,
)
from repro.servers.native import NativeRuntime
from repro.servers.redis import RedisServer, redis_version
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def kv_deployment():
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["kvstore"],
                            with_kitsune=True)
    client = VirtualClient(kernel, server.address)
    client.command(runtime, b"PUT balance 1000")
    return kernel, server, runtime, client


class TestStopRestart:
    def test_state_is_lost(self):
        _, server, runtime, client = kv_deployment()
        StopRestart().perform(runtime, KVStoreV2(), SECOND)
        assert server.version.name == "2.0"
        assert client.command(runtime, b"GET balance",
                              now=10 * SECOND) == b"-ERR not found\r\n"

    def test_pause_is_restart_base(self):
        _, _, runtime, _ = kv_deployment()
        report = StopRestart().perform(runtime, KVStoreV2(), SECOND)
        assert report.pause_ns == RESTART_BASE_NS
        assert not report.state_preserved


class TestCheckpointRestart:
    def test_compatible_formats_preserve_state(self):
        # Redis 2.0.0 -> 2.0.1 share a state format.
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0"))
        server.attach(kernel)
        runtime = NativeRuntime(kernel, server, PROFILES["redis"],
                                with_kitsune=True)
        client = VirtualClient(kernel, server.address)
        client.command(runtime, b"SET balance 1000")
        report = CheckpointRestart().perform(
            runtime, redis_version("2.0.1"), SECOND)
        assert report.state_preserved
        assert server.version.name == "2.0.1"
        assert kernel.fs.exists(CHECKPOINT_PATH)
        assert client.command(runtime, b"GET balance",
                              now=60 * SECOND) == b"$4\r\n1000\r\n"

    def test_format_change_fails_after_paying_the_pause(self):
        _, server, runtime, client = kv_deployment()
        with pytest.raises(IncompatibleCheckpoint):
            CheckpointRestart().perform(runtime, KVStoreV2(), SECOND)
        # The old version keeps running with its state.
        assert server.version.name == "1.0"
        assert client.command(runtime, b"GET balance",
                              now=60 * SECOND) == b"1000\r\n"

    def test_pause_scales_with_state(self):
        small = checkpoint_pause_ns(1_000)
        large = checkpoint_pause_ns(10 * 1024**3)  # the paper's 10 GB
        assert large > small
        # ~28 s for 10 GB plus the restart base (paper §2.2).
        assert large == pytest.approx(28 * SECOND + RESTART_BASE_NS,
                                      rel=0.1)

    def test_sessions_do_not_survive_restart(self):
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0"))
        server.attach(kernel)
        runtime = NativeRuntime(kernel, server, PROFILES["redis"],
                                with_kitsune=True)
        client = VirtualClient(kernel, server.address)
        client.command(runtime, b"PING")
        assert server.sessions
        CheckpointRestart().perform(runtime, redis_version("2.0.1"),
                                    SECOND)
        assert not server.sessions


class TestTTST:
    HEAP = {"table": {"k": "v"}}

    def test_correct_pair_accepted(self):
        report = TTSTValidator(xform_1_to_2, xform_2_to_1).validate(
            dict(self.HEAP))
        assert report.verdict is TTSTVerdict.ACCEPTED
        assert report.ok

    def test_round_trip_mismatch_rejected(self):
        report = TTSTValidator(xform_drop_table, xform_2_to_1).validate(
            {"table": {"k": "v"}})
        assert report.verdict is TTSTVerdict.REJECTED
        assert "mismatch" in report.detail

    def test_raising_forward_rejected(self):
        def explode(heap):
            raise ValueError("boom")
        report = TTSTValidator(explode, xform_2_to_1).validate(
            dict(self.HEAP))
        assert not report.ok
        assert "forward" in report.detail

    def test_raising_backward_rejected(self):
        def explode(heap):
            raise ValueError("boom")
        report = TTSTValidator(xform_1_to_2, explode).validate(
            dict(self.HEAP))
        assert not report.ok
        assert "backward" in report.detail

    def test_validation_does_not_mutate_input(self):
        heap = {"table": {"k": "v"}}
        TTSTValidator(xform_1_to_2, xform_2_to_1).validate(heap)
        assert heap == {"table": {"k": "v"}}


class TestLockstepModels:
    def test_overhead_ranges_are_ordered(self):
        for system in LOCKSTEP_SYSTEMS.values():
            low, high = system.overhead_range(PROFILES["redis"])
            assert 0 < low <= high < 1

    def test_paper_quoted_ranges(self):
        muc_low, muc_high = LOCKSTEP_SYSTEMS["muc"].overhead_range(
            PROFILES["redis"])
        assert 0.20 < muc_low < 0.30       # paper: 23.2%
        assert 0.75 < muc_high < 0.92      # paper: up to 87.1%
        mx_low, _ = LOCKSTEP_SYSTEMS["mx"].overhead_range(
            PROFILES["redis"])
        assert mx_low > 0.60               # paper: 3x-16x slowdown
        imago_low, _ = LOCKSTEP_SYSTEMS["imago"].overhead_range(
            PROFILES["redis"])
        assert imago_low > 0.90            # paper: up to 1000x

    def test_capability_flags(self):
        assert not LOCKSTEP_SYSTEMS["muc"].detects_post_update_errors
        assert not LOCKSTEP_SYSTEMS["mx"].masks_update_pause
        assert not any(
            s.supports_representation_changes
            for s in LOCKSTEP_SYSTEMS.values())

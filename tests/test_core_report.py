"""Tests for update post-mortems."""

from repro.core import Mvedsua
from repro.core.report import post_mortems, render_history
from repro.dsu.transform import TransformRegistry
from repro.errors import ServerCrash
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    kv_transforms,
    xform_drop_table,
)
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def deployment(transforms=None, version=None):
    kernel = VirtualKernel()
    server = KVStoreServer(version or KVStoreV1())
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["kvstore"],
                      transforms=transforms or kv_transforms())
    client = VirtualClient(kernel, server.address)
    return mvedsua, client


def test_no_history():
    mvedsua, _ = deployment()
    assert post_mortems(mvedsua) == []
    assert render_history(mvedsua) == "no completed update attempts"


def test_finalized_update_post_mortem():
    mvedsua, client = deployment()
    client.command(mvedsua, b"PUT a 1")
    mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
    client.command(mvedsua, b"GET a", now=2 * SECOND)
    mvedsua.promote(3 * SECOND)
    mvedsua.finalize(4 * SECOND)
    reports = post_mortems(mvedsua)
    assert len(reports) == 1
    report = reports[0]
    assert report.outcome == "finalized"
    assert report.trigger is None
    assert report.duration_ns() > 0
    text = report.render()
    assert "t1 forked" in text and "t6 finalized" in text


def test_rolled_back_post_mortem_names_the_divergence():
    registry = TransformRegistry()
    registry.register("kvstore", "1.0", "2.0", xform_drop_table)
    mvedsua, client = deployment(transforms=registry)
    client.command(mvedsua, b"PUT k v")
    mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
    client.command(mvedsua, b"GET k", now=2 * SECOND)
    report = post_mortems(mvedsua)[0]
    assert report.outcome == "rolled-back"
    assert report.trigger is not None
    assert "divergence" in report.trigger
    assert "rolled back" in report.render()


def test_failover_post_mortem():
    class CrashV1(KVStoreV1):
        def handle(self, heap, request, session=None, io=None):
            if request.startswith(b"BOOM"):
                raise ServerCrash("old bug")
            return super().handle(heap, request, session, io)

    mvedsua, client = deployment(version=CrashV1())
    client.command(mvedsua, b"PUT a 1")
    mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
    client.command(mvedsua, b"BOOM", now=2 * SECOND)
    report = post_mortems(mvedsua)[0]
    assert report.outcome == "failed-over (old-version crash)"
    assert "leader-crash" in report.trigger


def test_multiple_attempts_reported_in_order():
    registry = TransformRegistry()
    registry.register("kvstore", "1.0", "2.0", xform_drop_table)
    mvedsua, client = deployment(transforms=registry)
    client.command(mvedsua, b"PUT k v")
    # Attempt 1: rolls back on divergence.
    mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
    client.command(mvedsua, b"GET k", now=2 * SECOND)
    # Attempt 2 with the fixed transformer: succeeds.
    mvedsua.kitsune.transforms = kv_transforms()
    mvedsua.request_update(KVStoreV2(), 10 * SECOND, rules=kv_rules())
    client.command(mvedsua, b"GET k", now=11 * SECOND)
    mvedsua.promote(12 * SECOND)
    mvedsua.finalize(13 * SECOND)
    reports = post_mortems(mvedsua)
    assert [r.outcome for r in reports] == ["rolled-back", "finalized"]
    assert reports[0].index == 0 and reports[1].index == 1
    history_text = render_history(mvedsua)
    assert "update #0" in history_text and "update #1" in history_text

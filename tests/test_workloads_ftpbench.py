"""Semantic cross-validation of the Vsftpd benchmark (Table 2 columns).

The fluid model asserts Vsftpd's throughput analytically; here the same
RETR loop runs through the real protocol stack, and the virtual-time
throughput must agree with the calibrated profile.
"""

from repro.mve import VaranRuntime
from repro.net import VirtualKernel
from repro.servers.native import NativeRuntime
from repro.servers.vsftpd import VsftpdServer, vsftpd_version
from repro.syscalls.costs import PROFILES, ExecutionMode
from repro.workloads.ftpbench import run_ftpbench
from repro.workloads.memtier import FtpBenchSpec


def deployment(spec, mve=False):
    kernel = VirtualKernel()
    kernel.fs.write_file("/" + spec.file_name, spec.payload())
    server = VsftpdServer(vsftpd_version("2.0.5"))
    server.attach(kernel)
    if mve:
        runtime = VaranRuntime(kernel, server, PROFILES["vsftpd-small"],
                               ring_capacity=1 << 14)
    else:
        runtime = NativeRuntime(kernel, server, PROFILES["vsftpd-small"])
    return kernel, server, runtime


class TestSmallFile:
    def test_native_throughput_near_table2(self):
        spec = FtpBenchSpec.small()
        kernel, server, runtime = deployment(spec)
        result = run_ftpbench(kernel, runtime, server.address, spec,
                              retrievals=40)
        # Paper Table 2: 2667 ops/s native.  A semantic RETR costs one
        # command iteration plus the data-connection machinery (PASV is
        # a separate command), so allow a generous band around the
        # calibrated per-op figure.
        assert 1_000 < result.ops_per_sec < 3_500

    def test_bytes_downloaded(self):
        spec = FtpBenchSpec.small()
        kernel, server, runtime = deployment(spec)
        result = run_ftpbench(kernel, runtime, server.address, spec,
                              retrievals=10)
        assert result.bytes_downloaded == 10 * spec.file_size

    def test_mve_leader_slower_than_native(self):
        spec = FtpBenchSpec.small()
        kernel, server, runtime = deployment(spec, mve=True)
        runtime.fork_follower(0)
        mve_result = run_ftpbench(kernel, runtime, server.address, spec,
                                  retrievals=30)
        runtime.drain_follower()
        assert runtime.last_divergence is None

        kernel, server, native_runtime = deployment(spec)
        native_result = run_ftpbench(kernel, native_runtime,
                                     server.address, spec, retrievals=30)
        drop = 1 - mve_result.ops_per_sec / native_result.ops_per_sec
        # Table 2's Vsftpd-small Varan-2 drop is 24%; the semantic stack
        # must land in the same region.
        assert 0.15 < drop < 0.40


class TestLargeFile:
    def test_large_transfer_dominated_by_bytes(self):
        spec = FtpBenchSpec(file_size=1024 * 1024)  # 1 MiB, scaled down
        kernel, server, runtime = deployment(spec)
        runtime.profile = PROFILES["vsftpd-large"]
        result = run_ftpbench(kernel, runtime, server.address, spec,
                              retrievals=5)
        assert result.bytes_downloaded == 5 * spec.file_size
        # Per-op time must far exceed the small-file case.
        small_cost = PROFILES["vsftpd-small"].op_cost_ns(
            ExecutionMode.NATIVE)
        assert result.busy_ns / result.retrievals > small_cost

"""Tests for witness-to-scenario compilation and dynamic adjudication."""

import os
import unittest

from repro.analysis.catalog import load_catalog
from repro.analysis.prover import prove_app
from repro.analysis.witness import (Witness, compile_witness,
                                    replay_witness)
from repro.analysis.state_space import Step
from repro.chaos.plans import witness_plan

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "gap_catalog.py")


def _gap_config():
    return load_catalog(FIXTURE)["gapkv"]


class WitnessReplay(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.config = _gap_config()
        cls.result = prove_app(cls.config)

    def _witness(self, cls_name, stage):
        for witness, replay in self.result.witnesses:
            if witness.cls == cls_name and witness.stage == stage:
                return witness, replay
        self.fail(f"no witness for {cls_name} in {stage}")

    def test_real_divergence_is_confirmed_with_forensics(self):
        witness, replay = self._witness("DEL", "outdated-leader")
        self.assertEqual(replay.status, "confirmed")
        self.assertIsNotNone(replay.forensics)
        # The bundle is the runtime's real ForensicsBundle dict.
        self.assertIn("diverging", replay.forensics)
        self.assertIn("ring_last_k", replay.forensics)

    def test_coarse_abstraction_is_spurious(self):
        witness, replay = self._witness("COUNT", "outdated-leader")
        self.assertEqual(replay.status, "spurious")

    def test_updated_leader_witness_replays_after_promotion(self):
        witness, replay = self._witness("DEL", "updated-leader")
        self.assertEqual(replay.status, "confirmed")

    def test_replay_is_deterministic(self):
        witness, _ = self._witness("DEL", "outdated-leader")
        first = replay_witness(self.config, witness)
        second = replay_witness(self.config, witness)
        self.assertEqual(first.status, second.status)
        self.assertEqual(first.detail, second.detail)

    def test_scenario_carries_fault_free_chaos_plan(self):
        witness, _ = self._witness("DEL", "outdated-leader")
        scenario = compile_witness(self.config, witness)
        self.assertEqual(scenario.plan.faults, ())
        self.assertIn("witness:", scenario.plan.name)

    def test_witness_command_lines_round_trip(self):
        witness, _ = self._witness("DEL", "outdated-leader")
        lines = witness.command_lines()
        self.assertTrue(lines)
        self.assertTrue(all("\r" not in line for line in lines))
        entry = witness.as_dict()
        self.assertEqual(len(entry["steps"]), len(lines))


class ReplayHarnessSafety(unittest.TestCase):
    def test_unknown_version_yields_error_not_exception(self):
        witness = Witness(app="gapkv", old="1", new="99",
                          stage="outdated-leader", code="MVE801",
                          cls="DEL", kind="accept-asymmetry",
                          steps=(Step("DEL", b"DEL a b\r\n", True),),
                          detail="")
        result = replay_witness(_gap_config(), witness)
        self.assertEqual(result.status, "error")

    def test_witness_plan_is_fault_free(self):
        plan = witness_plan("gapkv:MVE801:DEL")
        self.assertEqual(plan.name, "witness:gapkv:MVE801:DEL")
        self.assertEqual(plan.faults, ())


if __name__ == "__main__":
    unittest.main()

"""Tests for the Memcached 1.2.5 ``noreply`` extension and its rules.

This is the first Memcached update in our range that changes the
syscall sequence (a flagged command elicits no reply), exercising the
reply-suppression rule shapes.
"""

from repro.core import Mvedsua, Stage
from repro.net import VirtualKernel
from repro.servers.memcached import (
    MemcachedServer,
    memcached_rules,
    memcached_transforms,
    memcached_version,
)
from repro.servers.native import NativeRuntime
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def native(version):
    kernel = VirtualKernel()
    server = MemcachedServer(memcached_version(version))
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["memcached"])
    client = VirtualClient(kernel, server.address)
    return kernel, server, runtime, client


class TestProtocol:
    def test_125_suppresses_storage_reply(self):
        _, _, runtime, client = native("1.2.5")
        reply, _ = client.request(runtime,
                                  b"set k 0 0 1 noreply\r\nv\r\n", 0)
        assert reply == b""
        assert client.command(runtime, b"get k") == \
            b"VALUE k 0 1\r\nv\r\nEND\r\n"

    def test_125_suppresses_delete_reply(self):
        _, _, runtime, client = native("1.2.5")
        client.request(runtime, b"set k 0 0 1\r\nv\r\n", 0)
        client.recv()
        reply, _ = client.request(runtime, b"delete k noreply\r\n", 0)
        assert reply == b""
        assert client.command(runtime, b"get k") == b"END\r\n"

    def test_125_replies_without_flag(self):
        _, _, runtime, client = native("1.2.5")
        reply, _ = client.request(runtime, b"set k 0 0 1\r\nv\r\n", 0)
        assert reply == b"STORED\r\n"

    def test_124_ignores_the_flag_but_replies(self):
        """Pre-1.2.5 servers treat 'noreply' as a stray token: they
        still store the item and still answer."""
        _, _, runtime, client = native("1.2.4")
        reply, _ = client.request(runtime,
                                  b"set k 0 0 1 noreply\r\nv\r\n", 0)
        assert reply == b"STORED\r\n"
        assert client.command(runtime, b"get k") == \
            b"VALUE k 0 1\r\nv\r\nEND\r\n"

    def test_rule_counts(self):
        assert memcached_rules("1.2.3", "1.2.4").count() == 0
        assert memcached_rules("1.2.4", "1.2.5").count() == 1


class TestUnderMvedsua:
    def deployment(self):
        kernel = VirtualKernel()
        server = MemcachedServer(memcached_version("1.2.4"))
        server.attach(kernel)
        mvedsua = Mvedsua(kernel, server, PROFILES["memcached"],
                          transforms=memcached_transforms())
        client = VirtualClient(kernel, server.address)
        return mvedsua, client

    def test_outdated_leader_with_rule_stays_in_sync(self):
        mvedsua, client = self.deployment()
        mvedsua.request_update(memcached_version("1.2.5"), SECOND,
                               rules=memcached_rules("1.2.4", "1.2.5"))
        reply, _ = client.request(mvedsua,
                                  b"set k 0 0 1 noreply\r\nv\r\n",
                                  2 * SECOND)
        assert reply == b"STORED\r\n"  # the old leader still replies
        client.command(mvedsua, b"get k", now=3 * SECOND)
        assert mvedsua.stage is Stage.OUTDATED_LEADER
        assert mvedsua.runtime.last_divergence is None
        assert "noreply_suppress" in mvedsua.runtime.rules_fired
        # Both versions stored the item: the state relation held.
        assert mvedsua.runtime.follower.server.heap["items"].keys() == \
            mvedsua.runtime.leader.server.heap["items"].keys()

    def test_outdated_leader_without_rule_diverges(self):
        mvedsua, client = self.deployment()
        mvedsua.request_update(memcached_version("1.2.5"), SECOND)
        client.request(mvedsua, b"set k 0 0 1 noreply\r\nv\r\n",
                       2 * SECOND)
        mvedsua.pump(3 * SECOND)
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.last_outcome().rolled_back()

    def test_updated_leader_tolerates_old_reply(self):
        mvedsua, client = self.deployment()
        mvedsua.request_update(memcached_version("1.2.5"), SECOND,
                               rules=memcached_rules("1.2.4", "1.2.5"))
        mvedsua.promote(2 * SECOND)
        reply, _ = client.request(mvedsua,
                                  b"set k 0 0 1 noreply\r\nv\r\n",
                                  3 * SECOND)
        assert reply == b""  # new semantics: silent
        client.command(mvedsua, b"get k", now=4 * SECOND)
        assert mvedsua.runtime.last_divergence is None
        assert "noreply_tolerate" in mvedsua.runtime.rules_fired
        mvedsua.finalize(5 * SECOND)
        assert mvedsua.current_version == "1.2.5"

    def test_full_chain_122_to_125(self):
        kernel = VirtualKernel()
        server = MemcachedServer(memcached_version("1.2.2"))
        server.attach(kernel)
        mvedsua = Mvedsua(kernel, server, PROFILES["memcached"],
                          transforms=memcached_transforms())
        client = VirtualClient(kernel, server.address)
        client.request(mvedsua, b"set keep 0 0 4\r\ndata\r\n", 0)
        client.recv()
        now = SECOND
        for old, new in (("1.2.2", "1.2.3"), ("1.2.3", "1.2.4"),
                         ("1.2.4", "1.2.5")):
            mvedsua.request_update(memcached_version(new), now,
                                   rules=memcached_rules(old, new))
            client.command(mvedsua, b"get keep", now=now + SECOND)
            mvedsua.promote(now + 2 * SECOND)
            mvedsua.finalize(now + 3 * SECOND)
            now += 4 * SECOND
        assert mvedsua.current_version == "1.2.5"
        assert client.command(mvedsua, b"get keep", now=now) == \
            b"VALUE keep 0 4\r\ndata\r\nEND\r\n"

"""Shared fixtures: a kernel, a KV-store deployment, and clients."""

import pytest

from repro.core import Mvedsua
from repro.net import VirtualKernel
from repro.servers.kvstore import KVStoreServer, KVStoreV1, kv_transforms
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


@pytest.fixture
def kernel():
    return VirtualKernel()


@pytest.fixture
def kv_server(kernel):
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    return server


@pytest.fixture
def mvedsua(kernel, kv_server):
    return Mvedsua(kernel, kv_server, PROFILES["kvstore"],
                   transforms=kv_transforms())


@pytest.fixture
def client(kernel, kv_server):
    return VirtualClient(kernel, kv_server.address)


@pytest.fixture
def make_client(kernel, kv_server):
    def _make(name="client"):
        return VirtualClient(kernel, kv_server.address, name)
    return _make

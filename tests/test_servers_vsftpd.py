"""Tests for the Vsftpd analogue: protocol, data connections, versions,
and the Table 1 rule sets."""

import pytest

from repro.core import Mvedsua, Stage
from repro.mve.dsl import Direction, RuleSet
from repro.net import VirtualKernel
from repro.servers.native import NativeRuntime
from repro.servers.vsftpd import (
    TABLE1_RULE_COUNTS,
    VSFTPD_FEATURES,
    VSFTPD_VERSIONS,
    VsftpdServer,
    vsftpd_rules,
    vsftpd_transforms,
    vsftpd_version,
)
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads.ftpclient import FtpClient


def native_deployment(version="2.0.5", files=None):
    kernel = VirtualKernel()
    for path, data in (files or {}).items():
        kernel.fs.write_file(path, data)
    server = VsftpdServer(vsftpd_version(version))
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["vsftpd-small"])
    client = FtpClient(kernel, server.address)
    return kernel, server, runtime, client


def mvedsua_deployment(version, files=None):
    kernel = VirtualKernel()
    for path, data in (files or {}).items():
        kernel.fs.write_file(path, data)
    server = VsftpdServer(vsftpd_version(version))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["vsftpd-small"],
                      transforms=vsftpd_transforms())
    client = FtpClient(kernel, server.address)
    return kernel, mvedsua, client


class TestVersionTable:
    def test_fourteen_releases(self):
        assert len(VSFTPD_VERSIONS) == 14
        assert VSFTPD_VERSIONS[0] == "1.1.0"
        assert VSFTPD_VERSIONS[-1] == "2.0.6"

    def test_features_accumulate(self):
        assert not VSFTPD_FEATURES["1.1.3"].has_stou
        assert VSFTPD_FEATURES["1.2.0"].has_stou
        assert VSFTPD_FEATURES["2.0.0"].has_epsv
        assert VSFTPD_FEATURES["2.0.3"].has_mdtm
        assert VSFTPD_FEATURES["2.0.5"].open_before_150
        # Once added, never removed.
        assert VSFTPD_FEATURES["2.0.6"].has_stou

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            vsftpd_version("3.0.0")

    def test_command_surface_grows(self):
        old = vsftpd_version("1.1.3").commands()
        new = vsftpd_version("1.2.0").commands()
        assert new - old == {"STOU"}


class TestTable1Rules:
    def test_rule_counts_match_paper(self):
        for old, new, expected in TABLE1_RULE_COUNTS:
            assert vsftpd_rules(old, new).count() == expected, (old, new)

    def test_average_is_085(self):
        total = sum(vsftpd_rules(o, n).count()
                    for o, n, _ in TABLE1_RULE_COUNTS)
        assert round(total / len(TABLE1_RULE_COUNTS), 2) == 0.85

    def test_both_directions_have_equal_counts(self):
        # "the same number for both the outdated and updated leader
        # stages" (paper §5.1).
        for old, new, _ in TABLE1_RULE_COUNTS:
            rules = vsftpd_rules(old, new)
            assert rules.count(Direction.OUTDATED_LEADER) == \
                rules.count(Direction.UPDATED_LEADER)


class TestProtocol:
    def test_banner_and_login(self):
        _, _, runtime, client = native_deployment()
        assert client.connect_greeting(runtime) == \
            b"220 vsFTPd: secure, fast.\r\n"
        assert client.login(runtime) == b"230 Login successful.\r\n"

    def test_pass_without_user(self):
        _, _, runtime, client = native_deployment()
        client.connect_greeting(runtime)
        assert client.command(runtime, b"PASS x") == \
            b"503 Login with USER first.\r\n"

    def test_login_required_for_file_commands(self):
        _, _, runtime, client = native_deployment(version="2.0.2")
        client.connect_greeting(runtime)
        assert client.command(runtime, b"PWD") == \
            b"530 Log in with USER and PASS first.\r\n"

    def test_old_login_prompt_text(self):
        _, _, runtime, client = native_deployment(version="2.0.1")
        client.connect_greeting(runtime)
        assert client.command(runtime, b"PWD") == \
            b"530 Please login with USER and PASS.\r\n"

    def test_syst_feat_help_noop(self):
        _, _, runtime, client = native_deployment()
        client.login(runtime)
        assert client.command(runtime, b"SYST") == b"215 UNIX Type: L8.\r\n"
        feat = client.command(runtime, b"FEAT")
        assert feat.startswith(b"211-Features:") and b" EPSV" in feat
        assert client.command(runtime, b"NOOP") == b"200 NOOP ok.\r\n"
        assert client.command(runtime, b"HELP").startswith(b"214")

    def test_pwd_cwd_cdup(self):
        kernel, _, runtime, client = native_deployment()
        kernel.fs.mkdir("/pub")
        client.login(runtime)
        assert client.command(runtime, b"PWD") == b'257 "/"\r\n'
        assert client.command(runtime, b"CWD pub") == \
            b"250 Directory successfully changed.\r\n"
        assert client.command(runtime, b"PWD") == b'257 "/pub"\r\n'
        assert client.command(runtime, b"CDUP") == \
            b"250 Directory successfully changed.\r\n"
        assert client.command(runtime, b"PWD") == b'257 "/"\r\n'

    def test_cwd_missing_directory(self):
        _, _, runtime, client = native_deployment()
        client.login(runtime)
        assert client.command(runtime, b"CWD nope") == \
            b"550 Failed to change directory.\r\n"

    def test_mkd_rmd(self):
        kernel, _, runtime, client = native_deployment()
        client.login(runtime)
        assert client.command(runtime, b"MKD d") == b'257 "/d" created.\r\n'
        assert kernel.fs.is_dir("/d")
        assert client.command(runtime, b"RMD d") == \
            b"250 Remove directory operation successful.\r\n"
        assert client.command(runtime, b"RMD d") == \
            b"550 Remove directory operation failed.\r\n"

    def test_size_and_dele(self):
        _, _, runtime, client = native_deployment(files={"/f": b"12345"})
        client.login(runtime)
        assert client.command(runtime, b"SIZE f") == b"213 5\r\n"
        assert client.command(runtime, b"DELE f") == \
            b"250 Delete operation successful.\r\n"
        assert client.command(runtime, b"SIZE f") == \
            b"550 Could not get file size.\r\n"

    def test_rename_flow(self):
        kernel, _, runtime, client = native_deployment(files={"/a": b"x"})
        client.login(runtime)
        assert client.command(runtime, b"RNFR a") == b"350 Ready for RNTO.\r\n"
        assert client.command(runtime, b"RNTO b") == \
            b"250 Rename successful.\r\n"
        assert kernel.fs.read_file("/b") == b"x"
        assert client.command(runtime, b"RNTO c") == \
            b"503 RNFR required first.\r\n"

    def test_type_mode_stru_rest(self):
        _, _, runtime, client = native_deployment()
        client.login(runtime)
        assert client.command(runtime, b"TYPE I") == \
            b"200 Switching to Binary mode.\r\n"
        assert client.command(runtime, b"TYPE A") == \
            b"200 Switching to ASCII mode.\r\n"
        assert client.command(runtime, b"MODE S") == b"200 Mode set to S.\r\n"
        assert client.command(runtime, b"STRU F") == \
            b"200 Structure set to F.\r\n"
        assert client.command(runtime, b"REST 100") == \
            b"350 Restart position accepted.\r\n"

    def test_quit_goodbye_per_version(self):
        _, _, runtime, client = native_deployment(version="2.0.3")
        client.login(runtime)
        assert client.command(runtime, b"QUIT") == b"221 Goodbye.\r\n"
        _, _, runtime, client = native_deployment(version="2.0.4")
        client.login(runtime)
        assert client.command(runtime, b"QUIT") == b"221 Goodbye, friend.\r\n"

    def test_unknown_command(self):
        _, _, runtime, client = native_deployment()
        client.login(runtime)
        assert client.command(runtime, b"FOOBAR") == \
            b"500 Unknown command.\r\n"

    def test_stou_only_in_new_versions(self):
        _, _, runtime, client = native_deployment(version="1.1.3")
        client.login(runtime)
        assert client.command(runtime, b"STOU") == b"500 Unknown command.\r\n"
        kernel, _, runtime, client = native_deployment(version="1.2.0")
        client.login(runtime)
        assert client.command(runtime, b"STOU") == \
            b'257 "/stou.0001" created.\r\n'
        assert kernel.fs.exists("/stou.0001")

    def test_mdtm_only_in_new_versions(self):
        _, _, runtime, client = native_deployment(version="2.0.2",
                                                  files={"/f": b"x"})
        client.login(runtime)
        assert client.command(runtime, b"MDTM f") == b"500 Unknown command.\r\n"
        _, _, runtime, client = native_deployment(version="2.0.3",
                                                  files={"/f": b"x"})
        client.login(runtime)
        assert client.command(runtime, b"MDTM f") == b"213 19990101000000\r\n"


class TestDataConnections:
    def test_retr_round_trip(self):
        _, _, runtime, client = native_deployment(files={"/f": b"hello"})
        client.login(runtime)
        control, data = client.retr(runtime, "f")
        assert control == (b"150 Opening BINARY mode data connection.\r\n"
                           b"226 Transfer complete.\r\n")
        assert data == b"hello"

    def test_retr_missing_file(self):
        _, _, runtime, client = native_deployment()
        client.login(runtime)
        client.command(runtime, b"PASV")
        assert client.command(runtime, b"RETR nope") == \
            b"550 Failed to open file.\r\n"

    def test_retr_without_pasv(self):
        _, _, runtime, client = native_deployment(files={"/f": b"x"})
        client.login(runtime)
        assert client.command(runtime, b"RETR f") == b"425 Use PORT or PASV first.\r\n"

    def test_retr_large_file_chunked(self):
        payload = bytes(range(256)) * 1024  # 256 KiB, 4 chunks
        _, _, runtime, client = native_deployment(files={"/big": payload})
        client.login(runtime)
        _, data = client.retr(runtime, "big")
        assert data == payload

    def test_stor_round_trip(self):
        kernel, _, runtime, client = native_deployment()
        client.login(runtime)
        reply = client.stor(runtime, "up.bin", b"uploaded")
        assert reply.endswith(b"226 Transfer complete.\r\n")
        assert kernel.fs.read_file("/up.bin") == b"uploaded"

    def test_list_directory(self):
        files = {"/a.txt": b"1", "/b.txt": b"2"}
        _, _, runtime, client = native_deployment(files=files)
        client.login(runtime)
        _, listing = client.list_dir(runtime)
        assert listing == b"a.txt\r\nb.txt\r\n"

    def test_epsv_data_connection(self):
        _, _, runtime, client = native_deployment(files={"/f": b"abc"})
        client.login(runtime)
        _, data = client.retr(runtime, "f", extended=True)
        assert data == b"abc"

    def test_pasv_ports_are_deterministic(self):
        _, _, runtime, client = native_deployment()
        client.login(runtime)
        first = client.command(runtime, b"PASV")
        second = client.command(runtime, b"PASV")
        assert b"(127,0,0,1,78,32)" in first   # port 20000
        assert b"(127,0,0,1,78,33)" in second  # port 20001


class TestUpdatePairsUnderMvedsua:
    """Every Table 1 pair: in sync with rules, diverging without."""

    def exercise(self, kernel, mvedsua, client, now):
        client.command(mvedsua, b"SYST", now=now)
        client.command(mvedsua, b"FEAT", now=now)
        _, data = client.retr(mvedsua, "f.txt", now=now)
        assert data == b"payload!"
        for probe in (b"STOU", b"EPSV x", b"MDTM f.txt", b"BOGUS"):
            client.command(mvedsua, probe, now=now)
        fresh = FtpClient(kernel, ("127.0.0.1", 21), "fresh")
        fresh.connect_greeting(mvedsua, now=now)
        fresh.command(mvedsua, b"PWD", now=now)   # pre-login prompt
        fresh.command(mvedsua, b"QUIT", now=now)

    @pytest.mark.parametrize("old,new,n_rules", TABLE1_RULE_COUNTS)
    def test_with_rules_stays_in_sync(self, old, new, n_rules):
        kernel, mvedsua, client = mvedsua_deployment(
            old, files={"/f.txt": b"payload!"})
        client.login(mvedsua)
        mvedsua.request_update(vsftpd_version(new), SECOND,
                               rules=vsftpd_rules(old, new))
        self.exercise(kernel, mvedsua, client, 2 * SECOND)
        assert mvedsua.stage is Stage.OUTDATED_LEADER
        assert mvedsua.runtime.last_divergence is None

    @pytest.mark.parametrize(
        "old,new",
        [(o, n) for o, n, count in TABLE1_RULE_COUNTS if count > 0])
    def test_without_rules_diverges(self, old, new):
        kernel, mvedsua, client = mvedsua_deployment(
            old, files={"/f.txt": b"payload!"})
        client.login(mvedsua)
        mvedsua.request_update(vsftpd_version(new), SECOND,
                               rules=RuleSet())
        self.exercise(kernel, mvedsua, client, 2 * SECOND)
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.last_outcome().rolled_back()

    def test_stou_happy_coincidence_after_promotion(self):
        """Paper §5.1: STOU on the updated leader is tolerable because
        Vsftpd keeps no file-system state."""
        kernel, mvedsua, client = mvedsua_deployment("1.1.3")
        client.login(mvedsua)
        mvedsua.request_update(vsftpd_version("1.2.0"), SECOND,
                               rules=vsftpd_rules("1.1.3", "1.2.0"))
        mvedsua.promote(2 * SECOND)
        reply = client.command(mvedsua, b"STOU", now=3 * SECOND)
        assert reply == b'257 "/stou.0001" created.\r\n'
        assert mvedsua.runtime.last_divergence is None
        # The file is visible to both versions (shared filesystem), so a
        # later RETR stays in sync.
        _, data = client.retr(mvedsua, "stou.0001", now=4 * SECOND)
        assert data == b""
        assert mvedsua.stage is Stage.UPDATED_LEADER

    def test_full_chain_of_13_updates(self):
        """Walk 1.1.0 all the way to 2.0.6 through Mvedsua."""
        kernel, mvedsua, client = mvedsua_deployment(
            "1.1.0", files={"/f.txt": b"payload!"})
        client.login(mvedsua)
        now = SECOND
        for old, new in zip(VSFTPD_VERSIONS, VSFTPD_VERSIONS[1:]):
            attempt = mvedsua.request_update(
                vsftpd_version(new), now, rules=vsftpd_rules(old, new))
            assert attempt.ok, (old, new)
            _, data = client.retr(mvedsua, "f.txt", now=now + SECOND)
            assert data == b"payload!"
            mvedsua.promote(now + 2 * SECOND)
            mvedsua.finalize(now + 3 * SECOND)
            assert mvedsua.current_version == new
            now += 4 * SECOND
        assert mvedsua.current_version == "2.0.6"
        assert len(mvedsua.history) == 13
        assert all(t.succeeded() for t in mvedsua.history)

"""Property-based tests for Redis, Memcached, and Vsftpd under MVE.

The key MVE transparency property, per server: for arbitrary workloads,
a follower running identical code never diverges and converges to the
leader's state — and for Redis's 2.0.0 -> 2.0.1 update, the one rewrite
rule keeps an *updated* follower in sync on arbitrary write-heavy
workloads.
"""

from hypothesis import given, settings, strategies as st

from repro.mve import VaranRuntime
from repro.net import VirtualKernel
from repro.servers.memcached import MemcachedServer, memcached_version
from repro.servers.redis import RedisServer, redis_rules, redis_version
from repro.servers.vsftpd import VsftpdServer, vsftpd_version
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient
from repro.workloads.ftpclient import FtpClient

keys = st.sampled_from(["k1", "k2", "k3"])
words = st.text(alphabet="abcdef123", min_size=1, max_size=6)

redis_ops = st.one_of(
    st.tuples(keys, words).map(lambda t: f"SET {t[0]} {t[1]}".encode()),
    keys.map(lambda k: f"GET {k}".encode()),
    st.tuples(keys, words).map(lambda t: f"RPUSH {t[0]} {t[1]}".encode()),
    keys.map(lambda k: f"LRANGE {k} 0 -1".encode()),
    st.tuples(keys, st.sampled_from(["f1", "f2"]), words).map(
        lambda t: f"HSET {t[0]} {t[1]} {t[2]}".encode()),
    st.tuples(keys, st.sampled_from(["f1", "f2"])).map(
        lambda t: f"HMGET {t[0]} {t[1]}".encode()),
    keys.map(lambda k: f"DEL {k}".encode()),
    keys.map(lambda k: f"INCR {k}:n".encode()),
)

memcached_ops = st.one_of(
    st.tuples(keys, words).map(
        lambda t: f"set {t[0]} 0 0 {len(t[1])}\r\n{t[1]}".encode()),
    keys.map(lambda k: f"get {k}".encode()),
    keys.map(lambda k: f"delete {k}".encode()),
    st.tuples(keys, words).map(
        lambda t: f"add {t[0]} 0 0 {len(t[1])}\r\n{t[1]}".encode()),
)

ftp_ops = st.sampled_from([
    b"SYST", b"PWD", b"NOOP", b"TYPE I", b"SIZE f.txt",
    b"SIZE missing", b"HELP", b"FEAT",
])


@settings(max_examples=20, deadline=None)
@given(st.lists(redis_ops, min_size=1, max_size=15))
def test_redis_identical_follower_transparent(ops):
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0", hmget_bug=False))
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["redis"],
                           ring_capacity=1 << 12)
    client = VirtualClient(kernel, server.address)
    runtime.fork_follower(0)
    now = 0
    for op in ops:
        _, now = client.request(runtime, op + b"\r\n", now)
    runtime.drain_follower()
    assert runtime.last_divergence is None
    assert runtime.follower.server.heap["db"] == \
        runtime.leader.server.heap["db"]


@settings(max_examples=20, deadline=None)
@given(st.lists(redis_ops, min_size=1, max_size=15))
def test_redis_update_with_rule_transparent(ops):
    """2.0.0 leader, 2.0.1 follower, arbitrary workloads: the AOF
    reorder rule absorbs every intentional divergence."""
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0", hmget_bug=False))
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["redis"],
                           ring_capacity=1 << 12,
                           rules=redis_rules("2.0.0", "2.0.1"))
    client = VirtualClient(kernel, server.address)
    child = server.fork()
    child.apply_version(redis_version("2.0.1", hmget_bug=False),
                        dict(child.heap))
    runtime.fork_follower(0, server=child)
    now = 0
    for op in ops:
        _, now = client.request(runtime, op + b"\r\n", now)
    runtime.drain_follower()
    assert runtime.last_divergence is None
    assert runtime.follower.server.heap["db"] == \
        runtime.leader.server.heap["db"]


@settings(max_examples=20, deadline=None)
@given(st.lists(memcached_ops, min_size=1, max_size=12))
def test_memcached_identical_follower_transparent(ops):
    kernel = VirtualKernel()
    server = MemcachedServer(memcached_version("1.2.2"))
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["memcached"],
                           ring_capacity=1 << 12)
    client = VirtualClient(kernel, server.address)
    runtime.fork_follower(0)
    now = 0
    for op in ops:
        _, now = client.request(runtime, op + b"\r\n", now)
    runtime.drain_follower()
    assert runtime.last_divergence is None
    assert runtime.follower.server.heap["items"] == \
        runtime.leader.server.heap["items"]


@settings(max_examples=15, deadline=None)
@given(st.lists(ftp_ops, min_size=1, max_size=10))
def test_vsftpd_identical_follower_transparent(ops):
    kernel = VirtualKernel()
    kernel.fs.write_file("/f.txt", b"hello")
    server = VsftpdServer(vsftpd_version("2.0.6"))
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["vsftpd-small"],
                           ring_capacity=1 << 12)
    client = FtpClient(kernel, server.address)
    client.login(runtime)
    runtime.fork_follower(0)
    now = 0
    for op in ops:
        client.command(runtime, op, now=now)
        now += 10**7
    runtime.drain_follower()
    assert runtime.last_divergence is None


snort_ops = st.tuples(
    st.sampled_from(["evil", "peer", "lab"]),
    st.sampled_from(["probe", "exploit", "exfil", "benign"]),
).map(lambda t: f"PKT {t[0]} {t[1]}".encode())


@settings(max_examples=20, deadline=None)
@given(st.lists(snort_ops, min_size=1, max_size=20))
def test_snort_identical_follower_transparent(ops):
    from repro.servers.snort import SnortServer, snort_version
    kernel = VirtualKernel()
    server = SnortServer(snort_version("1.0"))
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["kvstore"],
                           ring_capacity=1 << 12)
    client = VirtualClient(kernel, server.address)
    runtime.fork_follower(0)
    now = 0
    for op in ops:
        _, now = client.request(runtime, op + b"\r\n", now)
    runtime.drain_follower()
    assert runtime.last_divergence is None
    assert runtime.follower.server.heap == runtime.leader.server.heap


@settings(max_examples=20, deadline=None)
@given(st.lists(snort_ops.filter(lambda op: b" benign" not in op),
                min_size=1, max_size=20))
def test_snort_update_transparent_without_benign_interleave(ops):
    """1.0 and 1.1 agree byte-for-byte on attack streams that never
    interleave benign packets — the condition under which the update
    validates cleanly."""
    from repro.servers.snort import (SnortServer, snort_version)
    kernel = VirtualKernel()
    server = SnortServer(snort_version("1.0"))
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["kvstore"],
                           ring_capacity=1 << 12)
    client = VirtualClient(kernel, server.address)
    child = server.fork()
    child.apply_version(snort_version("1.1"), dict(child.heap))
    runtime.fork_follower(0, server=child)
    now = 0
    for op in ops:
        _, now = client.request(runtime, op + b"\r\n", now)
    runtime.drain_follower()
    assert runtime.last_divergence is None

"""repro.chaos unit tests: the plan DSL, the injector, the per-layer
fault hooks, the invariant checker, and the obs integration."""

import json

import pytest

from repro.chaos import (
    ChaosInjector,
    Fault,
    FaultPlan,
    at_stage,
    at_time,
    chaos_active,
    current_chaos,
    load_plan,
    on_call,
    when,
)
from repro.chaos.invariants import ClientObservation, check_run
from repro.chaos.scenarios import run_kv_update_scenario
from repro.errors import BrokenPipe, ConnectionReset, FdExhausted
from repro.mve.varan import CORRUPTION_MARKER
from repro.net.kernel import VirtualKernel
from repro.obs import Tracer, tracing, validate_trace_lines
from repro.sim.engine import Engine


# ---------------------------------------------------------------------------
# The plan DSL
# ---------------------------------------------------------------------------


class TestPlanDsl:
    def test_describe_formats(self):
        assert on_call(3).describe() == "on-call:3"
        assert at_time(500).describe() == "at-time:500"
        assert at_stage("outdated-leader").describe() == \
            "at-stage:outdated-leader"
        assert when(lambda ctx: True).describe() == "predicate"
        assert when(lambda ctx: True, label="every 5th read").describe() \
            == "predicate:every 5th read"

    def test_fault_describe_names_site_kind_trigger(self):
        fault = Fault("kernel.read", "econnreset", on_call(4))
        assert fault.describe() == "kernel.read/econnreset@on-call:4"

    def test_as_dict_never_serializes_callables(self):
        fault = Fault("dsu.transform", "replace",
                      when(lambda ctx: True, label="x"),
                      param={"transformer": lambda heap: heap, "bytes": 3})
        payload = fault.as_dict()
        # Deterministic and JSON-clean: callables become summaries.
        assert json.loads(json.dumps(payload)) == payload
        assert payload["param"]["transformer"] == "<function>"
        assert payload["param"]["bytes"] == 3
        assert payload["trigger"] == {"kind": "predicate", "count": 1,
                                      "label": "x"}

    def test_validate_reports_index_site_and_kind(self):
        plan = FaultPlan("bad", (
            Fault("kernel.reed", "econnreset", on_call(1)),
            Fault("mve.leader", "corrupt-record", on_call(1)),
            Fault("kernel.read", "econnreset", on_call(0)),
        ))
        problems = plan.validate()
        assert len(problems) == 3
        assert problems[0].startswith("fault[0] kernel.reed/econnreset: ")
        assert "unknown injection site" in problems[0]
        assert "not legal at site" in problems[1]
        assert "call_index >= 1" in problems[2]

    def test_load_plan_roundtrip(self, tmp_path):
        path = tmp_path / "my_plan.py"
        path.write_text(
            "from repro.chaos import Fault, FaultPlan, on_call\n"
            "def plan():\n"
            "    return FaultPlan('mine', "
            "(Fault('mve.follower', 'crash', on_call(1)),))\n")
        plan = load_plan(str(path))
        assert plan.name == "mine"
        assert plan.faults[0].site == "mve.follower"

    def test_load_plan_rejects_missing_factory(self, tmp_path):
        path = tmp_path / "empty.py"
        path.write_text("x = 1\n")
        with pytest.raises(ValueError, match="plan"):
            load_plan(str(path))


# ---------------------------------------------------------------------------
# The injector
# ---------------------------------------------------------------------------


class TestInjector:
    def test_invalid_plan_is_rejected_at_construction(self):
        plan = FaultPlan("bad", (Fault("nope", "crash", on_call(1)),))
        with pytest.raises(ValueError, match="invalid fault plan"):
            ChaosInjector(plan)

    def test_on_call_fires_exactly_the_nth_call(self):
        injector = ChaosInjector(FaultPlan("p", (
            Fault("mve.leader", "crash", on_call(3)),)))
        fired = [injector.fire("mve.leader") for _ in range(5)]
        assert [f is not None for f in fired] == \
            [False, False, True, False, False]
        assert injector.site_calls["mve.leader"] == 5
        assert len(injector.injections) == 1
        assert injector.injections[0].call_index == 3

    def test_site_calls_count_even_without_armed_faults(self):
        injector = ChaosInjector(FaultPlan("empty"))
        injector.fire("mve.leader")
        injector.fire("mve.leader")
        assert injector.site_calls == {"mve.leader": 2}

    def test_count_bounds_total_firings(self):
        injector = ChaosInjector(FaultPlan("p", (
            Fault("sim.event", "drop",
                  when(lambda ctx: True, count=2)),)))
        fired = [injector.fire("sim.event") for _ in range(4)]
        assert sum(f is not None for f in fired) == 2
        unlimited = ChaosInjector(FaultPlan("p", (
            Fault("sim.event", "drop",
                  when(lambda ctx: True, count=-1)),)))
        assert all(unlimited.fire("sim.event") for _ in range(4))

    def test_at_time_fires_first_call_at_or_after(self):
        injector = ChaosInjector(FaultPlan("p", (
            Fault("mve.ring", "stall", at_time(1_000)),)))
        injector.advance(500)
        assert injector.fire("mve.ring") is None
        injector.advance(1_000)
        assert injector.fire("mve.ring") is not None
        assert injector.fire("mve.ring") is None  # single-shot

    def test_at_stage_fires_only_in_the_named_stage(self):
        injector = ChaosInjector(FaultPlan("p", (
            Fault("mve.follower", "crash",
                  at_stage("outdated-leader")),)))
        injector.note_stage("single-leader")
        assert injector.fire("mve.follower") is None
        injector.note_stage("outdated-leader")
        assert injector.fire("mve.follower") is not None

    def test_predicate_sees_standard_and_extra_context(self):
        seen = []
        injector = ChaosInjector(FaultPlan("p", (
            Fault("kernel.read", "econnreset",
                  when(lambda ctx: seen.append(dict(ctx)) or False,
                       count=-1)),)))
        injector.advance(77)
        injector.note_stage("single-leader")
        injector.fire("kernel.read", fd=9, domain=2)
        assert seen[0]["site"] == "kernel.read"
        assert seen[0]["call_index"] == 1
        assert seen[0]["at"] == 77
        assert seen[0]["stage"] == "single-leader"
        assert seen[0]["fd"] == 9

    def test_domain_filter_skips_and_does_not_count(self):
        injector = ChaosInjector(FaultPlan("p", (
            Fault("kernel.read", "econnreset", on_call(1)),)))
        injector.domain_filter = {1}
        assert injector.kernel_call("kernel.read", 2, 5) is None
        assert "kernel.read" not in injector.site_calls
        assert injector.kernel_call("kernel.read", 1, 5) is not None

    def test_chaos_active_scopes_the_installation(self):
        assert current_chaos() is None
        with chaos_active(ChaosInjector(FaultPlan("p"))) as injector:
            assert current_chaos() is injector
        assert current_chaos() is None


# ---------------------------------------------------------------------------
# The disabled path is zero-cost
# ---------------------------------------------------------------------------


class TestDisabledPath:
    def test_fault_free_run_allocates_no_injectors(self):
        created = ChaosInjector.created_total
        injected = ChaosInjector.injected_total
        result = run_kv_update_scenario()
        assert ChaosInjector.created_total == created
        assert ChaosInjector.injected_total == injected
        assert result.finalized
        assert not result.injections

    def test_kernel_and_engine_hooks_stay_none(self):
        assert VirtualKernel().chaos is None
        assert Engine().chaos is None


# ---------------------------------------------------------------------------
# sim.event faults in the engine
# ---------------------------------------------------------------------------


class TestEngineFaults:
    def test_drop_discards_one_event(self):
        ran = []
        plan = FaultPlan("p", (
            Fault("sim.event", "drop", on_call(1)),))
        with chaos_active(ChaosInjector(plan)):
            engine = Engine()
            engine.schedule_at(10, lambda: ran.append("a"))
            engine.schedule_at(20, lambda: ran.append("b"))
            engine.run()
        assert ran == ["b"]

    def test_delay_requeues_the_event_later(self):
        ran = []
        plan = FaultPlan("p", (
            Fault("sim.event", "delay", on_call(1),
                  param={"delay_ns": 15}),))
        with chaos_active(ChaosInjector(plan)):
            engine = Engine()
            engine.schedule_at(10, lambda: ran.append(engine.now))
            engine.schedule_at(20, lambda: ran.append(engine.now))
            engine.run()
        # First event pushed from t=10 to t=25, after the second.
        assert ran == [20, 25]


# ---------------------------------------------------------------------------
# kernel.* faults
# ---------------------------------------------------------------------------


def _connected_pair(kernel):
    """A raw server/client fd pair through the kernel primitives."""
    server_domain = kernel.create_domain()
    listen_fd = kernel.listen(server_domain, ("srv", 1))
    client_domain = kernel.create_domain()
    client_fd = kernel.connect(client_domain, ("srv", 1))
    server_fd = kernel.accept(server_domain, listen_fd)
    return server_domain, server_fd, client_domain, client_fd


class TestKernelFaults:
    def _kernel(self, site, kind, trigger, param=None, server_domain=None):
        plan = FaultPlan("p", (
            Fault(site, kind, trigger, param=param or {}),))
        with chaos_active(ChaosInjector(plan)):
            kernel = VirtualKernel()
        return kernel

    def test_read_econnreset(self):
        kernel = self._kernel("kernel.read", "econnreset", on_call(1))
        sdom, sfd, cdom, cfd = _connected_pair(kernel)
        kernel.write(cdom, cfd, b"GET alpha\r\n")
        with pytest.raises(ConnectionReset):
            kernel.read(sdom, sfd)

    def test_read_short_read_delivers_a_prefix(self):
        kernel = self._kernel("kernel.read", "short-read", on_call(1),
                              param={"bytes": 4})
        sdom, sfd, cdom, cfd = _connected_pair(kernel)
        kernel.write(cdom, cfd, b"GET alpha\r\n")
        assert kernel.read(sdom, sfd) == b"GET "
        # The fault is single-shot; the remainder is still buffered.
        assert kernel.read(sdom, sfd) == b"alpha\r\n"

    def test_write_epipe(self):
        kernel = self._kernel("kernel.write", "epipe", on_call(1))
        sdom, sfd, cdom, cfd = _connected_pair(kernel)
        with pytest.raises(BrokenPipe):
            kernel.write(sdom, sfd, b"+OK\r\n")

    def test_write_short_write_accepts_a_prefix(self):
        kernel = self._kernel("kernel.write", "short-write", on_call(1),
                              param={"bytes": 2})
        sdom, sfd, cdom, cfd = _connected_pair(kernel)
        assert kernel.write(sdom, sfd, b"+OK\r\n") == 2
        assert kernel.read(cdom, cfd) == b"+O"

    def test_accept_fd_exhaustion_tears_down_the_pending_conn(self):
        kernel = self._kernel("kernel.accept", "fd-exhaustion", on_call(1))
        server_domain = kernel.create_domain()
        listen_fd = kernel.listen(server_domain, ("srv", 1))
        client_domain = kernel.create_domain()
        client_fd = kernel.connect(client_domain, ("srv", 1))
        with pytest.raises(FdExhausted):
            kernel.accept(server_domain, listen_fd)
        # The client observes EOF, the listener is drained.
        assert kernel.read(client_domain, client_fd) == b""

    def test_connect_fd_exhaustion(self):
        kernel = self._kernel("kernel.connect", "fd-exhaustion", on_call(1))
        server_domain = kernel.create_domain()
        kernel.listen(server_domain, ("srv", 1))
        client_domain = kernel.create_domain()
        with pytest.raises(FdExhausted):
            kernel.connect(client_domain, ("srv", 1))

    def test_domain_filter_shields_client_syscalls(self):
        kernel = self._kernel("kernel.read", "econnreset", on_call(1))
        sdom, sfd, cdom, cfd = _connected_pair(kernel)
        kernel.chaos.domain_filter = {sdom}
        kernel.write(sdom, sfd, b"+OK\r\n")
        # Client-side read: filtered out, not counted, not faulted.
        assert kernel.read(cdom, cfd) == b"+OK\r\n"
        kernel.write(cdom, cfd, b"GET alpha\r\n")
        with pytest.raises(ConnectionReset):
            kernel.read(sdom, sfd)


# ---------------------------------------------------------------------------
# The invariant checker
# ---------------------------------------------------------------------------


def _obs(client, command, reply):
    return ClientObservation(client, command, reply)


class TestInvariants:
    def test_clean_history_passes(self):
        observations = [
            _obs("c0", "PUT a one", b"+OK\r\n"),
            _obs("c0", "GET a", b"one\r\n"),
            _obs("c1", "GET b", b"-ERR not found\r\n"),
        ]
        assert check_run(observations, {"a": "one"}) == []

    def test_acknowledged_write_must_not_be_lost(self):
        observations = [
            _obs("c0", "PUT a one", b"+OK\r\n"),
            _obs("c0", "GET a", b"-ERR not found\r\n"),
        ]
        problems = check_run(observations, {})
        assert any("not-found" in p for p in problems)

    def test_unacked_write_makes_state_uncertain_not_wrong(self):
        observations = [
            _obs("c0", "PUT a one", b"+OK\r\n"),
            _obs("c0", "PUT a two", None),       # lost in the fault
            _obs("c1", "GET a", b"two\r\n"),     # may have landed...
        ]
        assert check_run(observations, {"a": "two"}) == []
        observations[2] = _obs("c1", "GET a", b"one\r\n")  # ...or not
        assert check_run(observations, {"a": "one"}) == []
        observations[2] = _obs("c1", "GET a", b"three\r\n")  # but never this
        problems = check_run(observations, {"a": "three"})
        assert problems

    def test_reply_after_a_gap_is_flagged(self):
        observations = [
            _obs("c0", "GET a", None),
            _obs("c0", "GET a", b"-ERR not found\r\n"),
        ]
        problems = check_run(observations, {})
        assert any("gap" in p for p in problems)

    def test_final_state_outside_possible_values_is_flagged(self):
        observations = [_obs("c0", "PUT a one", b"+OK\r\n")]
        problems = check_run(observations, {"a": "nine"})
        assert any("final state" in p for p in problems)


# ---------------------------------------------------------------------------
# Observability integration
# ---------------------------------------------------------------------------


CORRUPT_PLAN = FaultPlan("corrupt", (
    Fault("mve.follower", "corrupt-record", on_call(2)),))


class TestObsIntegration:
    def test_chaos_inject_events_validate_and_are_counted(self):
        tracer = Tracer(experiment="chaos-obs")
        with tracing(tracer):
            with chaos_active(ChaosInjector(CORRUPT_PLAN)) as injector:
                run_kv_update_scenario()
        assert injector.injections
        assert validate_trace_lines(tracer.to_jsonl_lines()) == []
        assert tracer.kind_tally().get("chaos.inject") == \
            len(injector.injections)
        snapshot = tracer.metrics.snapshot()
        assert snapshot["chaos.injected"]["value"] == \
            len(injector.injections)
        assert snapshot["chaos.site.mve.follower"]["value"] == 1

    def test_forensics_bundle_carries_the_injected_corruption(self):
        with chaos_active(ChaosInjector(CORRUPT_PLAN)):
            result = run_kv_update_scenario()
        assert result.forensics is not None
        marker = CORRUPTION_MARKER.decode("latin-1")
        blob = json.dumps(result.forensics)
        expected_stream = json.dumps(result.forensics["expected_records"])
        assert "chaos-corrupt" in expected_stream
        # The diverging pair itself names the corrupted record: the
        # follower answered the corrupted request differently.
        diverging = json.dumps(result.forensics["diverging"])
        assert marker[1:] in blob
        assert diverging != "null"

"""Tests for Redis MULTI/EXEC and control-state survival across updates."""

from repro.core import Mvedsua, Stage
from repro.net import VirtualKernel
from repro.servers.native import NativeRuntime
from repro.servers.redis import (
    RedisServer,
    redis_rules,
    redis_transforms,
    redis_version,
)
from repro.servers.redis.server import AOF_PATH
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def native():
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0"))
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["redis"])
    client = VirtualClient(kernel, server.address)
    return kernel, server, runtime, client


class TestTransactions:
    def test_multi_queues_then_exec_applies(self):
        _, _, runtime, client = native()
        assert client.command(runtime, b"MULTI") == b"+OK\r\n"
        assert client.command(runtime, b"SET a 1") == b"+QUEUED\r\n"
        assert client.command(runtime, b"INCR n") == b"+QUEUED\r\n"
        reply = client.command(runtime, b"EXEC")
        assert reply == b"*2\r\n+OK\r\n:1\r\n"
        assert client.command(runtime, b"GET a") == b"$1\r\n1\r\n"

    def test_discard_drops_the_queue(self):
        _, _, runtime, client = native()
        client.command(runtime, b"MULTI")
        client.command(runtime, b"SET a 1")
        assert client.command(runtime, b"DISCARD") == b"+OK\r\n"
        assert client.command(runtime, b"GET a") == b"$-1\r\n"

    def test_exec_without_multi(self):
        _, _, runtime, client = native()
        assert b"EXEC without MULTI" in client.command(runtime, b"EXEC")

    def test_discard_without_multi(self):
        _, _, runtime, client = native()
        assert b"DISCARD without MULTI" in client.command(runtime,
                                                          b"DISCARD")

    def test_nested_multi_rejected(self):
        _, _, runtime, client = native()
        client.command(runtime, b"MULTI")
        assert b"not be nested" in client.command(runtime, b"MULTI")

    def test_transactions_are_per_session(self):
        kernel, server, runtime, _ = native()
        alice = VirtualClient(kernel, server.address, "alice")
        bob = VirtualClient(kernel, server.address, "bob")
        alice.command(runtime, b"MULTI")
        alice.command(runtime, b"SET a 1")
        # Bob is unaffected by Alice's open transaction.
        assert bob.command(runtime, b"SET b 2") == b"+OK\r\n"
        assert bob.command(runtime, b"GET a") == b"$-1\r\n"
        alice.command(runtime, b"EXEC")
        assert bob.command(runtime, b"GET a") == b"$1\r\n1\r\n"

    def test_queued_commands_not_logged_until_exec(self):
        kernel, _, runtime, client = native()
        client.command(runtime, b"MULTI")
        client.command(runtime, b"SET a 1")
        assert not kernel.fs.exists(AOF_PATH)
        client.command(runtime, b"EXEC")
        aof = kernel.fs.read_file(AOF_PATH)
        assert aof == b"AOF EXEC\r\n"


class TestTransactionAcrossUpdate:
    """Control state (the open transaction) survives a dynamic update —
    the DSU property stop/restart strategies cannot provide."""

    def test_exec_after_update_applies_pre_update_queue(self):
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0"))
        server.attach(kernel)
        mvedsua = Mvedsua(kernel, server, PROFILES["redis"],
                          transforms=redis_transforms())
        client = VirtualClient(kernel, server.address)
        client.command(mvedsua, b"MULTI")
        client.command(mvedsua, b"SET mid-update 1")
        # The update lands while the transaction is open.
        mvedsua.request_update(redis_version("2.0.1"), SECOND,
                               rules=redis_rules("2.0.0", "2.0.1"))
        assert mvedsua.stage is Stage.OUTDATED_LEADER
        reply = client.command(mvedsua, b"EXEC", now=2 * SECOND)
        assert reply == b"*1\r\n+OK\r\n"
        assert mvedsua.runtime.last_divergence is None
        assert client.command(mvedsua, b"GET mid-update",
                              now=3 * SECOND) == b"$1\r\n1\r\n"
        # The follower executed the same transaction from its migrated
        # session state.
        assert mvedsua.runtime.follower.server.heap["db"] == \
            mvedsua.runtime.leader.server.heap["db"]

    def test_transaction_spanning_promotion(self):
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0"))
        server.attach(kernel)
        mvedsua = Mvedsua(kernel, server, PROFILES["redis"],
                          transforms=redis_transforms())
        client = VirtualClient(kernel, server.address)
        mvedsua.request_update(redis_version("2.0.1"), SECOND,
                               rules=redis_rules("2.0.0", "2.0.1"))
        client.command(mvedsua, b"MULTI", now=2 * SECOND)
        client.command(mvedsua, b"SET spans 1", now=2 * SECOND)
        mvedsua.promote(3 * SECOND)
        reply = client.command(mvedsua, b"EXEC", now=4 * SECOND)
        assert reply == b"*1\r\n+OK\r\n"
        assert mvedsua.runtime.last_divergence is None
        mvedsua.finalize(5 * SECOND)
        assert client.command(mvedsua, b"GET spans",
                              now=6 * SECOND) == b"$1\r\n1\r\n"

"""Integration tests for the Mvedsua orchestrator (the paper's §3.2)."""

import pytest

from repro.core import Mvedsua, RetryPolicy, Stage
from repro.dsu.program import ThreadState
from repro.dsu.transform import TransformRegistry
from repro.errors import SimulationError
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    kv_transforms,
    xform_drop_table,
    xform_uninitialised_type,
)
from repro.sim.engine import MILLISECOND, SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def deployment(transforms=None):
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["kvstore"],
                      transforms=transforms or kv_transforms())
    client = VirtualClient(kernel, server.address)
    return kernel, mvedsua, client


def buggy_transforms(xform):
    registry = TransformRegistry()
    registry.register("kvstore", "1.0", "2.0", xform)
    return registry


class TestHappyPath:
    def test_full_lifecycle(self):
        _, mvedsua, client = deployment()
        assert mvedsua.stage is Stage.SINGLE_LEADER
        client.command(mvedsua, b"PUT balance 1000")

        attempt = mvedsua.request_update(KVStoreV2(), SECOND,
                                         rules=kv_rules())
        assert attempt.ok
        assert mvedsua.stage is Stage.OUTDATED_LEADER
        assert mvedsua.current_version == "1.0"

        # Old semantics enforced while outdated leader runs.
        reply = client.command(mvedsua, b"PUT-number pi 3", now=2 * SECOND)
        assert reply == b"-ERR unknown command\r\n"
        assert client.command(mvedsua, b"GET balance",
                              now=3 * SECOND) == b"1000\r\n"
        assert mvedsua.timeline.t3_caught_up is not None

        mvedsua.promote(4 * SECOND)
        assert mvedsua.stage is Stage.UPDATED_LEADER
        assert mvedsua.current_version == "2.0"

        mvedsua.finalize(5 * SECOND)
        assert mvedsua.stage is Stage.SINGLE_LEADER
        outcome = mvedsua.last_outcome()
        assert outcome.succeeded() and not outcome.rolled_back()

        # New semantics now exposed; old state preserved.
        assert client.command(mvedsua, b"GET balance",
                              now=6 * SECOND) == b"1000\r\n"
        client.command(mvedsua, b"PUT-number pi 3", now=6 * SECOND)
        assert client.command(mvedsua, b"TYPE pi",
                              now=7 * SECOND) == b"number\r\n"

    def test_timeline_ordering(self):
        _, mvedsua, client = deployment()
        client.command(mvedsua, b"PUT a 1")
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        client.command(mvedsua, b"GET a", now=2 * SECOND)
        mvedsua.promote(3 * SECOND)
        mvedsua.finalize(4 * SECOND)
        t = mvedsua.last_outcome()
        assert t.t1_forked <= t.t2_updated <= t.t3_caught_up
        assert t.t4_demote <= t.t5_promoted <= t.t6_finalized
        assert t.update_duration_ns() >= 0

    def test_update_runs_off_the_leaders_critical_path(self):
        """The dynamic update charges the follower CPU, not the leader."""
        _, mvedsua, client = deployment()
        # Pre-populate a large store (as Figure 7 does with 1M entries).
        server = mvedsua.runtime.leader.server
        server.heap["table"].update(
            {f"key{i}": "value" for i in range(100_000)})
        leader_before = mvedsua.runtime.leader.cpu.busy_until
        attempt = mvedsua.request_update(KVStoreV2(), SECOND,
                                         rules=kv_rules())
        assert attempt.xform_ns == 100_000 * PROFILES["kvstore"].xform_entry_ns
        leader_pause = mvedsua.runtime.leader.cpu.busy_until - max(
            leader_before, SECOND)
        # Leader paid only quiesce + fork, far less than the transform.
        assert leader_pause < attempt.xform_ns

    def test_operator_rollback(self):
        _, mvedsua, client = deployment()
        client.command(mvedsua, b"PUT a 1")
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        mvedsua.rollback(2 * SECOND)
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.current_version == "1.0"
        assert mvedsua.last_outcome().rolled_back()
        assert client.command(mvedsua, b"GET a", now=3 * SECOND) == b"1\r\n"


class TestGuards:
    def test_update_during_update_rejected(self):
        _, mvedsua, _ = deployment()
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        with pytest.raises(SimulationError):
            mvedsua.request_update(KVStoreV2(), 2 * SECOND)

    def test_promote_from_single_leader_rejected(self):
        _, mvedsua, _ = deployment()
        with pytest.raises(SimulationError):
            mvedsua.promote(SECOND)

    def test_finalize_without_follower_rejected(self):
        _, mvedsua, _ = deployment()
        with pytest.raises(SimulationError):
            mvedsua.finalize(SECOND)

    def test_rollback_from_updated_leader_rejected(self):
        _, mvedsua, _ = deployment()
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        mvedsua.promote(2 * SECOND)
        with pytest.raises(SimulationError):
            mvedsua.rollback(3 * SECOND)


class TestFaultTolerance:
    """The paper's §6.2 fault classes, on the running example."""

    def test_error_in_new_code_rolls_back(self):
        """A follower crash terminates it; clients never notice."""
        _, mvedsua, client = deployment(
            buggy_transforms(xform_uninitialised_type))
        client.command(mvedsua, b"PUT k v")
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        # The GET crashes the follower during catch-up...
        assert client.command(mvedsua, b"GET k", now=2 * SECOND) == b"v\r\n"
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.last_outcome().rolled_back()
        # ...and service continues uninterrupted.
        assert client.command(mvedsua, b"GET k", now=3 * SECOND) == b"v\r\n"

    def test_silent_state_transform_error_detected_as_divergence(self):
        _, mvedsua, client = deployment(buggy_transforms(xform_drop_table))
        client.command(mvedsua, b"PUT k v")
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        client.command(mvedsua, b"GET k", now=2 * SECOND)
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.last_outcome().rolled_back()
        assert mvedsua.runtime.last_divergence is not None

    def test_raising_transformer_fails_update_cleanly(self):
        def exploding(heap):
            raise KeyError("missing field")
        _, mvedsua, client = deployment(buggy_transforms(exploding))
        client.command(mvedsua, b"PUT k v")
        attempt = mvedsua.request_update(KVStoreV2(), SECOND)
        assert not attempt.ok
        assert attempt.reason == "transform-failed"
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert client.command(mvedsua, b"GET k", now=2 * SECOND) == b"v\r\n"

    def test_timing_error_reported_as_quiescence_failure(self):
        _, mvedsua, _ = deployment()

        def deadlock(server):
            server.program.threads = [
                ThreadState("holder"),
                ThreadState("waiter", blocked_on_lock=True),
            ]
        attempt = mvedsua.request_update(KVStoreV2(), SECOND,
                                         prepare=deadlock)
        assert not attempt.ok
        assert attempt.reason == "quiescence-failed"
        assert mvedsua.stage is Stage.SINGLE_LEADER


class TestRetryPolicy:
    def test_retry_until_quiescence_succeeds(self):
        _, mvedsua, _ = deployment()
        countdown = {"failures_left": 3}

        def flaky(server):
            blocked = countdown["failures_left"] > 0
            countdown["failures_left"] -= 1
            server.program.threads = [
                ThreadState("worker", blocked_on_lock=blocked)]

        policy = RetryPolicy(retry_wait_ns=500 * MILLISECOND,
                             max_attempts=10)
        attempts = mvedsua.request_update_with_retry(
            KVStoreV2(), SECOND, rules=kv_rules(), prepare=flaky,
            policy=policy)
        assert len(attempts) == 4
        assert attempts[-1].ok
        assert all(not a.ok for a in attempts[:-1])
        assert mvedsua.stage is Stage.OUTDATED_LEADER

    def test_retry_waits_500ms_between_attempts(self):
        _, mvedsua, _ = deployment()
        seen = []

        def always_blocked(server):
            seen.append(True)
            server.program.threads = [
                ThreadState("w", blocked_on_lock=True)]

        policy = RetryPolicy(retry_wait_ns=500 * MILLISECOND, max_attempts=3)
        attempts = mvedsua.request_update_with_retry(
            KVStoreV2(), SECOND, prepare=always_blocked, policy=policy)
        assert len(attempts) == 3
        assert attempts[1].at - attempts[0].at == 500 * MILLISECOND

    def test_transform_failures_are_not_retried(self):
        def exploding(heap):
            raise ValueError("deterministic bug")
        _, mvedsua, _ = deployment(buggy_transforms(exploding))
        attempts = mvedsua.request_update_with_retry(KVStoreV2(), SECOND)
        assert len(attempts) == 1
        assert attempts[0].reason == "transform-failed"


class TestCrashPromotion:
    class CrashingV1(KVStoreV1):
        def handle(self, heap, request, session=None, io=None):
            if request.startswith(b"HMGET"):
                raise ServerCrashHolder.error()
            return super().handle(heap, request, session)

    def test_old_version_crash_promotes_new_version(self):
        from repro.errors import ServerCrash

        class CrashV1(KVStoreV1):
            def handle(self, heap, request, session=None, io=None):
                if request.startswith(b"BOOM"):
                    raise ServerCrash("old bug")
                return super().handle(heap, request, session)

        kernel = VirtualKernel()
        server = KVStoreServer(CrashV1())
        server.attach(kernel)
        mvedsua = Mvedsua(kernel, server, PROFILES["kvstore"],
                          transforms=kv_transforms())
        client = VirtualClient(kernel, server.address)
        client.command(mvedsua, b"PUT a 1")
        mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
        reply = client.command(mvedsua, b"BOOM", now=2 * SECOND)
        # New version (which lacks the bug) answered instead of crashing.
        assert reply == b"-ERR unknown command\r\n"
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.current_version == "2.0"
        assert mvedsua.last_outcome().succeeded()
        assert client.command(mvedsua, b"GET a", now=3 * SECOND) == b"1\r\n"


class ServerCrashHolder:
    @staticmethod
    def error():
        from repro.errors import ServerCrash
        return ServerCrash("boom")


class TestPromotionDrainDivergence:
    def test_divergence_during_promotion_drain_rolls_back(self):
        """Promoting with a divergent backlog aborts the promotion: the
        old leader stays in charge and the update is rolled back."""
        _, mvedsua, client = deployment()
        mvedsua.request_update(KVStoreV2(), SECOND)  # no rules on purpose
        client.command(mvedsua, b"PUT-number pi 3", now=2 * SECOND)
        # The divergent iteration is still queued; catch-up happens
        # inside promote()'s drain.  Reach in via the runtime directly
        # so the backlog is not drained by Mvedsua.pump first.
        mvedsua.runtime._iterations  # still non-empty is fine either way
        if mvedsua.stage is Stage.OUTDATED_LEADER:
            mvedsua.promote(3 * SECOND)
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.current_version == "1.0"
        assert mvedsua.last_outcome().rolled_back()
        assert client.command(mvedsua, b"PUT ok 1",
                              now=4 * SECOND) == b"+OK\r\n"

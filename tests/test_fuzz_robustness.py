"""Robustness fuzzing: servers must never crash on hostile input.

Only *injected* bugs may raise :class:`ServerCrash`; arbitrary garbage
from the network must always produce a (possibly error) response or be
buffered as an incomplete request.  This is both a quality property of
the protocol implementations and an MVE prerequisite — a leader that
crashed on malformed input would look like an old-version bug.
"""

from hypothesis import given, settings, strategies as st

from repro.net import VirtualKernel
from repro.servers.kvstore import KVStoreServer, KVStoreV2
from repro.servers.memcached import MemcachedServer, memcached_version
from repro.servers.native import NativeRuntime
from repro.servers.redis import RedisServer, redis_version
from repro.servers.vsftpd import VsftpdServer, vsftpd_version
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient

# Printable-ish garbage plus CRLFs so framing terminates.
garbage_lines = st.lists(
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=30).map(lambda s: s.encode() + b"\r\n"),
    min_size=1, max_size=8)

raw_bytes = st.binary(max_size=64).map(lambda b: b + b"\r\n")


def drive(server_factory, profile_name, payloads):
    kernel = VirtualKernel()
    server = server_factory()
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES[profile_name])
    client = VirtualClient(kernel, server.address)
    now = 0
    for payload in payloads:
        _, now = client.request(runtime, payload, now)
    return True


@settings(max_examples=40, deadline=None)
@given(garbage_lines)
def test_kvstore_survives_garbage(lines):
    assert drive(lambda: KVStoreServer(KVStoreV2()), "kvstore", lines)


@settings(max_examples=40, deadline=None)
@given(garbage_lines)
def test_redis_survives_garbage(lines):
    assert drive(lambda: RedisServer(redis_version("2.0.3")), "redis",
                 lines)


@settings(max_examples=40, deadline=None)
@given(garbage_lines)
def test_vsftpd_survives_garbage(lines):
    assert drive(lambda: VsftpdServer(vsftpd_version("2.0.6")),
                 "vsftpd-small", lines)


@settings(max_examples=30, deadline=None)
@given(st.lists(raw_bytes, min_size=1, max_size=5))
def test_redis_survives_binary_noise(blobs):
    assert drive(lambda: RedisServer(redis_version("2.0.0")), "redis",
                 blobs)


@settings(max_examples=30, deadline=None)
@given(garbage_lines)
def test_memcached_survives_garbage(lines):
    # Memcached framing treats some garbage as pending storage headers;
    # cap the declared sizes so the buffer terminates within the test.
    safe = [line for line in lines
            if not line.split(b" ")[0]
            in (b"set", b"add", b"replace", b"append", b"prepend", b"cas")]
    if not safe:
        safe = [b"bogus\r\n"]
    assert drive(lambda: MemcachedServer(memcached_version("1.2.4")),
                 "memcached", safe)


def test_memcached_malformed_storage_header():
    kernel = VirtualKernel()
    server = MemcachedServer(memcached_version("1.2.4"))
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["memcached"])
    client = VirtualClient(kernel, server.address)
    # Non-numeric byte count: rejected instead of wedging the parser.
    reply, _ = client.request(runtime, b"set k 0 0 huge\r\n", 0)
    assert reply == b"ERROR\r\n"
    # The connection still works afterwards.
    reply, _ = client.request(runtime, b"set k 0 0 1\r\nv\r\n", 10)
    assert reply == b"STORED\r\n"


def test_vsftpd_pathological_paths():
    kernel = VirtualKernel()
    kernel.fs.write_file("/safe.txt", b"ok")
    server = VsftpdServer(vsftpd_version("2.0.6"))
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["vsftpd-small"])
    client = VirtualClient(kernel, server.address)
    from repro.workloads.ftpclient import FtpClient
    ftp = FtpClient(kernel, server.address)
    ftp.login(runtime)
    for path in (b"../../../../etc/passwd", b"./..", b"//", b"."):
        reply = ftp.command(runtime, b"SIZE " + path)
        assert reply.startswith((b"550", b"213"))
    # Traversal normalises within the virtual root.
    assert ftp.command(runtime, b"CWD ../..") == \
        b"250 Directory successfully changed.\r\n"
    assert ftp.command(runtime, b"PWD") == b'257 "/"\r\n'

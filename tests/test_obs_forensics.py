"""Divergence forensics: the bundle captured when a follower disagrees."""

import json

import pytest

from repro.core import Mvedsua
from repro.dsu.transform import TransformRegistry
from repro.errors import DivergenceError
from repro.net import VirtualKernel
from repro.obs import Tracer, tracing
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    xform_drop_table,
)
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def _diverging_deployment():
    """A KV store whose update transformer drops the table: the first
    GET during catch-up must diverge."""
    buggy = TransformRegistry()
    buggy.register("kvstore", "1.0", "2.0", xform_drop_table)
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["kvstore"], transforms=buggy)
    client = VirtualClient(kernel, server.address)
    return kernel, mvedsua, client


def _force_divergence(mvedsua, client):
    client.command(mvedsua, b"PUT balance 1000")
    mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
    client.command(mvedsua, b"GET balance", now=2 * SECOND)


def test_divergence_captures_forensics_bundle():
    _, mvedsua, client = _diverging_deployment()
    _force_divergence(mvedsua, client)

    bundle = mvedsua.runtime.last_forensics
    assert bundle is not None
    # The bundle names the diverging record pair.
    assert "1000" in bundle.expected["describe"]
    assert bundle.actual is not None
    assert bundle.expected["describe"] != bundle.actual["describe"]
    # Divergence time = the GET's start plus accumulated syscall costs.
    assert bundle.at >= 2 * SECOND
    assert "2.0" in bundle.version
    assert "1.0" in bundle.leader_version
    assert "at=" in bundle.reason and "version=" in bundle.reason
    # Ring context: the GET's read record precedes the diverging write.
    assert bundle.ring_last_k
    assert any("GET balance" in entry["describe"]
               for entry in bundle.ring_last_k)
    assert bundle.expected_records and bundle.issued_records
    # The bundle is JSON-serializable end to end.
    payload = json.loads(bundle.to_json())
    assert payload["at"] == bundle.at
    assert payload["diverging"]["expected"] == bundle.expected


def test_forensics_summary_names_the_records():
    _, mvedsua, client = _diverging_deployment()
    _force_divergence(mvedsua, client)
    summary = mvedsua.runtime.last_forensics.summary()
    assert "expected:" in summary and "issued:" in summary
    assert "1000" in summary


def test_tracer_collects_bundle_and_ring_history():
    kernel, mvedsua, client = _diverging_deployment()
    tracer = Tracer(experiment="forensics", last_k=4).attach(kernel)
    _force_divergence(mvedsua, client)

    assert len(tracer.forensics) == 1
    bundle = tracer.forensics[0]
    assert bundle is mvedsua.runtime.last_forensics
    # With a tracer attached the last-K window honours its deque bound.
    assert len(bundle.ring_last_k) <= 4
    kinds = tracer.kind_tally()
    assert kinds.get("divergence.forensics") == 1
    assert tracer.metrics.snapshot()["divergence.detected"]["value"] == 1


def test_forensics_bundle_write_json(tmp_path):
    _, mvedsua, client = _diverging_deployment()
    _force_divergence(mvedsua, client)
    path = tmp_path / "bundle.json"
    mvedsua.runtime.last_forensics.write_json(str(path))
    payload = json.loads(path.read_text())
    assert set(payload) >= {"at", "version", "leader_version", "reason",
                            "diverging", "ring_last_k", "rule_engine"}


def test_service_survives_the_divergence():
    _, mvedsua, client = _diverging_deployment()
    _force_divergence(mvedsua, client)
    # Rollback, not outage: clients still read the old version's data.
    reply = client.command(mvedsua, b"GET balance", now=3 * SECOND)
    assert b"1000" in reply


# -- satellite: DivergenceError carries time and version --------------------

def test_divergence_error_annotate_rewrites_message():
    error = DivergenceError("records differ", expected="e", actual="a")
    assert error.at is None and error.version is None
    returned = error.annotate(at=123, version="kvstore-2.0")
    assert returned is error
    assert error.at == 123 and error.version == "kvstore-2.0"
    assert str(error) == "records differ [at=123 version=kvstore-2.0]"
    # Re-annotating refreshes, never stacks, the suffix.
    error.annotate(at=456)
    assert str(error) == "records differ [at=456 version=kvstore-2.0]"
    assert error.base_message == "records differ"


def test_divergence_error_annotate_partial():
    error = DivergenceError("boom")
    error.annotate(version="v9")
    assert str(error) == "boom [version=v9]"
    assert error.at is None

"""Tests for Redis RDB snapshots (SAVE/BGSAVE + restore)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.mve import VaranRuntime
from repro.net import VirtualKernel
from repro.servers.native import NativeRuntime
from repro.servers.redis import RedisServer, redis_version
from repro.servers.redis import rdb
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def deployment():
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0"))
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["redis"])
    client = VirtualClient(kernel, server.address)
    return kernel, server, runtime, client


class TestCodec:
    def populate(self):
        return {
            "db": {
                "s": ("string", "value with spaces"),
                "l": ("list", ["a", "b", "c"]),
                "st": ("set", {"x": None, "y": None}),
                "h": ("hash", {"f1": "v1", "f2": "v2"}),
            },
            "ttls": {},
        }

    def test_round_trip(self):
        heap = self.populate()
        assert rdb.load(rdb.dump(heap))["db"] == heap["db"]

    def test_deterministic(self):
        heap = self.populate()
        assert rdb.dump(heap) == rdb.dump(self.populate())

    def test_empty_db(self):
        heap = {"db": {}, "ttls": {}}
        assert rdb.load(rdb.dump(heap))["db"] == {}

    def test_bad_magic_rejected(self):
        with pytest.raises(KernelError, match="magic"):
            rdb.load(b"NOT-AN-RDB\n")

    def test_truncated_rejected(self):
        data = rdb.dump(self.populate())
        with pytest.raises((KernelError, ValueError, IndexError)):
            rdb.load(data[:-10])

    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(
        st.text(alphabet="abcxyz:0123456789", min_size=1, max_size=10),
        st.one_of(
            st.tuples(st.just("string"),
                      st.text(min_size=0, max_size=20)),
            st.tuples(st.just("list"),
                      st.lists(st.text(max_size=8), max_size=5)),
            st.tuples(st.just("hash"),
                      st.dictionaries(st.text(alphabet="fg", min_size=1,
                                              max_size=3),
                                      st.text(max_size=8), max_size=4)),
        ),
        max_size=8))
    def test_round_trip_property(self, db):
        heap = {"db": db, "ttls": {}}
        assert rdb.load(rdb.dump(heap))["db"] == db


class TestSaveCommands:
    def test_save_writes_snapshot(self):
        kernel, server, runtime, client = deployment()
        client.command(runtime, b"SET k v")
        assert client.command(runtime, b"SAVE") == b"+OK\r\n"
        assert kernel.fs.exists(rdb.RDB_PATH)
        snapshot = rdb.load(kernel.fs.read_file(rdb.RDB_PATH))
        assert snapshot["db"] == {"k": ("string", "v")}

    def test_bgsave_reply(self):
        kernel, server, runtime, client = deployment()
        assert client.command(runtime, b"BGSAVE") == \
            b"+Background saving started\r\n"
        assert kernel.fs.exists(rdb.RDB_PATH)

    def test_restore_on_start(self):
        kernel, server, runtime, client = deployment()
        client.command(runtime, b"SET persistent yes")
        client.command(runtime, b"SAVE")
        # A new process on the same machine warms from the snapshot.
        fresh = RedisServer(redis_version("2.0.1"),
                            address=("127.0.0.1", 6380))
        fresh.attach(kernel)
        assert fresh.load_snapshot()
        fresh_runtime = NativeRuntime(kernel, fresh, PROFILES["redis"])
        fresh_client = VirtualClient(kernel, fresh.address)
        assert fresh_client.command(fresh_runtime, b"GET persistent") == \
            b"$3\r\nyes\r\n"

    def test_load_snapshot_without_file(self):
        kernel, server, _, _ = deployment()
        assert not server.load_snapshot("/missing.rdb")

    def test_save_under_mve_does_not_diverge(self):
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0"))
        server.attach(kernel)
        runtime = VaranRuntime(kernel, server, PROFILES["redis"])
        client = VirtualClient(kernel, server.address)
        client.command(runtime, b"SET k v")
        runtime.fork_follower(10**9)
        client.command(runtime, b"SET k2 v2", now=2 * 10**9)
        assert client.command(runtime, b"SAVE", now=3 * 10**9) == b"+OK\r\n"
        runtime.drain_follower()
        assert runtime.last_divergence is None
        assert kernel.fs.exists(rdb.RDB_PATH)

"""The textual DSL and the programmatic rule API must behave identically.

The paper's artefact publishes its rules in Varan's textual DSL; this
repository builds them programmatically and keeps a DSL rendering next
to them.  These tests run *both* formulations through the full MVE stack
and require identical outcomes.
"""

from repro.mve import VaranRuntime
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    xform_1_to_2,
)
from repro.servers.kvstore.rules import kv_rules_from_dsl
from repro.servers.redis import RedisServer, redis_rules, redis_version
from repro.servers.redis.rules import redis_rules_from_dsl
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def run_kv_scenario(rules):
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["kvstore"],
                           rules=rules)
    client = VirtualClient(kernel, server.address)
    client.command(runtime, b"PUT a 1")
    child = server.fork()
    child.apply_version(KVStoreV2(), xform_1_to_2(dict(child.heap)))
    runtime.fork_follower(0, server=child)
    replies = [
        client.command(runtime, b"PUT b 2", now=10**9),
        client.command(runtime, b"PUT-number pi 3", now=2 * 10**9),
        client.command(runtime, b"TYPE a", now=3 * 10**9),
        client.command(runtime, b"GET b", now=4 * 10**9),
    ]
    runtime.drain_follower()
    post_promote = []
    if runtime.follower is not None:
        runtime.promote(5 * 10**9)
        post_promote.append(
            client.command(runtime, b"PUT-string s v", now=6 * 10**9))
        runtime.drain_follower()
    return (replies, post_promote, runtime.last_divergence is None,
            sorted(set(runtime.rules_fired)),
            runtime.leader.server.heap)


def run_redis_scenario(rules):
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0"))
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["redis"],
                           rules=rules)
    client = VirtualClient(kernel, server.address)
    child = server.fork()
    child.apply_version(redis_version("2.0.1"), dict(child.heap))
    runtime.fork_follower(0, server=child)
    replies = [
        client.command(runtime, b"SET k v", now=10**9),
        client.command(runtime, b"GET k", now=2 * 10**9),
        client.command(runtime, b"LPUSH l x", now=3 * 10**9),
    ]
    runtime.drain_follower()
    post_promote = []
    if runtime.follower is not None:
        runtime.promote(4 * 10**9)
        post_promote.append(
            client.command(runtime, b"SET k2 w", now=5 * 10**9))
        runtime.drain_follower()
    return (replies, post_promote, runtime.last_divergence is None,
            runtime.leader.server.heap["db"])


class TestKvEquivalence:
    def test_same_outcomes(self):
        programmatic = run_kv_scenario(kv_rules())
        from_dsl = run_kv_scenario(kv_rules_from_dsl())
        assert programmatic[0] == from_dsl[0]   # replies
        assert programmatic[1] == from_dsl[1]   # post-promotion replies
        assert programmatic[2] and from_dsl[2]  # both divergence-free
        assert programmatic[4] == from_dsl[4]   # final leader heap

    def test_same_rule_counts(self):
        assert len(kv_rules()) == len(kv_rules_from_dsl())


class TestRedisEquivalence:
    def test_same_outcomes(self):
        programmatic = run_redis_scenario(redis_rules("2.0.0", "2.0.1"))
        from_dsl = run_redis_scenario(redis_rules_from_dsl("2.0.0", "2.0.1"))
        assert programmatic[0] == from_dsl[0]
        assert programmatic[1] == from_dsl[1]
        assert programmatic[2] and from_dsl[2]
        assert programmatic[3] == from_dsl[3]

    def test_no_rules_for_other_pairs(self):
        assert len(redis_rules_from_dsl("2.0.1", "2.0.2")) == 0

    def test_dsl_rules_fire(self):
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0"))
        server.attach(kernel)
        runtime = VaranRuntime(kernel, server, PROFILES["redis"],
                               rules=redis_rules_from_dsl("2.0.0", "2.0.1"))
        client = VirtualClient(kernel, server.address)
        child = server.fork()
        child.apply_version(redis_version("2.0.1"), dict(child.heap))
        runtime.fork_follower(0, server=child)
        client.command(runtime, b"SET k v", now=10**9)
        runtime.drain_follower()
        assert "aof_order" in runtime.rules_fired
        assert runtime.last_divergence is None

"""Unit tests for the calibrated cost model.

The relative-overhead assertions below encode the *shape* of the paper's
Table 2: Mvedsua-1 costs a few percent over native, Mvedsua-2 tens of
percent, and applications with more user-space compute per syscall see
lower relative MVE overheads.
"""

import pytest

from repro.sim import NANOS_PER_SECOND
from repro.syscalls import ExecutionMode, PROFILES, op_cost


def ops_per_second(app, mode, **kwargs):
    return NANOS_PER_SECOND / op_cost(app, mode, **kwargs)


def overhead(app, mode, **kwargs):
    """Throughput drop vs native — the convention of the paper's Table 2."""
    native = op_cost(app, ExecutionMode.NATIVE, **kwargs)
    other = op_cost(app, mode, **kwargs)
    return 1.0 - native / other


class TestNativeCalibration:
    """Native throughput must land near the paper's Table 2 numbers."""

    def test_redis_native_near_73k(self):
        assert ops_per_second("redis", ExecutionMode.NATIVE) == pytest.approx(73_000, rel=0.05)

    def test_memcached_native_near_62k_per_thread(self):
        # 249k ops/s across 4 worker threads.
        per_thread = ops_per_second("memcached", ExecutionMode.NATIVE)
        assert 4 * per_thread == pytest.approx(249_000, rel=0.05)

    def test_vsftpd_small_native_near_2667(self):
        assert ops_per_second("vsftpd-small", ExecutionMode.NATIVE) == pytest.approx(2_667, rel=0.05)

    def test_vsftpd_large_native_near_118(self):
        assert ops_per_second(
            "vsftpd-large", ExecutionMode.NATIVE, n_bytes=10 * 1024 * 1024
        ) == pytest.approx(118, rel=0.08)


class TestOverheadShape:
    """Relative overheads must match the paper's reported bands."""

    @pytest.mark.parametrize("app,kwargs", [
        ("redis", {}),
        ("memcached", {}),
        ("vsftpd-small", {}),
        ("vsftpd-large", {"n_bytes": 10 * 1024 * 1024}),
    ])
    def test_mvedsua_single_is_3_to_9_percent(self, app, kwargs):
        assert 0.0 < overhead(app, ExecutionMode.MVEDSUA_SINGLE, **kwargs) < 0.10

    @pytest.mark.parametrize("app,kwargs", [
        ("redis", {}),
        ("memcached", {}),
        ("vsftpd-small", {}),
        ("vsftpd-large", {"n_bytes": 10 * 1024 * 1024}),
    ])
    def test_mvedsua_leader_is_20_to_55_percent(self, app, kwargs):
        assert 0.20 < overhead(app, ExecutionMode.MVEDSUA_LEADER, **kwargs) < 0.55

    @pytest.mark.parametrize("app,kwargs", [
        ("redis", {}),
        ("memcached", {}),
        ("vsftpd-small", {}),
        ("vsftpd-large", {"n_bytes": 10 * 1024 * 1024}),
    ])
    def test_kitsune_under_6_percent(self, app, kwargs):
        assert 0.0 <= overhead(app, ExecutionMode.KITSUNE, **kwargs) < 0.06

    def test_memcached_has_highest_mve_overhead(self):
        # Table 2: Memcached 52% > Redis 42% > Vsftpd 25%.
        mc = overhead("memcached", ExecutionMode.MVEDSUA_LEADER)
        rd = overhead("redis", ExecutionMode.MVEDSUA_LEADER)
        ftp = overhead("vsftpd-small", ExecutionMode.MVEDSUA_LEADER)
        assert mc > rd > ftp

    def test_mode_ordering_is_monotone(self):
        for app in ("redis", "memcached"):
            costs = [op_cost(app, mode) for mode in (
                ExecutionMode.NATIVE,
                ExecutionMode.MVEDSUA_SINGLE,
                ExecutionMode.MVEDSUA_LEADER,
            )]
            assert costs == sorted(costs)

    def test_mvedsua_adds_kitsune_on_top_of_varan(self):
        for app, mode_pair in (
            ("memcached", (ExecutionMode.VARAN_SINGLE, ExecutionMode.MVEDSUA_SINGLE)),
            ("memcached", (ExecutionMode.VARAN_LEADER, ExecutionMode.MVEDSUA_LEADER)),
        ):
            varan, mvedsua = mode_pair
            assert op_cost(app, mvedsua) >= op_cost(app, varan)


class TestModeFlags:
    def test_ring_buffer_modes(self):
        assert ExecutionMode.VARAN_LEADER.uses_ring_buffer
        assert ExecutionMode.MVEDSUA_LEADER.uses_ring_buffer
        assert not ExecutionMode.MVEDSUA_SINGLE.uses_ring_buffer

    def test_kitsune_modes(self):
        assert ExecutionMode.KITSUNE.includes_kitsune
        assert ExecutionMode.MVEDSUA_SINGLE.includes_kitsune
        assert not ExecutionMode.VARAN_SINGLE.includes_kitsune

    def test_varan_modes(self):
        assert not ExecutionMode.NATIVE.includes_varan
        assert not ExecutionMode.KITSUNE.includes_varan
        assert ExecutionMode.FOLLOWER.includes_varan


def test_profiles_expose_xform_costs_where_needed():
    # Figure 7 (Redis) and the Memcached fault experiments need these.
    assert PROFILES["redis"].xform_entry_ns is not None
    assert PROFILES["memcached"].xform_entry_ns is not None


def test_follower_replay_cheaper_than_leader_mode():
    leader = op_cost("redis", ExecutionMode.VARAN_LEADER)
    follower = op_cost("redis", ExecutionMode.FOLLOWER)
    assert follower < leader


class TestPerAppFactors:
    """The per-application Varan factor overrides (calibration knobs)."""

    def test_overrides_take_precedence_over_globals(self):
        from repro.syscalls.costs import AppProfile
        plain = AppProfile(name="p", compute_ns=1000, syscall_ns=100)
        tuned = AppProfile(name="t", compute_ns=1000, syscall_ns=100,
                           varan_leader_syscall_factor=10.0)
        assert tuned.factors(ExecutionMode.VARAN_LEADER).syscall_factor \
            == 10.0
        assert plain.factors(ExecutionMode.VARAN_LEADER).syscall_factor \
            == pytest.approx(2.80)

    def test_entries_per_op_defaults_to_syscalls(self):
        from repro.syscalls.costs import AppProfile
        plain = AppProfile(name="p", compute_ns=1, syscall_ns=1,
                           syscalls_per_op=7)
        assert plain.entries_per_op == 7
        tuned = AppProfile(name="t", compute_ns=1, syscall_ns=1,
                           syscalls_per_op=3, ring_entries_per_op=12)
        assert tuned.entries_per_op == 12

    def test_calibrated_profiles_have_entry_footprints(self):
        assert PROFILES["redis"].entries_per_op == 12
        assert PROFILES["memcached"].entries_per_op == 12
        assert PROFILES["vsftpd-small"].entries_per_op == 15

    def test_follower_mode_ignores_leader_overrides(self):
        follower = PROFILES["redis"].factors(ExecutionMode.FOLLOWER)
        assert follower.syscall_factor == pytest.approx(0.60)

    def test_iteration_cost_helper(self):
        profile = PROFILES["redis"]
        cost = profile.iteration_cost_ns(
            ExecutionMode.NATIVE, n_requests=2, n_syscalls=6)
        assert cost == 2 * profile.compute_ns + 6 * profile.syscall_ns

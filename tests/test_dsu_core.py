"""Unit tests for the Kitsune analogue: versions, transforms, updates."""

import pytest

from repro.dsu import (
    Kitsune,
    ServerVersion,
    ThreadState,
    TransformRegistry,
    UpdatableProgram,
    UpdateOutcome,
    VersionRegistry,
)
from repro.errors import NoUpdatePath, QuiescenceTimeout, StateTransformError


class VersionA(ServerVersion):
    app = "toy"
    name = "1.0"

    def initial_heap(self):
        return {"table": {}}

    def handle(self, heap, request, session=None, io=None):
        return [b"+OK\r\n"]

    def commands(self):
        return frozenset({"PUT", "GET"})

    def heap_entries(self, heap):
        return len(heap["table"])


class VersionB(VersionA):
    name = "2.0"

    def initial_heap(self):
        return {"table": {}, "types": {}}

    def commands(self):
        return frozenset({"PUT", "GET", "TYPE"})


@pytest.fixture
def registry():
    reg = VersionRegistry()
    reg.register(VersionA())
    reg.register(VersionB())
    return reg


@pytest.fixture
def transforms():
    reg = TransformRegistry()

    @reg.register("toy", "1.0", "2.0")
    def xform(heap):
        heap["types"] = {key: "string" for key in heap["table"]}
        return heap

    return reg


class TestVersionRegistry:
    def test_lookup(self, registry):
        assert registry.get("toy", "1.0").name == "1.0"

    def test_unknown_version_raises(self, registry):
        with pytest.raises(NoUpdatePath):
            registry.get("toy", "9.9")

    def test_duplicate_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register(VersionA())

    def test_release_order(self, registry):
        assert registry.releases("toy") == ["1.0", "2.0"]

    def test_successor(self, registry):
        assert registry.successor("toy", "1.0") == "2.0"
        assert registry.successor("toy", "2.0") is None

    def test_successor_of_unknown_raises(self, registry):
        with pytest.raises(NoUpdatePath):
            registry.successor("toy", "0.1")

    def test_update_pairs(self, registry):
        assert registry.update_pairs("toy") == [("1.0", "2.0")]


class TestTransformRegistry:
    def test_apply_migrates_heap(self, transforms):
        heap = {"table": {"k": "v"}}
        new_heap = transforms.apply("toy", "1.0", "2.0", heap)
        assert new_heap["types"] == {"k": "string"}

    def test_apply_does_not_mutate_old_heap(self, transforms):
        heap = {"table": {"k": "v"}}
        transforms.apply("toy", "1.0", "2.0", heap)
        assert "types" not in heap

    def test_missing_transformer_raises(self, transforms):
        with pytest.raises(NoUpdatePath):
            transforms.get("toy", "2.0", "3.0")

    def test_has(self, transforms):
        assert transforms.has("toy", "1.0", "2.0")
        assert not transforms.has("toy", "2.0", "1.0")

    def test_raising_transformer_wrapped(self):
        reg = TransformRegistry()
        reg.register("toy", "1.0", "2.0", lambda heap: 1 / 0)
        with pytest.raises(StateTransformError, match="raised"):
            reg.apply("toy", "1.0", "2.0", {})

    def test_none_returning_transformer_rejected(self):
        reg = TransformRegistry()
        reg.register("toy", "1.0", "2.0", lambda heap: None)
        with pytest.raises(StateTransformError, match="no heap"):
            reg.apply("toy", "1.0", "2.0", {})


class TestQuiescence:
    def test_single_thread_quiesces(self):
        program = UpdatableProgram(VersionA(), {"table": {}})
        assert program.quiescence_time() == 100_000

    def test_worst_thread_dominates(self):
        program = UpdatableProgram(VersionA(), {"table": {}}, threads=[
            ThreadState("t1", reach_update_point_ns=10),
            ThreadState("t2", reach_update_point_ns=999),
        ])
        assert program.quiescence_time() == 999

    def test_lock_blocked_thread_prevents_quiescence(self):
        program = UpdatableProgram(VersionA(), {"table": {}}, threads=[
            ThreadState("holder", reach_update_point_ns=10),
            ThreadState("waiter", blocked_on_lock=True),
        ])
        assert program.quiescence_time() is None

    def test_event_loop_thread_needs_epoll_update_points(self):
        threads = [ThreadState("worker", inside_event_loop=True)]
        stuck = UpdatableProgram(VersionA(), {}, threads=list(threads))
        assert stuck.quiescence_time() is None
        fixed = UpdatableProgram(VersionA(), {}, threads=list(threads),
                                 epoll_update_points=True)
        assert fixed.quiescence_time() is not None


class TestKitsuneUpdate:
    def make_program(self, entries=3):
        heap = {"table": {f"k{i}": "v" for i in range(entries)}}
        return UpdatableProgram(VersionA(), heap)

    def test_successful_update_swaps_version_and_heap(self, transforms):
        program = self.make_program()
        kitsune = Kitsune(transforms)
        result = kitsune.apply_update(program, VersionB(), xform_entry_ns=100)
        assert result.ok
        assert program.version.name == "2.0"
        assert set(program.heap["types"]) == set(program.heap["table"])

    def test_pause_scales_with_heap_entries(self, transforms):
        kitsune = Kitsune(transforms)
        small = kitsune.apply_update(self.make_program(10), VersionB(),
                                     xform_entry_ns=1_000)
        large = kitsune.apply_update(self.make_program(10_000), VersionB(),
                                     xform_entry_ns=1_000)
        assert large.pause_ns - small.pause_ns == (10_000 - 10) * 1_000
        assert large.entries_transformed == 10_000

    def test_quiescence_failure_aborts_without_changes(self, transforms):
        program = UpdatableProgram(VersionA(), {"table": {}}, threads=[
            ThreadState("stuck", blocked_on_lock=True)])
        result = Kitsune(transforms).apply_update(program, VersionB())
        assert result.outcome is UpdateOutcome.QUIESCENCE_FAILED
        assert program.version.name == "1.0"

    def test_slow_thread_times_out(self, transforms):
        program = UpdatableProgram(VersionA(), {"table": {}}, threads=[
            ThreadState("slow", reach_update_point_ns=10**12)])
        kitsune = Kitsune(transforms, quiesce_timeout_ns=1_000_000)
        with pytest.raises(QuiescenceTimeout):
            kitsune.quiesce(program)

    def test_transform_failure_aborts_and_reports(self):
        transforms = TransformRegistry()
        transforms.register("toy", "1.0", "2.0",
                            lambda heap: (_ for _ in ()).throw(KeyError("t")))
        program = self.make_program()
        result = Kitsune(transforms).apply_update(program, VersionB())
        assert result.outcome is UpdateOutcome.TRANSFORM_FAILED
        assert program.version.name == "1.0"
        assert "raised" in result.error

    def test_abort_callback_runs_when_invoked(self):
        calls = []
        program = UpdatableProgram(VersionA(), {},
                                   abort_callback=lambda p: calls.append(p))
        program.run_abort_callback()
        assert calls == [program]

    def test_no_abort_callback_is_harmless(self):
        UpdatableProgram(VersionA(), {}).run_abort_callback()

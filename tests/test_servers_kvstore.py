"""Unit tests for the running-example KV store (paper Figure 1)."""

import pytest

from repro.errors import ServerCrash
from repro.servers.kvstore import (
    KVStoreV1,
    KVStoreV2,
    xform_1_to_2,
    xform_drop_table,
    xform_uninitialised_type,
)
from repro.servers.kvstore.versions import parse_request
from repro.servers.native import NativeRuntime
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


class TestParseRequest:
    def test_plain_put(self):
        assert parse_request(b"PUT k1 v1") == ("PUT", None, "k1", "v1")

    def test_typed_put(self):
        assert parse_request(b"PUT-string k1 v1") == ("PUT", "string", "k1", "v1")

    def test_get(self):
        assert parse_request(b"GET k1") == ("GET", None, "k1", None)

    def test_value_with_spaces(self):
        assert parse_request(b"PUT k hello world") == ("PUT", None, "k", "hello world")

    def test_bare_verb(self):
        assert parse_request(b"PING") == ("PING", None, None, None)


class TestV1Semantics:
    def setup_method(self):
        self.version = KVStoreV1()
        self.heap = self.version.initial_heap()

    def run(self, line):
        return self.version.handle(self.heap, line)

    def test_put_then_get(self):
        assert self.run(b"PUT balance 1000") == [b"+OK\r\n"]
        assert self.run(b"GET balance") == [b"1000\r\n"]

    def test_get_missing(self):
        assert self.run(b"GET nope") == [b"-ERR not found\r\n"]

    def test_put_overwrites(self):
        self.run(b"PUT k a")
        self.run(b"PUT k b")
        assert self.run(b"GET k") == [b"b\r\n"]

    def test_typed_put_rejected(self):
        assert self.run(b"PUT-number k 5") == [b"-ERR unknown command\r\n"]
        assert self.run(b"GET k") == [b"-ERR not found\r\n"]

    def test_type_command_rejected(self):
        assert self.run(b"TYPE k") == [b"-ERR unknown command\r\n"]

    def test_malformed_put_rejected(self):
        assert self.run(b"PUT onlykey") == [b"-ERR unknown command\r\n"]

    def test_heap_entries_counts_table(self):
        self.run(b"PUT a 1")
        self.run(b"PUT b 2")
        assert self.version.heap_entries(self.heap) == 2

    def test_commands_surface(self):
        assert self.version.commands() == frozenset({"PUT", "GET"})


class TestV2Semantics:
    def setup_method(self):
        self.version = KVStoreV2()
        self.heap = self.version.initial_heap()

    def run(self, line):
        return self.version.handle(self.heap, line)

    def test_plain_put_defaults_to_string(self):
        self.run(b"PUT k v")
        assert self.run(b"TYPE k") == [b"string\r\n"]

    def test_typed_puts(self):
        self.run(b"PUT-number pi 3")
        self.run(b"PUT-date today 2019-04-13")
        assert self.run(b"TYPE pi") == [b"number\r\n"]
        assert self.run(b"TYPE today") == [b"date\r\n"]
        assert self.run(b"GET pi") == [b"3\r\n"]

    def test_unknown_type_rejected(self):
        assert self.run(b"PUT-blob k v") == [b"-ERR unknown command\r\n"]

    def test_type_of_missing_key(self):
        assert self.run(b"TYPE nope") == [b"-ERR not found\r\n"]

    def test_bad_cmd_rejected_like_v1(self):
        # The bad-cmd redirection rule relies on identical rejection text.
        v1 = KVStoreV1()
        assert self.run(b"bad-cmd") == v1.handle(v1.initial_heap(), b"bad-cmd")

    def test_uninitialised_type_crashes_on_get(self):
        self.heap["table"]["k"] = {"val": "v", "typ": None}
        with pytest.raises(ServerCrash):
            self.run(b"GET k")

    def test_uninitialised_type_crashes_on_type(self):
        self.heap["table"]["k"] = {"val": "v", "typ": None}
        with pytest.raises(ServerCrash):
            self.run(b"TYPE k")


class TestTransformers:
    def test_correct_transform_types_everything_string(self):
        heap = {"table": {"a": "1", "b": "2"}}
        new = xform_1_to_2(heap)
        assert new["table"] == {
            "a": {"val": "1", "typ": "string"},
            "b": {"val": "2", "typ": "string"},
        }

    def test_state_relation_holds_for_any_v1_history(self):
        """xform(v1 state after cmds) == v2 state after same cmds."""
        commands = [b"PUT a 1", b"PUT b 2", b"PUT a 3", b"GET a"]
        v1, v2 = KVStoreV1(), KVStoreV2()
        h1, h2 = v1.initial_heap(), v2.initial_heap()
        for command in commands:
            v1.handle(h1, command)
            v2.handle(h2, command)
        assert xform_1_to_2(h1) == h2

    def test_uninitialised_bug_leaves_types_none(self):
        new = xform_uninitialised_type({"table": {"a": "1"}})
        assert new["table"]["a"]["typ"] is None

    def test_drop_table_bug_empties_store(self):
        assert xform_drop_table({"table": {"a": "1"}})["table"] == {}


class TestOverWire(object):
    """The store behind the full server skeleton + virtual kernel."""

    def test_requests_and_framing(self, kernel, kv_server):
        runtime = NativeRuntime(kernel, kv_server, PROFILES["kvstore"])
        client = VirtualClient(kernel, kv_server.address)
        assert client.command(runtime, b"PUT balance 1000") == b"+OK\r\n"
        assert client.command(runtime, b"GET balance") == b"1000\r\n"

    def test_pipelined_requests_in_one_write(self, kernel, kv_server):
        runtime = NativeRuntime(kernel, kv_server, PROFILES["kvstore"])
        client = VirtualClient(kernel, kv_server.address)
        response, _ = client.request(
            runtime, b"PUT a 1\r\nPUT b 2\r\nGET a\r\n", now=0)
        assert response == b"+OK\r\n+OK\r\n1\r\n"

    def test_partial_request_waits_for_rest(self, kernel, kv_server):
        runtime = NativeRuntime(kernel, kv_server, PROFILES["kvstore"])
        client = VirtualClient(kernel, kv_server.address)
        response, _ = client.request(runtime, b"PUT half", now=0)
        assert response == b""
        response, _ = client.request(runtime, b" done\r\n", now=10)
        assert response == b"+OK\r\n"

    def test_multiple_clients_are_isolated_sessions(self, kernel, kv_server):
        runtime = NativeRuntime(kernel, kv_server, PROFILES["kvstore"])
        alice = VirtualClient(kernel, kv_server.address, "alice")
        bob = VirtualClient(kernel, kv_server.address, "bob")
        alice.command(runtime, b"PUT shared fromalice")
        assert bob.command(runtime, b"GET shared") == b"fromalice\r\n"

    def test_client_disconnect_cleans_session(self, kernel, kv_server):
        runtime = NativeRuntime(kernel, kv_server, PROFILES["kvstore"])
        client = VirtualClient(kernel, kv_server.address)
        client.command(runtime, b"PUT a 1")
        assert len(kv_server.sessions) == 1
        client.close()
        runtime.pump(100)
        assert len(kv_server.sessions) == 0

    def test_latency_reflects_cost_model(self, kernel, kv_server):
        runtime = NativeRuntime(kernel, kv_server, PROFILES["kvstore"])
        client = VirtualClient(kernel, kv_server.address)
        client.command(runtime, b"PUT a 1")
        # One request: accept iteration + request iteration costs.
        assert client.latencies_ns[-1] > 0

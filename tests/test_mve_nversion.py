"""Tests for N-version execution (Varan's general mode)."""

import pytest

from repro.errors import ServerCrash
from repro.mve.nversion import NVersionRuntime
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    xform_1_to_2,
)
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def make_runtime(**kwargs):
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    runtime = NVersionRuntime(kernel, server, PROFILES["kvstore"],
                              **kwargs)
    client = VirtualClient(kernel, server.address)
    return kernel, runtime, client


class CrashOnK5(KVStoreV1):
    """A diversified replica with a bug on one specific key."""

    def handle(self, heap, request, session=None, io=None):
        if request.startswith(b"PUT k5 "):
            raise ServerCrash("replica-specific bug")
        return super().handle(heap, request, session, io)


class TestThreeIdenticalVersions:
    def test_all_replicas_converge(self):
        _, runtime, client = make_runtime()
        runtime.add_follower(0)
        runtime.add_follower(0)
        assert runtime.group_size == 3
        for index in range(8):
            client.command(runtime, b"PUT k%d v%d" % (index, index),
                           now=10**9 + index)
        runtime.drain()
        assert runtime.divergences == []
        heaps = [f.process.server.heap for f in runtime.alive_followers()]
        assert all(h == runtime.leader.server.heap for h in heaps)

    def test_leader_costs_more_with_followers(self):
        _, solo, client_a = make_runtime()
        client_a.command(solo, b"PUT a 1")
        _, group, client_b = make_runtime()
        group.add_follower(0)
        group.add_follower(0)
        client_b.command(group, b"PUT a 1", now=10**9)
        # Same work, but the group leader paid recording overhead.
        assert group.leader.cpu.total_busy > solo.leader.cpu.total_busy


class TestPartialFailure:
    def test_buggy_replica_terminated_others_continue(self):
        _, runtime, client = make_runtime()
        runtime.add_follower(0)  # healthy copy
        buggy = runtime.leader.server.fork()
        buggy.version = CrashOnK5()
        buggy.program.version = buggy.version
        runtime.add_follower(0, server=buggy)
        assert runtime.group_size == 3
        for index in range(8):
            client.command(runtime, b"PUT k%d v" % index, now=10**9 + index)
        runtime.drain()
        # Only the buggy follower died; leader + healthy follower live.
        assert runtime.group_size == 2
        assert "follower-crash" in runtime.event_kinds()
        assert client.command(runtime, b"GET k5",
                              now=10**10) == b"v\r\n"

    def test_divergent_replica_terminated(self):
        _, runtime, client = make_runtime()
        runtime.add_follower(0)
        updated = runtime.leader.server.fork()
        updated.apply_version(KVStoreV2(),
                              xform_1_to_2(dict(updated.heap)))
        runtime.add_follower(0, server=updated)  # no rules!
        client.command(runtime, b"PUT-number pi 3", now=10**9)
        runtime.drain()
        assert runtime.group_size == 2
        assert len(runtime.divergences) == 1

    def test_rules_are_per_follower(self):
        _, runtime, client = make_runtime()
        runtime.add_follower(0)  # identical: needs no rules
        updated = runtime.leader.server.fork()
        updated.apply_version(KVStoreV2(),
                              xform_1_to_2(dict(updated.heap)))
        runtime.add_follower(0, server=updated, rules=kv_rules())
        client.command(runtime, b"PUT-number pi 3", now=10**9)
        client.command(runtime, b"PUT a 1", now=2 * 10**9)
        runtime.drain()
        # With its rules, the updated follower survives alongside the
        # identical one.
        assert runtime.group_size == 3
        assert runtime.divergences == []


class TestLeaderFailover:
    class FragileLeader(KVStoreV1):
        def handle(self, heap, request, session=None, io=None):
            if request.startswith(b"BOOM"):
                raise ServerCrash("leader-only bug")
            return super().handle(heap, request, session, io)

    def test_first_healthy_follower_promoted(self):
        kernel = VirtualKernel()
        server = KVStoreServer(self.FragileLeader())
        server.attach(kernel)
        runtime = NVersionRuntime(kernel, server, PROFILES["kvstore"])
        client = VirtualClient(kernel, server.address)
        client.command(runtime, b"PUT a 1")
        fixed = server.fork()
        fixed.apply_version(KVStoreV2(), xform_1_to_2(dict(fixed.heap)))
        runtime.add_follower(10**9, server=fixed, rules=kv_rules())
        reply = client.command(runtime, b"BOOM", now=2 * 10**9)
        assert reply == b"-ERR unknown command\r\n"
        assert runtime.leader.version_name == "2.0"
        assert "follower-promoted-after-crash" in runtime.event_kinds()
        assert client.command(runtime, b"GET a",
                              now=3 * 10**9) == b"1\r\n"

    def test_crash_with_no_followers_propagates(self):
        kernel = VirtualKernel()
        server = KVStoreServer(self.FragileLeader())
        server.attach(kernel)
        runtime = NVersionRuntime(kernel, server, PROFILES["kvstore"])
        client = VirtualClient(kernel, server.address)
        with pytest.raises(ServerCrash):
            client.command(runtime, b"BOOM")


class TestBackPressure:
    def test_slowest_follower_bounds_the_leader(self):
        _, runtime, client = make_runtime(queue_capacity=32)
        runtime.add_follower(0)
        slow = runtime.add_follower(0)
        slow.cpu.block_until(10**12)
        last = 0
        for index in range(30):
            _, last = client.request(runtime, b"PUT k%02d v\r\n" % index,
                                     now=10**9)
        assert last >= 10**12  # stalled behind the slow follower


class TestMxScenario:
    """Mx (§7) runs two versions side by side from the start — no DSU —
    and tolerates a bug in one version by using the other.  That is the
    N-version runtime with a differently-versioned follower."""

    def test_two_versions_from_the_start_tolerate_old_bug(self):
        from repro.servers.redis import RedisServer, redis_rules, redis_version
        kernel = VirtualKernel()
        server = RedisServer(redis_version("2.0.0", hmget_bug=True))
        server.attach(kernel)
        runtime = NVersionRuntime(kernel, server, PROFILES["redis"])
        client = VirtualClient(kernel, server.address)
        fixed = server.fork()
        fixed.apply_version(redis_version("2.0.1", hmget_bug=False),
                            dict(fixed.heap))
        runtime.add_follower(0, server=fixed,
                             rules=redis_rules("2.0.0", "2.0.1"))
        client.command(runtime, b"SET wrongtype v", now=10**9)
        # The buggy leader crashes on the bad HMGET; the fixed follower
        # takes over and answers the re-delivered request.
        reply = client.command(runtime, b"HMGET wrongtype f",
                               now=2 * 10**9)
        assert b"wrong kind of value" in reply
        assert runtime.leader.version_name == "2.0.1"
        assert client.command(runtime, b"GET wrongtype",
                              now=3 * 10**9) == b"$1\r\nv\r\n"

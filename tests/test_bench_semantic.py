"""Cross-validation: the semantic MVE stack vs the fluid model.

The fluid simulator asserts the paper's overheads analytically; these
tests measure the same overheads by *running* the full semantic stack
(real Redis, real ring buffer, real rules) under a scaled Memtier
workload, and require the two fidelities to agree.
"""

import pytest

from repro.bench.semantic import run_semantic_redis_lifecycle
from repro.syscalls.costs import PROFILES, ExecutionMode


@pytest.fixture(scope="module")
def lifecycle():
    return run_semantic_redis_lifecycle(ops_per_phase=300)


def test_lifecycle_completes_cleanly(lifecycle):
    assert not lifecycle.diverged
    assert lifecycle.update_succeeded
    assert lifecycle.final_version == "2.0.1"
    assert [p.phase for p in lifecycle.phases] == [
        "single-before", "outdated-leader", "updated-leader",
        "single-after"]


def test_mve_phase_overhead_matches_cost_model(lifecycle):
    """Measured semantic overhead == the calibrated model's overhead."""
    single = lifecycle.phase("single-before").ops_per_sec
    mve = lifecycle.phase("outdated-leader").ops_per_sec
    measured_drop = 1 - mve / single

    profile = PROFILES["redis"]
    # The semantic stack runs the *actual* iteration (one epoll_wait +
    # read + reply write, plus the AOF write on write commands), so the
    # model's prediction uses the same per-mode factors.
    model_drop = 1 - (profile.op_cost_ns(ExecutionMode.MVEDSUA_SINGLE)
                      / profile.op_cost_ns(ExecutionMode.MVEDSUA_LEADER))
    assert measured_drop == pytest.approx(model_drop, abs=0.06)


def test_single_leader_phases_agree(lifecycle):
    before = lifecycle.phase("single-before").ops_per_sec
    after = lifecycle.phase("single-after").ops_per_sec
    assert after == pytest.approx(before, rel=0.05)


def test_updated_leader_costs_like_outdated_leader(lifecycle):
    outdated = lifecycle.phase("outdated-leader").ops_per_sec
    updated = lifecycle.phase("updated-leader").ops_per_sec
    assert updated == pytest.approx(outdated, rel=0.10)


def test_semantic_throughput_magnitude_is_calibrated(lifecycle):
    """Semantic single-leader throughput lands near the fluid model's
    Mvedsua-1 rate (the workload mixes read and write iteration shapes,
    so allow a modest band)."""
    single = lifecycle.phase("single-before").ops_per_sec
    assert 45_000 < single < 80_000

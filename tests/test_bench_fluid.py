"""Tests for the fluid performance simulator."""

import pytest

from repro.bench.fluid import (
    FluidConfig,
    FluidSim,
    TAIL_FLOOR_NS,
    UpdatePlan,
    mode_throughputs,
    steady_state_throughput,
)
from repro.sim.engine import MILLISECOND, SECOND
from repro.syscalls.costs import FORK_PAUSE_NS, PROFILES, ExecutionMode
from repro.workloads.memtier import MemtierSpec


def redis_config(**kwargs):
    defaults = dict(profile=PROFILES["redis"],
                    spec=MemtierSpec(duration_ns=30 * SECOND))
    defaults.update(kwargs)
    return FluidConfig(**defaults)


def plan(request_s=10, promote_s=18, finalize_s=24, immediate=False):
    return UpdatePlan(request_at=request_s * SECOND,
                      promote_at=promote_s * SECOND,
                      finalize_at=finalize_s * SECOND,
                      immediate_promotion=immediate)


class TestSteadyState:
    def test_native_throughput_matches_cost_model(self):
        ops = steady_state_throughput(PROFILES["redis"],
                                      ExecutionMode.NATIVE)
        assert ops == pytest.approx(73_000, rel=0.02)

    def test_threads_scale_throughput(self):
        one = steady_state_throughput(PROFILES["memcached"],
                                      ExecutionMode.NATIVE, threads=1)
        four = steady_state_throughput(PROFILES["memcached"],
                                       ExecutionMode.NATIVE, threads=4)
        assert four == pytest.approx(4 * one, rel=0.01)

    def test_bytes_slow_large_transfers(self):
        small = steady_state_throughput(PROFILES["vsftpd-large"],
                                        ExecutionMode.NATIVE, n_bytes=0)
        large = steady_state_throughput(PROFILES["vsftpd-large"],
                                        ExecutionMode.NATIVE,
                                        n_bytes=10 * 1024 * 1024)
        assert large < small / 5

    def test_mode_throughputs_monotone(self):
        rows = dict((label, ops) for label, ops, _ in
                    mode_throughputs(PROFILES["redis"]))
        assert rows["native"] >= rows["mvedsua-1"] > rows["mvedsua-2"]

    def test_no_update_run_has_floor_latency(self):
        result = FluidSim(redis_config()).run()
        assert result.longest_stall_ns == 0
        assert result.max_latency_ns >= TAIL_FLOOR_NS
        assert result.max_latency_ns < TAIL_FLOOR_NS + 10 * MILLISECOND


class TestBins:
    def test_one_bin_per_second(self):
        result = FluidSim(redis_config()).run()
        assert len(result.bins) == 30

    def test_total_matches_bins(self):
        result = FluidSim(redis_config()).run()
        assert result.total_ops == pytest.approx(sum(result.bins))

    def test_fixed_mode_bins_are_flat(self):
        result = FluidSim(redis_config(),
                          fixed_mode=ExecutionMode.NATIVE).run()
        assert max(result.bins) - min(result.bins) < 0.01 * max(result.bins)


class TestMvedsuaUpdateTimeline:
    def test_lifecycle_instants_recorded_in_order(self):
        config = redis_config(initial_entries=100_000,
                              ring_capacity=1 << 24)
        result = FluidSim(config).run(plan=plan())
        assert result.t1_forked == 10 * SECOND
        assert result.t2_updated > result.t1_forked
        assert result.t3_caught_up >= result.t2_updated
        assert result.t5_promoted >= 18 * SECOND
        assert result.t6_finalized >= 24 * SECOND

    def test_update_duration_scales_with_store(self):
        # Note: the store also grows with pre-update traffic (bounded by
        # the Memtier keyspace), so compare empty vs far-above-keyspace.
        small = FluidSim(redis_config(initial_entries=0,
                                      ring_capacity=1 << 24)
                         ).run(plan=plan())
        large = FluidSim(redis_config(initial_entries=2_000_000,
                                      ring_capacity=1 << 24)
                         ).run(plan=plan())
        assert (large.t2_updated - large.t1_forked) > \
            10 * (small.t2_updated - small.t1_forked)

    def test_throughput_recovers_after_finalize(self):
        config = redis_config(ring_capacity=1 << 24)
        result = FluidSim(config).run(plan=plan())
        assert result.bins[28] == pytest.approx(result.bins[5], rel=0.02)

    def test_mve_phase_is_slower(self):
        config = redis_config(ring_capacity=1 << 24)
        result = FluidSim(config).run(plan=plan())
        single_phase = result.bins[5]
        mve_phase = result.bins[14]
        assert 0.20 < 1 - mve_phase / single_phase < 0.55


class TestRingBufferDynamics:
    def test_small_ring_blocks_leader_through_update(self):
        config = redis_config(initial_entries=1_000_000,
                              ring_capacity=1 << 10,
                              spec=MemtierSpec(duration_ns=60 * SECOND))
        result = FluidSim(config).run(plan=plan(request_s=10,
                                                promote_s=40,
                                                finalize_s=50))
        update_duration = result.t2_updated - result.t1_forked
        # The stall is essentially the whole update.
        assert result.longest_stall_ns > 0.9 * update_duration

    def test_huge_ring_masks_the_update(self):
        config = redis_config(initial_entries=1_000_000,
                              ring_capacity=1 << 24,
                              spec=MemtierSpec(duration_ns=60 * SECOND))
        result = FluidSim(config).run(plan=plan(request_s=10,
                                                promote_s=40,
                                                finalize_s=50))
        # Only the fork pause shows up.
        assert result.longest_stall_ns <= 2 * FORK_PAUSE_NS

    def test_pause_decreases_with_ring_size(self):
        latencies = []
        for power in (10, 16, 20, 24):
            config = redis_config(initial_entries=1_000_000,
                                  ring_capacity=1 << power,
                                  spec=MemtierSpec(duration_ns=60 * SECOND))
            result = FluidSim(config).run(plan=plan(request_s=10,
                                                    promote_s=40,
                                                    finalize_s=50))
            latencies.append(result.max_latency_ns)
        assert latencies == sorted(latencies, reverse=True)

    def test_kitsune_pause_equals_quiesce_plus_transform(self):
        config = redis_config(initial_entries=1_000_000,
                              spec=MemtierSpec(duration_ns=60 * SECOND))
        result = FluidSim(config).run(
            plan=plan(request_s=10), kitsune_in_place=True)
        xform = 1_000_000 * PROFILES["redis"].xform_entry_ns
        assert result.longest_stall_ns == pytest.approx(xform, rel=0.02)


class TestImmediatePromotionAblation:
    def test_immediate_promotion_reintroduces_pause(self):
        config = redis_config(initial_entries=1_000_000,
                              ring_capacity=1 << 24,
                              spec=MemtierSpec(duration_ns=60 * SECOND))
        staged = FluidSim(config).run(plan=plan(request_s=10, promote_s=40,
                                                finalize_s=50))
        rushed = FluidSim(config).run(plan=plan(request_s=10,
                                                immediate=True))
        assert rushed.max_latency_ns > 10 * staged.max_latency_ns
        assert rushed.t6_finalized is not None


class TestRollbackTimeline:
    def test_rollback_restores_single_leader_rate(self):
        config = redis_config(ring_capacity=1 << 24,
                              spec=MemtierSpec(duration_ns=30 * SECOND))
        rollback_plan = UpdatePlan(request_at=10 * SECOND,
                                   rollback_at=15 * SECOND)
        result = FluidSim(config).run(plan=rollback_plan)
        assert result.rolled_back_at == 15 * SECOND
        assert result.t5_promoted is None
        # MVE-rate during validation, full rate again after rollback.
        single_rate = result.bins[5]
        mve_rate = result.bins[12]
        post_rollback = result.bins[20]
        assert mve_rate < 0.8 * single_rate
        assert post_rollback == pytest.approx(single_rate, rel=0.02)

    def test_rollback_never_pauses_service(self):
        config = redis_config(ring_capacity=1 << 24,
                              spec=MemtierSpec(duration_ns=30 * SECOND))
        rollback_plan = UpdatePlan(request_at=10 * SECOND,
                                   rollback_at=15 * SECOND)
        result = FluidSim(config).run(plan=rollback_plan)
        assert min(result.bins) > 0
        assert result.max_latency_ns < TAIL_FLOOR_NS + 100 * MILLISECOND

"""Unit tests for the discrete-event engine and virtual clock."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, MILLISECOND, SECOND, ns_to_seconds, seconds_to_ns


def test_clock_starts_at_zero():
    assert Engine().now == 0


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(30, lambda: fired.append("c"))
    engine.schedule(10, lambda: fired.append("a"))
    engine.schedule(20, lambda: fired.append("b"))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_insertion_order():
    engine = Engine()
    fired = []
    for name in "abcde":
        engine.schedule(100, lambda n=name: fired.append(n))
    engine.run()
    assert fired == list("abcde")


def test_clock_tracks_event_times():
    engine = Engine()
    seen = []
    engine.schedule(5 * MILLISECOND, lambda: seen.append(engine.now))
    engine.schedule(2 * MILLISECOND, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [2 * MILLISECOND, 5 * MILLISECOND]


def test_run_until_leaves_later_events_queued():
    engine = Engine()
    fired = []
    engine.schedule(10, lambda: fired.append("early"))
    engine.schedule(100, lambda: fired.append("late"))
    engine.run(until=50)
    assert fired == ["early"]
    assert engine.now == 50
    assert engine.pending() == 1
    engine.run()
    assert fired == ["early", "late"]


def test_run_until_includes_boundary_event():
    engine = Engine()
    fired = []
    engine.schedule(50, lambda: fired.append("x"))
    engine.run(until=50)
    assert fired == ["x"]


def test_events_scheduled_during_run_fire():
    engine = Engine()
    fired = []

    def first():
        fired.append("first")
        engine.schedule(10, lambda: fired.append("second"))

    engine.schedule(0, first)
    engine.run()
    assert fired == ["first", "second"]
    assert engine.now == 10


def test_cannot_schedule_in_the_past():
    engine = Engine()
    engine.schedule(10, lambda: engine.schedule_at(5, lambda: None))
    with pytest.raises(SimulationError):
        engine.run()


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-1, lambda: None)


def test_advance_to_moves_clock():
    engine = Engine()
    engine.advance_to(123)
    assert engine.now == 123


def test_advance_to_cannot_skip_events():
    engine = Engine()
    engine.schedule(10, lambda: None)
    with pytest.raises(SimulationError):
        engine.advance_to(20)


def test_advance_to_cannot_go_backwards():
    engine = Engine()
    engine.advance_to(100)
    with pytest.raises(SimulationError):
        engine.advance_to(50)


def test_unit_conversions_round_trip():
    assert seconds_to_ns(1.5) == 1_500_000_000
    assert ns_to_seconds(SECOND) == 1.0
    assert ns_to_seconds(seconds_to_ns(0.25)) == pytest.approx(0.25)


def test_run_with_empty_queue_advances_to_until():
    engine = Engine()
    engine.run(until=777)
    assert engine.now == 777

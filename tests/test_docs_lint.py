"""The docs-lint gate (tools/check_docs.py).

The checker is deliberately outside ``src/`` (it lints the repo, not
the simulator), so it is loaded here by file path.  The end-to-end
test is the same invocation CI's ``docs-lint`` job makes: the shipped
docs must be clean.  The unit tests plant one defect per check to
prove the checker can actually fail.
"""

import importlib.util
import os
import subprocess
import sys
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO, "tools", "check_docs.py")


def _load():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestShippedDocsClean(unittest.TestCase):
    """CI parity: the checked-in docs pass the lint."""

    def test_checker_exits_zero_on_shipped_docs(self):
        result = subprocess.run([sys.executable, CHECKER],
                                capture_output=True, text=True, cwd=REPO,
                                timeout=300)
        self.assertEqual(result.returncode, 0,
                         f"docs lint failed:\n{result.stdout}{result.stderr}")
        self.assertIn("0 problem(s)", result.stdout)


class TestCheckerCatchesDefects(unittest.TestCase):
    """Each check must be able to report a planted defect."""

    @classmethod
    def setUpClass(cls):
        cls.mod = _load()
        cls.checker = cls.mod.CliChecker()

    def test_probe_found_the_subcommand_vocabulary(self):
        for sub in ("chaos", "fleet", "perf", "lint", "openloop"):
            self.assertIn(sub, self.checker._subcommands)

    def test_unknown_flag_is_reported(self):
        problems = []
        self.checker.check_command("repro", " chaos kvstore --bogus-flag",
                                   "t:1", problems)
        self.assertEqual(len(problems), 1)
        self.assertIn("--bogus-flag", problems[0])

    def test_unknown_operand_is_reported(self):
        problems = []
        self.checker.check_command("repro", " fleet no-such-scenario",
                                   "t:1", problems)
        self.assertEqual(len(problems), 1)
        self.assertIn("no-such-scenario", problems[0])

    def test_unknown_subcommand_is_reported(self):
        problems = []
        self.checker.check_command("repro", " frobnicate", "t:1", problems)
        self.assertEqual(len(problems), 1)

    def test_missing_module_is_reported(self):
        problems = []
        self.checker.check_command("repro.no.such.module", "", "t:1",
                                   problems)
        self.assertEqual(len(problems), 1)

    def test_real_commands_pass(self):
        problems = []
        for module, rest in (
                ("repro", " fleet canary-kvstore --distributed"),
                ("repro", " chaos kvstore-distributed"),
                ("repro", " perf --scenario distributed-ring-kvstore"),
                ("repro.bench.distring", "")):
            self.checker.check_command(module, rest, "t:1", problems)
        self.assertEqual(problems, [])

    def test_elided_and_bare_commands_are_skipped(self):
        problems = []
        self.checker.check_command("repro", " chaos … more", "t:1", problems)
        self.checker.check_command("repro", "", "t:2", problems)
        self.assertEqual(problems, [])

    def test_broken_link_is_reported(self):
        problems = []
        page = os.path.join(REPO, "docs", "architecture.md")
        self.mod.check_links(page, "see [gone](no-such-page.md)", problems)
        self.assertEqual(len(problems), 1)
        self.assertIn("no-such-page.md", problems[0])

    def test_resolving_link_passes(self):
        problems = []
        page = os.path.join(REPO, "docs", "architecture.md")
        self.mod.check_links(
            page, "see [d](distributed.md) and [r](../README.md) "
                  "and [x](https://example.com) and [a](#anchor)",
            problems)
        self.assertEqual(problems, [])


if __name__ == "__main__":
    unittest.main()

"""Unit tests for CPU accounting (single-server queue semantics)."""

import pytest

from repro.errors import SimulationError
from repro.sim import CpuAccount


def test_idle_cpu_starts_work_at_arrival():
    cpu = CpuAccount()
    assert cpu.charge(arrival=100, cost=50) == 150


def test_busy_cpu_queues_work():
    cpu = CpuAccount()
    cpu.charge(arrival=0, cost=100)
    # Arrives while busy: starts at 100, ends at 130.
    assert cpu.charge(arrival=20, cost=30) == 130


def test_start_time_reflects_queue():
    cpu = CpuAccount()
    cpu.charge(arrival=0, cost=100)
    assert cpu.start_time(arrival=50) == 100
    assert cpu.start_time(arrival=200) == 200


def test_total_busy_accumulates_only_work():
    cpu = CpuAccount()
    cpu.charge(arrival=0, cost=10)
    cpu.charge(arrival=100, cost=5)
    assert cpu.total_busy == 15


def test_block_until_stalls_without_busy_time():
    cpu = CpuAccount()
    cpu.block_until(500)
    assert cpu.busy_until == 500
    assert cpu.total_busy == 0
    # Blocking to an earlier time is a no-op.
    cpu.block_until(100)
    assert cpu.busy_until == 500


def test_negative_cost_rejected():
    with pytest.raises(SimulationError):
        CpuAccount().charge(arrival=0, cost=-1)


def test_fork_starts_child_at_fork_time():
    cpu = CpuAccount("leader")
    cpu.charge(arrival=0, cost=1000)
    child = cpu.fork("follower", at=1000)
    assert child.busy_until == 1000
    assert child.total_busy == 0


def test_reset_clears_accounting():
    cpu = CpuAccount()
    cpu.charge(arrival=0, cost=10)
    cpu.reset()
    assert cpu.busy_until == 0
    assert cpu.total_busy == 0


def test_back_to_back_fifo_order():
    cpu = CpuAccount()
    completions = [cpu.charge(arrival=0, cost=10) for _ in range(5)]
    assert completions == [10, 20, 30, 40, 50]

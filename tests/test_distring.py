"""The distributed ring: wire protocol, back-pressure, partitions.

Covers the ``repro-ring/1`` frame format (`repro.net.ring_wire`), the
:class:`~repro.mve.distring.DistributedRing` window/ack machinery, the
``fleet.ring`` partition chaos site with demotion and resync, and the
end-to-end guarantees: distributed fleet runs are bit-stable per seed
and local runs are untouched by the distributed machinery.
"""

from types import SimpleNamespace

import pytest

from repro.chaos.injector import ChaosInjector, chaos_active
from repro.chaos.plan import Fault, FaultPlan, on_call
from repro.errors import SimulationError
from repro.mve.distring import DistributedRing
from repro.mve.events import ControlEvent, ControlKind
from repro.mve.ring_buffer import BufferFull
from repro.net.ring_wire import (RingLink, WireError, decode_ack,
                                 decode_frame, encode_ack, encode_frame,
                                 transit_ns)
from repro.syscalls.model import write_record


def rec(i):
    return write_record(4, f"payload-{i}".encode())


LINK = RingLink(latency_ns=1_000_000, bandwidth_bps=1_000_000_000,
                window=2, demote_timeout_ns=50_000_000,
                retransmit_ns=10_000_000)


class TestRingWire:
    def test_frame_round_trip_preserves_records(self):
        payloads = [rec(0), rec(1), rec(2)]
        sequence, decoded = decode_frame(encode_frame(7, payloads))
        assert sequence == 7
        assert [p.data for p in decoded] == [p.data for p in payloads]
        assert [p.name for p in decoded] == [p.name for p in payloads]
        assert [p.fd for p in decoded] == [p.fd for p in payloads]

    def test_frame_round_trip_preserves_control_events(self):
        event = ControlEvent(ControlKind.PROMOTE, at=123, version="2.0")
        _, decoded = decode_frame(encode_frame(0, [event]))
        assert isinstance(decoded[0], ControlEvent)
        assert decoded[0].kind is ControlKind.PROMOTE
        assert decoded[0].at == 123
        assert decoded[0].version == "2.0"

    def test_decoded_records_are_copies_not_references(self):
        original = rec(0)
        _, decoded = decode_frame(encode_frame(0, [original]))
        assert decoded[0] is not original

    def test_empty_frame_refused(self):
        with pytest.raises(WireError):
            encode_frame(0, [])

    def test_negative_sequence_refused(self):
        with pytest.raises(WireError):
            encode_frame(-1, [rec(0)])

    def test_truncated_frame_rejected(self):
        line = encode_frame(3, [rec(0)])
        with pytest.raises(WireError):
            decode_frame(line[:len(line) // 2])

    def test_garbage_rejected(self):
        with pytest.raises(WireError):
            decode_frame("not a frame at all")
        with pytest.raises(WireError):
            decode_frame("00000004 {!!}")

    def test_wrong_schema_rejected(self):
        from repro.replay.stream import frame_line
        line = frame_line({"schema": "repro-ring/99", "seq": 0,
                           "records": [{"x": 1}]})
        with pytest.raises(WireError, match="schema"):
            decode_frame(line)

    def test_bad_sequence_rejected(self):
        from repro.replay.stream import frame_line
        for seq in (None, -4, "7"):
            line = frame_line({"schema": "repro-ring/1", "seq": seq,
                               "records": [{"x": 1}]})
            with pytest.raises(WireError):
                decode_frame(line)

    def test_recordless_frame_rejected(self):
        from repro.replay.stream import frame_line
        line = frame_line({"schema": "repro-ring/1", "seq": 0,
                           "records": []})
        with pytest.raises(WireError):
            decode_frame(line)

    def test_ack_round_trip_and_rejection(self):
        assert decode_ack(encode_ack(41)) == 41
        with pytest.raises(WireError):
            decode_ack("garbage")
        from repro.replay.stream import frame_line
        with pytest.raises(WireError):
            decode_ack(frame_line({"schema": "repro-ring/1", "ack": -1}))

    def test_transit_charges_latency_plus_serialisation(self):
        link = RingLink(latency_ns=100, bandwidth_bps=1_000_000_000)
        assert transit_ns(link, 0) == 100
        assert transit_ns(link, 1000) == 100 + 1000
        # Rounded up, never down.
        slow = RingLink(latency_ns=0, bandwidth_bps=3_000_000_000)
        assert transit_ns(slow, 1) == 1

    def test_link_validation(self):
        assert RingLink().problems() == []
        bad = RingLink(latency_ns=-1, bandwidth_bps=0, window=0,
                       demote_timeout_ns=0, retransmit_ns=-1)
        assert len(bad.problems()) == 5
        with pytest.raises(SimulationError):
            DistributedRing(8, RingLink(window=0))


class TestDistributedRing:
    def test_entries_land_at_delivery_time(self):
        ring = DistributedRing(8, LINK)
        entry = ring.push(rec(0), produced_at=1000)
        # Delivered one propagation + serialisation later, never sooner.
        assert entry.produced_at >= 1000 + LINK.latency_ns
        assert entry.payload.data == rec(0).data

    def test_fifo_order_survives_the_wire(self):
        ring = DistributedRing(8, RingLink(window=8))
        for i in range(5):
            ring.advance((i + 1) * 10_000_000)
            ring.push(rec(i), produced_at=(i + 1) * 10_000_000)
        out = [ring.pop() for _ in range(5)]
        assert [e.payload.data for e in out] == \
            [rec(i).data for i in range(5)]
        deliveries = [e.produced_at for e in out]
        assert deliveries == sorted(deliveries)

    def test_window_full_maps_to_ring_stall(self):
        ring = DistributedRing(8, LINK)  # window=2
        ring.push(rec(0), 0)
        ring.push(rec(1), 0)
        assert ring.inflight() == 2
        assert ring.free_slots() == 0
        assert ring.is_full()
        with pytest.raises(BufferFull):
            ring.push(rec(2), 0)
        # The stall clears when the earliest ack lands.
        freed_at = ring.next_free_at()
        assert freed_at is not None
        ring.advance(freed_at)
        assert ring.free_slots() > 0
        ring.push(rec(2), freed_at)
        assert ring.acks_received >= 1

    def test_push_that_fills_the_window_still_lands(self):
        # Regression: the transmit itself fills the window to exactly
        # link.window; landing the already-sent frame must not consult
        # the window again (it used to raise BufferFull post-transmit
        # and retransmit forever).
        ring = DistributedRing(8, LINK)  # window=2
        ring.push(rec(0), 0)
        entry = ring.push(rec(1), 0)  # fills the window mid-push
        assert entry.payload.data == rec(1).data
        assert ring.frames_sent == 2
        assert len(ring) == 2

    def test_next_free_at_is_none_without_inflight_frames(self):
        ring = DistributedRing(8, LINK)
        assert ring.next_free_at() is None

    def test_inflight_high_watermark_and_stats_shape(self):
        ring = DistributedRing(8, LINK)
        ring.push(rec(0), 0)
        ring.push(rec(1), 0)
        stats = ring.stats()
        assert stats["frames_sent"] == 2
        assert stats["inflight_high_watermark"] == 2
        assert stats["bytes_sent"] > 0
        assert list(stats) == sorted(stats)

    def test_clear_drops_inflight_frames_too(self):
        ring = DistributedRing(8, LINK)
        ring.push(rec(0), 0)
        ring.clear()
        assert ring.inflight() == 0
        assert len(ring) == 0


def _partition_ring(kind, *, param=None, count=-1, link=None):
    """A ring whose chaos injector fires ``kind`` on every frame."""
    plan = FaultPlan("test-partition", (
        Fault("fleet.ring", kind, on_call(1, count=count),
              param=param or {}),))
    injector = ChaosInjector(plan)
    # on_call(1) with unlimited count fires per-site-call index 1 only;
    # use a predicate for "every frame" instead.
    return injector, link or LINK


class TestPartitions:
    def _ring_with_faults(self, faults, link=LINK):
        injector = ChaosInjector(FaultPlan("test-partition", faults))
        kernel = SimpleNamespace(chaos=injector, tracer=None)
        return DistributedRing(16, link, kernel), injector

    def test_delay_fault_postpones_delivery_and_accrues(self):
        ring, _ = self._ring_with_faults(
            (Fault("fleet.ring", "partition-delay", on_call(1),
                   param={"delay_ns": 7_000_000}),))
        delayed = ring.push(rec(0), 0)
        clean = DistributedRing(16, LINK).push(rec(0), 0)
        assert delayed.produced_at == clean.produced_at + 7_000_000
        assert ring.frames_delayed == 1
        assert ring.partition_delay_ns == 7_000_000
        assert not ring.partition_timed_out

    def test_drop_fault_costs_a_retransmit(self):
        ring, _ = self._ring_with_faults(
            (Fault("fleet.ring", "partition-drop", on_call(1)),))
        entry = ring.push(rec(0), 0)
        clean = DistributedRing(16, LINK).push(rec(0), 0)
        assert entry.produced_at == clean.produced_at + LINK.retransmit_ns
        assert ring.frames_dropped == 1

    def test_reorder_parks_later_frames_behind_the_late_one(self):
        # Frame 0 is deferred; frame 1, sent later, would arrive first
        # on the raw wire — the monotone clamp applies them in order.
        ring, _ = self._ring_with_faults(
            (Fault("fleet.ring", "partition-reorder", on_call(1),
                   param={"defer_ns": 30_000_000}),),
            link=RingLink(latency_ns=1_000_000, window=8,
                          demote_timeout_ns=200_000_000))
        first = ring.push(rec(0), 0)
        second = ring.push(rec(1), 100)
        assert ring.frames_reordered == 1
        assert second.produced_at >= first.produced_at
        out = [ring.pop(), ring.pop()]
        assert [e.payload.data for e in out] == [rec(0).data, rec(1).data]

    def test_cumulative_delay_trips_the_demotion_timeout(self):
        faults = tuple(
            Fault("fleet.ring", "partition-delay", on_call(i + 1),
                  param={"delay_ns": 20_000_000})
            for i in range(3))  # 60 ms total > 50 ms budget
        ring, _ = self._ring_with_faults(
            faults, link=RingLink(latency_ns=1_000_000, window=8,
                                  demote_timeout_ns=50_000_000))
        for i in range(3):
            ring.push(rec(i), i * 1000)
        assert ring.partition_timed_out
        assert ring.partition_timed_out_at is not None
        assert ring.partition_timeouts == 1

    def test_resync_rejoins_with_a_clean_slate(self):
        faults = tuple(
            Fault("fleet.ring", "partition-delay", on_call(i + 1),
                  param={"delay_ns": 30_000_000})
            for i in range(2))
        ring, _ = self._ring_with_faults(faults)
        ring.push(rec(0), 0)
        ring.push(rec(1), 1000)
        assert ring.partition_timed_out
        ring.resync(100_000_000)
        assert not ring.partition_timed_out
        assert ring.partition_delay_ns == 0
        assert ring.inflight() == 0
        assert ring.resyncs == 1
        # The lifetime timeout tally survives the rejoin.
        assert ring.partition_timeouts == 1
        # Deliveries resume no earlier than the rejoin point.
        entry = ring.push(rec(2), 1_000_000)
        assert entry.produced_at >= 100_000_000

    def test_local_scenario_never_reaches_the_site(self):
        # fleet.ring fires per frame; a local ring sends none, so a
        # partition plan against a local run is entirely vacuous.
        from repro.chaos.scenarios import run_kv_update_scenario
        plan = FaultPlan("vacuous", (
            Fault("fleet.ring", "partition-drop", on_call(1)),))
        with chaos_active(ChaosInjector(plan)) as injector:
            run_kv_update_scenario()
        assert injector.site_calls.get("fleet.ring", 0) == 0
        assert injector.injections == []


class TestEndToEnd:
    def test_distributed_scenario_completes_cleanly(self):
        from repro.chaos.invariants import check_run
        from repro.chaos.scenarios import run_kv_update_scenario
        result = run_kv_update_scenario(distributed=True)
        assert result.finalized
        assert check_run(result.observations, result.final_table) == []

    def test_distributed_scenario_is_bit_stable(self):
        from repro.chaos.scenarios import run_kv_update_scenario
        first = run_kv_update_scenario(distributed=True)
        second = run_kv_update_scenario(distributed=True)
        assert first.observations == second.observations
        assert first.final_table == second.final_table

    def test_default_fleet_report_has_no_distring_key(self):
        from repro.cluster.fleet import run_fleet_scenario
        report = run_fleet_scenario()
        assert "distring" not in report

    def test_distributed_fleet_report_is_bit_stable(self):
        import json
        from repro.cluster.fleet import run_fleet_scenario, validate_report
        first = run_fleet_scenario(distributed=True)
        second = run_fleet_scenario(distributed=True)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)
        assert validate_report(first) == []
        distring = first["distring"]
        assert distring["link"] == RingLink().as_dict()
        assert distring["wire"]["frames_sent"] > 0
        # Every pair's follower lives on a different node.
        for leader, follower in distring["pairs"].items():
            assert leader != follower

    def test_bench_sweep_is_bit_stable_and_monotone(self):
        from repro.bench.distring import run_distring_comparison
        first = run_distring_comparison(seed=1, commands=60)
        second = run_distring_comparison(seed=1, commands=60)
        assert first == second
        rows = first["rows"]
        assert rows[0]["ring"] == "local"
        stalls = [row["ring_stalls"] for row in rows[1:]]
        assert stalls == sorted(stalls)
        availability = [row["slo_availability"] for row in rows[1:]]
        assert availability == sorted(availability, reverse=True)
        assert all(row["finalized"] for row in rows)


class TestFleetLintMve704:
    def test_cross_node_without_link_is_flagged(self):
        from repro.analysis.fleet_lint import lint_fleet_topology
        from repro.cluster.shard import FleetSpec
        spec = FleetSpec(2, 2, wave_size=1, cross_node_pairs=True)
        assert spec.link_problems() != []
        findings = lint_fleet_topology("app", spec)
        assert [f.code for f in findings] == ["MVE704"]
        assert findings[0].severity.value == "error"

    def test_malformed_link_is_flagged(self):
        from repro.analysis.fleet_lint import lint_fleet_topology
        from repro.cluster.shard import FleetSpec
        spec = FleetSpec(2, 2, wave_size=1, cross_node_pairs=True,
                         ring_link=RingLink(window=0))
        assert any(f.code == "MVE704"
                   for f in lint_fleet_topology("app", spec))

    def test_declared_link_is_clean(self):
        from repro.analysis.fleet_lint import lint_fleet_topology
        from repro.cluster.shard import FleetSpec
        spec = FleetSpec(2, 2, wave_size=1, cross_node_pairs=True,
                         ring_link=RingLink())
        assert lint_fleet_topology("app", spec) == []

    def test_bad_catalog_trips_mve704(self):
        from repro.analysis.cli import run_catalog
        from tests.fixtures.bad_catalog import catalog
        report = run_catalog(catalog())
        assert any(f.code == "MVE704" for f in report.findings)

    def test_mve704_is_registered_for_sarif(self):
        from repro.analysis.findings import RULE_METADATA
        assert "MVE704" in RULE_METADATA


class TestDistributedCampaign:
    def test_partition_cells_are_in_the_distributed_grid(self):
        from repro.chaos.campaign import default_grid, probe_site_calls
        distributed = probe_site_calls("kvstore-distributed")
        assert distributed.get("fleet.ring", 0) > 0
        grid = default_grid(distributed, seed=1)
        kinds = {f.kind for f in grid if f.site == "fleet.ring"}
        assert kinds == {"partition-drop", "partition-delay",
                         "partition-reorder"}
        # The local grid stays exactly as it was: no reachable
        # fleet.ring calls, no partition cells.
        local = probe_site_calls("kvstore")
        assert local.get("fleet.ring", 0) == 0
        assert all(f.site != "fleet.ring"
                   for f in default_grid(local, seed=1))

    def test_sustained_partition_cell_is_clean(self):
        # The demotion-on-timeout path end to end: every frame dropped
        # until the demote budget trips; the update must roll back (or
        # mask) without ever lying to a client.
        from repro.chaos.campaign import run_campaign
        from repro.chaos.plan import when
        plan = FaultPlan("sustained-partition", (
            Fault("fleet.ring", "partition-drop",
                  when(lambda ctx: True, count=-1,
                       label="sustained partition")),))
        report = run_campaign("kvstore-distributed", plan=plan)
        assert report["cells"] == 1
        assert report["outcomes"].get("invariant-violation", 0) == 0

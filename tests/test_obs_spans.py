"""The causal span layer: zero-cost when disabled, dynamic-extent
parenting when enabled, and the ``repro-span/1`` validators.

The zero-allocation tests mirror ``test_obs_overhead.py``: "free" is
asserted in counts, not wall-clock — :class:`SpanCollector` keeps
process-lifetime class tallies exactly so this test can pin the
disabled path to *zero span objects*.
"""

import pytest

from repro.analysis.trace_lint import lint_span_file, lint_spans
from repro.obs import Tracer, current_tracer, tracing
from repro.obs.spans import (
    PHASES,
    SPAN_SCHEMA,
    SpanCollector,
    validate_span_file,
    validate_span_lines,
)
from repro.perf.scenarios import build_rule_heavy_mve_redis

FIXTURE = "tests/fixtures/bad_spans.jsonl"


# ---------------------------------------------------------------------------
# Zero-allocation contract
# ---------------------------------------------------------------------------


class TestDisabledPath:
    def test_no_tracer_allocates_no_spans(self):
        assert current_tracer() is None
        collectors_before = SpanCollector.created_total
        spans_before = SpanCollector.opened_total

        thunk = build_rule_heavy_mve_redis(32)
        vrequests, syscalls, extras = thunk()

        # The workload really ran, through every instrumented hook...
        assert vrequests == 32
        assert syscalls > 0
        assert extras["ring_high_watermark"] > 0
        # ...and not one span object was born.
        assert SpanCollector.created_total == collectors_before
        assert SpanCollector.opened_total == spans_before

    def test_tracer_without_spans_allocates_no_spans(self):
        # A tracer alone must not wake the span layer: spans are a
        # second, independent opt-in.
        collectors_before = SpanCollector.created_total
        spans_before = SpanCollector.opened_total
        with tracing(Tracer(experiment="span-overhead")) as tracer:
            thunk = build_rule_heavy_mve_redis(8)
            thunk()
        assert tracer.spans is None
        assert tracer.events  # tracing itself did record
        assert SpanCollector.created_total == collectors_before
        assert SpanCollector.opened_total == spans_before

    def test_enabled_path_actually_records(self):
        # Control experiment: the same workload with spans enabled does
        # record — proving the zeros above measure the guard, not dead
        # hooks.
        with tracing(Tracer(experiment="span-control",
                            spans=True)) as tracer:
            thunk = build_rule_heavy_mve_redis(8)
            thunk()
        assert tracer.spans is not None
        tally = tracer.spans.kind_tally()
        assert tally.get("request", 0) == 8
        assert all(span.end_ns is not None
                   for span in tracer.spans.request_spans())


# ---------------------------------------------------------------------------
# Collector semantics
# ---------------------------------------------------------------------------


class TestCollector:
    def test_dynamic_extent_parenting(self):
        c = SpanCollector()
        outer = c.open("fleet.round", "fleet", 0)
        inner = c.open("request", "gateway", 10)
        stall = c.add("mve.ring-stall", "mve", 12, 15)
        c.close(inner, 20)
        c.close(outer, 30)
        orphan = c.add("mve.demotion", "mve", 40, 40)
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert stall.parent_id == inner.span_id
        assert orphan.parent_id is None
        assert [s.span_id for s in c.children_of(inner.span_id)] \
            == [stall.span_id]

    def test_explicit_parent_overrides_the_stack(self):
        c = SpanCollector()
        umbrella = c.add("dsu.update", "dsu", 0, 100)
        child = c.add("dsu.quiesce", "dsu", 0, 10,
                      parent=umbrella.span_id)
        assert child.parent_id == umbrella.span_id

    def test_close_enforces_stack_discipline(self):
        c = SpanCollector()
        outer = c.open("request", "gateway", 0)
        c.open("request", "gateway", 1)
        with pytest.raises(ValueError, match="innermost"):
            c.close(outer, 5)

    def test_phase_is_stamped_at_creation_and_validated(self):
        c = SpanCollector()
        before = c.add("request", "gateway", 0, 1)
        c.set_phase("mve-active")
        after = c.add("request", "gateway", 2, 3)
        assert (before.phase, after.phase) == ("normal", "mve-active")
        with pytest.raises(ValueError, match="unknown phase"):
            c.set_phase("warp-speed")
        assert c.phase == "mve-active"

    def test_overlap_is_clamped_and_open_spans_contribute_zero(self):
        c = SpanCollector()
        closed = c.add("dsu.quiesce", "dsu", 10, 20)
        opened = c.open("request", "gateway", 10)
        assert closed.overlap_ns(0, 100) == 10
        assert closed.overlap_ns(15, 17) == 2
        assert closed.overlap_ns(50, 60) == 0
        assert opened.overlap_ns(0, 100) == 0
        assert opened.duration_ns is None


# ---------------------------------------------------------------------------
# repro-span/1 validation
# ---------------------------------------------------------------------------


class TestValidation:
    def _round_trip(self, tmp_path):
        c = SpanCollector()
        span = c.open("request", "gateway", 0, client="c0")
        c.close(span, 5, answered=True)
        c.add("mve.ring-stall", "mve", 1, 3)
        path = tmp_path / "spans.jsonl"
        c.write_jsonl(str(path), experiment="unit")
        return path

    def test_round_trip_validates(self, tmp_path):
        path = self._round_trip(tmp_path)
        assert validate_span_file(str(path)) == []
        first = path.read_text().splitlines()[0]
        assert SPAN_SCHEMA in first

    def test_truncated_file_is_caught(self, tmp_path):
        path = self._round_trip(tmp_path)
        lines = path.read_text().splitlines()
        assert any("truncated" in p
                   for p in validate_span_lines(lines[:-1]))

    def test_malformed_lines_are_caught(self, tmp_path):
        path = self._round_trip(tmp_path)
        lines = path.read_text().splitlines()
        assert validate_span_lines([]) == ["span file is empty"]
        assert any("not JSON" in p
                   for p in validate_span_lines(["{nope", *lines[1:]]))
        bad_schema = lines[:]
        bad_schema[0] = '{"schema": "repro-span/0", "spans": 2}'
        assert any("schema" in p for p in validate_span_lines(bad_schema))
        bad_phase = lines[:]
        bad_phase[1] = bad_phase[1].replace('"normal"', '"sideways"')
        assert any("phase" in p for p in validate_span_lines(bad_phase))
        no_id = lines[:]
        no_id[1] = no_id[1].replace('"span": 1', '"span": "one"')
        assert any("'span'" in p for p in validate_span_lines(no_id))

    def test_phase_catalogue_is_the_upgrade_lifecycle(self):
        assert PHASES == ("normal", "mve-active", "quiesce-pause",
                          "promoted", "rolled-back")


# ---------------------------------------------------------------------------
# MVE9xx span hygiene (satellite: trace_lint)
# ---------------------------------------------------------------------------


class TestSpanHygiene:
    def test_bad_fixture_trips_all_three_rules(self):
        findings = lint_span_file(FIXTURE)
        codes = sorted(f.code for f in findings)
        assert codes == ["MVE901", "MVE902", "MVE903"]
        by_code = {f.code: f for f in findings}
        assert by_code["MVE901"].severity.value == "warning"
        assert by_code["MVE902"].severity.value == "error"
        assert by_code["MVE903"].severity.value == "error"
        # Locations are file:line, pointing at the offending span line.
        assert by_code["MVE902"].location.endswith(":4")

    def test_clean_collector_output_has_no_findings(self, tmp_path):
        c = SpanCollector()
        span = c.open("request", "gateway", 0)
        c.add("mve.ring-stall", "mve", 1, 2)
        c.close(span, 5)
        assert lint_spans(c.to_jsonl_lines("unit")) == []

    def test_unparseable_lines_are_skipped_not_fatal(self):
        lines = ['{"schema": "repro-span/1", "spans": 1}', "{nope",
                 '{"span": 1, "parent": null, "kind": "request", '
                 '"layer": "gateway", "start_ns": 0, "end_ns": 1, '
                 '"phase": "normal"}']
        assert lint_spans(lines) == []

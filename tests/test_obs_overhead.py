"""Satellite regression: tracing disabled must cost nothing.

"Nothing" is asserted in counts, not wall-clock: the rule-heavy Redis
perf scenario runs a full MVE catch-up workload, and with no tracer
installed the observability layer may create zero tracers and emit zero
trace events.  :class:`~repro.obs.trace.Tracer` keeps process-lifetime
class tallies exactly for this test.
"""

from repro.obs import Tracer, current_tracer, tracing
from repro.perf.scenarios import build_rule_heavy_mve_redis


def test_disabled_path_creates_and_emits_nothing():
    assert current_tracer() is None
    created_before = Tracer.created_total
    emitted_before = Tracer.emitted_total

    thunk = build_rule_heavy_mve_redis(32)
    vrequests, syscalls, extras = thunk()

    # The workload really ran...
    assert vrequests == 32
    assert syscalls > 0
    assert extras["ring_high_watermark"] > 0
    # ...and the observability layer never woke up.
    assert Tracer.created_total == created_before
    assert Tracer.emitted_total == emitted_before


def test_enabled_path_actually_records():
    # Control experiment: the same workload with a tracer installed does
    # emit — proving the zero above measures the guard, not dead hooks.
    with tracing(Tracer(experiment="overhead-control")) as tracer:
        thunk = build_rule_heavy_mve_redis(8)
        thunk()
    assert tracer.events
    assert tracer.metrics.snapshot()["syscalls.total"]["value"] > 0

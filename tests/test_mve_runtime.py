"""Integration tests for the Varan runtime: fork, replay, divergence,
promotion, back-pressure, and crash fail-over."""

import pytest

from repro.errors import ServerCrash, SimulationError
from repro.mve import VaranRuntime
from repro.mve.gateway import GatewayRole
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    xform_1_to_2,
    xform_drop_table,
    xform_uninitialised_type,
)
from repro.syscalls.costs import PROFILES, ExecutionMode
from repro.workloads import VirtualClient


def make_runtime(ring_capacity=256, rules=None, with_kitsune=False):
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["kvstore"],
                           ring_capacity=ring_capacity,
                           with_kitsune=with_kitsune,
                           rules=rules)
    client = VirtualClient(kernel, server.address)
    return kernel, runtime, client


def fork_updated_v2(runtime, xform=xform_1_to_2, now=0):
    """Fork a follower and dynamically 'update' it to v2."""
    child = runtime.leader.server.fork()
    child.apply_version(KVStoreV2(), xform(dict(child.heap)))
    return runtime.fork_follower(now, server=child)


class TestSingleLeader:
    def test_serves_without_follower(self):
        _, runtime, client = make_runtime()
        assert client.command(runtime, b"PUT a 1") == b"+OK\r\n"
        assert client.command(runtime, b"GET a") == b"1\r\n"
        assert not runtime.in_mve_mode
        assert runtime.ring.is_empty()

    def test_single_leader_mode_costs(self):
        _, runtime, _ = make_runtime(with_kitsune=False)
        assert runtime.leader_mode() is ExecutionMode.VARAN_SINGLE
        _, runtime, _ = make_runtime(with_kitsune=True)
        assert runtime.leader_mode() is ExecutionMode.MVEDSUA_SINGLE

    def test_pump_returns_monotone_completion_times(self):
        _, runtime, client = make_runtime()
        _, t1 = client.request(runtime, b"PUT a 1\r\n", now=0)
        _, t2 = client.request(runtime, b"PUT b 2\r\n", now=t1)
        assert t2 > t1 > 0


class TestIdenticalFollower:
    """Plain Varan: two copies of the same version (the Varan-2 rows)."""

    def test_fork_and_replay_without_divergence(self):
        _, runtime, client = make_runtime()
        client.command(runtime, b"PUT a 1")
        runtime.fork_follower(10**9)
        assert runtime.in_mve_mode
        assert runtime.leader_mode() is ExecutionMode.VARAN_LEADER
        client.command(runtime, b"PUT b 2", now=2 * 10**9)
        client.command(runtime, b"GET a", now=3 * 10**9)
        runtime.drain_follower()
        assert runtime.ring.is_empty()
        assert runtime.last_divergence is None
        # Both processes converged on the same state.
        assert runtime.follower.server.heap == runtime.leader.server.heap

    def test_follower_lags_then_catches_up(self):
        _, runtime, client = make_runtime()
        runtime.fork_follower(0)
        for i in range(5):
            client.command(runtime, b"PUT k%d v" % i, now=10**9 + i)
        assert not runtime.ring.is_empty()
        runtime.drain_follower()
        assert runtime.ring.is_empty()
        assert len(runtime.follower.server.heap["table"]) == 5

    def test_double_fork_rejected(self):
        _, runtime, _ = make_runtime()
        runtime.fork_follower(0)
        with pytest.raises(SimulationError):
            runtime.fork_follower(1)

    def test_fork_charges_leader_pause(self):
        _, runtime, _ = make_runtime()
        before = runtime.leader.cpu.busy_until
        runtime.fork_follower(0)
        assert runtime.leader.cpu.busy_until > before

    def test_follower_sessions_track_new_connections(self):
        kernel, runtime, client = make_runtime()
        runtime.fork_follower(0)
        late = VirtualClient(kernel, runtime.leader.server.address, "late")
        late.command(runtime, b"PUT x 9", now=10**9)
        runtime.drain_follower()
        assert runtime.follower.server.heap["table"] == {"x": "9"}


class TestUpdatedFollower:
    """Mvedsua's outdated-leader stage: old leads, new follows."""

    def test_catchup_preserves_state_relation(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        client.command(runtime, b"PUT a 1")
        fork_updated_v2(runtime)
        client.command(runtime, b"PUT b 2", now=10**9)
        client.command(runtime, b"GET a", now=2 * 10**9)
        runtime.drain_follower()
        leader_heap = runtime.leader.server.heap
        follower_heap = runtime.follower.server.heap
        assert follower_heap == xform_1_to_2(
            {"table": dict(leader_heap["table"])})

    def test_new_command_redirected_by_rule(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        fork_updated_v2(runtime)
        reply = client.command(runtime, b"PUT-number pi 3", now=10**9)
        assert reply == b"-ERR unknown command\r\n"
        runtime.drain_follower()
        assert runtime.last_divergence is None
        assert "put_typed" in runtime.rules_fired
        # Neither version stored the rejected key.
        assert "pi" not in runtime.leader.server.heap["table"]
        assert "pi" not in runtime.follower.server.heap["table"]

    def test_new_command_without_rule_diverges(self):
        _, runtime, client = make_runtime(rules=None)
        fork_updated_v2(runtime)
        client.command(runtime, b"PUT-number pi 3", now=10**9)
        runtime.drain_follower()
        assert runtime.last_divergence is not None
        assert runtime.follower is None  # terminated
        assert "divergence" in runtime.event_kinds()

    def test_drop_table_bug_detected_as_divergence(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        client.command(runtime, b"PUT k v")
        fork_updated_v2(runtime, xform=xform_drop_table)
        assert client.command(runtime, b"GET k", now=10**9) == b"v\r\n"
        runtime.drain_follower()
        assert runtime.follower is None
        assert runtime.last_divergence is not None
        # Clients keep being served by the old version.
        assert client.command(runtime, b"GET k", now=2 * 10**9) == b"v\r\n"

    def test_uninitialised_type_bug_crashes_follower_only(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        client.command(runtime, b"PUT k v")
        fork_updated_v2(runtime, xform=xform_uninitialised_type)
        client.command(runtime, b"GET k", now=10**9)
        runtime.drain_follower()
        assert "follower-crash" in runtime.event_kinds()
        assert runtime.follower is None
        assert client.command(runtime, b"GET k", now=2 * 10**9) == b"v\r\n"


class TestPromotion:
    def test_promote_swaps_roles_and_direction(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        fork_updated_v2(runtime)
        client.command(runtime, b"PUT a 1", now=10**9)
        t5 = runtime.promote(2 * 10**9)
        assert t5 >= 2 * 10**9
        assert runtime.leader.version_name == "2.0"
        assert runtime.follower.version_name == "1.0"
        assert runtime.leader_is_updated
        assert runtime.leader.gateway.role is GatewayRole.DIRECT
        assert runtime.follower.gateway.role is GatewayRole.REPLAY

    def test_new_semantics_exposed_after_promotion(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        fork_updated_v2(runtime)
        runtime.promote(10**9)
        reply = client.command(runtime, b"PUT-string s v", now=2 * 10**9)
        assert reply == b"+OK\r\n"
        runtime.drain_follower()
        # Reverse rule mapped PUT-string -> PUT for the old follower.
        assert runtime.last_divergence is None
        assert runtime.follower.server.heap["table"]["s"] == "v"

    def test_unmappable_new_command_terminates_old_follower(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        fork_updated_v2(runtime)
        runtime.promote(10**9)
        client.command(runtime, b"PUT-number n 5", now=2 * 10**9)
        runtime.drain_follower()
        assert runtime.follower is None  # divergence, as §3.3.2 predicts
        # New leader unaffected.
        assert client.command(runtime, b"TYPE n", now=3 * 10**9) == b"number\r\n"

    def test_finalize_returns_to_single_leader(self):
        _, runtime, client = make_runtime(rules=kv_rules())
        fork_updated_v2(runtime)
        runtime.promote(10**9)
        runtime.finalize(2 * 10**9)
        assert not runtime.in_mve_mode
        assert runtime.leader.version_name == "2.0"

    def test_promote_without_follower_rejected(self):
        _, runtime, _ = make_runtime()
        with pytest.raises(SimulationError):
            runtime.promote(0)


class TestLeaderCrashFailover:
    class CrashingV1(KVStoreV1):
        """v1 with a bug: GETCRASH kills the server; v2 fixed it."""

        def handle(self, heap, request, session=None, io=None):
            if request.startswith(b"GETCRASH"):
                raise ServerCrash("old-version bug")
            return super().handle(heap, request, session)

    def make_crashy(self):
        kernel = VirtualKernel()
        server = KVStoreServer(self.CrashingV1())
        server.attach(kernel)
        runtime = VaranRuntime(kernel, server, PROFILES["kvstore"])
        client = VirtualClient(kernel, server.address)
        return runtime, client

    def test_crash_without_follower_propagates(self):
        runtime, client = self.make_crashy()
        with pytest.raises(ServerCrash):
            client.command(runtime, b"GETCRASH")

    def test_crash_with_follower_promotes_it(self):
        runtime, client = self.make_crashy()
        client.command(runtime, b"PUT a 1")
        fork_updated_v2(runtime)  # v2 "fixed" the crash
        client.command(runtime, b"PUT b 2", now=10**9)
        # The leader crashes; the follower takes over and answers.
        reply = client.command(runtime, b"GETCRASH", now=2 * 10**9)
        assert reply == b"-ERR unknown command\r\n"
        assert runtime.leader.version_name == "2.0"
        assert runtime.follower is None
        assert "follower-promoted-after-crash" in runtime.event_kinds()
        # State was preserved across the fail-over, including b.
        assert client.command(runtime, b"GET b", now=3 * 10**9) == b"2\r\n"

    def test_crash_with_crashed_follower_propagates(self):
        runtime, client = self.make_crashy()
        client.command(runtime, b"PUT k v")
        fork_updated_v2(runtime, xform=xform_uninitialised_type)
        client.command(runtime, b"GET k", now=10**9)
        runtime.drain_follower()  # follower crashed and was dropped
        with pytest.raises(ServerCrash):
            client.command(runtime, b"GETCRASH", now=2 * 10**9)


class TestBackPressure:
    def test_full_ring_blocks_leader_until_follower_consumes(self):
        _, runtime, client = make_runtime(ring_capacity=16)
        runtime.fork_follower(0)
        # Make the follower unavailable for a long virtual time, as if
        # it were performing a slow dynamic update.
        runtime.follower.cpu.block_until(10**12)
        last = 0
        for i in range(40):
            _, last = client.request(runtime, b"PUT k%02d v\r\n" % i,
                                     now=10**9)
        # The leader must have been stalled behind the follower.
        assert last >= 10**12

    def test_large_ring_absorbs_slow_follower(self):
        _, runtime, client = make_runtime(ring_capacity=1 << 16)
        runtime.fork_follower(0)
        runtime.follower.cpu.block_until(10**12)
        last = 0
        for i in range(40):
            _, last = client.request(runtime, b"PUT k%02d v\r\n" % i,
                                     now=10**9)
        assert last < 2 * 10**9  # never blocked on the buffer

    def test_ring_smaller_than_iteration_rejected(self):
        _, runtime, client = make_runtime(ring_capacity=1)
        runtime.fork_follower(0)
        runtime.follower.cpu.block_until(10**12)
        # The error must name both the problem and the configured size.
        with pytest.raises(SimulationError,
                           match=r"cannot hold one leader iteration.*"
                                 r"capacity 1"):
            client.command(runtime, b"PUT a 1", now=10**9)

    def test_batched_publish_matches_per_record_timestamps(self):
        """push_many stamps each iteration's burst with one produce time,
        exactly as the old per-record loop did between BufferFull events."""
        _, runtime, client = make_runtime(ring_capacity=1 << 10)
        runtime.fork_follower(0)
        client.command(runtime, b"PUT a 1", now=10**9)
        entries = [runtime.ring.pop() for _ in range(len(runtime.ring))]
        stamps = []
        for descriptor in runtime._iterations:
            burst = entries[:descriptor.n_records]
            entries = entries[descriptor.n_records:]
            assert len({e.produced_at for e in burst}) == 1
            stamps.append(burst[0].produced_at)
        assert not entries  # descriptors account for every ring entry
        assert stamps == sorted(stamps)

    def test_high_watermark_tracks_backlog(self):
        _, runtime, client = make_runtime(ring_capacity=1 << 10)
        runtime.fork_follower(0)
        for i in range(10):
            client.command(runtime, b"PUT k%d v" % i, now=10**9 + i)
        assert runtime.ring.high_watermark > 0
        runtime.drain_follower()
        assert runtime.ring.is_empty()

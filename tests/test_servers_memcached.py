"""Tests for the Memcached analogue: protocol, threading, LibEvent."""

from repro.core import Mvedsua, Stage
from repro.dsu.transform import TransformRegistry
from repro.libevent import LibEventLoop
from repro.net import VirtualKernel
from repro.servers.memcached import (
    MANY_CLIENTS_THRESHOLD,
    MemcachedServer,
    memcached_rules,
    memcached_transforms,
    memcached_version,
    xform_free_libevent,
)
from repro.servers.native import NativeRuntime
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def deployment(adapted=True, reset=None, transforms=None, version="1.2.2"):
    kernel = VirtualKernel()
    server = MemcachedServer(memcached_version(version),
                             mvedsua_adapted=adapted,
                             libevent_reset_on_abort=reset)
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["memcached"],
                      transforms=transforms or memcached_transforms())
    return kernel, server, mvedsua


class TestLibEventLoop:
    def test_round_robin_rotation(self):
        loop = LibEventLoop()
        assert loop.dispatch_order([1, 2, 3]) == [1, 2, 3]
        # Cursor advanced by 3; next batch of 2 rotates by 3 % 2 = 1.
        assert loop.dispatch_order([4, 5]) == [5, 4]

    def test_reset_forgets_position(self):
        loop = LibEventLoop()
        loop.dispatch_order([1])
        loop.reset()
        assert loop.dispatch_order([2, 3]) == [2, 3]

    def test_empty_ready_set(self):
        loop = LibEventLoop()
        assert loop.dispatch_order([]) == []
        assert loop.cursor == 0


class TestProtocol:
    def setup_method(self):
        self.kernel = VirtualKernel()
        self.server = MemcachedServer(memcached_version("1.2.2"))
        self.server.attach(self.kernel)
        self.runtime = NativeRuntime(self.kernel, self.server,
                                     PROFILES["memcached"])
        self.client = VirtualClient(self.kernel, self.server.address)

    def cmd(self, data, now=0):
        response, _ = self.client.request(self.runtime, data, now)
        return response

    def test_set_and_get(self):
        assert self.cmd(b"set k 5 0 5\r\nhello\r\n") == b"STORED\r\n"
        assert self.cmd(b"get k\r\n") == b"VALUE k 5 5\r\nhello\r\nEND\r\n"

    def test_get_miss(self):
        assert self.cmd(b"get nope\r\n") == b"END\r\n"

    def test_multi_key_get(self):
        self.cmd(b"set a 0 0 1\r\nA\r\n")
        self.cmd(b"set b 0 0 1\r\nB\r\n")
        assert self.cmd(b"get a b missing\r\n") == \
            b"VALUE a 0 1\r\nA\r\nVALUE b 0 1\r\nB\r\nEND\r\n"

    def test_add_and_replace(self):
        assert self.cmd(b"add k 0 0 1\r\nx\r\n") == b"STORED\r\n"
        assert self.cmd(b"add k 0 0 1\r\ny\r\n") == b"NOT_STORED\r\n"
        assert self.cmd(b"replace k 0 0 1\r\nz\r\n") == b"STORED\r\n"
        assert self.cmd(b"replace nope 0 0 1\r\nw\r\n") == b"NOT_STORED\r\n"

    def test_append_prepend(self):
        self.cmd(b"set k 0 0 2\r\nbb\r\n")
        assert self.cmd(b"append k 0 0 2\r\ncc\r\n") == b"STORED\r\n"
        assert self.cmd(b"prepend k 0 0 2\r\naa\r\n") == b"STORED\r\n"
        assert self.cmd(b"get k\r\n") == b"VALUE k 0 6\r\naabbcc\r\nEND\r\n"
        assert self.cmd(b"append nope 0 0 1\r\nx\r\n") == b"NOT_STORED\r\n"

    def test_cas_lifecycle(self):
        self.cmd(b"set k 0 0 1\r\nv\r\n")
        reply = self.cmd(b"gets k\r\n")
        cas = int(reply.split(b"\r\n")[0].rsplit(b" ", 1)[1])
        assert self.cmd(b"cas k 0 0 1 %d\r\nw\r\n" % cas) == b"STORED\r\n"
        assert self.cmd(b"cas k 0 0 1 %d\r\nx\r\n" % cas) == b"EXISTS\r\n"
        assert self.cmd(b"cas nope 0 0 1 1\r\ny\r\n") == b"NOT_FOUND\r\n"

    def test_delete(self):
        self.cmd(b"set k 0 0 1\r\nv\r\n")
        assert self.cmd(b"delete k\r\n") == b"DELETED\r\n"
        assert self.cmd(b"delete k\r\n") == b"NOT_FOUND\r\n"

    def test_incr_decr(self):
        self.cmd(b"set n 0 0 2\r\n10\r\n")
        assert self.cmd(b"incr n 5\r\n") == b"15\r\n"
        assert self.cmd(b"decr n 20\r\n") == b"0\r\n"  # floors at zero
        assert self.cmd(b"incr missing 1\r\n") == b"NOT_FOUND\r\n"

    def test_incr_non_numeric(self):
        self.cmd(b"set k 0 0 3\r\nabc\r\n")
        assert b"CLIENT_ERROR" in self.cmd(b"incr k 1\r\n")

    def test_stats(self):
        self.cmd(b"set k 0 0 1\r\nv\r\n")
        self.cmd(b"get k\r\n")
        reply = self.cmd(b"stats\r\n")
        assert b"STAT cmd_get 1" in reply
        assert b"STAT cmd_set 1" in reply
        assert b"STAT curr_items 1" in reply
        assert reply.endswith(b"END\r\n")

    def test_flush_all(self):
        self.cmd(b"set k 0 0 1\r\nv\r\n")
        assert self.cmd(b"flush_all\r\n") == b"OK\r\n"
        assert self.cmd(b"get k\r\n") == b"END\r\n"

    def test_version_echo(self):
        assert self.cmd(b"version\r\n") == b"VERSION 1.2.2\r\n"

    def test_unknown_command(self):
        assert self.cmd(b"bogus\r\n") == b"ERROR\r\n"

    def test_data_block_may_contain_crlf_split_across_writes(self):
        # Header and body can arrive separately.
        assert self.cmd(b"set k 0 0 4\r\n") == b""
        assert self.cmd(b"ab\r\n\r\n") == b"STORED\r\n"
        assert self.cmd(b"get k\r\n") == b"VALUE k 0 4\r\nab\r\n\r\nEND\r\n"

    def test_binary_safe_values(self):
        self.cmd(b"set k 0 0 3\r\n\x00\x01\x02\r\n")
        assert self.cmd(b"get k\r\n") == b"VALUE k 0 3\r\n\x00\x01\x02\r\nEND\r\n"


class TestThreadingAndQuiescence:
    def test_worker_threads_live_in_event_loop(self):
        _, server, _ = deployment()
        workers = [t for t in server.program.threads
                   if t.inside_event_loop]
        assert len(workers) == 4

    def test_unadapted_update_fails_quiescence(self):
        _, _, mvedsua = deployment(adapted=False)
        attempt = mvedsua.request_update(memcached_version("1.2.3"), SECOND)
        assert not attempt.ok
        assert attempt.reason == "quiescence-failed"

    def test_adapted_update_succeeds(self):
        _, _, mvedsua = deployment(adapted=True)
        attempt = mvedsua.request_update(
            memcached_version("1.2.3"), SECOND,
            rules=memcached_rules("1.2.2", "1.2.3"))
        assert attempt.ok
        assert mvedsua.stage is Stage.OUTDATED_LEADER


class TestLibEventDivergence:
    """Paper §5.3/§6.2: the dispatch-memory timing error."""

    def run_scenario(self, reset):
        kernel, server, mvedsua = deployment(adapted=True, reset=reset)
        alice = VirtualClient(kernel, server.address, "alice")
        bob = VirtualClient(kernel, server.address, "bob")
        alice.command(mvedsua, b"get warm")  # cursor becomes odd
        mvedsua.request_update(memcached_version("1.2.3"), SECOND)
        # Two connections ready in the same iteration: dispatch order
        # now depends on the cursor.
        alice.send(b"set p 0 0 1\r\n1\r\n")
        bob.send(b"set q 0 0 1\r\n2\r\n")
        mvedsua.pump(2 * SECOND)
        return mvedsua, alice, bob

    def test_missing_reset_causes_spurious_divergence(self):
        mvedsua, alice, bob = self.run_scenario(reset=False)
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.last_outcome().rolled_back()
        # Clients never noticed.
        assert alice.recv() == b"STORED\r\n"
        assert bob.recv() == b"STORED\r\n"

    def test_reset_callback_prevents_divergence(self):
        mvedsua, _, _ = self.run_scenario(reset=True)
        assert mvedsua.stage is Stage.OUTDATED_LEADER
        assert mvedsua.runtime.last_divergence is None


class TestStateTransformBug:
    """Paper §6.2: the freed-LibEvent-memory transformer bug."""

    def buggy_transforms(self):
        registry = TransformRegistry()
        registry.register("memcached", "1.2.2", "1.2.3",
                          xform_free_libevent)
        return registry

    def connect_many(self, kernel, server, mvedsua, count):
        clients = [VirtualClient(kernel, server.address, f"c{i}")
                   for i in range(count)]
        for index, client in enumerate(clients):
            client.command(mvedsua, b"set k%d 0 0 1\r\nv" % index)
        return clients

    def test_crash_under_many_clients_is_tolerated(self):
        kernel, server, mvedsua = deployment(
            transforms=self.buggy_transforms())
        clients = self.connect_many(kernel, server, mvedsua,
                                    MANY_CLIENTS_THRESHOLD + 1)
        mvedsua.request_update(memcached_version("1.2.3"), SECOND)
        reply = clients[0].command(mvedsua, b"get k0", now=2 * SECOND)
        assert reply == b"VALUE k0 0 1\r\nv\r\nEND\r\n"
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.last_outcome().rolled_back()

    def test_no_crash_with_few_clients(self):
        kernel, server, mvedsua = deployment(
            transforms=self.buggy_transforms())
        clients = self.connect_many(kernel, server, mvedsua, 2)
        mvedsua.request_update(memcached_version("1.2.3"), SECOND)
        clients[0].command(mvedsua, b"get k0", now=2 * SECOND)
        # The bug is latent: too few clients to trigger reuse.
        assert mvedsua.stage is Stage.OUTDATED_LEADER


class TestUpdatesUnderMvedsua:
    def test_full_lifecycle_with_no_rules(self):
        kernel, server, mvedsua = deployment()
        client = VirtualClient(kernel, server.address)
        client.command(mvedsua, b"set k 0 0 5\r\nhello")
        rules = memcached_rules("1.2.2", "1.2.3")
        assert len(rules) == 0  # the paper wrote none for Memcached
        mvedsua.request_update(memcached_version("1.2.3"), SECOND,
                               rules=rules)
        client.command(mvedsua, b"set k2 0 0 1\r\nx", now=2 * SECOND)
        mvedsua.promote(3 * SECOND)
        mvedsua.finalize(4 * SECOND)
        assert mvedsua.current_version == "1.2.3"
        assert client.command(mvedsua, b"get k", now=5 * SECOND) == \
            b"VALUE k 0 5\r\nhello\r\nEND\r\n"

    def test_chained_updates_122_to_124(self):
        kernel, server, mvedsua = deployment()
        client = VirtualClient(kernel, server.address)
        client.command(mvedsua, b"set k 0 0 1\r\nv")
        for old, new in (("1.2.2", "1.2.3"), ("1.2.3", "1.2.4")):
            mvedsua.request_update(memcached_version(new), SECOND,
                                   rules=memcached_rules(old, new))
            client.command(mvedsua, b"get k", now=2 * SECOND)
            mvedsua.promote(3 * SECOND)
            mvedsua.finalize(4 * SECOND)
        assert mvedsua.current_version == "1.2.4"
        assert client.command(mvedsua, b"version", now=5 * SECOND) == \
            b"VERSION 1.2.4\r\n"

"""Tests for the closed-loop multi-client driver."""

import pytest

from repro.core import Mvedsua, Stage
from repro.net import VirtualKernel
from repro.servers.memcached import (
    MemcachedServer,
    memcached_rules,
    memcached_transforms,
    memcached_version,
)
from repro.servers.native import NativeRuntime
from repro.servers.redis import RedisServer, redis_version
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads.closed_loop import ClosedLoopDriver
from repro.workloads.memtier import MemtierSpec


def redis_deployment():
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0"))
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["redis"])
    return kernel, server, runtime


def test_all_requests_answered():
    kernel, server, runtime = redis_deployment()
    driver = ClosedLoopDriver(kernel, runtime, server.address,
                              connections=4)

    def commands(index):
        for i in range(25):
            yield b"SET c%d-k%d v\r\n" % (index, i)

    stats = driver.run(commands)
    assert stats.requests_sent == 100
    assert stats.responses_received == 100
    assert len(server.heap["db"]) == 100


def test_throughput_near_profile_rate():
    kernel, server, runtime = redis_deployment()
    driver = ClosedLoopDriver(kernel, runtime, server.address,
                              connections=4)
    spec = MemtierSpec()

    def commands(index):
        return iter(list(spec.commands(100, protocol="redis",
                                       seed=index)))

    stats = driver.run(commands)
    # A single-threaded server serves ~73k ops/s regardless of the
    # number of closed-loop clients.
    assert stats.throughput_ops_per_sec == pytest.approx(73_000, rel=0.20)


def test_latency_grows_with_connections():
    def run_with(connections):
        kernel, server, runtime = redis_deployment()
        driver = ClosedLoopDriver(kernel, runtime, server.address,
                                  connections=connections)
        driver_commands = lambda index: iter(
            [b"SET k%d-%d v\r\n" % (index, i) for i in range(30)])
        return driver.run(driver_commands).mean_latency_ns

    # More concurrent closed-loop clients => more queueing per request.
    assert run_with(8) > run_with(1)


def test_interleaving_is_deterministic():
    def run_once():
        kernel, server, runtime = redis_deployment()
        driver = ClosedLoopDriver(kernel, runtime, server.address,
                                  connections=3)
        commands = lambda index: iter(
            [b"SET k%d-%d v\r\n" % (index, i) for i in range(10)])
        stats = driver.run(commands)
        return stats.finished_at, tuple(stats.latencies_ns)

    assert run_once() == run_once()


def test_memcached_update_under_concurrent_load():
    """Many interleaved clients through a full Mvedsua lifecycle,
    exercising LibEvent's round-robin with multi-ready epoll sets."""
    kernel = VirtualKernel()
    server = MemcachedServer(memcached_version("1.2.2"))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["memcached"],
                      transforms=memcached_transforms(),
                      ring_capacity=1 << 14)
    driver = ClosedLoopDriver(kernel, mvedsua, server.address,
                              connections=6)
    mvedsua.request_update(memcached_version("1.2.3"), SECOND,
                           rules=memcached_rules("1.2.2", "1.2.3"))

    def commands(index):
        for i in range(20):
            yield b"set c%d-%d 0 0 1\r\nv\r\n" % (index, i)
            yield b"get c%d-%d\r\n" % (index, i)

    stats = driver.run(commands, start_at=2 * SECOND)
    assert stats.responses_received == 6 * 40
    assert mvedsua.stage is Stage.OUTDATED_LEADER
    assert mvedsua.runtime.last_divergence is None
    mvedsua.promote(stats.finished_at + SECOND)
    mvedsua.finalize(stats.finished_at + 2 * SECOND)
    assert mvedsua.current_version == "1.2.3"


def test_think_time_spreads_requests():
    kernel, server, runtime = redis_deployment()
    eager = ClosedLoopDriver(kernel, runtime, server.address,
                             connections=1)
    commands = lambda index: iter([b"PING\r\n"] * 10)
    fast = eager.run(commands)

    kernel, server, runtime = redis_deployment()
    lazy = ClosedLoopDriver(kernel, runtime, server.address,
                            connections=1, think_time_ns=10**7)
    slow = lazy.run(commands)
    assert slow.finished_at - slow.started_at > \
        fast.finished_at - fast.started_at
    assert slow.throughput_ops_per_sec < fast.throughput_ops_per_sec

"""Tests for the ``python -m repro perf`` wall-clock benchmark harness."""

import json

import pytest

from repro.perf import SCENARIOS, run_scenarios
from repro.perf.cli import perf_main
from repro.perf.harness import SCHEMA, to_bench_dict


def test_scenario_registry_names_are_stable():
    # CI, docs, and --scenario choices all key off these names.
    assert set(SCENARIOS) == {
        "single-leader", "mve-follower", "rule-heavy-mve-redis",
        "rules-redis-stream", "rules-vsftpd-stream",
        "fig7-ring-2^5", "fig7-ring-2^8", "fig7-ring-2^11",
        "chaos-recovery-kvstore", "fleet-canary-upgrade",
        "chaos-campaign-parallel", "openloop-upgrade-waves",
        "distributed-ring-kvstore",
    }


def test_run_scenarios_reports_positive_rates():
    results = run_scenarios(["single-leader"], ops=40, repeat=1)
    assert len(results) == 1
    result = results[0]
    assert result.name == "single-leader"
    assert result.vrequests == 40
    assert result.syscalls >= result.vrequests
    assert result.wall_s > 0
    assert result.vreq_per_s > 0
    assert result.syscalls_per_s > result.vreq_per_s


def test_bench_dict_schema():
    results = run_scenarios(["single-leader", "mve-follower"],
                            ops=30, repeat=1)
    bench = to_bench_dict(results, quick=True)
    assert bench["_meta"]["schema"] == SCHEMA
    assert bench["_meta"]["quick"] is True
    for name in ("single-leader", "mve-follower"):
        entry = bench[name]
        assert set(entry) >= {"wall_s", "vreq_per_s", "syscalls_per_s"}
        assert entry["vreq_per_s"] > 0


def test_cli_writes_bench_json(tmp_path, capsys):
    out = tmp_path / "BENCH_perf.json"
    code = perf_main(["--scenario", "single-leader", "--ops", "40",
                      "--repeat", "1", "--json", "--out", str(out)])
    assert code == 0
    table = capsys.readouterr().out
    assert "single-leader" in table
    assert "vreq/s" in table
    bench = json.loads(out.read_text())
    assert bench["_meta"]["schema"] == SCHEMA
    assert bench["single-leader"]["vreq_per_s"] > 0
    # Only the requested scenario ran.
    assert "mve-follower" not in bench


def test_cli_without_json_writes_nothing(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = perf_main(["--scenario", "single-leader", "--ops", "20",
                      "--repeat", "1"])
    assert code == 0
    assert not (tmp_path / "BENCH_perf.json").exists()
    assert "single-leader" in capsys.readouterr().out


def test_cli_rejects_unknown_scenario(capsys):
    with pytest.raises(SystemExit):
        perf_main(["--scenario", "no-such-scenario"])


def test_rule_heavy_scenario_exercises_rules():
    results = run_scenarios(["rule-heavy-mve-redis"], ops=30, repeat=1)
    assert results[0].vrequests == 30
    assert results[0].syscalls > 0

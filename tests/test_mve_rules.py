"""Unit tests for the rewrite-rule engine and rule constructors."""

import pytest

from repro.errors import RuleError
from repro.mve.dsl import (
    Direction,
    RewriteRule,
    RuleEngine,
    RuleSet,
    SyscallPattern,
    merge_writes,
    redirect_read,
    rewrite_read,
    rewrite_write,
    split_write,
    swap_adjacent,
)
from repro.syscalls.model import Sys, read_record, write_record


def run_engine(rules, records):
    """Feed all records through an engine and collect the output."""
    engine = RuleEngine(rules)
    out = []
    for record in records:
        engine.offer(record)
        while engine.has_ready():
            out.append(engine.next_expected())
    engine.flush()
    while engine.has_ready():
        out.append(engine.next_expected())
    return engine, out


class TestPatterns:
    def test_name_and_fd_matching(self):
        pattern = SyscallPattern(Sys.READ, fd=7)
        assert pattern.matches(read_record(7, b"x"))
        assert not pattern.matches(read_record(8, b"x"))
        assert not pattern.matches(write_record(7, b"x"))

    def test_predicate(self):
        pattern = SyscallPattern(Sys.READ,
                                 predicate=lambda d: d.startswith(b"PUT"))
        assert pattern.matches(read_record(1, b"PUT k v"))
        assert not pattern.matches(read_record(1, b"GET k"))

    def test_empty_pattern_rejected(self):
        with pytest.raises(RuleError):
            RewriteRule("empty", [], lambda m: m)


class TestPassThrough:
    def test_no_rules_is_identity(self):
        records = [read_record(1, b"GET k"), write_record(1, b"+OK")]
        _, out = run_engine([], records)
        assert [r.data for r in out] == [b"GET k", b"+OK"]

    def test_non_matching_rule_is_identity(self):
        rule = redirect_read("r", lambda d: d.startswith(b"NOPE"), b"bad")
        _, out = run_engine([rule], [read_record(1, b"GET k")])
        assert out[0].data == b"GET k"


class TestSingleRecordRules:
    def test_redirect_read(self):
        # Figure 4 Rule 1: typed PUT becomes an invalid command.
        rule = redirect_read("put_typed", lambda d: d.startswith(b"PUT-"),
                             b"bad-cmd\r\n")
        engine, out = run_engine(
            [rule], [read_record(4, b"PUT-number balance 1001\r\n")])
        assert out[0].data == b"bad-cmd\r\n"
        assert out[0].fd == 4
        assert engine.fired == ["put_typed"]

    def test_rewrite_read(self):
        # Figure 4 Rule 2: untyped PUT becomes PUT-string.
        rule = rewrite_read(
            "put_untyped", lambda d: d.startswith(b"PUT "),
            lambda d: d.replace(b"PUT ", b"PUT-string ", 1))
        _, out = run_engine([rule], [read_record(4, b"PUT k v\r\n")])
        assert out[0].data == b"PUT-string k v\r\n"

    def test_rewrite_write(self):
        rule = rewrite_write("banner", lambda d: d.startswith(b"220 v1"),
                             lambda d: d.replace(b"v1", b"v2"))
        _, out = run_engine([rule], [write_record(4, b"220 v1 ready\r\n")])
        assert out[0].data == b"220 v2 ready\r\n"

    def test_split_write(self):
        rule = split_write("split", lambda d: b"\r\n" in d,
                           lambda d: [d[:5], d[5:]])
        _, out = run_engine([rule], [write_record(4, b"HELLO WORLD\r\n")])
        assert [r.data for r in out] == [b"HELLO", b" WORLD\r\n"]
        assert all(r.name is Sys.WRITE and r.fd == 4 for r in out)


class TestMultiRecordRules:
    def test_merge_writes(self):
        rule = merge_writes("merge", lambda d: d.startswith(b"220-"),
                            lambda d: d.startswith(b"220 "))
        _, out = run_engine([rule], [
            write_record(4, b"220-part one\r\n"),
            write_record(4, b"220 part two\r\n"),
        ])
        assert len(out) == 1
        assert out[0].data == b"220-part one\r\n220 part two\r\n"

    def test_swap_adjacent(self):
        rule = swap_adjacent(
            "aof", SyscallPattern(Sys.WRITE, predicate=lambda d: d.startswith(b"+")),
            SyscallPattern(Sys.WRITE, predicate=lambda d: d.startswith(b"*")))
        _, out = run_engine([rule], [
            write_record(4, b"+OK\r\n"),
            write_record(9, b"*3 aof entry\r\n"),
        ])
        assert [r.data for r in out] == [b"*3 aof entry\r\n", b"+OK\r\n"]
        assert [r.fd for r in out] == [9, 4]

    def test_partial_match_waits_for_more_records(self):
        rule = merge_writes("merge", lambda d: d.startswith(b"A"),
                            lambda d: d.startswith(b"B"))
        engine = RuleEngine([rule])
        engine.offer(write_record(1, b"A1"))
        # Might still complete: nothing ready yet.
        assert not engine.has_ready()
        assert engine.pending_window() == 1
        engine.offer(write_record(1, b"B2"))
        assert engine.next_expected().data == b"A1B2"

    def test_partial_match_flushes_when_stream_ends(self):
        rule = merge_writes("merge", lambda d: d.startswith(b"A"),
                            lambda d: d.startswith(b"B"))
        engine = RuleEngine([rule])
        engine.offer(write_record(1, b"A1"))
        engine.flush()
        assert engine.next_expected().data == b"A1"

    def test_failed_partial_match_reconsiders_suffix(self):
        # "A" then "A" then "B": first A flushes, then A+B merges.
        rule = merge_writes("merge", lambda d: d.startswith(b"A"),
                            lambda d: d.startswith(b"B"))
        _, out = run_engine([rule], [
            write_record(1, b"A1"), write_record(1, b"A2"),
            write_record(1, b"B3"),
        ])
        assert [r.data for r in out] == [b"A1", b"A2B3"]


class TestPriorityAndDirection:
    def test_first_matching_rule_wins(self):
        rule_a = redirect_read("a", lambda d: True, b"from-a")
        rule_b = redirect_read("b", lambda d: True, b"from-b")
        engine, out = run_engine([rule_a, rule_b], [read_record(1, b"x")])
        assert out[0].data == b"from-a"
        assert engine.fired == ["a"]

    def test_ruleset_stage_filtering(self):
        rules = RuleSet()
        rules.add(redirect_read("fwd", lambda d: True, b"x",
                                direction=Direction.OUTDATED_LEADER))
        rules.add(redirect_read("rev", lambda d: True, b"y",
                                direction=Direction.UPDATED_LEADER))
        rules.add(redirect_read("always", lambda d: True, b"z",
                                direction=Direction.BOTH))
        outdated = rules.for_stage(Direction.OUTDATED_LEADER)
        updated = rules.for_stage(Direction.UPDATED_LEADER)
        assert [r.name for r in outdated] == ["fwd", "always"]
        assert [r.name for r in updated] == ["rev", "always"]
        assert rules.count() == 2
        assert len(rules) == 3

    def test_action_returning_none_raises(self):
        rule = RewriteRule("bad", [SyscallPattern(Sys.READ)], lambda m: None)
        engine = RuleEngine([rule])
        with pytest.raises(RuleError):
            engine.offer(read_record(1, b"x"))

"""Tests for the MVE8xx symbolic divergence prover."""

import os
import random
import unittest

from repro.analysis.catalog import default_catalog, load_catalog
from repro.analysis.effects import (CLIENT_FD, ANY, REPS, ProtocolModel,
                                    read_record, reduce_abstract)
from repro.analysis.findings import Severity
from repro.analysis.prover import catalog_hash, certificate_json, prove_app
from repro.mve.dsl.rules import Direction
from repro.syscalls.model import Sys, SyscallRecord

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "gap_catalog.py")


def _gap_config():
    return load_catalog(FIXTURE)["gapkv"]


class GapCatalogFindings(unittest.TestCase):
    """The seeded fixture trips every MVE8xx code."""

    @classmethod
    def setUpClass(cls):
        cls.result = prove_app(_gap_config())
        cls.findings = cls.result.report.sorted_findings()

    def _find(self, code, fragment):
        hits = [f for f in self.findings
                if f.code == code and fragment in f.location]
        self.assertTrue(hits, f"no {code} finding at {fragment!r}; got "
                        f"{[(f.code, f.location) for f in self.findings]}")
        return hits[0]

    def test_mve801_uncovered_command_is_confirmed_error(self):
        finding = self._find("MVE801", "outdated-leader command DEL")
        self.assertIs(finding.severity, Severity.ERROR)
        self.assertIn("CONFIRMED", finding.message)

    def test_mve801_witness_carries_command_lines(self):
        finding = self._find("MVE801", "outdated-leader command DEL")
        self.assertIn("DEL", finding.message)

    def test_mve802_wrong_rule_effect(self):
        finding = self._find("MVE802", "outdated-leader command ZAP")
        self.assertIs(finding.severity, Severity.ERROR)
        self.assertIn("zap_wrong", finding.message)
        self.assertIn("CONFIRMED", finding.message)

    def test_mve803_shadowed_rule(self):
        finding = self._find("MVE803", "rule set_narrow")
        self.assertIs(finding.severity, Severity.WARNING)

    def test_mve804_non_confluent_overlap(self):
        finding = self._find("MVE804", "set_broad+set_narrow")
        self.assertIs(finding.severity, Severity.WARNING)

    def test_spurious_finding_downgraded(self):
        # COUNT is declared in release 2's vocabulary but the handler
        # rejects it: statically an ERROR, dynamically clean.
        finding = self._find("MVE801", "outdated-leader command COUNT")
        self.assertIs(finding.severity, Severity.WARNING)
        self.assertIn("SPURIOUS", finding.message)

    def test_certificate_counts(self):
        summary = self.result.certificate["summary"]
        self.assertGreaterEqual(summary["confirmed_mve801_errors"], 1)
        self.assertGreaterEqual(summary["spurious_downgraded"], 1)
        self.assertFalse(self.result.ok)


class CertificateStability(unittest.TestCase):
    def test_two_runs_byte_identical(self):
        first = certificate_json(prove_app(_gap_config()).certificate)
        second = certificate_json(prove_app(_gap_config()).certificate)
        self.assertEqual(first, second)

    def test_catalog_hash_is_stable_and_content_sensitive(self):
        self.assertEqual(catalog_hash(_gap_config()),
                         catalog_hash(_gap_config()))
        self.assertNotEqual(catalog_hash(_gap_config()),
                            catalog_hash(default_catalog()["kvstore"]))


class ShippedCatalogCertifies(unittest.TestCase):
    """The acceptance gate: every shipped app certifies divergence-free
    (zero confirmed MVE801 errors) with a clean certificate."""

    def test_all_apps_certify_clean(self):
        for name, config in default_catalog().items():
            with self.subTest(app=name):
                result = prove_app(config)
                self.assertTrue(result.ok, name)
                summary = result.certificate["summary"]
                self.assertEqual(
                    summary["confirmed_mve801_errors"], 0, name)


class DifferentialProperty(unittest.TestCase):
    """The abstract engine over-approximates the concrete RuleEngine.

    For randomized command sequences (singleton representative sets, so
    tri-state matching collapses to exact matching), at least one
    abstract outcome must reproduce the concrete engine's emitted
    stream and fired-rule sequence, on every catalog pair and stage.
    """

    def _check_pair(self, config, old, new, rng):
        ruleset = config.rules_for(old, new)
        if ruleset is None or not ruleset.rules:
            return
        old_v = config.versions.get(config.name, old)
        new_v = config.versions.get(config.name, new)
        model = ProtocolModel(old_v, new_v, ruleset.rules)
        lines = [probe for cls in model.classes
                 for probe in model.probes[cls]]
        for stage in (Direction.OUTDATED_LEADER, Direction.UPDATED_LEADER):
            stage_rules = ruleset.for_stage(stage)
            for _ in range(25):
                sequence = [rng.choice(lines)
                            for _ in range(rng.randint(1, 4))]
                self._check_sequence(ruleset, stage_rules, stage, sequence)

    def _check_sequence(self, ruleset, stage_rules, stage, sequence):
        engine = ruleset.engine_for_stage(stage)
        for line in sequence:
            engine.offer(SyscallRecord(Sys.READ, fd=CLIENT_FD, data=line,
                                       result=len(line)))
        engine.flush()
        concrete = []
        record = engine.next_expected()
        while record is not None:
            concrete.append(record)
            record = engine.next_expected()

        window = tuple(read_record((line,)) for line in sequence)
        outcomes = reduce_abstract(stage_rules, window, flush=True)
        matches = [o for o in outcomes
                   if self._covers(o, concrete, tuple(engine.fired))]
        self.assertTrue(
            matches,
            f"stage={stage.value} sequence={sequence!r}: concrete "
            f"emitted={[(r.name, r.data) for r in concrete]} "
            f"fired={engine.fired} not covered by any of "
            f"{len(outcomes)} abstract outcome(s)")

    @staticmethod
    def _covers(outcome, concrete, fired):
        if outcome.fired != fired:
            return False
        emitted = outcome.emitted + outcome.window
        if len(emitted) != len(concrete):
            return False
        for abstract, record in zip(emitted, concrete):
            if abstract.kind is not record.name:
                return False
            if abstract.payload[0] == ANY:
                continue
            if abstract.payload[0] != REPS:
                return False  # no dynamic inputs in this test
            if record.data not in abstract.payload[1]:
                return False
        return True

    def test_over_approximation_on_every_catalog_pair(self):
        rng = random.Random(20260807)
        for name, config in default_catalog().items():
            for old, new in config.versions.update_pairs(name):
                with self.subTest(app=name, pair=f"{old}->{new}"):
                    self._check_pair(config, old, new, rng)

    def test_over_approximation_on_gap_fixture(self):
        rng = random.Random(11)
        config = _gap_config()
        self._check_pair(config, "1", "2", rng)


if __name__ == "__main__":
    unittest.main()

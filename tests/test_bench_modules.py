"""Unit tests for the benchmark drivers and reporting helpers."""

from repro.bench import fig7, table2
from repro.bench.fig7 import Fig7Row
from repro.bench.fluid import FluidResult
from repro.bench.reporting import (
    format_ms,
    format_percent,
    format_table,
    sparkline,
)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["alpha", 1], ["b", 12345]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "-" in lines[1]
        assert "12,345" in lines[3]

    def test_format_table_floats(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.1" in text

    def test_format_percent(self):
        assert format_percent(0.254) == "25%"
        assert format_percent(-0.01) == "-1%"

    def test_format_ms(self):
        assert format_ms(5_040_000_000) == "5,040 ms"
        assert format_ms(None) == "-"

    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8], width=9)
        assert len(line) == 9
        assert line[0] == " " and line[-1] == "█"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_downsamples(self):
        assert len(sparkline([1.0] * 1000, width=50)) <= 51


class TestTable2Module:
    def test_paper_reference_data_complete(self):
        for app, rows in table2.PAPER_TABLE2.items():
            assert app in table2.WORKLOADS
            assert "native" in rows and "mvedsua-2" in rows

    def test_render_contains_all_modes(self):
        cells = table2.run_table2()
        text = table2.render(cells)
        for mode in ("native", "kitsune", "varan-1", "mvedsua-1",
                     "varan-2", "mvedsua-2"):
            assert mode in text

    def test_cell_count(self):
        assert len(table2.run_table2()) == 4 * 6


class TestFig7Module:
    def fake_row(self, label, latency_ms):
        result = FluidResult(bins=[1.0], total_ops=1.0,
                             duration_ns=10**9,
                             max_latency_ns=int(latency_ms * 1e6),
                             longest_stall_ns=0)
        return Fig7Row(label, result, 100)

    def test_check_shape_accepts_paper_ordering(self):
        rows = [
            self.fake_row("native", 100),
            self.fake_row("kitsune", 5040),
            self.fake_row("mvedsua-2^10", 7130),
            self.fake_row("mvedsua-2^20", 5330),
            self.fake_row("mvedsua-2^24", 117),
            self.fake_row("immediate-promotion", 3000),
        ]
        assert fig7.check_shape(rows) == []

    def test_check_shape_flags_inversions(self):
        rows = [
            self.fake_row("native", 100),
            self.fake_row("kitsune", 5040),
            self.fake_row("mvedsua-2^10", 100),   # wrong: should be worst
            self.fake_row("mvedsua-2^20", 5330),
            self.fake_row("mvedsua-2^24", 117),
            self.fake_row("immediate-promotion", 3000),
        ]
        failures = fig7.check_shape(rows)
        assert any("2^10" in failure for failure in failures)

    def test_render_includes_paper_column(self):
        rows = fig7.run_fig7()
        text = fig7.render(rows)
        assert "5,040 ms" in text  # the paper's Kitsune number
        assert "shape check: ok" in text

"""A catalog with seeded rewrite-rule gaps for the MVE8xx prover.

Loaded two ways: imported by the test suite, and passed to the CLI via
``python -m repro prove gapkv --catalog tests/fixtures/gap_catalog.py``
(loaded by file path, so this module stays import-self-contained).

The single app ``gapkv`` updates 1 → 2 and plants one defect per
prover code:

* ``DEL`` — added in release 2, fully implemented, **no rule**: the
  prover reaches the uncovered configuration (MVE801 ERROR in the
  outdated-leader stage) and the witness replay reproduces the
  divergence → CONFIRMED with a ForensicsBundle;
* ``COUNT`` — *declared* in release 2's vocabulary but the handler
  rejects it: the abstraction says the versions diverge, the replay
  stays clean → SPURIOUS, auto-downgraded to WARNING;
* ``ZAP`` — added in release 2 with the **wrong rule**: ``zap_wrong``
  redirects the request to ``PING``, so a rule fires on the diverging
  transition yet the streams still disagree (MVE802);
* ``set_broad`` / ``set_narrow`` — the narrow rule is shadowed by the
  broad one (MVE803: fully modeled, never fires) and both fully match
  the same ``SET-`` window with different effects (MVE804).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional

from repro.analysis.catalog import AppConfig
from repro.dsu.transform import TransformRegistry
from repro.dsu.version import ServerVersion, VersionRegistry
from repro.mve.dsl import RuleSet, parse_rules

APP = "gapkv"

GAP_RULES_TEXT = r'''
rule zap_wrong outdated-leader:
    read(fd, s) where startswith(s, "ZAP") => read(fd, "PING\r\n")
rule set_broad outdated-leader:
    read(fd, s) where startswith(s, "SET") => read(fd, s)
rule set_narrow outdated-leader:
    read(fd, s) where startswith(s, "SET-") => read(fd, "GET a\r\n")
'''


class GapKVVersion(ServerVersion):
    """A toy store; release 2 adds ``DEL`` and ``ZAP`` for real and
    *claims* ``COUNT`` without implementing it."""

    app = APP

    def __init__(self, name: str) -> None:
        self.name = name

    def initial_heap(self) -> Dict[str, Any]:
        return {"table": {}, "stats": {"requests": 0}}

    def handle(self, heap: Dict[str, Any], request: bytes,
               session: Optional[Dict[str, Any]] = None,
               io: Optional[Any] = None) -> List[bytes]:
        heap["stats"]["requests"] += 1
        parts = request.split()
        verb = parts[0] if parts else b""
        if verb == b"SET" and len(parts) >= 3:
            heap["table"][parts[1].decode("latin-1")] = \
                parts[2].decode("latin-1")
            return [b"+OK\r\n"]
        if verb == b"GET" and len(parts) >= 2:
            value = heap["table"].get(parts[1].decode("latin-1"))
            if value is None:
                return [b"-ERR not found\r\n"]
            return [b"$" + value.encode("latin-1") + b"\r\n"]
        if verb == b"PING":
            return [b"+PONG\r\n"]
        if self.name == "2":
            if verb == b"DEL" and len(parts) >= 2:
                heap["table"].pop(parts[1].decode("latin-1"), None)
                return [b"+OK\r\n"]
            if verb == b"ZAP":
                heap["table"].clear()
                return [b"+ZAPPED\r\n"]
            # COUNT is declared in commands() but falls through: the
            # vocabulary model is coarser than the handler (SPURIOUS).
        return [b"-ERR unknown\r\n"]

    def commands(self) -> FrozenSet[str]:
        base = frozenset({"PING", "SET", "GET"})
        if self.name == "2":
            return base | frozenset({"DEL", "ZAP", "COUNT"})
        return base

    def response_texts(self) -> FrozenSet[bytes]:
        texts = {b"+OK\r\n", b"+PONG\r\n", b"-ERR not found\r\n",
                 b"-ERR unknown\r\n"}
        if self.name == "2":
            texts.add(b"+ZAPPED\r\n")
        return frozenset(texts)


def _identity_transform(heap: Dict[str, Any]) -> Dict[str, Any]:
    return {"table": dict(heap["table"]), "stats": dict(heap["stats"])}


def _rules_for(old: str, new: str) -> RuleSet:
    rules = RuleSet()
    if (old, new) == ("1", "2"):
        for rule in parse_rules(GAP_RULES_TEXT):
            rules.add(rule)
    return rules


def catalog() -> Dict[str, AppConfig]:
    versions = VersionRegistry()
    versions.register(GapKVVersion("1"))
    versions.register(GapKVVersion("2"))

    transforms = TransformRegistry()
    transforms.register(APP, "1", "2", _identity_transform)

    return {APP: AppConfig(
        name=APP,
        versions=versions,
        transforms=transforms,
        rules_for=_rules_for,
        seed_requests=(b"SET alpha one", b"SET beta two"),
    )}

"""Intentionally-defective fixtures for the mvelint test suite."""

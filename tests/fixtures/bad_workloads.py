"""A catalog whose only defects are broken open-loop workload specs.

Loaded two ways: imported by the test suite, and passed to the CLI via
``python -m repro lint --catalog tests/fixtures/bad_workloads.py``.

The single app ``badload`` registers one version (so every other
analyzer is vacuously clean) and five workload-spec factories, one per
MVE10xx code:

* ``typo-arrival``   — unknown arrival process        → MVE1001
* ``zero-rate``      — non-positive arrival rate      → MVE1002
* ``wild-zipf``      — Zipf exponent out of (0, 4]    → MVE1003
* ``over-churned``   — connections > population       → MVE1004
* ``negative-shape`` — non-positive request count     → MVE1005
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional

from repro.analysis.catalog import AppConfig
from repro.dsu.transform import TransformRegistry
from repro.dsu.version import ServerVersion, VersionRegistry
from repro.mve.dsl import RuleSet
from repro.workloads.openloop import LoadSpec

APP = "badload"


class BadLoadVersion(ServerVersion):
    """A one-command echo server; the app exists only to host specs."""

    app = APP
    name = "1"

    def initial_heap(self) -> Dict[str, Any]:
        return {"table": {}}

    def handle(self, heap: Dict[str, Any], request: bytes,
               session: Optional[Dict[str, Any]] = None,
               io: Optional[Any] = None) -> List[bytes]:
        return [b"+OK\r\n"]

    def commands(self) -> FrozenSet[str]:
        return frozenset({"PING"})

    def response_texts(self) -> FrozenSet[bytes]:
        return frozenset({b"+OK\r\n"})


def _typo_arrival() -> LoadSpec:
    return LoadSpec(name="typo-arrival",
                    arrival={"process": "possion", "rate_per_sec": 100.0})


def _zero_rate() -> LoadSpec:
    return LoadSpec(name="zero-rate",
                    arrival={"process": "poisson", "rate_per_sec": 0.0})


def _wild_zipf() -> LoadSpec:
    return LoadSpec(name="wild-zipf",
                    keys={"distribution": "zipf", "keyspace": 1000,
                          "exponent": 9.5})


def _over_churned() -> LoadSpec:
    return LoadSpec(name="over-churned", population=4, connections=64)


def _negative_shape() -> LoadSpec:
    return LoadSpec(name="negative-shape", requests=-1)


def catalog() -> Dict[str, AppConfig]:
    versions = VersionRegistry()
    versions.register(BadLoadVersion())
    return {APP: AppConfig(
        name=APP,
        versions=versions,
        transforms=TransformRegistry(),
        rules_for=lambda old, new: RuleSet(),
        workload_specs=(_typo_arrival, _zero_rate, _wild_zipf,
                        _over_churned, _negative_shape),
    )}

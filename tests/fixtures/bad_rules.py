"""Rule sets with the defect classes mvelint's rule lint must catch."""

from __future__ import annotations

from repro.mve.dsl import (
    Direction,
    RewriteRule,
    RuleSet,
    SyscallPattern,
    parse_rules,
    redirect_read,
    rewrite_write,
)
from repro.syscalls.model import Sys

#: A later rule whose match prefix is subsumed by an earlier one: the
#: broad "PUT" prefix fires first on every "PUT-..." request, so the
#: narrow rule is unreachable (MVE102).
SHADOWED_TEXT = r'''
rule broad outdated-leader:
    read(fd, s) where startswith(s, "PUT") => read(fd, "bad-cmd\r\n")
rule narrow outdated-leader:
    read(fd, s) where startswith(s, "PUT-") => read(fd, "never\r\n")
'''

#: Two rules that can match the same request (startswith and endswith
#: are simultaneously satisfiable) but emit different sequences: which
#: fires depends silently on priority order (MVE103).
CONFLICTING_TEXT = r'''
rule by_prefix outdated-leader:
    read(fd, s) where startswith(s, "DEL ") => read(fd, "one\r\n")
rule by_suffix outdated-leader:
    read(fd, s) where endswith(s, "now\r\n") => read(fd, "two\r\n")
'''

#: Binds payload variable ``s`` and never reads it (MVE106).
UNUSED_VAR_TEXT = r'''
rule blind outdated-leader:
    read(fd, s) => read(fd, "fixed\r\n")
'''


def shadowed_rules() -> RuleSet:
    rules = RuleSet()
    for rule in parse_rules(SHADOWED_TEXT):
        rules.add(rule)
    return rules


def conflicting_rules() -> RuleSet:
    rules = RuleSet()
    for rule in parse_rules(CONFLICTING_TEXT):
        rules.add(rule)
    return rules


def unused_var_rules() -> RuleSet:
    rules = RuleSet()
    for rule in parse_rules(UNUSED_VAR_TEXT):
        rules.add(rule)
    return rules


def duplicate_name_rules() -> RuleSet:
    """The same rule name registered twice (MVE101)."""
    rules = RuleSet()
    rules.add(redirect_read("dup", lambda d: d.startswith(b"A"),
                            b"bad-cmd\r\n"))
    rules.add(redirect_read("dup", lambda d: d.startswith(b"B"),
                            b"bad-cmd\r\n"))
    return rules


def dead_direction_rules(old_text: bytes, new_text: bytes) -> RuleSet:
    """A text-rewrite rule tagged with the wrong Direction (MVE104).

    The rule matches ``new_text`` — which only the *new* version writes —
    but is tagged ``outdated-leader``, the stage in which the *old*
    version leads; it can never fire for this update pair.
    """
    rules = RuleSet()
    rules.add(rewrite_write(
        "backwards", lambda d, t=new_text: d == t,
        lambda d, t=old_text: t,
        direction=Direction.OUTDATED_LEADER))
    return rules


def pinned_fd_rules() -> RuleSet:
    """A pattern pinning a concrete runtime fd (MVE105)."""
    rules = RuleSet()
    rules.add(RewriteRule(
        "pinned",
        [SyscallPattern(Sys.READ, fd=5)],
        lambda matched: list(matched)))
    return rules

"""A deliberately broken app catalog for exercising every analyzer.

Loaded two ways: imported by the test suite, and passed to the CLI via
``python -m repro lint --catalog tests/fixtures/bad_catalog.py`` (which
loads it by file path, so this module stays import-self-contained).

The single app ``badkv`` plants one defect per analyzer:

* a shadowed rule pair               → rules lint,    MVE102 (ERROR)
* the new-only ``BOOM`` command with
  no covering rule                   → coverage,      MVE201 (ERROR)
* an entry-dropping transformer      → transform,     MVE302 (ERROR)
* release ``3`` with no transformer
  edge reaching it                   → update paths,  MVE401 + MVE403
* an untagged reply-suppressing rule → trace lint,    MVE501 (WARNING)
* a fault plan naming a nonexistent
  injection site and an illegal kind → chaos lint,    MVE601 (ERROR)
* a fleet topology whose upgrade
  wave is wider than the shard's
  replica count                      → fleet lint,    MVE701 (ERROR)
* a cross-node MVE topology with no
  declared ring-link budget         → fleet lint,    MVE704 (ERROR)
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional

from repro.analysis.catalog import AppConfig
from repro.dsu.transform import TransformRegistry
from repro.dsu.version import ServerVersion, VersionRegistry
from repro.mve.dsl import RuleSet, parse_rules

APP = "badkv"

#: ``narrow`` can never fire: every "PUT-..." request already matches
#: ``broad``, which has priority.  Both rules also reference the verb
#: ``PUT``, which no badkv version understands (MVE203).
SHADOWED_RULES_TEXT = r'''
rule broad outdated-leader:
    read(fd, s) where startswith(s, "PUT") => read(fd, "bad-cmd\r\n")
rule narrow outdated-leader:
    read(fd, s) where startswith(s, "PUT-") => read(fd, "never\r\n")
rule quiet_set outdated-leader:
    read(fd, s), write(fd2, r) where startswith(s, "SET") => read(fd, s)
'''


class BadKVVersion(ServerVersion):
    """A toy store: ``SET k v`` writes the table, ``PING`` answers."""

    app = APP

    def __init__(self, name: str, extra_commands: FrozenSet[str]) -> None:
        self.name = name
        self._extra = extra_commands

    def initial_heap(self) -> Dict[str, Any]:
        return {"table": {}, "stats": {"requests": 0}}

    def handle(self, heap: Dict[str, Any], request: bytes,
               session: Optional[Dict[str, Any]] = None,
               io: Optional[Any] = None) -> List[bytes]:
        heap["stats"]["requests"] += 1
        parts = request.split()
        if parts and parts[0] == b"SET" and len(parts) >= 3:
            heap["table"][parts[1].decode("latin-1")] = \
                parts[2].decode("latin-1")
            return [b"+OK\r\n"]
        if parts and parts[0] == b"PING":
            return [b"+PONG\r\n"]
        return [b"-ERR\r\n"]

    def commands(self) -> FrozenSet[str]:
        return frozenset({"PING", "SET"}) | self._extra

    def response_texts(self) -> FrozenSet[bytes]:
        return frozenset({b"+OK\r\n", b"+PONG\r\n", b"-ERR\r\n"})


def _drop_entries(heap: Dict[str, Any]) -> Dict[str, Any]:
    """Migrates the heap but forgets the table's entries (MVE302)."""
    return {"table": {}, "stats": dict(heap["stats"])}


def _bad_fault_plan():
    """Names a site no hook implements and a kind illegal at a real
    site — both vacuous cells a campaign would silently mark masked."""
    from repro.chaos.plan import Fault, FaultPlan, on_call
    return FaultPlan("badkv-chaos", (
        Fault("kernel.reed", "econnreset", on_call(1)),   # typo'd site
        Fault("mve.leader", "corrupt-record", on_call(1)),  # wrong kind
    ))


def _bad_fleet_topology():
    """Two-slot upgrade waves over single-replica shards: one wave
    would drain whole shards (MVE701)."""
    from repro.cluster.shard import FleetSpec
    return FleetSpec(shards=2, replicas_per_shard=1, wave_size=2)


def _bad_distributed_topology():
    """Cross-node MVE pairs with no declared ring link: the replicated
    ring would have no latency/window budget to charge (MVE704)."""
    from repro.cluster.shard import FleetSpec
    return FleetSpec(shards=2, replicas_per_shard=2, wave_size=1,
                     cross_node_pairs=True)


def _rules_for(old: str, new: str) -> RuleSet:
    rules = RuleSet()
    if (old, new) == ("1", "2"):
        for rule in parse_rules(SHADOWED_RULES_TEXT):
            rules.add(rule)
    return rules


def catalog() -> Dict[str, AppConfig]:
    versions = VersionRegistry()
    versions.register(BadKVVersion("1", frozenset()))
    versions.register(BadKVVersion("2", frozenset({"BOOM"})))
    # Release 3 exists but no transformer reaches it: MVE401 + MVE403.
    versions.register(BadKVVersion("3", frozenset({"BOOM"})))

    transforms = TransformRegistry()
    transforms.register(APP, "1", "2", _drop_entries)

    return {APP: AppConfig(
        name=APP,
        versions=versions,
        transforms=transforms,
        rules_for=_rules_for,
        seed_requests=(b"SET alpha one", b"SET beta two"),
        fault_plans=(_bad_fault_plan,),
        fleet_topologies=(_bad_fleet_topology,
                          _bad_distributed_topology),
    )}

"""State transformers exhibiting the paper's §2.4/§6.2 error classes.

Each function below is wrong in exactly one way so the test suite can
assert the transformer audit attributes each defect to the right MVE3xx
code.  They all expect the kvstore-ish heap shape
``{"table": {key: entry, ...}, ...}`` that :func:`badkv heap fixtures
<tests.fixtures.bad_catalog>` and the tests build.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Dict


def xform_drop_table(heap: Dict[str, Any]) -> Dict[str, Any]:
    """Drops a whole top-level heap key (MVE302)."""
    new = copy.deepcopy(heap)
    del new["table"]
    return new


def xform_drop_entries(heap: Dict[str, Any]) -> Dict[str, Any]:
    """Migrates the table but forgets its entries (MVE302)."""
    new = copy.deepcopy(heap)
    new["table"] = {}
    return new


def xform_change_kind(heap: Dict[str, Any]) -> Dict[str, Any]:
    """Turns the table dict into a list of keys (MVE303)."""
    new = copy.deepcopy(heap)
    new["table"] = sorted(new["table"])
    return new


def xform_not_a_heap(heap: Dict[str, Any]) -> Any:
    """Returns something that is not a heap dict at all (MVE303)."""
    return list(heap.items())


def xform_alias_input(heap: Dict[str, Any]) -> Dict[str, Any]:
    """Mutates the input heap *and* returns a different object (MVE304)."""
    heap["table"]["junk"] = {"value": "junk"}
    return {key: copy.deepcopy(value) for key, value in heap.items()}


def make_nondeterministic():
    """A transformer whose output depends on how often it ran (MVE305)."""
    counter = itertools.count()

    def xform(heap: Dict[str, Any]) -> Dict[str, Any]:
        new = copy.deepcopy(heap)
        new["nonce"] = next(counter)
        return new

    return xform


def xform_none_field(heap: Dict[str, Any]) -> Dict[str, Any]:
    """Adds a new per-entry field but leaves it None (MVE306).

    This is the paper's Figure 1 bug: "field t is mistakenly left
    uninitialized" during the v2.6→v2.7 memcached flags migration.
    """
    new = copy.deepcopy(heap)
    new["table"] = {key: {"value": entry, "typ": None}
                    for key, entry in new["table"].items()}
    return new


def xform_raises(heap: Dict[str, Any]) -> Dict[str, Any]:
    """Crashes outright (MVE301)."""
    raise RuntimeError("transformer exploded")


def xform_returns_none(heap: Dict[str, Any]) -> None:
    """Forgets to return the new heap (MVE301)."""
    heap["table"] = dict(heap["table"])
    return None

"""Tests for registry-driven chained updates."""

from repro.core import Mvedsua
from repro.core.chains import upgrade_chain
from repro.mve.dsl import RuleSet
from repro.net import VirtualKernel
from repro.servers.vsftpd import (
    VsftpdServer,
    vsftpd_rules,
    vsftpd_transforms,
    vsftpd_version,
)
from repro.servers.vsftpd.versions import vsftpd_registry
from repro.servers.redis import (
    RedisServer,
    redis_rules,
    redis_transforms,
    redis_version,
)
from repro.servers.redis.versions import redis_registry
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient
from repro.workloads.ftpclient import FtpClient


def vsftpd_deployment(start="1.1.0"):
    kernel = VirtualKernel()
    kernel.fs.write_file("/f.txt", b"chained")
    server = VsftpdServer(vsftpd_version(start))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["vsftpd-small"],
                      transforms=vsftpd_transforms())
    client = FtpClient(kernel, server.address)
    client.login(mvedsua)
    return kernel, mvedsua, client


def test_full_vsftpd_chain_via_registry():
    _, mvedsua, client = vsftpd_deployment()

    def validate(deployment, now):
        client.retr(deployment, "f.txt", now=now)

    result = upgrade_chain(
        mvedsua, vsftpd_registry(), "vsftpd",
        version_factory=vsftpd_version,
        rules_factory=vsftpd_rules,
        start_at=SECOND, validate=validate)
    assert result.completed
    assert result.final_version == "2.0.6"
    assert len(result.steps) == 13


def test_chain_stops_at_target():
    _, mvedsua, _ = vsftpd_deployment()
    result = upgrade_chain(
        mvedsua, vsftpd_registry(), "vsftpd",
        version_factory=vsftpd_version,
        rules_factory=vsftpd_rules,
        start_at=SECOND, target="1.2.0")
    assert result.final_version == "1.2.0"
    assert len(result.steps) == 4


def test_chain_stops_on_divergence():
    """Missing rules abort the chain at the first pair that needs them,
    leaving the last good version serving."""
    _, mvedsua, client = vsftpd_deployment()

    def validate(deployment, now):
        client.command(deployment, b"SYST", now=now)  # trips text deltas

    result = upgrade_chain(
        mvedsua, vsftpd_registry(), "vsftpd",
        version_factory=vsftpd_version,
        rules_factory=lambda old, new: RuleSet(),  # no rules at all
        start_at=SECOND, validate=validate)
    assert not result.completed
    # 1.1.0 -> 1.1.1 needs no rules and completes; 1.1.1 -> 1.1.2 (the
    # banner/SYST rewording) diverges and stops the chain.
    assert result.final_version == "1.1.1"
    assert result.steps[-1].completed is False
    assert "rolled back" in result.steps[-1].detail


def test_redis_chain_via_registry():
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0"))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["redis"],
                      transforms=redis_transforms())
    client = VirtualClient(kernel, server.address)
    client.command(mvedsua, b"SET durable value")

    def validate(deployment, now):
        client.command(deployment, b"SET probe 1", now=now)
        client.command(deployment, b"GET durable", now=now)

    result = upgrade_chain(
        mvedsua, redis_registry(), "redis",
        version_factory=redis_version,
        rules_factory=redis_rules,
        start_at=SECOND, validate=validate)
    assert result.completed
    assert result.final_version == "2.0.3"
    assert client.command(mvedsua, b"GET durable",
                          now=100 * SECOND) == b"$5\r\nvalue\r\n"

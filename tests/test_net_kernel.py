"""Unit tests for the virtual kernel: sockets, epoll, fd domains."""

import pytest

from repro.errors import BadFileDescriptor, ConnectionClosed, KernelError
from repro.net import VirtualKernel

ADDR = ("127.0.0.1", 6379)


@pytest.fixture
def kernel():
    return VirtualKernel()


@pytest.fixture
def pair(kernel):
    """A connected (server_domain, server_fd, client_domain, client_fd)."""
    server_domain = kernel.create_domain()
    client_domain = kernel.create_domain()
    listen_fd = kernel.listen(server_domain, ADDR)
    client_fd = kernel.connect(client_domain, ADDR)
    server_fd = kernel.accept(server_domain, listen_fd)
    return server_domain, server_fd, client_domain, client_fd


def test_listen_connect_accept_round_trip(kernel, pair):
    server_domain, server_fd, client_domain, client_fd = pair
    kernel.write(client_domain, client_fd, b"PING\r\n")
    assert kernel.read(server_domain, server_fd) == b"PING\r\n"
    kernel.write(server_domain, server_fd, b"+PONG\r\n")
    assert kernel.read(client_domain, client_fd) == b"+PONG\r\n"


def test_connect_to_unbound_address_refused(kernel):
    domain = kernel.create_domain()
    with pytest.raises(KernelError, match="refused"):
        kernel.connect(domain, ("10.0.0.1", 80))


def test_double_bind_rejected(kernel):
    d = kernel.create_domain()
    kernel.listen(d, ADDR)
    with pytest.raises(KernelError, match="in use"):
        kernel.listen(kernel.create_domain(), ADDR)


def test_accept_without_pending_raises(kernel):
    d = kernel.create_domain()
    listen_fd = kernel.listen(d, ADDR)
    with pytest.raises(KernelError, match="would block"):
        kernel.accept(d, listen_fd)


def test_read_empty_stream_returns_nothing(kernel, pair):
    server_domain, server_fd, _, _ = pair
    assert kernel.read(server_domain, server_fd) == b""


def test_partial_reads_preserve_stream_order(kernel, pair):
    server_domain, server_fd, client_domain, client_fd = pair
    kernel.write(client_domain, client_fd, b"abcdef")
    kernel.write(client_domain, client_fd, b"ghi")
    assert kernel.read(server_domain, server_fd, max_bytes=4) == b"abcd"
    assert kernel.read(server_domain, server_fd, max_bytes=4) == b"efgh"
    assert kernel.read(server_domain, server_fd) == b"i"


def test_close_signals_eof_to_peer(kernel, pair):
    server_domain, server_fd, client_domain, client_fd = pair
    kernel.write(client_domain, client_fd, b"bye")
    kernel.close(client_domain, client_fd)
    # Buffered data still readable, then EOF.
    assert kernel.read(server_domain, server_fd) == b"bye"
    assert kernel.read(server_domain, server_fd) == b""


def test_write_to_closed_peer_raises(kernel, pair):
    server_domain, server_fd, client_domain, client_fd = pair
    kernel.close(client_domain, client_fd)
    with pytest.raises(ConnectionClosed):
        kernel.write(server_domain, server_fd, b"data")


def test_operations_on_unknown_fd_raise(kernel):
    domain = kernel.create_domain()
    with pytest.raises(BadFileDescriptor):
        kernel.read(domain, 99)


def test_fd_domains_are_isolated(kernel, pair):
    server_domain, server_fd, _, _ = pair
    other = kernel.create_domain()
    with pytest.raises(BadFileDescriptor):
        kernel.read(other, server_fd)


def test_close_frees_fd(kernel, pair):
    server_domain, server_fd, _, _ = pair
    kernel.close(server_domain, server_fd)
    assert not kernel.is_open(server_domain, server_fd)
    with pytest.raises(BadFileDescriptor):
        kernel.read(server_domain, server_fd)


def test_closed_listener_refuses_connections(kernel):
    server_domain = kernel.create_domain()
    listen_fd = kernel.listen(server_domain, ADDR)
    kernel.close(server_domain, listen_fd)
    with pytest.raises(KernelError, match="refused"):
        kernel.connect(kernel.create_domain(), ADDR)


class TestEpoll:
    def test_listener_ready_when_backlog_nonempty(self, kernel):
        server_domain = kernel.create_domain()
        listen_fd = kernel.listen(server_domain, ADDR)
        epfd = kernel.epoll_create(server_domain)
        kernel.epoll_ctl(server_domain, epfd, listen_fd, add=True)
        assert kernel.epoll_wait(server_domain, epfd) == []
        kernel.connect(kernel.create_domain(), ADDR)
        assert kernel.epoll_wait(server_domain, epfd) == [listen_fd]

    def test_stream_ready_when_data_buffered(self, kernel, pair):
        server_domain, server_fd, client_domain, client_fd = pair
        epfd = kernel.epoll_create(server_domain)
        kernel.epoll_ctl(server_domain, epfd, server_fd, add=True)
        assert kernel.epoll_wait(server_domain, epfd) == []
        kernel.write(client_domain, client_fd, b"x")
        assert kernel.epoll_wait(server_domain, epfd) == [server_fd]
        # Level-triggered: still ready until drained.
        assert kernel.epoll_wait(server_domain, epfd) == [server_fd]
        kernel.read(server_domain, server_fd)
        assert kernel.epoll_wait(server_domain, epfd) == []

    def test_peer_close_makes_stream_ready(self, kernel, pair):
        server_domain, server_fd, client_domain, client_fd = pair
        epfd = kernel.epoll_create(server_domain)
        kernel.epoll_ctl(server_domain, epfd, server_fd, add=True)
        kernel.close(client_domain, client_fd)
        assert kernel.epoll_wait(server_domain, epfd) == [server_fd]

    def test_ready_order_is_registration_order(self, kernel):
        server_domain = kernel.create_domain()
        client_domain = kernel.create_domain()
        listen_fd = kernel.listen(server_domain, ADDR)
        epfd = kernel.epoll_create(server_domain)
        fds = []
        for _ in range(3):
            kernel.connect(client_domain, ADDR)
            fd = kernel.accept(server_domain, listen_fd)
            kernel.epoll_ctl(server_domain, epfd, fd, add=True)
            fds.append(fd)
        client_fds = [fd for fd in kernel.open_fds(client_domain)]
        for cfd in client_fds:
            kernel.write(client_domain, cfd, b"hello")
        assert kernel.epoll_wait(server_domain, epfd) == fds

    def test_epoll_ctl_remove(self, kernel, pair):
        server_domain, server_fd, client_domain, client_fd = pair
        epfd = kernel.epoll_create(server_domain)
        kernel.epoll_ctl(server_domain, epfd, server_fd, add=True)
        kernel.write(client_domain, client_fd, b"x")
        kernel.epoll_ctl(server_domain, epfd, server_fd, add=False)
        assert kernel.epoll_wait(server_domain, epfd) == []

    def test_closing_fd_removes_it_from_epoll(self, kernel, pair):
        server_domain, server_fd, client_domain, client_fd = pair
        epfd = kernel.epoll_create(server_domain)
        kernel.epoll_ctl(server_domain, epfd, server_fd, add=True)
        kernel.write(client_domain, client_fd, b"x")
        kernel.close(server_domain, server_fd)
        assert kernel.epoll_wait(server_domain, epfd) == []

    def test_epoll_on_non_epoll_fd_raises(self, kernel, pair):
        server_domain, server_fd, _, _ = pair
        with pytest.raises(KernelError):
            kernel.epoll_wait(server_domain, server_fd)


def test_peer_endpoint_inspection(kernel, pair):
    server_domain, server_fd, client_domain, client_fd = pair
    kernel.write(server_domain, server_fd, b"hello")
    peer = kernel.peer_endpoint(server_domain, server_fd)
    assert peer.pending_bytes() == 5


class TestEndpointUnread:
    """unread() re-delivers consumed bytes ahead of anything buffered —
    the primitive behind crash-request re-delivery."""

    def test_unread_goes_to_the_front(self, kernel, pair):
        server_domain, server_fd, client_domain, client_fd = pair
        kernel.write(client_domain, client_fd, b"SECOND")
        endpoint = kernel._domain(server_domain).lookup(server_fd)
        endpoint.unread(b"FIRST ")
        assert kernel.read(server_domain, server_fd) == b"FIRST SECOND"

    def test_unread_empty_is_noop(self, kernel, pair):
        server_domain, server_fd, _, _ = pair
        endpoint = kernel._domain(server_domain).lookup(server_fd)
        endpoint.unread(b"")
        assert not endpoint.readable()

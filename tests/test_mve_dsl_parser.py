"""Unit tests for the textual rule DSL parser."""

import pytest

from repro.errors import DslSyntaxError
from repro.mve.dsl import Direction, RuleEngine, parse_rules, parse_rules_ast
from repro.syscalls.model import Sys, read_record, write_record


def apply_one(rule_text, records):
    rules = parse_rules(rule_text)
    engine = RuleEngine(rules)
    out = []
    for record in records:
        engine.offer(record)
        while engine.has_ready():
            out.append(engine.next_expected())
    engine.flush()
    while engine.has_ready():
        out.append(engine.next_expected())
    return out


def test_figure4_rule1_redirect():
    text = r'''
    # Figure 4, Rule 1
    rule put_typed outdated-leader:
        read(fd, s) where startswith(s, "PUT-") => read(fd, "bad-cmd\r\n")
    '''
    out = apply_one(text, [read_record(4, b"PUT-number balance 1001\r\n")])
    assert out[0].data == b"bad-cmd\r\n"
    assert out[0].fd == 4
    assert out[0].name is Sys.READ


def test_figure4_rule2_replace_prefix():
    text = r'''
    rule put_untyped:
        read(fd, s) where startswith(s, "PUT ")
            => read(fd, replace_prefix(s, "PUT ", "PUT-string "))
    '''
    out = apply_one(text, [read_record(4, b"PUT k1 v1\r\n")])
    assert out[0].data == b"PUT-string k1 v1\r\n"


def test_figure5_stou_two_record_rule():
    text = r'''
    rule stou outdated-leader:
        read(fd, s), write(fd2, r) where r == "500 Unknown command.\r\n"
            => read(fd, "FOOBAR\r\n"), write(fd2, r)
    '''
    out = apply_one(text, [
        read_record(4, b"STOU\r\n"),
        write_record(4, b"500 Unknown command.\r\n"),
    ])
    assert [r.data for r in out] == [b"FOOBAR\r\n", b"500 Unknown command.\r\n"]


def test_merge_with_concatenation():
    text = r'''
    rule banner both:
        write(fd, a), write(fd2, b) where startswith(a, "220-")
            => write(fd, a + b)
    '''
    out = apply_one(text, [
        write_record(4, b"220-hello\r\n"),
        write_record(4, b"220 ready\r\n"),
    ])
    assert len(out) == 1
    assert out[0].data == b"220-hello\r\n220 ready\r\n"


def test_swap_emits_in_reverse_order():
    text = r'''
    rule aof_order:
        write(f1, a), write(f2, b) where startswith(b, "*")
            => write(f2, b), write(f1, a)
    '''
    out = apply_one(text, [
        write_record(4, b"+OK\r\n"),
        write_record(9, b"*aof\r\n"),
    ])
    assert [(r.fd, r.data) for r in out] == [(9, b"*aof\r\n"), (4, b"+OK\r\n")]


def test_replace_function():
    text = r'''
    rule reword:
        write(fd, s) where contains(s, "Goodbye")
            => write(fd, replace(s, "Goodbye", "221 Goodbye"))
    '''
    out = apply_one(text, [write_record(1, b"Goodbye.\r\n")])
    assert out[0].data == b"221 Goodbye.\r\n"


def test_directions_parsed():
    text = '''
    rule fwd outdated-leader:
        read(fd, s) where s == "x" => read(fd, "y")
    rule rev updated-leader:
        read(fd, s) where s == "y" => read(fd, "x")
    rule any both:
        read(fd, s) where s == "z" => read(fd, "z")
    '''
    rules = parse_rules(text)
    assert [r.direction for r in rules] == [
        Direction.OUTDATED_LEADER, Direction.UPDATED_LEADER, Direction.BOTH]


def test_default_direction_is_outdated_leader():
    rules = parse_rules('rule r: read(fd, s) => read(fd, "x")')
    assert rules[0].direction is Direction.OUTDATED_LEADER


def test_multiple_conditions_with_and():
    text = '''
    rule narrow:
        read(fd, s) where startswith(s, "PUT") and contains(s, "balance")
            => read(fd, "bad")
    '''
    rules = parse_rules(text)
    out = apply_one(text, [read_record(1, b"PUT balance 5")])
    assert out[0].data == b"bad"
    out = apply_one(text, [read_record(1, b"PUT other 5")])
    assert out[0].data == b"PUT other 5"
    assert len(rules) == 1


def test_not_equal_condition():
    text = '''
    rule ne:
        read(fd, s) where s != "PING" => read(fd, "nope")
    '''
    assert apply_one(text, [read_record(1, b"PING")])[0].data == b"PING"
    assert apply_one(text, [read_record(1, b"PONG")])[0].data == b"nope"


def test_comments_and_blank_lines_ignored():
    text = '''

    # leading comment
    rule r:  # trailing comment
        read(fd, s) => read(fd, s)
    '''
    assert len(parse_rules(text)) == 1


class TestSyntaxErrors:
    def test_unknown_syscall(self):
        with pytest.raises(DslSyntaxError, match="unknown syscall"):
            parse_rules('rule r: ioctl(fd, s) => read(fd, s)')

    def test_unbound_variable_in_emit(self):
        with pytest.raises(DslSyntaxError, match="unbound"):
            parse_rules('rule r: read(fd, s) => read(fd, t)')

    def test_unbound_fd_variable(self):
        with pytest.raises(DslSyntaxError, match="unbound fd"):
            parse_rules('rule r: read(fd, s) => read(other, s)')

    def test_missing_arrow(self):
        with pytest.raises(DslSyntaxError):
            parse_rules('rule r: read(fd, s)')

    def test_bad_operator(self):
        with pytest.raises(DslSyntaxError, match="unknown operator"):
            parse_rules('rule r: read(fd, s) where s + "x" => read(fd, s)')

    def test_unbound_condition_variable(self):
        with pytest.raises(DslSyntaxError, match="unbound"):
            parse_rules('rule r: read(fd, s) where t == "x" => read(fd, s)')

    def test_garbage_input(self):
        with pytest.raises(DslSyntaxError):
            parse_rules('rule ???')

    def test_duplicate_rule_names(self):
        with pytest.raises(DslSyntaxError, match="duplicate rule name 'r'"):
            parse_rules('rule r: read(fd, s) => read(fd, s)\n'
                        'rule r: read(fd, s) => read(fd, s)')

    def test_where_clause_missing_literal(self):
        with pytest.raises(DslSyntaxError, match="expected string literal"):
            parse_rules('rule r: read(fd, s) where s == t => read(fd, s)')

    def test_where_predicate_missing_comma(self):
        with pytest.raises(DslSyntaxError, match="expected ','"):
            parse_rules(
                'rule r: read(fd, s) where startswith(s "x") => read(fd, s)')

    def test_unknown_syscall_in_emit(self):
        with pytest.raises(DslSyntaxError, match="unknown syscall 'ioctl'"):
            parse_rules('rule r: read(fd, s) => ioctl(fd, s)')

    def test_truncated_rule(self):
        with pytest.raises(DslSyntaxError, match="unexpected end of input"):
            parse_rules('rule r: read(fd, s) => read(fd,')

    def test_untokenizable_input(self):
        with pytest.raises(DslSyntaxError, match="cannot tokenize"):
            parse_rules('rule r: read(fd, s) => read(fd, s) @ nonsense')


class TestAst:
    TEXT = r'''
    rule stou outdated-leader:
        read(fd, s), write(fd2, r) where r == "500 Unknown command.\r\n"
            => read(fd, "FOOBAR\r\n"), write(fd2, r)
    '''

    def test_structure(self):
        (ast,) = parse_rules_ast(self.TEXT)
        assert ast.name == "stou"
        assert ast.direction is Direction.OUTDATED_LEADER
        assert [(m.syscall, m.fd_var, m.data_var) for m in ast.matches] == [
            (Sys.READ, "fd", "s"), (Sys.WRITE, "fd2", "r")]
        (cond,) = ast.conditions
        assert (cond.op, cond.var) == ("eq", "r")
        assert cond.literal == b"500 Unknown command.\r\n"
        assert [e.syscall for e in ast.emits] == [Sys.READ, Sys.WRITE]
        assert ast.emits[0].expr.op == "literal"
        assert ast.emits[1].expr.op == "var"

    def test_conditions_for_and_used_variables(self):
        (ast,) = parse_rules_ast(self.TEXT)
        assert ast.conditions_for("r") == ast.conditions
        assert ast.conditions_for("s") == ()
        assert ast.used_variables() == frozenset({"r"})

    def test_compiled_rule_carries_ast(self):
        (ast,) = parse_rules_ast(self.TEXT)
        (rule,) = parse_rules(self.TEXT)
        assert rule.ast == ast

    def test_programmatic_rules_have_no_ast(self):
        from repro.mve.dsl import redirect_read
        rule = redirect_read("r", lambda d: True, b"x")
        assert rule.ast is None

    def test_condition_evaluate(self):
        (ast,) = parse_rules_ast(
            'rule r: read(fd, s) where startswith(s, "PUT") '
            '=> read(fd, s)')
        (cond,) = ast.conditions
        assert cond.evaluate(b"PUT k v")
        assert not cond.evaluate(b"GET k")

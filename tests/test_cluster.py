"""Tests for the cluster substrate and rolling upgrades."""

import pytest

from repro.cluster import (
    ClusterNode,
    LoadBalancer,
    MvedsuaRollingUpgrade,
    NodeStatus,
    RollingUpgrade,
)
from repro.errors import KernelError
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    kv_transforms,
)
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES


def make_cluster(n=3, mvedsua=False):
    kernel = VirtualKernel()
    nodes = []
    for index in range(n):
        server = KVStoreServer(KVStoreV1(),
                               address=("10.0.0.%d" % (index + 1), 7000))
        server.attach(kernel)
        nodes.append(ClusterNode(
            f"node-{index}", kernel, server, PROFILES["kvstore"],
            transforms=kv_transforms() if mvedsua else None))
    return kernel, LoadBalancer(nodes)


def seed_cluster(balancer, entries_per_node=50):
    for node in balancer.nodes:
        node.server.heap["table"].update(
            {f"{node.name}-k{i}": "v" for i in range(entries_per_node)})


class TestLoadBalancer:
    def test_round_robin_across_serving_nodes(self):
        _, balancer = make_cluster(3)
        picks = [balancer.pick().name for _ in range(6)]
        assert picks == ["node-0", "node-1", "node-2"] * 2

    def test_draining_node_excluded(self):
        _, balancer = make_cluster(3)
        balancer.nodes[1].status = NodeStatus.DRAINING
        picks = {balancer.pick().name for _ in range(10)}
        assert picks == {"node-0", "node-2"}

    def test_no_serving_nodes_raises(self):
        _, balancer = make_cluster(2)
        for node in balancer.nodes:
            node.status = NodeStatus.RESTARTING
        with pytest.raises(KernelError):
            balancer.pick()

    def test_connect_routes_and_serves(self):
        _, balancer = make_cluster(2)
        client_a, node_a = balancer.connect("a")
        client_b, node_b = balancer.connect("b")
        assert node_a.name != node_b.name
        assert client_a.command(node_a.runtime, b"PUT k v") == b"+OK\r\n"
        # Sessions stick to their node.
        assert node_a.active_sessions() == 1
        assert node_b.active_sessions() == 0


class TestLoadBalancerCursorStability:
    def test_drain_does_not_reshuffle_assignments(self):
        """Regression: the cursor must index the stable node list, not
        the filtered candidate list.  With the old behaviour, draining
        node-0 after one pick made the same cursor value name a
        different node, reshuffling every subsequent assignment
        ([node-2, node-1] instead of [node-1, node-2])."""
        _, balancer = make_cluster(3)
        assert balancer.pick().name == "node-0"
        balancer.nodes[0].status = NodeStatus.DRAINING
        assert [balancer.pick().name for _ in range(2)] \
            == ["node-1", "node-2"]

    def test_resumed_node_rejoins_rotation_in_place(self):
        _, balancer = make_cluster(3)
        balancer.pick()
        balancer.nodes[0].status = NodeStatus.DRAINING
        assert balancer.pick().name == "node-1"
        balancer.nodes[0].status = NodeStatus.SERVING
        # The cursor kept walking the stable ring, so node-2 then
        # node-0 come next — no node is skipped or double-served.
        assert [balancer.pick().name for _ in range(2)] \
            == ["node-2", "node-0"]

    def test_drain_resume_transition_keeps_sessions(self):
        _, balancer = make_cluster(2)
        client, node = balancer.connect()
        node.status = NodeStatus.DRAINING
        assert not node.accepting_new_connections()
        # The drained node still serves its existing session.
        assert client.command(node.runtime, b"PUT k v") == b"+OK\r\n"
        node.status = NodeStatus.SERVING
        assert node.accepting_new_connections()

    def test_demoted_and_failed_statuses(self):
        _, balancer = make_cluster(2)
        node = balancer.nodes[0]
        node.status = NodeStatus.DEMOTED
        assert not node.accepting_new_connections()
        assert node.healthy()
        node.status = NodeStatus.FAILED
        assert not node.accepting_new_connections()
        assert not node.healthy()
        picks = {balancer.pick().name for _ in range(4)}
        assert picks == {"node-1"}


class TestUpgradeSummaryAccounting:
    def test_totals_and_duration(self):
        from repro.cluster.rolling import NodeUpgradeRecord, UpgradeSummary
        summary = UpgradeSummary("synthetic", [
            NodeUpgradeRecord("a", started_at=100, finished_at=400,
                              sessions_dropped=2, state_entries_lost=10),
            NodeUpgradeRecord("b", started_at=400, finished_at=900,
                              sessions_dropped=1, state_entries_lost=0,
                              leader_pause_ns=7),
        ])
        assert summary.total_sessions_dropped == 3
        assert summary.total_state_lost == 10
        assert summary.duration_ns == 800

    def test_empty_summary_is_zero(self):
        from repro.cluster.rolling import UpgradeSummary
        summary = UpgradeSummary("synthetic")
        assert summary.duration_ns == 0
        assert summary.total_sessions_dropped == 0
        assert summary.total_state_lost == 0


class TestRollingRestartUpgrade:
    def test_long_lived_sessions_are_dropped(self):
        _, balancer = make_cluster(2)
        # One long-lived client per node (never closes).
        clients = []
        for _ in range(2):
            client, node = balancer.connect()
            client.command(node.runtime, b"PUT session-key v")
            clients.append(client)
        summary = RollingUpgrade(balancer).upgrade(KVStoreV2, SECOND)
        assert summary.total_sessions_dropped == 2

    def test_state_is_lost(self):
        _, balancer = make_cluster(2)
        seed_cluster(balancer, entries_per_node=50)
        summary = RollingUpgrade(balancer).upgrade(KVStoreV2, SECOND)
        assert summary.total_state_lost == 100
        assert summary.all_upgraded_to("2.0", balancer)

    def test_nodes_upgraded_one_at_a_time(self):
        _, balancer = make_cluster(3)
        summary = RollingUpgrade(balancer).upgrade(KVStoreV2, SECOND)
        finishes = [record.finished_at for record in summary.records]
        assert finishes == sorted(finishes)
        assert summary.duration_ns > 0

    def test_service_available_throughout(self):
        """While one node drains, others still accept connections."""
        _, balancer = make_cluster(3)
        balancer.nodes[0].status = NodeStatus.DRAINING
        client, node = balancer.connect()
        assert node.name != "node-0"
        assert client.command(node.runtime, b"PUT k v") == b"+OK\r\n"

    def test_closed_sessions_drain_cleanly(self):
        _, balancer = make_cluster(1)
        client, node = balancer.connect()
        client.command(node.runtime, b"PUT k v")
        client.close()
        node.pump(100)  # server observes the EOF before the drain
        summary = RollingUpgrade(balancer).upgrade(KVStoreV2, SECOND)
        assert summary.total_sessions_dropped == 0


class TestMvedsuaRollingUpgrade:
    def test_no_drops_no_state_loss(self):
        _, balancer = make_cluster(2, mvedsua=True)
        seed_cluster(balancer, entries_per_node=50)
        clients = []
        for _ in range(2):
            client, node = balancer.connect()
            client.command(node.runtime, b"PUT live-key 1")
            clients.append((client, node))
        upgrade = MvedsuaRollingUpgrade(balancer, rules=kv_rules())
        summary = upgrade.upgrade(KVStoreV2, SECOND)
        assert summary.total_sessions_dropped == 0
        assert summary.total_state_lost == 0
        assert summary.all_upgraded_to("2.0", balancer)
        # The live sessions still work, with their state intact.
        for client, node in clients:
            assert client.command(node.runtime, b"GET live-key",
                                  now=120 * SECOND) == b"1\r\n"

    def test_leader_pause_is_tiny(self):
        _, balancer = make_cluster(1, mvedsua=True)
        seed_cluster(balancer, entries_per_node=100_000)
        upgrade = MvedsuaRollingUpgrade(balancer, rules=kv_rules())
        summary = upgrade.upgrade(KVStoreV2, SECOND)
        record = summary.records[0]
        xform_ns = 100_000 * PROFILES["kvstore"].xform_entry_ns
        assert record.leader_pause_ns < xform_ns / 10

    def test_one_node_in_mve_mode_at_a_time(self):
        """The §1.2 mitigation: during a Mvedsua rolling upgrade, at
        most one node pays leader-follower overhead."""
        _, balancer = make_cluster(3, mvedsua=True)
        upgrade = MvedsuaRollingUpgrade(balancer, rules=kv_rules())
        summary = upgrade.upgrade(KVStoreV2, SECOND)
        # Sequential windows: each node's MVE interval ended before the
        # next node's began.
        for earlier, later in zip(summary.records, summary.records[1:]):
            assert earlier.finished_at <= later.started_at

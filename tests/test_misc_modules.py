"""Coverage for small shared modules: errors, events, divergence."""

import pytest

from repro.errors import (
    BadFileDescriptor,
    ConnectionClosed,
    DivergenceError,
    DslSyntaxError,
    FileNotFound,
    KernelError,
    NoUpdatePath,
    QuiescenceTimeout,
    ReproError,
    RuleError,
    ServerCrash,
    SimulationError,
    StateTransformError,
    UpdateError,
)
from repro.mve import ControlEvent, ControlKind
from repro.mve.divergence import DivergenceReport, check_drained, check_match
from repro.syscalls.model import Sys, SyscallRecord, read_record, write_record


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc_type in (SimulationError, KernelError, ServerCrash,
                         UpdateError, DivergenceError, RuleError):
            assert issubclass(exc_type, ReproError)

    def test_kernel_error_family(self):
        for exc_type in (BadFileDescriptor, ConnectionClosed, FileNotFound):
            assert issubclass(exc_type, KernelError)

    def test_update_error_family(self):
        for exc_type in (QuiescenceTimeout, StateTransformError,
                         NoUpdatePath):
            assert issubclass(exc_type, UpdateError)

    def test_dsl_error_family(self):
        assert issubclass(DslSyntaxError, RuleError)

    def test_server_crash_carries_pid(self):
        crash = ServerCrash("boom", pid=42)
        assert crash.pid == 42
        assert "boom" in str(crash)

    def test_divergence_carries_both_sides(self):
        expected = write_record(1, b"a")
        actual = write_record(1, b"b")
        error = DivergenceError("mismatch", expected=expected,
                                actual=actual)
        assert error.expected is expected
        assert error.actual is actual


class TestControlEvents:
    def test_kinds(self):
        assert ControlKind.PROMOTE.value == "promote"
        assert ControlKind.TERMINATE.value == "terminate"

    def test_describe(self):
        assert ControlEvent(ControlKind.PROMOTE).describe() == \
            "<control:promote>"

    def test_frozen(self):
        event = ControlEvent(ControlKind.PROMOTE)
        with pytest.raises(Exception):
            event.kind = ControlKind.TERMINATE


class TestDivergenceChecks:
    def test_match_passes_silently(self):
        record = write_record(3, b"same")
        check_match(record, write_record(3, b"same"))

    def test_mismatch_report_describes_both_sides(self):
        with pytest.raises(DivergenceError) as excinfo:
            check_match(write_record(3, b"expected"),
                        write_record(3, b"actual"))
        message = str(excinfo.value)
        assert "expected" in message and "actual" in message

    def test_none_expected_is_extra_syscall(self):
        with pytest.raises(DivergenceError, match="extra"):
            check_match(None, read_record(1, b"x"))

    def test_drained_ok_when_empty(self):
        check_drained([])

    def test_leftover_is_fewer_syscalls(self):
        with pytest.raises(DivergenceError, match="fewer"):
            check_drained([write_record(1, b"missing")])

    def test_wildcard_matches_same_kind_only(self):
        wildcard = SyscallRecord(Sys.WRITE, fd=9, aux={"wildcard": True})
        check_match(wildcard, write_record(1, b"anything"))
        with pytest.raises(DivergenceError):
            check_match(wildcard, read_record(1, b"not a write"))

    def test_report_describe(self):
        report = DivergenceReport("syscall mismatch",
                                  write_record(1, b"a"),
                                  write_record(1, b"b"))
        text = report.describe()
        assert "syscall mismatch" in text
        assert "leader expected" in text

    def test_report_with_missing_sides(self):
        report = DivergenceReport("extra", None, write_record(1, b"x"))
        assert "<nothing>" in report.describe()

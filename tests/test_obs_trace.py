"""repro.obs.trace / repro.obs.metrics: the tracer and its registry."""

import json

import pytest

from repro.mve.events import ControlEvent, ControlKind
from repro.obs import (
    MetricsRegistry,
    TRACE_SCHEMA,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
    validate_trace_lines,
)
from repro.obs.trace import jsonable
from repro.servers.kvstore import KVStoreV2, kv_rules
from repro.sim.engine import SECOND


# -- core emission ----------------------------------------------------------

def test_emit_stamps_and_advances_virtual_time():
    tracer = Tracer(experiment="t")
    tracer.emit("a", "sim", at=10)
    assert tracer.vnow == 10
    # No explicit timestamp: reuse the last advanced time.
    event = tracer.emit("b", "sim")
    assert event.at == 10
    # Time never moves backwards.
    tracer.advance(5)
    assert tracer.vnow == 10
    tracer.emit("c", "sim", at=30)
    assert tracer.vnow == 30


def test_kind_tally_counts_events():
    tracer = Tracer()
    tracer.emit("x", "sim")
    tracer.emit("x", "sim")
    tracer.emit("y", "mve")
    assert tracer.kind_tally() == {"x": 2, "y": 1}


def test_jsonable_handles_bytes_enums_and_containers():
    assert jsonable(b"GET a\r\n") == "GET a\\r\\n"
    assert jsonable(ControlKind.PROMOTE) == "promote"
    assert jsonable((1, b"x")) == [1, "x"]
    assert jsonable({"k": b"v"}) == {"k": "v"}
    assert jsonable(None) is None
    # Fallback: objects without a JSON form are repr()ed, never raise.
    assert "object" in jsonable(object())


# -- metrics registry -------------------------------------------------------

def test_metrics_counter_gauge_histogram():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(7)
    registry.gauge("g").set(3)
    registry.histogram("h").observe(10)
    registry.histogram("h").observe(20)

    snapshot = registry.snapshot()
    assert snapshot["c"] == {"type": "counter", "value": 5}
    assert snapshot["g"] == {"type": "gauge", "value": 3, "max": 7}
    assert snapshot["h"]["count"] == 2
    assert snapshot["h"]["total"] == 30
    assert snapshot["h"]["min"] == 10
    assert snapshot["h"]["max"] == 20
    assert snapshot["h"]["mean"] == 15.0


def test_metrics_name_is_bound_to_one_type():
    registry = MetricsRegistry()
    registry.counter("name")
    with pytest.raises(TypeError):
        registry.gauge("name")


# -- the active tracer ------------------------------------------------------

def test_install_and_uninstall_tracer():
    assert current_tracer() is None
    tracer = install_tracer(Tracer())
    try:
        assert current_tracer() is tracer
    finally:
        assert uninstall_tracer() is tracer
    assert current_tracer() is None


def test_tracing_context_manager_restores_previous():
    outer, inner = Tracer(), Tracer()
    with tracing(outer):
        with tracing(inner):
            assert current_tracer() is inner
        assert current_tracer() is outer
    assert current_tracer() is None


def test_attach_binds_tracer_to_kernel(kernel):
    tracer = Tracer().attach(kernel)
    assert kernel.tracer is tracer


# -- JSONL schema -----------------------------------------------------------

def test_jsonl_round_trip_is_schema_valid():
    tracer = Tracer(experiment="unit")
    tracer.emit("syscall", "mve", at=1, name="read")
    tracer.metrics.counter("syscalls.total").inc()
    lines = tracer.to_jsonl_lines()

    assert validate_trace_lines(lines) == []
    header = json.loads(lines[0])
    assert header["schema"] == TRACE_SCHEMA
    assert header["experiment"] == "unit"
    assert header["events"] == 1
    last = json.loads(lines[-1])
    assert last["kind"] == "metrics.snapshot"
    assert last["metrics"]["syscalls.total"]["value"] == 1


def test_validate_trace_lines_flags_problems():
    assert validate_trace_lines([]) == ["trace is empty"]
    assert any("schema" in problem for problem in validate_trace_lines(
        ['{"schema": "bogus/9"}', '{"kind": "metrics.snapshot", '
         '"at": 0, "layer": "obs", "metrics": {}}']))
    # Non-integer 'at' and a missing final snapshot both surface.
    lines = [json.dumps({"schema": TRACE_SCHEMA, "experiment": "",
                         "events": 1}),
             json.dumps({"at": "soon", "kind": "x", "layer": "sim"})]
    problems = validate_trace_lines(lines)
    assert any("'at'" in problem for problem in problems)
    assert any("metrics.snapshot" in problem for problem in problems)


def test_write_jsonl_and_validate_file(tmp_path):
    from repro.obs import validate_trace_file
    tracer = Tracer(experiment="file")
    tracer.emit("x", "sim", at=2)
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(str(path))
    assert validate_trace_file(str(path)) == []


# -- end-to-end through the stack -------------------------------------------

def test_attached_tracer_sees_the_whole_lifecycle(kernel, mvedsua, client):
    tracer = Tracer(experiment="lifecycle").attach(kernel)
    client.command(mvedsua, b"PUT balance 1000")
    mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
    client.command(mvedsua, b"GET balance", now=2 * SECOND)
    mvedsua.promote(3 * SECOND)
    client.command(mvedsua, b"GET balance", now=4 * SECOND)
    mvedsua.finalize(5 * SECOND)

    kinds = set(tracer.kind_tally())
    assert {"syscall", "ring.publish", "ring.replay",
            "divergence.check", "dsu.request", "dsu.applied",
            "control.promote"} <= kinds
    snapshot = tracer.metrics.snapshot()
    assert snapshot["syscalls.total"]["value"] > 0
    assert snapshot["divergence.checks"]["value"] > 0
    assert "ring.occupancy" in snapshot
    # The whole trace is timestamped in virtual nanoseconds.
    assert all(event.at >= 0 for event in tracer.events)
    assert validate_trace_lines(tracer.to_jsonl_lines()) == []


# -- satellite: virtual timestamps on events and errors ---------------------

def test_control_event_describe_legacy_form():
    assert ControlEvent(ControlKind.PROMOTE).describe() == "<control:promote>"
    assert ControlEvent(ControlKind.TERMINATE).describe() == \
        "<control:terminate>"


def test_control_event_describe_carries_time_and_version():
    event = ControlEvent(ControlKind.PROMOTE, at=7 * SECOND, version="v2")
    assert event.describe() == f"<control:promote at={7 * SECOND} by=v2>"
    assert ControlEvent(ControlKind.PROMOTE, at=3).describe() == \
        "<control:promote at=3>"
    assert ControlEvent(ControlKind.PROMOTE, version="v1").describe() == \
        "<control:promote by=v1>"

"""mvelint analyzer 5: MVE501 untagged-suppression warnings."""

import dataclasses

from repro.analysis.findings import Severity
from repro.analysis.trace_lint import _is_suppressing, lint_trace_tags
from repro.mve.dsl.parser import parse_rules
from repro.mve.dsl.rules import RuleSet, suppress_reply, tolerate_extra_reply
from repro.servers.kvstore import kv_rules
from repro.servers.memcached.rules import memcached_rules


def _lint(ruleset):
    return lint_trace_tags(ruleset, app="test", pair="1.0->2.0")


def test_untagged_suppress_reply_warns():
    rules = RuleSet().add(
        suppress_reply("quiet", lambda data: data.startswith(b"set ")))
    findings = _lint(rules)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.code == "MVE501"
    assert finding.severity is Severity.WARNING
    assert finding.analyzer == "trace"
    assert finding.location == "1.0->2.0/quiet"
    assert "trace_tag" in finding.message


def test_tagged_suppress_reply_is_clean():
    rules = RuleSet().add(
        suppress_reply("quiet", lambda data: True, trace_tag="test-quiet"))
    assert _lint(rules) == []


def test_tolerate_extra_reply_counts_as_suppressing():
    # Its wildcard write accepts any follower reply, so it also masks
    # content divergences and needs a tag.
    rules = RuleSet().add(tolerate_extra_reply("answer", lambda data: True))
    assert [finding.code for finding in _lint(rules)] == ["MVE501"]


def test_dsl_rule_dropping_records_is_suppressing():
    text = r'''
    rule drop_reply outdated-leader:
        read(fd, s), write(fd2, r) where startswith(s, "set ")
            => read(fd, s)
    '''
    rules = RuleSet()
    for rule in parse_rules(text):
        rules.add(rule)
    assert all(_is_suppressing(rule) for rule in rules.rules)
    assert [finding.code for finding in _lint(rules)] == ["MVE501"]


def test_one_to_one_dsl_rules_are_clean():
    # The kvstore Figure 4 rules rewrite records 1-to-1: no suppression,
    # no MVE501.
    assert _lint(kv_rules()) == []


def test_repo_memcached_catalog_is_tagged():
    # The in-tree noreply rules carry their trace tags; the shipped
    # catalog must stay MVE501-clean.
    findings = lint_trace_tags(memcached_rules("1.2.4", "1.2.5"),
                               app="memcached", pair="1.2.4->1.2.5")
    assert findings == []


def test_run_app_registers_the_trace_analyzer():
    # Strip the trace tags from memcached's rules: run_app must now
    # surface MVE501, proving the analyzer is wired into the pipeline.
    from repro.analysis.catalog import default_catalog
    from repro.analysis.cli import run_app

    def untagged_rules(old, new):
        rules = RuleSet()
        for rule in memcached_rules(old, new).rules:
            rules.add(dataclasses.replace(rule, trace_tag=None))
        return rules

    config = dataclasses.replace(default_catalog()["memcached"],
                                 rules_for=untagged_rules)
    report = run_app(config)
    codes = {finding.code for finding in report.findings}
    assert "MVE501" in codes
    assert all(finding.analyzer == "trace"
               for finding in report.findings
               if finding.code == "MVE501")

"""Unit tests for syscall records and trace signatures."""

from repro.syscalls import Sys, SyscallRecord, trace_signature
from repro.syscalls.model import read_record, write_record


def test_matching_records_compare_equal():
    a = SyscallRecord(Sys.WRITE, fd=4, data=b"+OK\r\n")
    b = SyscallRecord(Sys.WRITE, fd=4, data=b"+OK\r\n", result=5)
    # Result is replayed, not compared.
    assert a.matches(b)


def test_data_mismatch_detected():
    a = SyscallRecord(Sys.WRITE, fd=4, data=b"+OK\r\n")
    b = SyscallRecord(Sys.WRITE, fd=4, data=b"-ERR\r\n")
    assert not a.matches(b)


def test_fd_mismatch_detected():
    a = SyscallRecord(Sys.WRITE, fd=4, data=b"x")
    assert not a.matches(a.with_fd(5))


def test_name_mismatch_detected():
    a = SyscallRecord(Sys.READ, fd=4, data=b"x")
    b = SyscallRecord(Sys.WRITE, fd=4, data=b"x")
    assert not a.matches(b)


def test_non_data_bearing_syscalls_ignore_payload():
    a = SyscallRecord(Sys.EPOLL_WAIT, fd=3, data=b"whatever")
    b = SyscallRecord(Sys.EPOLL_WAIT, fd=3)
    assert a.matches(b)


def test_with_data_preserves_identity_fields():
    a = SyscallRecord(Sys.WRITE, fd=9, data=b"old", result=3)
    b = a.with_data(b"new")
    assert b.fd == 9 and b.name is Sys.WRITE and b.data == b"new"


def test_trace_signature_is_order_sensitive():
    r1 = read_record(4, b"GET k\r\n")
    r2 = write_record(4, b"$1\r\nv\r\n")
    assert trace_signature([r1, r2]) != trace_signature([r2, r1])


def test_convenience_constructors_set_result():
    assert read_record(3, b"abc").result == 3
    assert write_record(3, b"abcd").result == 4


def test_describe_truncates_long_payloads():
    record = write_record(1, b"x" * 100)
    assert "..." in record.describe()
    assert Sys.WRITE.value in record.describe()

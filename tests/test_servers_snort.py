"""Tests for the Snort-like detector and its §1.1 stateful-update story."""

import pytest

from repro.baselines import StopRestart
from repro.core import Mvedsua, Stage
from repro.net import VirtualKernel
from repro.servers.native import NativeRuntime
from repro.servers.snort import (
    SnortServer,
    snort_registry,
    snort_transforms,
    snort_version,
)
from repro.servers.snort.versions import ALERT_LOG
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def native(version="1.0"):
    kernel = VirtualKernel()
    server = SnortServer(snort_version(version))
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["kvstore"],
                            with_kitsune=True)
    client = VirtualClient(kernel, server.address)
    return kernel, server, runtime, client


def mvedsua_deployment(version="1.0"):
    kernel = VirtualKernel()
    server = SnortServer(snort_version(version))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["kvstore"],
                      transforms=snort_transforms())
    client = VirtualClient(kernel, server.address)
    return kernel, mvedsua, client


class TestDetection:
    def test_full_sequence_alerts(self):
        kernel, _, runtime, client = native()
        assert client.command(runtime, b"PKT evil probe") == b"ok\r\n"
        assert client.command(runtime, b"PKT evil exploit") == b"ok\r\n"
        assert client.command(runtime, b"PKT evil exfil") == \
            b"ALERT intrusion evil\r\n"
        assert kernel.fs.read_file(ALERT_LOG) == b"ALERT intrusion evil\n"

    def test_out_of_order_does_not_alert(self):
        _, _, runtime, client = native()
        client.command(runtime, b"PKT x exploit")
        assert client.command(runtime, b"PKT x exfil") == b"ok\r\n"
        assert client.command(runtime, b"STATUS x") == b"stage 0\r\n"

    def test_flows_tracked_per_source(self):
        _, _, runtime, client = native()
        client.command(runtime, b"PKT a probe")
        client.command(runtime, b"PKT b probe")
        client.command(runtime, b"PKT a exploit")
        assert client.command(runtime, b"STATUS a") == b"stage 2\r\n"
        assert client.command(runtime, b"STATUS b") == b"stage 1\r\n"

    def test_stats_and_reset(self):
        _, _, runtime, client = native()
        client.command(runtime, b"PKT a probe")
        assert client.command(runtime, b"STATS") == \
            b"packets=1 alerts=0 flows=1\r\n"
        client.command(runtime, b"RESET")
        assert client.command(runtime, b"STATUS a") == b"stage 0\r\n"

    def test_alert_restarts_the_machine(self):
        _, _, runtime, client = native()
        for verb in (b"probe", b"exploit", b"exfil"):
            client.command(runtime, b"PKT evil " + verb)
        # A second full sequence alerts again.
        for verb in (b"probe", b"exploit"):
            client.command(runtime, b"PKT evil " + verb)
        assert client.command(runtime, b"PKT evil exfil") == \
            b"ALERT intrusion evil\r\n"

    def test_version_delta_benign_interleave(self):
        """1.0 forgets progress on benign traffic; 1.1 keeps it."""
        _, _, old_rt, old_client = native("1.0")
        _, _, new_rt, new_client = native("1.1")
        for client, runtime in ((old_client, old_rt),
                                (new_client, new_rt)):
            client.command(runtime, b"PKT evil probe")
            client.command(runtime, b"PKT evil benign")
            client.command(runtime, b"PKT evil exploit")
        assert old_client.command(old_rt, b"STATUS evil") == b"stage 0\r\n"
        assert new_client.command(new_rt, b"STATUS evil") == b"stage 2\r\n"


class TestStatefulUpdateStory:
    """§1.1: the mounting attack across an upgrade."""

    def mount_attack(self, client, runtime, now=0):
        client.command(runtime, b"PKT evil probe", now=now)
        client.command(runtime, b"PKT evil exploit", now=now)

    def test_stop_restart_misses_the_mounting_attack(self):
        _, server, runtime, client = native("1.0")
        self.mount_attack(client, runtime)
        StopRestart().perform(runtime, snort_version("1.1"), SECOND)
        # The state machine is gone: the final packet looks innocent.
        reply = client.command(runtime, b"PKT evil exfil", now=2 * SECOND)
        assert reply == b"ok\r\n"  # attack missed!

    def test_mvedsua_update_keeps_the_state_machine(self):
        _, mvedsua, client = mvedsua_deployment("1.0")
        self.mount_attack(client, mvedsua)
        mvedsua.request_update(snort_version("1.1"), SECOND)
        reply = client.command(mvedsua, b"PKT evil exfil", now=2 * SECOND)
        assert reply == b"ALERT intrusion evil\r\n"  # attack caught
        assert mvedsua.runtime.last_divergence is None
        assert mvedsua.stage is Stage.OUTDATED_LEADER

    def test_behavioural_fix_diverges_on_the_flows_it_fixes(self):
        """The 1.1 fix changes detection for benign-interleaved flows —
        validating against live traffic that hits the bug genuinely
        diverges, and Mvedsua rolls back safely."""
        _, mvedsua, client = mvedsua_deployment("1.0")
        mvedsua.request_update(snort_version("1.1"), SECOND)
        client.command(mvedsua, b"PKT evil probe", now=2 * SECOND)
        client.command(mvedsua, b"PKT evil benign", now=2 * SECOND)
        client.command(mvedsua, b"PKT evil exploit", now=2 * SECOND)
        # Old leader: stage reset then probe-restart differs... the
        # divergence shows up at the latest when the alert fires on one
        # version only.
        client.command(mvedsua, b"PKT evil exfil", now=2 * SECOND)
        assert mvedsua.stage is Stage.SINGLE_LEADER
        assert mvedsua.last_outcome().rolled_back()
        assert mvedsua.current_version == "1.0"

    def test_operator_promotes_early_to_ship_the_fix(self):
        """§3.3.2's escape hatch: when the semantic change cannot be
        mapped, promote before conflicting traffic arrives."""
        _, mvedsua, client = mvedsua_deployment("1.0")
        self.mount_attack(client, mvedsua)
        mvedsua.request_update(snort_version("1.1"), SECOND)
        mvedsua.promote(2 * SECOND)
        mvedsua.finalize(3 * SECOND)
        assert mvedsua.current_version == "1.1"
        # The fixed semantics now hold — and the mounted state survived.
        client.command(mvedsua, b"PKT evil benign", now=4 * SECOND)
        reply = client.command(mvedsua, b"PKT evil exfil", now=4 * SECOND)
        assert reply == b"ALERT intrusion evil\r\n"

    def test_registry_and_transforms(self):
        registry = snort_registry()
        assert registry.update_pairs("snort") == [("1.0", "1.1")]
        assert snort_transforms().has("snort", "1.0", "1.1")
        with pytest.raises(ValueError):
            snort_version("2.0")

"""Tests for fleet orchestration: sharding, routing, canary upgrades."""

import json

import pytest

from repro.chaos.injector import ChaosInjector, chaos_active
from repro.chaos.plan import Fault, FaultPlan, on_call
from repro.chaos.scenarios import BuggyKVStoreV2, buggy_v2_factory
from repro.cluster import (
    FleetBudgetError,
    FleetOrchestrator,
    FleetSpec,
    NodeStatus,
)
from repro.cluster.fleet import (
    FLEET_SCHEMA,
    FleetSession,
    build_kv_fleet,
    run_fleet_scenario,
    validate_report,
)
from repro.errors import KernelError
from repro.obs.trace import Tracer, tracing
from repro.servers.kvstore import KVStoreV2, kv_rules_from_dsl
from repro.sim.engine import SECOND


def make_fleet(shards=2, replicas=2):
    spec = FleetSpec(shards, replicas, wave_size=1)
    kernel, shard_map, balancer = build_kv_fleet(spec)
    orchestrator = FleetOrchestrator(balancer, spec,
                                     rules=kv_rules_from_dsl(),
                                     validation_window_ns=SECOND)
    return kernel, shard_map, balancer, orchestrator


class TestFleetSpec:
    def test_shape_problems(self):
        assert FleetSpec(0, 3).shape_problems()
        assert FleetSpec(3, 0).shape_problems()
        assert FleetSpec(3, 3, wave_size=0).shape_problems()
        assert FleetSpec(3, 3).problems() == []

    def test_drain_problem_when_wave_exceeds_replicas(self):
        problems = FleetSpec(2, 1, wave_size=2).drain_problems()
        assert problems and "drain whole shards" in problems[0]

    def test_advisory_when_wave_equals_replicas(self):
        assert FleetSpec(3, 2, wave_size=2).advisories()
        assert FleetSpec(3, 3, wave_size=1).advisories() == []

    def test_waves_canary_first_then_chunks(self):
        assert FleetSpec(3, 3, wave_size=1).waves() == [(0,), (1,), (2,)]
        assert FleetSpec(2, 5, wave_size=2).waves() == [(0,), (1, 2),
                                                        (3, 4)]
        assert FleetSpec(4, 1).waves() == [(0,)]


class TestShardMap:
    def test_routing_is_stable_and_total(self):
        _, shard_map, _, _ = make_fleet(shards=3, replicas=2)
        keys = [f"key-{i}" for i in range(64)]
        first = [shard_map.shard_for(k).index for k in keys]
        second = [shard_map.shard_for(k).index for k in keys]
        assert first == second
        assert set(first) == {0, 1, 2}  # every shard owns some keys

    def test_nodes_are_shard_major_with_identity(self):
        _, shard_map, _, _ = make_fleet(shards=2, replicas=2)
        names = [node.name for node in shard_map.nodes()]
        assert names == ["s0-r0", "s0-r1", "s1-r0", "s1-r1"]
        node = shard_map.shards[1].nodes[0]
        assert (node.shard_index, node.replica_index) == (1, 0)


class TestFleetBalancer:
    def test_round_robin_within_shard(self):
        _, shard_map, balancer, _ = make_fleet(shards=1, replicas=3)
        shard = shard_map.shards[0]
        picks = [balancer.pick_replica(shard).name for _ in range(4)]
        assert picks == ["s0-r0", "s0-r1", "s0-r2", "s0-r0"]

    def test_skips_demoted_failed_and_draining(self):
        _, shard_map, balancer, _ = make_fleet(shards=1, replicas=3)
        shard = shard_map.shards[0]
        shard.nodes[0].status = NodeStatus.DEMOTED
        shard.nodes[1].status = NodeStatus.FAILED
        assert balancer.pick_replica(shard).name == "s0-r2"
        shard.nodes[1].status = NodeStatus.DRAINING
        assert balancer.pick_replica(shard).name == "s0-r2"

    def test_raises_when_no_replica_accepts(self):
        _, shard_map, balancer, _ = make_fleet(shards=1, replicas=2)
        shard = shard_map.shards[0]
        for node in shard.nodes:
            node.status = NodeStatus.FAILED
        with pytest.raises(KernelError):
            balancer.pick_replica(shard)


class TestFleetOrchestrator:
    def test_rejects_unusable_topology(self):
        _, _, balancer, _ = make_fleet()
        with pytest.raises(ValueError):
            FleetOrchestrator(balancer, FleetSpec(2, 1, wave_size=2))

    def test_good_round_updates_whole_fleet_within_budget(self):
        _, shard_map, _, orchestrator = make_fleet(shards=2, replicas=3)
        report = orchestrator.run_round(KVStoreV2, SECOND, label="2.0")
        assert report.outcome == "completed"
        assert report.updated == 6
        assert orchestrator.max_mve_pairs_per_shard == 1
        assert all(node.version_name == "2.0"
                   for node in shard_map.nodes())
        assert all(node.status is NodeStatus.SERVING
                   for node in shard_map.nodes())

    def test_buggy_canary_rolls_back_fleet_wide(self):
        _, shard_map, _, orchestrator = make_fleet(shards=3, replicas=2)
        report = orchestrator.run_round(BuggyKVStoreV2, SECOND,
                                        label="2.0-buggy")
        assert report.outcome == "rolled-back"
        assert report.demotions == 3
        assert report.updated == 0
        assert orchestrator.rollbacks == 1
        # The whole fleet is back on 1.0 and fully serving.
        assert all(node.version_name == "1.0"
                   for node in shard_map.nodes())
        assert all(node.status is NodeStatus.SERVING
                   for node in shard_map.nodes())
        # No replica is left holding a leader-follower pair.
        assert all(shard.mve_pairs() == 0 for shard in shard_map.shards)

    def test_budget_violation_raises(self):
        _, shard_map, _, orchestrator = make_fleet(shards=1, replicas=2)
        rules = kv_rules_from_dsl()
        for node in shard_map.shards[0].nodes:
            attempt = node.runtime.request_update(KVStoreV2(), SECOND,
                                                  rules=rules)
            assert attempt.ok
        with pytest.raises(FleetBudgetError):
            orchestrator._sample_budget(SECOND)

    def test_fleet_events_are_traced(self):
        tracer = Tracer(experiment="fleet-test")
        with tracing(tracer):
            _, _, _, orchestrator = make_fleet(shards=1, replicas=2)
            orchestrator.run_round(KVStoreV2, SECOND)
        kinds = {event.kind for event in tracer.events
                 if event.kind.startswith("fleet.")}
        assert {"fleet.round_start", "fleet.canary", "fleet.wave",
                "fleet.promote", "fleet.round_end"} <= kinds
        assert tracer.metrics.gauge("fleet.mve_pairs").max_value == 1


class TestFleetSession:
    def test_failover_preserves_acked_writes(self):
        _, shard_map, balancer, _ = make_fleet(shards=1, replicas=2)
        observations = []
        session = FleetSession("s0", balancer, observations)
        assert session.command("PUT alpha one", 0) == b"+OK\r\n"
        sticky = session._sticky[0]
        sticky.status = NodeStatus.FAILED
        # The write fanned out, so the surviving replica answers it.
        assert session.command("GET alpha", 1) == b"one\r\n"
        assert balancer.failovers == 1
        assert [obs.reply for obs in observations] \
            == [b"+OK\r\n", b"one\r\n"]


class TestFleetChaos:
    def test_replica_crash_mid_wave_is_survivable(self):
        plan = FaultPlan("crash", (
            Fault("fleet.replica", "crash", on_call(2)),))
        with chaos_active(ChaosInjector(plan)):
            report = run_fleet_scenario()
        records = [record for round_payload in report["rounds"]
                   for record in round_payload["records"]]
        assert any(record["outcome"] == "crashed" for record in records)
        assert report["invariants"]["problems"] == []

    def test_injected_canary_divergence_demotes(self):
        plan = FaultPlan("divergence", (
            Fault("fleet.canary", "divergence", on_call(1),
                  param={"factory": buggy_v2_factory}),))
        with chaos_active(ChaosInjector(plan)):
            _, shard_map, _, orchestrator = make_fleet(shards=2,
                                                       replicas=2)
            report = orchestrator.run_round(KVStoreV2, SECOND)
        assert report.outcome == "rolled-back"
        assert report.demotions == 1
        assert all(node.version_name == "1.0"
                   for node in shard_map.nodes())

    def test_balancer_partition_routes_around_replica(self):
        plan = FaultPlan("partition", (
            Fault("fleet.balancer", "partition", on_call(1)),))
        with chaos_active(ChaosInjector(plan)):
            _, shard_map, balancer, _ = make_fleet(shards=1, replicas=2)
            node = balancer.pick_replica(shard_map.shards[0])
        assert node.name == "s0-r1"  # r0 was partitioned away
        assert balancer.partitions == 1


class TestFleetScenario:
    def test_report_shape_and_outcomes(self):
        report = run_fleet_scenario()
        assert report["schema"] == FLEET_SCHEMA
        assert [r["outcome"] for r in report["rounds"]] \
            == ["rolled-back", "completed"]
        assert report["invariants"]["problems"] == []
        assert report["max_mve_pairs_per_shard"] == 1
        assert report["rollbacks"] == 1
        assert set(report["final_versions"].values()) == {"2.0"}
        assert validate_report(report) == []

    def test_report_is_bit_identical_across_runs(self):
        first = json.dumps(run_fleet_scenario(seed=3), sort_keys=True)
        second = json.dumps(run_fleet_scenario(seed=3), sort_keys=True)
        assert first == second

    def test_seed_changes_traffic(self):
        first = json.dumps(run_fleet_scenario(seed=1), sort_keys=True)
        second = json.dumps(run_fleet_scenario(seed=2), sort_keys=True)
        assert first != second

    def test_validate_report_catches_damage(self):
        report = run_fleet_scenario()
        report["max_mve_pairs_per_shard"] = 2
        report["rounds"][0]["outcome"] = "exploded"
        problems = validate_report(report)
        assert any("max_mve_pairs_per_shard" in p for p in problems)
        assert any("exploded" in p for p in problems)

    def test_openloop_traffic_keeps_outcomes_and_tags_report(self):
        report = run_fleet_scenario(openloop=True)
        assert [r["outcome"] for r in report["rounds"]] \
            == ["rolled-back", "completed"]
        assert report["traffic"] == {
            "mode": "open-loop", "process": "poisson",
            "rate_per_sec": 40.0, "key_distribution": "zipf"}
        assert validate_report(report) == []
        # The default path must stay byte-identical to the pinned
        # closed-loop report: no traffic section, different stream.
        default = run_fleet_scenario()
        assert "traffic" not in default
        assert json.dumps(default, sort_keys=True) \
            != json.dumps(report, sort_keys=True)

    def test_openloop_is_deterministic_per_seed(self):
        first = json.dumps(run_fleet_scenario(seed=3, openloop=True),
                           sort_keys=True)
        second = json.dumps(run_fleet_scenario(seed=3, openloop=True),
                            sort_keys=True)
        assert first == second


class TestFleetCLI:
    def test_cli_writes_report_and_exits_zero(self, tmp_path, capsys):
        from repro.cluster.cli import fleet_main
        path = tmp_path / "FLEET_kvstore.json"
        code = fleet_main(["canary-kvstore", "--report", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == FLEET_SCHEMA
        out = capsys.readouterr().out
        assert "rolled-back" in out and "completed" in out

    def test_cli_openloop_flag(self, tmp_path, capsys):
        from repro.cluster.cli import fleet_main
        path = tmp_path / "FLEET_openloop.json"
        code = fleet_main(["canary-kvstore", "--openloop",
                           "--report", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["traffic"]["mode"] == "open-loop"
        assert "traffic: open-loop" in capsys.readouterr().out


class TestFleetLint:
    def test_mve701_for_over_wide_wave(self):
        from repro.analysis.fleet_lint import lint_fleet_topology
        findings = lint_fleet_topology("app", FleetSpec(2, 1, wave_size=2))
        assert [f.code for f in findings] == ["MVE701"]

    def test_mve702_for_full_shard_wave(self):
        from repro.analysis.fleet_lint import lint_fleet_topology
        findings = lint_fleet_topology("app", FleetSpec(2, 2, wave_size=2))
        assert [f.code for f in findings] == ["MVE702"]

    def test_mve703_for_malformed_counts(self):
        from repro.analysis.fleet_lint import lint_fleet_topology
        findings = lint_fleet_topology("app", FleetSpec(0, 0, wave_size=0))
        assert {f.code for f in findings} == {"MVE703"}

    def test_bad_catalog_trips_mve701(self):
        from repro.analysis.cli import run_catalog
        from tests.fixtures.bad_catalog import catalog
        report = run_catalog(catalog())
        assert any(f.code == "MVE701" for f in report.findings)

    def test_default_catalog_is_fleet_clean(self):
        from repro.analysis.catalog import default_catalog
        from repro.analysis.cli import run_app
        report = run_app(default_catalog()["kvstore"])
        assert not any(f.code.startswith("MVE7")
                       for f in report.findings)

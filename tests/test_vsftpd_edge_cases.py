"""Edge-case coverage for the Vsftpd protocol implementation."""

from repro.net import VirtualKernel
from repro.servers.native import NativeRuntime
from repro.servers.vsftpd import VsftpdServer, vsftpd_version
from repro.syscalls.costs import PROFILES
from repro.workloads.ftpclient import FtpClient


def deployment(version="2.0.6", files=None, dirs=()):
    kernel = VirtualKernel()
    for d in dirs:
        kernel.fs.mkdir(d)
    for path, data in (files or {}).items():
        kernel.fs.write_file(path, data)
    server = VsftpdServer(vsftpd_version(version))
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["vsftpd-small"])
    client = FtpClient(kernel, server.address)
    return kernel, server, runtime, client


class TestSessionEdges:
    def test_user_resets_login(self):
        _, _, runtime, client = deployment()
        client.login(runtime)
        assert client.command(runtime, b"PWD").startswith(b"257")
        # Issuing USER again de-authenticates until PASS.
        client.command(runtime, b"USER other")
        assert client.command(runtime, b"PWD").startswith(b"530")
        client.command(runtime, b"PASS x")
        assert client.command(runtime, b"PWD").startswith(b"257")

    def test_abor_and_rest(self):
        _, _, runtime, client = deployment()
        client.login(runtime)
        assert client.command(runtime, b"ABOR") == b"226 ABOR successful.\r\n"
        assert client.command(runtime, b"REST 42").startswith(b"350")

    def test_quit_before_login_allowed(self):
        _, _, runtime, client = deployment()
        client.connect_greeting(runtime)
        assert client.command(runtime, b"QUIT").startswith(b"221")

    def test_cwd_into_subdirectory_and_retr_relative(self):
        kernel, _, runtime, client = deployment(
            dirs=("/pub",), files={"/pub/f.txt": b"inner"})
        client.login(runtime)
        client.command(runtime, b"CWD pub")
        _, data = client.retr(runtime, "f.txt")
        assert data == b"inner"

    def test_retr_absolute_path(self):
        _, _, runtime, client = deployment(files={"/abs.txt": b"abs"})
        client.login(runtime)
        _, data = client.retr(runtime, "/abs.txt")
        assert data == b"abs"

    def test_cdup_at_root_stays_at_root(self):
        _, _, runtime, client = deployment()
        client.login(runtime)
        client.command(runtime, b"CDUP")
        assert client.command(runtime, b"PWD") == b'257 "/"\r\n'

    def test_commands_case_insensitive(self):
        _, _, runtime, client = deployment()
        client.connect_greeting(runtime)
        assert client.command(runtime, b"user x").startswith(b"331")
        assert client.command(runtime, b"pass y").startswith(b"230")
        assert client.command(runtime, b"syst").startswith(b"215")


class TestTransfersEdges:
    def test_appe_appends(self):
        kernel, _, runtime, client = deployment(files={"/log": b"one"})
        client.login(runtime)
        data_fd = client._open_data_connection(runtime, 0)
        client.kernel.write(client.domain, data_fd, b"+two")
        client.kernel.close(client.domain, data_fd)
        reply = client.command(runtime, b"APPE log")
        assert reply.endswith(b"226 Transfer complete.\r\n")
        assert kernel.fs.read_file("/log") == b"one+two"

    def test_stor_empty_file(self):
        kernel, _, runtime, client = deployment()
        client.login(runtime)
        reply = client.stor(runtime, "empty.bin", b"")
        assert reply.endswith(b"226 Transfer complete.\r\n")
        assert kernel.fs.read_file("/empty.bin") == b""

    def test_retr_empty_file(self):
        _, _, runtime, client = deployment(files={"/empty": b""})
        client.login(runtime)
        control, data = client.retr(runtime, "empty")
        assert control.endswith(b"226 Transfer complete.\r\n")
        assert data == b""

    def test_pasv_reusable_after_failed_retr(self):
        _, _, runtime, client = deployment(files={"/f": b"x"})
        client.login(runtime)
        client.command(runtime, b"PASV")
        assert client.command(runtime, b"RETR missing").startswith(b"550")
        # The data listener was consumed; a new PASV works.
        _, data = client.retr(runtime, "f")
        assert data == b"x"

    def test_two_sequential_transfers(self):
        _, _, runtime, client = deployment(
            files={"/a": b"first", "/b": b"second"})
        client.login(runtime)
        _, first = client.retr(runtime, "a")
        _, second = client.retr(runtime, "b", now=10**9)
        assert (first, second) == (b"first", b"second")

    def test_nlst_is_list(self):
        _, _, runtime, client = deployment(files={"/x": b"1"})
        client.login(runtime)
        data_fd = client._open_data_connection(runtime, 0)
        client.command(runtime, b"NLST")
        listing = client._drain_data(data_fd)
        assert listing == b"x\r\n"

    def test_list_empty_directory(self):
        _, _, runtime, client = deployment(dirs=("/void",))
        client.login(runtime)
        client.command(runtime, b"CWD void")
        _, listing = client.list_dir(runtime)
        assert listing == b""


class TestVersionGates:
    def test_epsv_unknown_before_200(self):
        _, _, runtime, client = deployment(version="1.2.2")
        client.login(runtime)
        assert client.command(runtime, b"EPSV") == \
            b"500 Unknown command.\r\n"

    def test_feat_lists_grow_across_versions(self):
        _, _, runtime, client = deployment(version="1.1.0")
        client.login(runtime)
        old_feat = client.command(runtime, b"FEAT")
        _, _, runtime, client = deployment(version="2.0.6")
        client.login(runtime)
        new_feat = client.command(runtime, b"FEAT")
        assert b" STOU" not in old_feat and b" STOU" in new_feat
        assert b" EPSV" not in old_feat and b" EPSV" in new_feat

    def test_stou_names_are_sequential(self):
        kernel, _, runtime, client = deployment(version="2.0.6")
        client.login(runtime)
        assert client.command(runtime, b"STOU") == \
            b'257 "/stou.0001" created.\r\n'
        assert client.command(runtime, b"STOU") == \
            b'257 "/stou.0002" created.\r\n'
        assert kernel.fs.exists("/stou.0002")

    def test_retr_order_differs_between_204_and_205(self):
        def retr_record_names(version):
            kernel, server, runtime, client = deployment(
                version=version, files={"/f": b"x"})
            client.login(runtime)
            data_fd = client._open_data_connection(runtime, 0)
            runtime.gateway.begin_iteration()
            client.send(b"RETR f\r\n")
            runtime.pump(10**9)
            client._drain_data(data_fd)
            return [r.name.value for r in runtime.gateway.trace.records]

        old = retr_record_names("2.0.4")
        new = retr_record_names("2.0.5")
        assert old != new
        # 2.0.4 writes the 150 reply before opening the file; 2.0.5 after.
        assert old.index("open") > old.index("write")
        assert new.index("open") < new.index("write")


class TestActiveMode:
    def test_port_then_retr(self):
        _, _, runtime, client = deployment(files={"/f": b"payload"})
        client.login(runtime)
        control, data = client.retr_active(runtime, "f", 30010)
        assert control.endswith(b"226 Transfer complete.\r\n")
        assert data == b"payload"

    def test_port_replaces_pasv(self):
        _, _, runtime, client = deployment(files={"/f": b"x"})
        client.login(runtime)
        client.command(runtime, b"PASV")
        # A PORT after PASV wins; the later RETR dials out.
        control, data = client.retr_active(runtime, "f", 30011)
        assert data == b"x"

    def test_malformed_port_rejected(self):
        _, _, runtime, client = deployment()
        client.login(runtime)
        assert client.command(runtime, b"PORT 1,2,3") == \
            b"500 Illegal PORT command.\r\n"
        assert client.command(runtime, b"PORT a,b,c,d,e,f") == \
            b"500 Illegal PORT command.\r\n"

    def test_active_mode_under_mve(self):
        from repro.mve import VaranRuntime
        kernel = VirtualKernel()
        kernel.fs.write_file("/f", b"mve-active")
        server = VsftpdServer(vsftpd_version("2.0.6"))
        server.attach(kernel)
        runtime = VaranRuntime(kernel, server, PROFILES["vsftpd-small"])
        client = FtpClient(kernel, server.address)
        client.login(runtime)
        runtime.fork_follower(0)
        _, data = client.retr_active(runtime, "f", 30012, now=10**9)
        assert data == b"mve-active"
        runtime.drain_follower()
        assert runtime.last_divergence is None

"""The operator's view: console status, auto-pilot, and post-mortems.

The paper leaves promotion to operators ("if the new version shows no
problems after a warmup period, operators can make it permanent").  This
example shows that workflow end to end on the running-example store:

1. a buggy update attempt — the operator reads the post-mortem of the
   automatic rollback;
2. the fixed update driven by the AutoPilot policy (promote after a
   clean warmup, finalize after a confirmation window) while traffic
   flows.

Run with:  python examples/operator_console.py
"""

from repro.core import AutoPilot, Mvedsua, OperatorConsole
from repro.core.report import render_history
from repro.dsu.transform import TransformRegistry
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    kv_transforms,
    xform_drop_table,
)
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def main() -> None:
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    buggy = TransformRegistry()
    buggy.register("kvstore", "1.0", "2.0", xform_drop_table)
    mvedsua = Mvedsua(kernel, server, PROFILES["kvstore"],
                      transforms=buggy)
    console = OperatorConsole(mvedsua)
    client = VirtualClient(kernel, server.address)

    client.command(mvedsua, b"PUT balance 1000")
    print("== status before the update ==")
    print(console.render_status())

    # Attempt 1: the transformer silently drops the table; the first
    # GET during catch-up diverges and the update rolls back.
    mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
    client.command(mvedsua, b"GET balance", now=2 * SECOND)
    print("\n== status after the rollback ==")
    print(console.render_status())

    # Attempt 2: transformer fixed; let the auto-pilot drive.
    mvedsua.kitsune.transforms = kv_transforms()
    pilot = AutoPilot(mvedsua, warmup_ns=5 * SECOND,
                      min_validated_requests=5,
                      confirm_ns=5 * SECOND)
    mvedsua.request_update(KVStoreV2(), 10 * SECOND, rules=kv_rules())
    for tick in range(25):
        now = (11 + tick) * SECOND
        client.command(mvedsua, b"PUT key%d v" % tick, now=now)
        action = pilot.observe(now)
        if action:
            print(f"\n[auto-pilot @ {11 + tick}s] {action}")

    print("\n== final status ==")
    print(console.render_status())
    print("\n== post-mortems ==")
    print(render_history(mvedsua))
    print("\nGET balance ->",
          client.command(mvedsua, b"GET balance", now=60 * SECOND))


if __name__ == "__main__":
    main()

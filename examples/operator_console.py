"""The operator's view: console status, live metrics, and post-mortems.

The paper leaves promotion to operators ("if the new version shows no
problems after a warmup period, operators can make it permanent").  This
example shows that workflow end to end on the running-example store,
with the observability layer attached the way a production console
would use it:

1. a buggy update attempt — the operator reads the automatic rollback's
   post-mortem *and* the divergence forensics bundle the monitor
   captured (which leader record the follower disagreed on, what it
   issued instead, the last ring records);
2. the fixed update driven by the AutoPilot policy (promote after a
   clean warmup, finalize after a confirmation window) while traffic
   flows, with the live metrics stream sampled every few ticks.

Run with:  python examples/operator_console.py
"""

from repro.core import AutoPilot, Mvedsua, OperatorConsole
from repro.core.report import render_history
from repro.dsu.transform import TransformRegistry
from repro.net import VirtualKernel
from repro.obs import Tracer
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    kv_transforms,
    xform_drop_table,
)
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def metrics_line(tracer: Tracer) -> str:
    """One console line from the live metrics registry."""
    snapshot = tracer.metrics.snapshot()

    def value(name: str) -> int:
        entry = snapshot.get(name, {})
        return entry.get("value", 0)

    occupancy = snapshot.get("ring.occupancy", {})
    return (f"syscalls={value('syscalls.total')} "
            f"ring.occupancy={occupancy.get('value', 0)} "
            f"(peak {occupancy.get('max', 0)}) "
            f"ring.stalls={value('ring.stalls')} "
            f"divergence.checks={value('divergence.checks')} "
            f"rules.hits={value('rules.dispatch_hits')}")


def main() -> None:
    kernel = VirtualKernel()
    # The console attaches a tracer to the running kernel: every gateway
    # and runtime on it starts reporting, no restart needed.
    tracer = Tracer(experiment="operator-console").attach(kernel)
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    buggy = TransformRegistry()
    buggy.register("kvstore", "1.0", "2.0", xform_drop_table)
    mvedsua = Mvedsua(kernel, server, PROFILES["kvstore"],
                      transforms=buggy)
    console = OperatorConsole(mvedsua)
    client = VirtualClient(kernel, server.address)

    client.command(mvedsua, b"PUT balance 1000")
    print("== status before the update ==")
    print(console.render_status())
    print("metrics:", metrics_line(tracer))

    # Attempt 1: the transformer silently drops the table; the first
    # GET during catch-up diverges and the update rolls back.
    mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
    client.command(mvedsua, b"GET balance", now=2 * SECOND)
    print("\n== status after the rollback ==")
    print(console.render_status())
    if mvedsua.runtime.last_forensics is not None:
        print("\n== divergence forensics ==")
        print(mvedsua.runtime.last_forensics.summary())

    # Attempt 2: transformer fixed; let the auto-pilot drive.
    mvedsua.kitsune.transforms = kv_transforms()
    pilot = AutoPilot(mvedsua, warmup_ns=5 * SECOND,
                      min_validated_requests=5,
                      confirm_ns=5 * SECOND)
    mvedsua.request_update(KVStoreV2(), 10 * SECOND, rules=kv_rules())
    for tick in range(25):
        now = (11 + tick) * SECOND
        client.command(mvedsua, b"PUT key%d v" % tick, now=now)
        action = pilot.observe(now)
        if action:
            print(f"\n[auto-pilot @ {11 + tick}s] {action}")
        if tick % 8 == 0:
            print(f"[metrics @ {11 + tick}s] {metrics_line(tracer)}")

    print("\n== final status ==")
    print(console.render_status())
    print("\n== final metrics ==")
    for name, entry in sorted(tracer.metrics.snapshot().items()):
        rendered = " ".join(f"{key}={value}"
                            for key, value in sorted(entry.items())
                            if key != "type")
        print(f"  {name:24s} {rendered}")
    print(f"  trace events collected: {len(tracer.events)}")
    print("\n== post-mortems ==")
    print(render_history(mvedsua))
    print("\nGET balance ->",
          client.command(mvedsua, b"GET balance", now=60 * SECOND))


if __name__ == "__main__":
    main()

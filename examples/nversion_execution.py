"""N-version execution: Varan's general mode (one leader, many followers).

Beyond Mvedsua's two-process arrangement, the MVE substrate can shepherd
several replicas at once: "a bug that affects only some of the processes
is tolerated by the others which continue execution".  This example runs
a leader with three followers — an identical copy, a diversified replica
carrying a latent bug, and a dynamically-updated v2.0 with its rewrite
rules — and shows partial failure and leader fail-over.

Run with:  python examples/nversion_execution.py
"""

from repro.errors import ServerCrash
from repro.mve import NVersionRuntime
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    xform_1_to_2,
)
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


class DiversifiedReplica(KVStoreV1):
    """Same semantics, different build — with a replica-specific bug."""

    def handle(self, heap, request, session=None, io=None):
        if request.startswith(b"PUT unlucky "):
            raise ServerCrash("address-space-layout-specific crash")
        return super().handle(heap, request, session, io)


def main() -> None:
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    runtime = NVersionRuntime(kernel, server, PROFILES["kvstore"])
    client = VirtualClient(kernel, server.address)

    client.command(runtime, b"PUT warm up")

    # Follower 0: identical copy.
    runtime.add_follower(10**9)
    # Follower 1: diversified replica with a latent bug.
    diversified = server.fork()
    diversified.version = DiversifiedReplica()
    diversified.program.version = diversified.version
    runtime.add_follower(10**9, server=diversified)
    # Follower 2: dynamically updated v2.0 with its rewrite rules.
    updated = server.fork()
    updated.apply_version(KVStoreV2(), xform_1_to_2(dict(updated.heap)))
    runtime.add_follower(10**9, server=updated, rules=kv_rules())

    print(f"group size: {runtime.group_size} "
          f"(1 leader + {runtime.group_size - 1} followers)")

    for index, key in enumerate(("alpha", "beta", "unlucky", "gamma")):
        client.command(runtime, b"PUT %s v%d" % (key.encode(), index),
                       now=2 * 10**9 + index)
    runtime.drain()

    print(f"after the 'unlucky' write: group size {runtime.group_size}")
    for event in runtime.events:
        print(f"  [{event.at / 1e9:6.2f}s] {event.kind}: "
              f"{event.detail[:60]}")
    print("leader answers:",
          client.command(runtime, b"GET unlucky", now=10**10))
    print("survivors stayed in sync:",
          all(f.process.server.heap["table"].keys()
              == runtime.leader.server.heap["table"].keys()
              for f in runtime.alive_followers()
              if f.process.version_name == "1.0"))


if __name__ == "__main__":
    main()

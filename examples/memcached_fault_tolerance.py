"""Memcached under Mvedsua: threads, LibEvent, and update errors (§5.3/§6.2).

1. Without the paper's 114-line adaptation, the update can't even
   quiesce (worker threads are parked inside LibEvent's loop).
2. With the epoll-update-point extension but *without* the LibEvent
   reset callback, the update installs but spuriously diverges — Mvedsua
   rolls it back and clients never notice.
3. A buggy state transformer that frees memory LibEvent still uses
   crashes the updated process only under many clients — tolerated the
   same way.
4. Retrying a nondeterministic timing failure every 500 ms eventually
   installs the update (paper: max 8 retries, median 2).

Run with:  python examples/memcached_fault_tolerance.py
"""

from repro.core import Mvedsua, RetryPolicy
from repro.dsu.program import ThreadState
from repro.dsu.transform import TransformRegistry
from repro.net import VirtualKernel
from repro.servers.memcached import (
    MANY_CLIENTS_THRESHOLD,
    MemcachedServer,
    memcached_transforms,
    memcached_version,
    xform_free_libevent,
)
from repro.sim.engine import MILLISECOND, SECOND
from repro.sim.rng import RngStreams
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def deployment(adapted=True, reset=None, transforms=None):
    kernel = VirtualKernel()
    server = MemcachedServer(memcached_version("1.2.2"),
                             mvedsua_adapted=adapted,
                             libevent_reset_on_abort=reset)
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["memcached"],
                      transforms=transforms or memcached_transforms())
    return kernel, server, mvedsua


def part1_unadapted() -> None:
    print("== part 1: update without the Mvedsua adaptation ==")
    _, _, mvedsua = deployment(adapted=False)
    attempt = mvedsua.request_update(memcached_version("1.2.3"), SECOND)
    print("  outcome:", attempt.reason, "-", attempt.error)


def part2_dispatch_memory() -> None:
    print("\n== part 2: LibEvent dispatch memory (no reset callback) ==")
    kernel, server, mvedsua = deployment(adapted=True, reset=False)
    alice = VirtualClient(kernel, server.address, "alice")
    bob = VirtualClient(kernel, server.address, "bob")
    alice.command(mvedsua, b"get warm")  # advances the cursor
    mvedsua.request_update(memcached_version("1.2.3"), SECOND)
    alice.send(b"set p 0 0 1\r\n1\r\n")
    bob.send(b"set q 0 0 1\r\n2\r\n")
    mvedsua.pump(2 * SECOND)
    print("  divergence:", str(mvedsua.runtime.last_divergence)[:70], "...")
    print("  rolled back:", mvedsua.last_outcome().rolled_back(),
          "| clients got:", alice.recv(), bob.recv())


def part3_freed_buffer() -> None:
    print("\n== part 3: state transformer frees LibEvent memory ==")
    buggy = TransformRegistry()
    buggy.register("memcached", "1.2.2", "1.2.3", xform_free_libevent)
    kernel, server, mvedsua = deployment(transforms=buggy)
    clients = [VirtualClient(kernel, server.address, f"c{i}")
               for i in range(MANY_CLIENTS_THRESHOLD + 1)]
    for index, client in enumerate(clients):
        client.command(mvedsua, b"set k%d 0 0 1\r\nv" % index)
    mvedsua.request_update(memcached_version("1.2.3"), SECOND)
    reply = clients[0].command(mvedsua, b"get k0", now=2 * SECOND)
    print("  follower crashed during catch-up; rolled back:",
          mvedsua.last_outcome().rolled_back())
    print("  client reply (from the untouched leader):", reply)


def part4_retry() -> None:
    print("\n== part 4: retrying a nondeterministic timing failure ==")
    kernel, server, mvedsua = deployment()
    rng = RngStreams(1).stream("example-retry")

    def racy(target):
        blocked = rng.random() < 0.75
        target.program.threads = [
            ThreadState("main"),
            ThreadState("worker-0", blocked_on_lock=blocked),
            ThreadState("worker-1", inside_event_loop=True),
        ]

    attempts = mvedsua.request_update_with_retry(
        memcached_version("1.2.3"), SECOND, prepare=racy,
        policy=RetryPolicy(retry_wait_ns=500 * MILLISECOND))
    print(f"  installed after {len(attempts) - 1} retries "
          f"({', '.join(a.reason for a in attempts)})")
    print("  stage:", mvedsua.stage.value)


def main() -> None:
    part1_unadapted()
    part2_dispatch_memory()
    part3_freed_buffer()
    part4_retry()


if __name__ == "__main__":
    main()

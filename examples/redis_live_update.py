"""Updating Redis 2.0.0 -> 2.0.1 under load, with fault injection.

Part 1 — semantics: runs the real (simulated) Redis through the update
while a client issues writes; the 2.0.1 AOF-ordering change is
reconciled by the one DSL rule the paper needed (§5.2).

Part 2 — the HMGET crash (§6.2): the update introduces revision
7fb16bac's bug.  A bad HMGET crashes the updated follower; Mvedsua
rolls back and the client sees only the old version's error reply.

Part 3 — performance: the fluid simulation regenerates the Figure 7
pause-vs-buffer-size story for a 1M-entry store.

Run with:  python examples/redis_live_update.py
"""

from repro.bench.fluid import FluidConfig, FluidSim, UpdatePlan
from repro.core import Mvedsua
from repro.net import VirtualKernel
from repro.servers.redis import (
    RedisServer,
    redis_rules,
    redis_transforms,
    redis_version,
)
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient
from repro.workloads.memtier import MemtierSpec


def part1_clean_update() -> None:
    print("== part 1: clean 2.0.0 -> 2.0.1 update ==")
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0"))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["redis"],
                      transforms=redis_transforms())
    client = VirtualClient(kernel, server.address)

    client.command(mvedsua, b"SET user:1 alice")
    client.command(mvedsua, b"LPUSH queue job-1")
    mvedsua.request_update(redis_version("2.0.1"), SECOND,
                           rules=redis_rules("2.0.0", "2.0.1"))
    # Writes during catch-up exercise the reversed AOF/reply ordering.
    print("SET user:2 bob ->",
          client.command(mvedsua, b"SET user:2 bob", now=2 * SECOND))
    print("rules fired:", mvedsua.runtime.rules_fired)
    mvedsua.promote(3 * SECOND)
    mvedsua.finalize(4 * SECOND)
    print("now running:", mvedsua.current_version)
    print("GET user:2 ->",
          client.command(mvedsua, b"GET user:2", now=5 * SECOND))


def part2_hmget_crash() -> None:
    print("\n== part 2: the update carries the HMGET crash bug ==")
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0", hmget_bug=False))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["redis"],
                      transforms=redis_transforms())
    client = VirtualClient(kernel, server.address)

    client.command(mvedsua, b"SET wrongtype value")
    mvedsua.request_update(redis_version("2.0.1", hmget_bug=True),
                           SECOND, rules=redis_rules("2.0.0", "2.0.1"))
    print("HMGET wrongtype f ->",
          client.command(mvedsua, b"HMGET wrongtype f", now=2 * SECOND))
    outcome = mvedsua.last_outcome()
    print("update rolled back:", outcome.rolled_back())
    print("still serving:", mvedsua.current_version,
          "| GET wrongtype ->",
          client.command(mvedsua, b"GET wrongtype", now=3 * SECOND))


def part3_pause_vs_buffer() -> None:
    print("\n== part 3: update pause vs ring-buffer size (Figure 7) ==")
    for label, ring, kitsune in (("kitsune (in-place)", 256, True),
                                 ("mvedsua 2^10", 1 << 10, False),
                                 ("mvedsua 2^24", 1 << 24, False)):
        config = FluidConfig(profile=PROFILES["redis"], ring_capacity=ring,
                             initial_entries=1_000_000,
                             spec=MemtierSpec(duration_ns=240 * SECOND))
        plan = UpdatePlan(request_at=120 * SECOND, promote_at=180 * SECOND,
                          finalize_at=230 * SECOND)
        result = FluidSim(config).run(plan=plan, kitsune_in_place=kitsune)
        print(f"  {label:20s} max latency "
              f"{result.max_latency_ns / 1e6:8.0f} ms")


def main() -> None:
    part1_clean_update()
    part2_hmget_crash()
    part3_pause_vs_buffer()


if __name__ == "__main__":
    main()

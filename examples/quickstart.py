"""Quickstart: a full Mvedsua update lifecycle in ~60 lines.

Runs the paper's running example (Figure 1): a key-value store updated
from an untyped v1.0 to a typed v2.0 while clients keep talking to it.
The timeline follows Figure 2: fork (t1), update on the follower (t2),
catch-up (t3), promotion (t4/t5), finalization (t6).

Run with:  python examples/quickstart.py
"""

from repro.core import Mvedsua
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    kv_transforms,
)
from repro.sim.engine import SECOND, ns_to_seconds
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def main() -> None:
    # A virtual machine, a DSU-enabled server on it, and Mvedsua
    # supervising the deployment in single-leader mode.
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["kvstore"],
                      transforms=kv_transforms())
    client = VirtualClient(kernel, server.address)

    print("== single-leader stage (v1.0) ==")
    print("PUT balance 1000 ->", client.command(mvedsua, b"PUT balance 1000"))
    print("GET balance      ->", client.command(mvedsua, b"GET balance"))

    # Request the dynamic update.  The leader forks; the follower runs
    # the state transformer; the leader keeps serving throughout.
    attempt = mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
    print(f"\n== update requested: {attempt.reason} "
          f"(transform visited {attempt.entries} entries) ==")
    print("stage:", mvedsua.stage.value)

    # Old semantics stay authoritative: the new PUT-number command is
    # rejected by the leader, and a rewrite rule makes the updated
    # follower reject it identically (Figure 4, Rule 1).
    print("PUT-number pi 3  ->",
          client.command(mvedsua, b"PUT-number pi 3", now=2 * SECOND))
    print("GET balance      ->",
          client.command(mvedsua, b"GET balance", now=3 * SECOND))
    print("divergences so far:", mvedsua.runtime.last_divergence)

    # The operator is satisfied: promote the new version.  PUT-string
    # maps back to a plain PUT for the old follower (Figure 4, Rule 3),
    # so the demoted version keeps validating the new leader.
    mvedsua.promote(4 * SECOND)
    print("\n== promoted: clients now see v2.0 semantics ==")
    print("PUT-string s hi  ->",
          client.command(mvedsua, b"PUT-string s hi", now=5 * SECOND))

    # Finally drop the old version; v2.0-only commands are now safe.
    mvedsua.finalize(6 * SECOND)
    timeline = mvedsua.last_outcome()
    print("\n== finalized ==")
    print("PUT-number pi 3  ->",
          client.command(mvedsua, b"PUT-number pi 3", now=7 * SECOND))
    print("TYPE pi          ->",
          client.command(mvedsua, b"TYPE pi", now=7 * SECOND))
    print("GET balance      ->",
          client.command(mvedsua, b"GET balance", now=7 * SECOND))
    print(f"\ntimeline: forked t1={ns_to_seconds(timeline.t1_forked):.4f}s, "
          f"updated t2={ns_to_seconds(timeline.t2_updated):.4f}s, "
          f"promoted t5={ns_to_seconds(timeline.t5_promoted):.1f}s, "
          f"finalized t6={ns_to_seconds(timeline.t6_finalized):.1f}s")
    print("update succeeded:", timeline.succeeded())


if __name__ == "__main__":
    main()

"""The paper's opening motivation (§1.1): don't drop a mounting attack.

A Snort-like intrusion detector tracks multi-packet attacks in an
in-memory state machine.  An attacker has already sent the ``probe`` and
``exploit`` packets when a security update must be applied.  Upgrading by
stop/restart forgets the attack in progress — the final ``exfil`` packet
sails through.  Upgrading with Mvedsua preserves the state machine and
the alert fires.

Run with:  python examples/snort_mounting_attack.py
"""

from repro.baselines import StopRestart
from repro.core import Mvedsua
from repro.net import VirtualKernel
from repro.servers.native import NativeRuntime
from repro.servers.snort import SnortServer, snort_transforms, snort_version
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads import VirtualClient


def mount_attack(client, runtime) -> None:
    print("  attacker: PKT evil probe   ->",
          client.command(runtime, b"PKT evil probe"))
    print("  attacker: PKT evil exploit ->",
          client.command(runtime, b"PKT evil exploit"))


def main() -> None:
    print("== upgrade by stop/restart ==")
    kernel = VirtualKernel()
    server = SnortServer(snort_version("1.0"))
    server.attach(kernel)
    runtime = NativeRuntime(kernel, server, PROFILES["kvstore"],
                            with_kitsune=True)
    sensor = VirtualClient(kernel, server.address, "sensor")
    mount_attack(sensor, runtime)
    print("  [operator restarts onto 1.1 — flow state dropped]")
    StopRestart().perform(runtime, snort_version("1.1"), SECOND)
    print("  attacker: PKT evil exfil   ->",
          sensor.command(runtime, b"PKT evil exfil", now=2 * SECOND),
          " <- attack MISSED")

    print("\n== upgrade with Mvedsua ==")
    kernel = VirtualKernel()
    server = SnortServer(snort_version("1.0"))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["kvstore"],
                      transforms=snort_transforms())
    sensor = VirtualClient(kernel, server.address, "sensor")
    mount_attack(sensor, mvedsua)
    attempt = mvedsua.request_update(snort_version("1.1"), SECOND)
    print(f"  [update {attempt.reason}: follower updated off the "
          f"critical path; flow state preserved]")
    print("  attacker: PKT evil exfil   ->",
          sensor.command(mvedsua, b"PKT evil exfil", now=2 * SECOND),
          " <- attack caught")
    print("  alert log:", kernel.fs.read_file("/snort-alerts.log"))


if __name__ == "__main__":
    main()

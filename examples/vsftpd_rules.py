"""The rewrite-rule DSL, on Vsftpd's 13 updates (paper Table 1 + Fig. 5).

Shows three things:

1. the textual DSL (paper Figure 4/5 style) parsed and applied;
2. the derived rule sets for every Vsftpd pair, with their counts;
3. the Figure 5 story end-to-end: STOU redirected while the old version
   leads, then tolerated after promotion thanks to the shared
   filesystem — followed by the contrast run without rules, where the
   same update is caught and rolled back.

Run with:  python examples/vsftpd_rules.py
"""

from repro.core import Mvedsua
from repro.mve.dsl import RuleEngine, RuleSet, parse_rules
from repro.net import VirtualKernel
from repro.servers.vsftpd import (
    TABLE1_RULE_COUNTS,
    VsftpdServer,
    vsftpd_rules,
    vsftpd_transforms,
    vsftpd_version,
)
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES
from repro.syscalls.model import read_record, write_record
from repro.workloads.ftpclient import FtpClient


def part1_textual_dsl() -> None:
    print("== part 1: the textual rule DSL ==")
    text = r'''
    # Figure 5: commands the old leader rejects are redirected to an
    # invalid command so the new follower rejects them identically.
    rule stou outdated-leader:
        read(fd, s), write(fd2, r) where r == "500 Unknown command.\r\n"
            => read(fd, "FOOBAR\r\n"), write(fd2, r)
    '''
    rules = parse_rules(text)
    engine = RuleEngine(rules)
    for record in (read_record(4, b"STOU\r\n"),
                   write_record(4, b"500 Unknown command.\r\n")):
        engine.offer(record)
    engine.flush()
    print("leader recorded : read('STOU'), write('500 Unknown command.')")
    expected = []
    while engine.has_ready():
        expected.append(engine.next_expected())
    print("follower expects:",
          ", ".join(r.describe() for r in expected))


def part2_rule_counts() -> None:
    print("\n== part 2: rules per update pair (Table 1) ==")
    total = 0
    for old, new, paper in TABLE1_RULE_COUNTS:
        count = vsftpd_rules(old, new).count()
        total += count
        names = [r.name for r in vsftpd_rules(old, new).rules]
        print(f"  {old} -> {new}: {count} (paper {paper})"
              + (f"  [{', '.join(sorted(set(names)))}]" if names else ""))
    print(f"  average: {total / len(TABLE1_RULE_COUNTS):.2f} (paper 0.85)")


def _deployment(version: str):
    kernel = VirtualKernel()
    kernel.fs.write_file("/readme.txt", b"welcome to the archive")
    server = VsftpdServer(vsftpd_version(version))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["vsftpd-small"],
                      transforms=vsftpd_transforms())
    client = FtpClient(kernel, server.address)
    client.login(mvedsua)
    return mvedsua, client


def part3_stou_story() -> None:
    print("\n== part 3: the STOU update (1.1.3 -> 1.2.0), with rules ==")
    mvedsua, client = _deployment("1.1.3")
    mvedsua.request_update(vsftpd_version("1.2.0"), SECOND,
                           rules=vsftpd_rules("1.1.3", "1.2.0"))
    print("  STOU while old version leads ->",
          client.command(mvedsua, b"STOU", now=2 * SECOND))
    print("  divergence:", mvedsua.runtime.last_divergence)
    mvedsua.promote(3 * SECOND)
    print("  STOU after promotion        ->",
          client.command(mvedsua, b"STOU", now=4 * SECOND))
    print("  divergence:", mvedsua.runtime.last_divergence,
          "(the old follower tolerates it: no fs state)")
    mvedsua.finalize(5 * SECOND)
    print("  running:", mvedsua.current_version)

    print("\n== part 3b: the same update WITHOUT rules ==")
    mvedsua, client = _deployment("1.1.3")
    mvedsua.request_update(vsftpd_version("1.2.0"), SECOND,
                           rules=RuleSet())
    print("  STOU while old version leads ->",
          client.command(mvedsua, b"STOU", now=2 * SECOND))
    print("  divergence:", str(mvedsua.runtime.last_divergence)[:80], "...")
    print("  rolled back, still running:", mvedsua.current_version)
    _, data = client.retr(mvedsua, "readme.txt", now=3 * SECOND)
    print("  service fine, RETR readme.txt ->", data)


def main() -> None:
    part1_textual_dsl()
    part2_rule_counts()
    part3_stou_story()


if __name__ == "__main__":
    main()

"""Rolling upgrades of a stateful cluster: restart vs Mvedsua (§1.1).

Builds a 3-node key-value cluster behind a round-robin load balancer,
attaches long-lived client sessions, and upgrades it twice:

1. the industry-standard rolling restart — watch the sessions get
   dropped and the per-node state vanish;
2. Mvedsua per node — nothing drops, nothing is lost, and only one node
   at a time pays MVE overhead.

Run with:  python examples/cluster_rolling_upgrade.py
"""

from repro.errors import ConnectionClosed
from repro.cluster import (
    ClusterNode,
    LoadBalancer,
    MvedsuaRollingUpgrade,
    RollingUpgrade,
)
from repro.net import VirtualKernel
from repro.servers.kvstore import (
    KVStoreServer,
    KVStoreV1,
    KVStoreV2,
    kv_rules,
    kv_transforms,
)
from repro.sim.engine import SECOND
from repro.syscalls.costs import PROFILES


def build(mvedsua: bool):
    kernel = VirtualKernel()
    nodes = []
    for index in range(3):
        server = KVStoreServer(KVStoreV1(),
                               address=(f"10.1.0.{index + 1}", 7000))
        server.attach(kernel)
        nodes.append(ClusterNode(
            f"node-{index}", kernel, server, PROFILES["kvstore"],
            transforms=kv_transforms() if mvedsua else None))
    balancer = LoadBalancer(nodes)
    sessions = []
    for index in range(3):
        client, node = balancer.connect(f"ssh-like-{index}")
        client.command(node.runtime, b"PUT my-session data%d" % index)
        sessions.append((client, node, index))
    return balancer, sessions


def main() -> None:
    print("== rolling restart ==")
    balancer, sessions = build(mvedsua=False)
    summary = RollingUpgrade(balancer).upgrade(KVStoreV2, SECOND)
    print(f"  upgraded to: "
          f"{ {n.version_name for n in balancer.nodes} }")
    print(f"  sessions dropped: {summary.total_sessions_dropped}")
    client, node, index = sessions[0]
    try:
        reply = client.command(node.runtime, b"GET my-session",
                               now=600 * SECOND)
        print(f"  session state after upgrade: {reply!r}  <- gone")
    except ConnectionClosed:
        print("  session connection: forcibly closed during the drain")

    print("\n== Mvedsua rolling upgrade ==")
    balancer, sessions = build(mvedsua=True)
    upgrade = MvedsuaRollingUpgrade(balancer, rules=kv_rules())
    summary = upgrade.upgrade(KVStoreV2, SECOND)
    print(f"  upgraded to: "
          f"{ {n.version_name for n in balancer.nodes} }")
    print(f"  sessions dropped: {summary.total_sessions_dropped}")
    for client, node, index in sessions:
        reply = client.command(node.runtime, b"GET my-session",
                               now=600 * SECOND)
        print(f"  {client.name}: session state = {reply!r}")
    worst = max(r.leader_pause_ns for r in summary.records)
    print(f"  worst per-node service pause: {worst / 1e6:.0f} ms")


if __name__ == "__main__":
    main()

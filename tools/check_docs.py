#!/usr/bin/env python3
"""Doc lint: keep the operator docs honest.

Three checks, run over ``README.md`` and every ``docs/*.md``:

1. **Reachability** — every guide under ``docs/`` is mentioned (by
   basename) in ``README.md`` or ``docs/architecture.md``, so no page
   can silently fall out of the table of contents.
2. **Link integrity** — every intra-repo markdown link
   (``[text](target)``) resolves to a real file, relative to the page
   that carries it.  External (``http``/``mailto``) and pure-anchor
   links are skipped; anchors on file links are stripped.
3. **CLI honesty** — every ``python -m repro …`` command quoted in the
   docs parses against the real CLI:

   * module form (``python -m repro.bench.distring``) must name an
     importable module file under ``src/``;
   * subcommand form (``python -m repro chaos kvstore --workers auto``)
     is checked against the live ``--help`` of that subcommand — every
     ``--flag`` must appear in the help text, and the first positional
     operand must be one of the help's ``{a,b,c}`` choice groups.

   ALL-CAPS operands (``PATH``, ``STREAM``) are treated as
   placeholders, and commands containing ``…`` or ``<`` are skipped as
   deliberately elided.  Help output is fetched once per subcommand
   via a subprocess with ``PYTHONPATH`` including ``src``.

Exit status is the number of problems (0 = clean).  CI runs this as
the ``docs-lint`` job; locally::

    python tools/check_docs.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from typing import Dict, List, Optional, Tuple

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS = os.path.join(REPO, "docs")
README = os.path.join(REPO, "README.md")

#: ``[text](target)`` — target captured lazily so nested parens in the
#: text part cannot swallow the link.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: One quoted CLI invocation: ``python -m repro`` plus everything up to
#: the end of the line or the closing backtick of an inline code span.
COMMAND_RE = re.compile(r"python -m (repro[\w.]*)([^`\n]*)")

#: ``{a,b,c}`` choice groups in argparse help.
CHOICES_RE = re.compile(r"\{([\w.,-]+)\}")


def _doc_files() -> List[str]:
    names = sorted(n for n in os.listdir(DOCS) if n.endswith(".md"))
    return [os.path.join(DOCS, n) for n in names]


def check_reachability(problems: List[str]) -> None:
    """Every docs/*.md basename appears in README.md or architecture.md."""
    with open(README, encoding="utf-8") as handle:
        index = handle.read()
    arch = os.path.join(DOCS, "architecture.md")
    if os.path.exists(arch):
        with open(arch, encoding="utf-8") as handle:
            index += handle.read()
    for path in _doc_files():
        name = os.path.basename(path)
        if name == "architecture.md":
            continue
        if name not in index:
            problems.append(f"docs/{name}: not mentioned in README.md "
                            f"or docs/architecture.md")


def check_links(path: str, text: str, problems: List[str]) -> None:
    """Every relative markdown link resolves from the page's directory."""
    base = os.path.dirname(path)
    rel = os.path.relpath(path, REPO)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            problems.append(f"{rel}: broken link -> {target}")


class CliChecker:
    """Validates quoted ``python -m repro …`` commands against the CLI."""

    #: Subcommands with their own parsers, plus the experiment names the
    #: top-level parser accepts directly (kept in sync by a live probe of
    #: ``python -m repro bogus``, which lists the valid choices).
    def __init__(self) -> None:
        self._help: Dict[str, Optional[str]] = {}
        self._env = dict(os.environ)
        src = os.path.join(REPO, "src")
        existing = self._env.get("PYTHONPATH", "")
        self._env["PYTHONPATH"] = (src + os.pathsep + existing
                                   if existing else src)
        self._subcommands = self._probe_subcommands()

    def _run(self, argv: List[str]) -> str:
        result = subprocess.run(
            [sys.executable, "-m", "repro"] + argv,
            capture_output=True, text=True, env=self._env, cwd=REPO,
            timeout=60)
        return result.stdout + result.stderr

    def _probe_subcommands(self) -> List[str]:
        """The experiment/subcommand vocabulary, from the real parser."""
        output = self._run(["--bogus-doc-lint-probe"])
        groups = CHOICES_RE.findall(output)
        names: List[str] = []
        for group in groups:
            names.extend(group.split(","))
        return sorted(set(names))

    def help_for(self, sub: str) -> Optional[str]:
        """Cached ``python -m repro <sub> --help`` text (None = unknown)."""
        if sub not in self._help:
            if sub not in self._subcommands:
                self._help[sub] = None
            else:
                self._help[sub] = self._run([sub, "--help"])
        return self._help[sub]

    def check_module(self, module: str, where: str,
                     problems: List[str]) -> None:
        """``python -m repro.x.y`` must name a real module under src/."""
        parts = module.split(".")
        as_file = os.path.join(REPO, "src", *parts) + ".py"
        as_pkg = os.path.join(REPO, "src", *parts, "__init__.py")
        if not (os.path.exists(as_file) or os.path.exists(as_pkg)):
            problems.append(f"{where}: no such module under src/ "
                            f"-> python -m {module}")

    def check_command(self, module: str, rest: str, where: str,
                      problems: List[str]) -> None:
        if module != "repro":
            self.check_module(module, where, problems)
            return
        if "…" in rest or "<" in rest:
            return  # deliberately elided in the prose
        # Strip shell trimmings: comments, redirections, pipes, quotes.
        rest = re.split(r"[#|>]", rest, 1)[0]
        tokens = [t.strip("'\"`,.;:()") for t in rest.split()]
        tokens = [t for t in tokens if t]
        if not tokens:
            return  # bare "python -m repro" in prose
        sub = tokens[0]
        help_text = self.help_for(sub)
        if help_text is None:
            problems.append(f"{where}: unknown subcommand -> "
                            f"python -m repro {sub}")
            return
        for flag in (t for t in tokens[1:] if t.startswith("--")):
            name = flag.split("=", 1)[0]
            if name not in help_text:
                problems.append(f"{where}: python -m repro {sub} has no "
                                f"flag {name}")
        # First positional operand straight after the subcommand; flag
        # values never sit there, so this cannot misfire on them.
        if len(tokens) > 1 and not tokens[1].startswith("-"):
            operand = tokens[1]
            if not operand.isupper():  # ALL-CAPS = placeholder
                choices = set()
                for group in CHOICES_RE.findall(help_text):
                    choices.update(group.split(","))
                if choices and operand not in choices:
                    problems.append(
                        f"{where}: python -m repro {sub} does not accept "
                        f"operand {operand!r}")


def check_commands(path: str, text: str, checker: CliChecker,
                   problems: List[str]) -> None:
    rel = os.path.relpath(path, REPO)
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in COMMAND_RE.finditer(line):
            checker.check_command(match.group(1), match.group(2),
                                  f"{rel}:{lineno}", problems)


def main() -> int:
    problems: List[str] = []
    check_reachability(problems)
    checker = CliChecker()
    pages: List[Tuple[str, str]] = []
    for path in [README] + _doc_files():
        with open(path, encoding="utf-8") as handle:
            pages.append((path, handle.read()))
    for path, text in pages:
        check_links(path, text, problems)
        check_commands(path, text, checker, problems)
    for problem in problems:
        print(problem)
    count = len(problems)
    print(f"docs lint: {count} problem(s) across {len(pages)} page(s)")
    return min(count, 99)


if __name__ == "__main__":
    sys.exit(main())

"""The DSU engine (Kitsune analogue).

A standalone Kitsune update is: signal → quiesce all threads at update
points → run the state transformer → swap code → resume.  The whole
process pauses service for ``quiesce + transform`` — the pause Figure 7
measures at ~5 s for a 1M-entry Redis heap.

Mvedsua changes *where* this work happens, not what it is: the update is
applied to a forked follower while the leader keeps serving.  The hooks
the paper added to Kitsune (§4) appear here as :meth:`Kitsune.quiesce` /
:meth:`Kitsune.transform` being callable separately, plus the program's
abort callback for the leader side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import QuiescenceTimeout, StateTransformError
from repro.dsu.program import UpdatableProgram
from repro.dsu.transform import TransformRegistry
from repro.dsu.version import ServerVersion
from repro.obs.trace import current_tracer


class UpdateOutcome(enum.Enum):
    """How an update attempt ended."""

    APPLIED = "applied"
    QUIESCENCE_FAILED = "quiescence-failed"
    TRANSFORM_FAILED = "transform-failed"


@dataclass
class UpdateResult:
    """Outcome of one update attempt.

    ``pause_ns`` is the service pause this attempt caused on the process
    that executed it: for standalone Kitsune that is the full quiesce +
    transform time; under Mvedsua the leader only pays the fork, so the
    caller reports its own (much smaller) pause.
    """

    outcome: UpdateOutcome
    pause_ns: int
    old_version: str
    new_version: str
    error: Optional[str] = None
    entries_transformed: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome is UpdateOutcome.APPLIED


class Kitsune:
    """Quiesce / transform / swap, with separable phases for Mvedsua."""

    def __init__(self, transforms: TransformRegistry,
                 quiesce_timeout_ns: int = 50_000_000) -> None:
        self.transforms = transforms
        self.quiesce_timeout_ns = quiesce_timeout_ns

    # -- phases (used piecewise by Mvedsua) ---------------------------------

    def quiesce(self, program: UpdatableProgram) -> int:
        """Park all threads at update points; returns the time it took.

        Raises :class:`QuiescenceTimeout` when some thread cannot reach an
        update point — the *timing error* class of update failures.
        """
        needed = program.quiescence_time()
        if needed is None or needed > self.quiesce_timeout_ns:
            blockers = [
                t.name for t in program.threads
                if t.blocked_on_lock
                or (t.inside_event_loop and not program.epoll_update_points)
                or t.reach_update_point_ns > self.quiesce_timeout_ns
            ]
            raise QuiescenceTimeout(
                f"threads never reached update points: {blockers}"
            )
        return needed

    def transform(self, program: UpdatableProgram,
                  new_version: ServerVersion,
                  xform_entry_ns: int = 0) -> tuple[Dict[str, Any], int, int]:
        """Run the state transformer for ``program -> new_version``.

        Returns ``(new_heap, duration_ns, entries)``.  Raises
        :class:`StateTransformError` on buggy transformers.
        """
        old = program.version
        new_heap = self.transforms.apply(old.app, old.name, new_version.name,
                                         program.heap)
        entries = old.heap_entries(program.heap)
        duration = entries * xform_entry_ns
        return new_heap, duration, entries

    # -- the standalone (non-MVE) update -------------------------------------

    def apply_update(self, program: UpdatableProgram,
                     new_version: ServerVersion, *,
                     xform_entry_ns: int = 0) -> UpdateResult:
        """Update ``program`` in place, Kitsune-style.

        On success the program runs the new version with the transformed
        heap, and the result carries the full service pause.  On failure
        the program is untouched (Kitsune aborts back to the old code) and
        the result says why.
        """
        old_name = program.version.name
        tracer = current_tracer()
        if tracer is not None:
            tracer.on_dsu("request", tracer.vnow, old=old_name,
                          new=new_version.name, system="kitsune")
        try:
            quiesce_ns = self.quiesce(program)
        except QuiescenceTimeout as exc:
            if tracer is not None:
                tracer.on_dsu("failed", tracer.vnow,
                              reason="quiescence-failed", error=str(exc))
            return UpdateResult(UpdateOutcome.QUIESCENCE_FAILED, 0,
                                old_name, new_version.name, error=str(exc))
        if tracer is not None:
            tracer.on_dsu("quiesce", tracer.vnow + quiesce_ns, ns=quiesce_ns)
        try:
            new_heap, xform_ns, entries = self.transform(
                program, new_version, xform_entry_ns)
        except StateTransformError as exc:
            # A detectably-failing transformer aborts the update after the
            # pause already paid for quiescence.
            if tracer is not None:
                tracer.on_dsu("failed", tracer.vnow,
                              reason="transform-failed", error=str(exc))
            return UpdateResult(UpdateOutcome.TRANSFORM_FAILED, quiesce_ns,
                                old_name, new_version.name, error=str(exc))
        program.version = new_version
        program.heap = new_heap
        if tracer is not None:
            at = tracer.vnow + quiesce_ns + xform_ns
            tracer.on_dsu("xform", at, ns=xform_ns, entries=entries,
                          version=new_version.name)
            tracer.on_dsu("applied", at, old=old_name,
                          new=new_version.name, system="kitsune")
            tracer.on_dsu("resume", at)
        return UpdateResult(UpdateOutcome.APPLIED, quiesce_ns + xform_ns,
                            old_name, new_version.name,
                            entries_transformed=entries)

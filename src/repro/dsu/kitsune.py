"""The DSU engine (Kitsune analogue).

A standalone Kitsune update is: signal → quiesce all threads at update
points → run the state transformer → swap code → resume.  The whole
process pauses service for ``quiesce + transform`` — the pause Figure 7
measures at ~5 s for a 1M-entry Redis heap.

Mvedsua changes *where* this work happens, not what it is: the update is
applied to a forked follower while the leader keeps serving.  The hooks
the paper added to Kitsune (§4) appear here as :meth:`Kitsune.quiesce` /
:meth:`Kitsune.transform` being callable separately, plus the program's
abort callback for the leader side.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.chaos.injector import current_chaos
from repro.errors import QuiescenceTimeout, StateTransformError
from repro.dsu.program import ThreadState, UpdatableProgram
from repro.dsu.transform import TransformRegistry
from repro.dsu.version import ServerVersion
from repro.obs.trace import current_tracer


def _racy_threads(program: UpdatableProgram, param) -> None:
    """Re-sample thread states as if the update signal raced in-flight
    locks (the "race" quiesce fault; reproduces §6.2's E3 setup).

    Exactly one ``rng`` draw per call, so retry statistics are
    deterministic for a given seed.
    """
    rng = param["rng"]
    probability = float(param.get("probability", 0.75))
    threads = [ThreadState("main")]
    blocked = rng.random() < probability
    threads.append(ThreadState("worker-0", blocked_on_lock=blocked))
    for index in range(1, 4):
        threads.append(ThreadState(f"worker-{index}",
                                   inside_event_loop=True))
    program.threads = threads


def _corrupt_heap(heap: Dict[str, Any], param) -> Dict[str, Any]:
    """Silently corrupt string/bytes values in a transformed heap (the
    "corrupt-heap" fault): the update installs, but the follower's
    replies later disagree with the leader's — a latent transformer bug
    the divergence check must catch."""
    marker = str(param.get("marker", "\x00chaos"))
    corrupted = copy.deepcopy(heap)
    _scramble(corrupted, marker)
    return corrupted


def _scramble(value: Any, marker: str) -> None:
    items = value.items() if isinstance(value, dict) else (
        enumerate(value) if isinstance(value, list) else ())
    for key, child in items:
        if isinstance(child, str):
            value[key] = child + marker
        elif isinstance(child, bytes):
            value[key] = child + marker.encode("latin-1")
        else:
            _scramble(child, marker)


class UpdateOutcome(enum.Enum):
    """How an update attempt ended."""

    APPLIED = "applied"
    QUIESCENCE_FAILED = "quiescence-failed"
    TRANSFORM_FAILED = "transform-failed"


@dataclass
class UpdateResult:
    """Outcome of one update attempt.

    ``pause_ns`` is the service pause this attempt caused on the process
    that executed it: for standalone Kitsune that is the full quiesce +
    transform time; under Mvedsua the leader only pays the fork, so the
    caller reports its own (much smaller) pause.
    """

    outcome: UpdateOutcome
    pause_ns: int
    old_version: str
    new_version: str
    error: Optional[str] = None
    entries_transformed: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome is UpdateOutcome.APPLIED


class Kitsune:
    """Quiesce / transform / swap, with separable phases for Mvedsua."""

    def __init__(self, transforms: TransformRegistry,
                 quiesce_timeout_ns: int = 50_000_000) -> None:
        self.transforms = transforms
        self.quiesce_timeout_ns = quiesce_timeout_ns

    # -- phases (used piecewise by Mvedsua) ---------------------------------

    def quiesce(self, program: UpdatableProgram) -> int:
        """Park all threads at update points; returns the time it took.

        Raises :class:`QuiescenceTimeout` when some thread cannot reach an
        update point — the *timing error* class of update failures.
        """
        extra_ns = 0
        chaos = current_chaos()
        if chaos is not None:
            fault = chaos.fire("dsu.quiesce")
            if fault is not None:
                if fault.kind == "timeout":
                    raise QuiescenceTimeout(
                        "chaos: threads never reached update points")
                if fault.kind == "race":
                    _racy_threads(program, fault.param)
                elif fault.kind == "delay":
                    extra_ns = max(0, int(fault.param.get("delay_ns", 0)))
        needed = program.quiescence_time()
        if needed is not None:
            needed += extra_ns
        if needed is None or needed > self.quiesce_timeout_ns:
            blockers = [
                t.name for t in program.threads
                if t.blocked_on_lock
                or (t.inside_event_loop and not program.epoll_update_points)
                or t.reach_update_point_ns > self.quiesce_timeout_ns
            ]
            raise QuiescenceTimeout(
                f"threads never reached update points: {blockers}"
            )
        return needed

    def transform(self, program: UpdatableProgram,
                  new_version: ServerVersion,
                  xform_entry_ns: int = 0) -> tuple[Dict[str, Any], int, int]:
        """Run the state transformer for ``program -> new_version``.

        Returns ``(new_heap, duration_ns, entries)``.  Raises
        :class:`StateTransformError` on buggy transformers.
        """
        old = program.version
        fault = None
        chaos = current_chaos()
        if chaos is not None:
            fault = chaos.fire("dsu.transform")
            if fault is not None and fault.kind == "exception":
                raise StateTransformError(
                    "chaos: injected state-transformer failure")
        if fault is not None and fault.kind == "replace":
            # Swap in a caller-supplied (typically buggy) transformer
            # for just this pair — the E2 fault class.
            registry = TransformRegistry()
            registry.register(old.app, old.name, new_version.name,
                              fault.param["transformer"])
            new_heap = registry.apply(old.app, old.name, new_version.name,
                                      program.heap)
        else:
            new_heap = self.transforms.apply(old.app, old.name,
                                             new_version.name, program.heap)
        if fault is not None and fault.kind == "corrupt-heap":
            new_heap = _corrupt_heap(new_heap, fault.param)
        entries = old.heap_entries(program.heap)
        duration = entries * xform_entry_ns
        return new_heap, duration, entries

    # -- the standalone (non-MVE) update -------------------------------------

    def apply_update(self, program: UpdatableProgram,
                     new_version: ServerVersion, *,
                     xform_entry_ns: int = 0) -> UpdateResult:
        """Update ``program`` in place, Kitsune-style.

        On success the program runs the new version with the transformed
        heap, and the result carries the full service pause.  On failure
        the program is untouched (Kitsune aborts back to the old code) and
        the result says why.
        """
        chaos = current_chaos()
        if chaos is not None:
            fault = chaos.fire("dsu.update")
            if fault is not None:
                # "buggy-version": the operator ships a broken build —
                # the E1 fault class.
                new_version = fault.param["factory"](new_version)
        old_name = program.version.name
        tracer = current_tracer()
        if tracer is not None:
            tracer.on_dsu("request", tracer.vnow, old=old_name,
                          new=new_version.name, system="kitsune")
        try:
            quiesce_ns = self.quiesce(program)
        except QuiescenceTimeout as exc:
            if tracer is not None:
                tracer.on_dsu("failed", tracer.vnow,
                              reason="quiescence-failed", error=str(exc))
            return UpdateResult(UpdateOutcome.QUIESCENCE_FAILED, 0,
                                old_name, new_version.name, error=str(exc))
        if tracer is not None:
            tracer.on_dsu("quiesce", tracer.vnow + quiesce_ns, ns=quiesce_ns)
        try:
            new_heap, xform_ns, entries = self.transform(
                program, new_version, xform_entry_ns)
        except StateTransformError as exc:
            # A detectably-failing transformer aborts the update after the
            # pause already paid for quiescence.
            if tracer is not None:
                tracer.on_dsu("failed", tracer.vnow,
                              reason="transform-failed", error=str(exc))
            return UpdateResult(UpdateOutcome.TRANSFORM_FAILED, quiesce_ns,
                                old_name, new_version.name, error=str(exc))
        program.version = new_version
        program.heap = new_heap
        if tracer is not None:
            at = tracer.vnow + quiesce_ns + xform_ns
            tracer.on_dsu("xform", at, ns=xform_ns, entries=entries,
                          version=new_version.name)
            tracer.on_dsu("applied", at, old=old_name,
                          new=new_version.name, system="kitsune")
            tracer.on_dsu("resume", at)
        return UpdateResult(UpdateOutcome.APPLIED, quiesce_ns + xform_ns,
                            old_name, new_version.name,
                            entries_transformed=entries)

"""Updatable programs: heap + threads + update-point configuration.

This is the process-side view Kitsune needs: which threads exist, whether
each can reach an update point (and how long that takes), and whether the
program opted into treating ``epoll_wait`` as an update point — the
Kitsune extension the paper added for Memcached/LibEvent (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.dsu.version import ServerVersion


@dataclass
class ThreadState:
    """One program thread, as the quiescence protocol sees it.

    Attributes:
        name: label for diagnostics.
        reach_update_point_ns: time for this thread to arrive at its next
            update point once an update is signalled.
        blocked_on_lock: the thread is waiting on a lock held by another
            thread — the classic DSU *timing error*: if the lock holder
            parks at an update point first, this thread never arrives.
        inside_event_loop: the thread is parked inside LibEvent's loop and
            only reaches an update point if ``epoll_wait`` counts as one.
    """

    name: str
    reach_update_point_ns: int = 100_000
    blocked_on_lock: bool = False
    inside_event_loop: bool = False


@dataclass
class UpdatableProgram:
    """The DSU-relevant state of one running server process."""

    version: ServerVersion
    heap: Dict[str, Any]
    threads: List[ThreadState] = field(default_factory=list)
    #: Kitsune extension (paper §5.3): treat epoll_wait as an update point
    #: so threads parked in LibEvent can quiesce without exiting the loop.
    epoll_update_points: bool = False
    #: Callback run on the process that *aborts* an update (the Mvedsua
    #: leader); Memcached uses it to reset LibEvent's dispatch memory.
    abort_callback: Optional[Any] = None

    def __post_init__(self) -> None:
        if not self.threads:
            self.threads = [ThreadState("main")]

    def quiescence_time(self) -> Optional[int]:
        """Nanoseconds for all threads to park at update points.

        Returns None when quiescence is impossible — some thread can never
        reach an update point (a timing error: it is blocked on a lock, or
        parked in an event loop without ``epoll_update_points``).
        """
        worst = 0
        for thread in self.threads:
            if thread.blocked_on_lock:
                return None
            if thread.inside_event_loop and not self.epoll_update_points:
                return None
            worst = max(worst, thread.reach_update_point_ns)
        return worst

    def run_abort_callback(self) -> None:
        """Invoke the abort hook, if the program registered one."""
        if self.abort_callback is not None:
            self.abort_callback(self)

"""Dynamic Software Updating — the Kitsune analogue.

Kitsune updates a running C program by loading new code, quiescing all
threads at programmer-chosen *update points*, and running programmer
written *state transformers* over the heap.  This package reproduces that
machinery for the simulated servers:

* :mod:`repro.dsu.version` — a code version: command handlers, protocol
  surface, and per-version behavioural quirks.
* :mod:`repro.dsu.transform` — the state-transformer registry, including
  deliberately buggy transformers for the paper's §6.2 experiments.
* :mod:`repro.dsu.program` — an updatable program: heap + threads +
  update-point configuration.
* :mod:`repro.dsu.kitsune` — the update engine itself (quiesce, load,
  transform, swap), with the Mvedsua fork hook of the paper's §4.
"""

from repro.dsu.version import ServerVersion, VersionRegistry
from repro.dsu.transform import StateTransformer, TransformRegistry
from repro.dsu.program import ThreadState, UpdatableProgram
from repro.dsu.kitsune import Kitsune, UpdateOutcome, UpdateResult

__all__ = [
    "ServerVersion",
    "VersionRegistry",
    "StateTransformer",
    "TransformRegistry",
    "ThreadState",
    "UpdatableProgram",
    "Kitsune",
    "UpdateOutcome",
    "UpdateResult",
]

"""Code versions.

A :class:`ServerVersion` is what Kitsune dynamically loads: the command
handlers of one release of one server, plus the metadata the rest of the
system needs — which commands exist (for rewrite-rule construction), and
how many heap entries the version's state transformer must visit (for
update-pause accounting).

Concrete versions live in the server packages
(``repro.servers.redis.versions`` etc.); this module defines the interface
and a registry keyed by ``(app, version_name)``.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import NoUpdatePath


class ServerVersion:
    """One release of one server.

    Subclasses implement :meth:`initial_heap` and :meth:`handle`; the
    server runtime (``repro.servers.base``) owns connection management and
    calls :meth:`handle` once per parsed client request.
    """

    #: Application name, e.g. ``"redis"``.
    app: str = ""
    #: Release name, e.g. ``"2.0.0"``.
    name: str = ""
    #: On-disk state format this version checkpoints/restores.  A
    #: checkpoint-restart upgrade (§2.2) only works between versions
    #: sharing a format; DSU has no such restriction.
    state_format: str = "v1"

    def initial_heap(self) -> Dict[str, Any]:
        """A fresh heap for a process started directly in this version."""
        raise NotImplementedError

    def handle(self, heap: Dict[str, Any], request: bytes,
               session: Optional[Dict[str, Any]] = None,
               io: Optional[Any] = None) -> List[bytes]:
        """Process one client request; returns response payload(s).

        Each returned ``bytes`` becomes one ``write`` syscall, so a version
        that answers in two writes where its predecessor used one produces
        exactly the kind of benign divergence rewrite rules exist for.

        ``io`` is an I/O context (the server's syscall gateway plus
        connection bookkeeping) for versions that perform their own I/O
        mid-request — FTP data transfers, AOF appends.  Simple
        request/response versions ignore it.

        May raise :class:`~repro.errors.ServerCrash` to model a bug.
        """
        raise NotImplementedError

    def commands(self) -> FrozenSet[str]:
        """Command verbs this version understands (protocol surface)."""
        raise NotImplementedError

    def heap_entries(self, heap: Dict[str, Any]) -> int:
        """How many entries a state transformer must visit.

        Drives update-pause accounting (Figure 7).  Defaults to 0, i.e.
        a constant-time transform.
        """
        return 0

    def response_texts(self) -> FrozenSet[bytes]:
        """Static response payloads this version is known to produce.

        Used by mvelint (:mod:`repro.analysis`) to cross-check rewrite
        rules against cross-version response-text deltas.  Only *static*
        texts belong here (banners, error strings, fixed status lines);
        dynamic payloads (values, listings) must be omitted.  The default
        empty set means "unknown" and disables text-based checks.
        """
        return frozenset()

    def describe(self) -> str:
        """``app-name`` label used in logs and reports."""
        return f"{self.app}-{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.describe()}>"


class VersionRegistry:
    """All known versions of all apps, plus the release ordering."""

    def __init__(self) -> None:
        self._versions: Dict[Tuple[str, str], ServerVersion] = {}
        self._order: Dict[str, List[str]] = {}

    def register(self, version: ServerVersion) -> ServerVersion:
        """Add a version; release order is registration order per app."""
        key = (version.app, version.name)
        if key in self._versions:
            raise ValueError(f"duplicate version {key}")
        self._versions[key] = version
        self._order.setdefault(version.app, []).append(version.name)
        return version

    def get(self, app: str, name: str) -> ServerVersion:
        """Look up one version."""
        try:
            return self._versions[(app, name)]
        except KeyError:
            raise NoUpdatePath(f"unknown version {app}-{name}") from None

    def releases(self, app: str) -> List[str]:
        """Release names of ``app`` in order."""
        return list(self._order.get(app, []))

    def successor(self, app: str, name: str) -> Optional[str]:
        """The next release after ``name``, or None for the latest."""
        releases = self.releases(app)
        try:
            index = releases.index(name)
        except ValueError:
            raise NoUpdatePath(f"unknown version {app}-{name}") from None
        if index + 1 < len(releases):
            return releases[index + 1]
        return None

    def update_pairs(self, app: str) -> List[Tuple[str, str]]:
        """All consecutive (old, new) release pairs — Table 1's rows."""
        releases = self.releases(app)
        return list(zip(releases, releases[1:]))

"""State transformers.

When Kitsune swaps code versions it must also migrate the heap: every
in-memory object whose layout changed gets rewritten by a programmer
supplied transformer.  Transformers here are functions from the old heap
to a new heap.  They are the component the paper's "state transformation
error" experiments (§6.2) inject bugs into, so the registry supports
replacing a correct transformer with a buggy variant without touching the
version code.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import NoUpdatePath, StateTransformError

#: A state transformer maps an old-version heap to a new-version heap.
StateTransformer = Callable[[Dict[str, Any]], Dict[str, Any]]


def identity_transform(heap: Dict[str, Any]) -> Dict[str, Any]:
    """Transformer for updates that do not change state layout."""
    return copy.deepcopy(heap)


class TransformRegistry:
    """Transformers keyed by ``(app, old_version, new_version)``."""

    def __init__(self) -> None:
        self._transformers: Dict[Tuple[str, str, str], StateTransformer] = {}

    def register(self, app: str, old: str, new: str,
                 transformer: Optional[StateTransformer] = None):
        """Register a transformer; usable directly or as a decorator.

        ``registry.register("redis", "2.0.0", "2.0.1", fn)`` or::

            @registry.register("redis", "2.0.0", "2.0.1")
            def xform(heap): ...
        """
        def _install(fn: StateTransformer) -> StateTransformer:
            self._transformers[(app, old, new)] = fn
            return fn

        if transformer is not None:
            return _install(transformer)
        return _install

    def get(self, app: str, old: str, new: str) -> StateTransformer:
        """The transformer for one update pair."""
        try:
            return self._transformers[(app, old, new)]
        except KeyError:
            raise NoUpdatePath(
                f"no state transformer registered for {app} {old} -> {new}"
            ) from None

    def has(self, app: str, old: str, new: str) -> bool:
        """True when an update path exists."""
        return (app, old, new) in self._transformers

    def pairs(self, app: Optional[str] = None):
        """Registered ``(old, new)`` version edges, optionally per app.

        With ``app`` given, returns ``[(old, new), ...]``; without it,
        ``[(app, old, new), ...]``.  Registration order is preserved.
        mvelint's update-path audit walks these edges.
        """
        if app is None:
            return list(self._transformers)
        return [(old, new) for (a, old, new) in self._transformers
                if a == app]

    def apply(self, app: str, old: str, new: str,
              heap: Dict[str, Any]) -> Dict[str, Any]:
        """Run the transformer, wrapping failures as update errors.

        The old heap is never mutated: transformers receive a deep copy,
        matching Kitsune's behaviour of building the new state while the
        old process image still exists (and making rollback safe).
        """
        transformer = self.get(app, old, new)
        try:
            new_heap = transformer(copy.deepcopy(heap))
        except StateTransformError:
            raise
        except Exception as exc:
            raise StateTransformError(
                f"transformer {app} {old}->{new} raised: {exc!r}"
            ) from exc
        if new_heap is None:
            raise StateTransformError(
                f"transformer {app} {old}->{new} returned no heap"
            )
        return new_heap

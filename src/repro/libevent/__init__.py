"""LibEvent analogue — the event-dispatch layer Memcached is built on.

The paper's Memcached case study (§5.3) hinges on one LibEvent detail:
when several events are ready, callbacks run in *round-robin* order and
LibEvent remembers where it left off.  A freshly-updated follower lacks
that memory, so it handles events in a different order than the leader —
a spurious divergence unless the leader's state is reset on update abort.
"""

from repro.libevent.event_loop import LibEventLoop

__all__ = ["LibEventLoop"]

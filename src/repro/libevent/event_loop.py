"""Round-robin event dispatch with memory, as in LibEvent.

Only the divergence-relevant behaviour is modelled: given the ready set
from ``epoll_wait``, :meth:`LibEventLoop.dispatch_order` rotates it by a
persistent cursor, and the cursor advances by how many events were
dispatched.  Two processes with different cursors will service the same
ready set in different orders — which, under MVE, means they issue their
read syscalls in different orders and diverge.
"""

from __future__ import annotations

from typing import List, Sequence


class LibEventLoop:
    """The dispatch-order state of one process's LibEvent instance."""

    def __init__(self) -> None:
        self._cursor = 0
        self.dispatched_total = 0

    @property
    def cursor(self) -> int:
        """Current rotation offset (exposed for tests and resets)."""
        return self._cursor

    def dispatch_order(self, ready: Sequence[int]) -> List[int]:
        """Order in which callbacks fire for this ready set.

        Rotates ``ready`` by the cursor, then advances the cursor — the
        "remembering where it was after each invocation" behaviour the
        paper describes.
        """
        if not ready:
            return []
        offset = self._cursor % len(ready)
        ordered = list(ready[offset:]) + list(ready[:offset])
        self._cursor += len(ready)
        self.dispatched_total += len(ready)
        return ordered

    def reset(self) -> None:
        """Forget the dispatch position.

        Mvedsua's Memcached port calls this from the update-abort
        callback so the leader's order matches the freshly-started
        follower's.
        """
        self._cursor = 0

"""Command-line entry point: run any experiment from the shell.

    python -m repro table1        # Vsftpd rules per update pair
    python -m repro table2        # steady-state overhead matrix
    python -m repro fig6          # throughput through update stages
    python -m repro fig7          # pause vs ring-buffer size
    python -m repro faults        # §6.2 fault-tolerance experiments
    python -m repro ablations     # upgrade strategies, TTST, comparators
    python -m repro cluster       # rolling-upgrade ablation
    python -m repro all           # everything above, in order
    python -m repro experiments   # emit EXPERIMENTS.md to stdout
    python -m repro lint          # mvelint: static rule/transformer checks
    python -m repro prove kvstore # MVE8xx divergence prover + certificate
    python -m repro perf          # wall-clock benchmark of the simulator
    python -m repro trace fig6    # traced semantic companion run
    python -m repro chaos kvstore # fault-injection campaign + invariants
    python -m repro fleet canary-kvstore  # sharded fleet canary upgrade
    python -m repro replay STREAM # re-drive a version against a recording
    python -m repro slo fig7      # span-traced SLO report + attributions
    python -m repro openloop kvstore  # open-loop load vs upgrade waves

``lint`` takes its own flags (``--json``, ``--app APP``,
``--catalog PATH``); see ``docs/linting.md``.  ``perf`` does too
(``--quick``, ``--json``, ``--scenario NAME``, ``--repeat K``,
``--workers N``, ``--diff BASELINE``); it measures how fast the
simulator itself runs and writes the ``BENCH_perf.json`` trajectory
file — see ``docs/performance.md``.
``trace`` runs an experiment's semantic companion with the structured
tracer installed and writes a JSONL trace (``--quick``, ``--out PATH``,
``--check``) — see ``docs/observability.md``.  Any experiment also
accepts ``--trace PATH`` to run with the tracer installed and write the
trace afterwards; the experiment's stdout is unchanged (tracing is
passive).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import ablations, cluster_bench, experiments_md, faults, fig6, fig7, table1, table2

_COMMANDS = {
    "table1": table1.main,
    "table2": table2.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "faults": faults.main,
    "ablations": ablations.main,
    "cluster": cluster_bench.main,
    "experiments": experiments_md.main,
}


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # mvelint has its own flags; dispatch before experiment parsing.
        from repro.analysis.cli import lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "prove":
        # the MVE8xx divergence prover has its own flags too.
        from repro.analysis.prover import prove_main
        return prove_main(argv[1:])
    if argv and argv[0] == "perf":
        # the perf harness has its own flags too.
        from repro.perf.cli import perf_main
        return perf_main(argv[1:])
    if argv and argv[0] == "trace":
        # so does the tracer.
        from repro.obs.cli import trace_main
        return trace_main(argv[1:])
    if argv and argv[0] == "chaos":
        # and the chaos campaign runner.
        from repro.chaos.cli import chaos_main
        return chaos_main(argv[1:])
    if argv and argv[0] == "fleet":
        # and the fleet orchestrator.
        from repro.cluster.cli import fleet_main
        return fleet_main(argv[1:])
    if argv and argv[0] == "replay":
        # and the stream replayer.
        from repro.replay.cli import replay_main
        return replay_main(argv[1:])
    if argv and argv[0] == "slo":
        # and the span-traced SLO engine.
        from repro.obs.slo_cli import slo_main
        return slo_main(argv[1:])
    if argv and argv[0] == "openloop":
        # and the open-loop workload engine.
        from repro.workloads.openloop_cli import openloop_main
        return openloop_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the MVEDSUA (ASPLOS 2019) evaluation.")
    parser.add_argument("experiment",
                        choices=sorted(_COMMANDS) + ["all", "chaos",
                                                     "fleet", "lint",
                                                     "openloop", "perf",
                                                     "prove", "replay",
                                                     "slo", "trace"],
                        help="which experiment to run ('lint' runs the "
                             "mvelint static analyzers; 'prove' the "
                             "MVE8xx divergence prover; 'perf' the "
                             "wall-clock benchmark harness; 'trace' a "
                             "traced semantic companion; 'chaos' a "
                             "fault-injection campaign; 'fleet' a "
                             "sharded canary upgrade; 'replay' re-drives "
                             "a version against a recorded stream; 'slo' "
                             "a span-traced SLO report; 'openloop' the "
                             "open-loop workload engine)")
    parser.add_argument("--trace", metavar="PATH", dest="trace_path",
                        help="run with the structured tracer installed "
                             "and write a JSONL trace to PATH afterwards")
    args = parser.parse_args(argv)
    names = (("table1", "table2", "fig6", "fig7", "faults",
              "ablations", "cluster")
             if args.experiment == "all" else (args.experiment,))

    tracer = None
    if args.trace_path:
        from repro.obs.trace import Tracer, install_tracer
        tracer = install_tracer(Tracer(experiment=args.experiment))
    try:
        for name in names:
            if args.experiment == "all":
                print(f"\n{'=' * 72}\n")
            _COMMANDS[name]()
    finally:
        if tracer is not None:
            from repro.obs.trace import uninstall_tracer
            uninstall_tracer()
            tracer.write_jsonl(args.trace_path)
            print(f"\nwrote trace: {args.trace_path} "
                  f"({len(tracer.events)} events)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: run any experiment from the shell.

    python -m repro table1        # Vsftpd rules per update pair
    python -m repro table2        # steady-state overhead matrix
    python -m repro fig6          # throughput through update stages
    python -m repro fig7          # pause vs ring-buffer size
    python -m repro faults        # §6.2 fault-tolerance experiments
    python -m repro ablations     # upgrade strategies, TTST, comparators
    python -m repro cluster       # rolling-upgrade ablation
    python -m repro all           # everything above, in order
    python -m repro experiments   # emit EXPERIMENTS.md to stdout
    python -m repro lint          # mvelint: static rule/transformer checks
    python -m repro perf          # wall-clock benchmark of the simulator

``lint`` takes its own flags (``--json``, ``--app APP``,
``--catalog PATH``); see ``docs/linting.md``.  ``perf`` does too
(``--quick``, ``--json``, ``--scenario NAME``, ``--repeat K``); it
measures how fast the simulator itself runs and writes the
``BENCH_perf.json`` trajectory file — see ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import ablations, cluster_bench, experiments_md, faults, fig6, fig7, table1, table2

_COMMANDS = {
    "table1": table1.main,
    "table2": table2.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "faults": faults.main,
    "ablations": ablations.main,
    "cluster": cluster_bench.main,
    "experiments": experiments_md.main,
}


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # mvelint has its own flags; dispatch before experiment parsing.
        from repro.analysis.cli import lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "perf":
        # the perf harness has its own flags too.
        from repro.perf.cli import perf_main
        return perf_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the MVEDSUA (ASPLOS 2019) evaluation.")
    parser.add_argument("experiment",
                        choices=sorted(_COMMANDS) + ["all", "lint", "perf"],
                        help="which experiment to run ('lint' runs the "
                             "mvelint static analyzers; 'perf' the "
                             "wall-clock benchmark harness)")
    args = parser.parse_args(argv)
    if args.experiment == "all":
        for name in ("table1", "table2", "fig6", "fig7", "faults",
                     "ablations", "cluster"):
            print(f"\n{'=' * 72}\n")
            _COMMANDS[name]()
    else:
        _COMMANDS[args.experiment]()
    return 0


if __name__ == "__main__":
    sys.exit(main())

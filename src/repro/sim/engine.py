"""Event-queue engine with an integer-nanosecond virtual clock.

Using integers keeps the simulation exactly deterministic: there is no
floating-point drift, and event ordering ties are broken by a monotonically
increasing sequence number (insertion order).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.chaos.injector import current_chaos
from repro.errors import SimulationError
from repro.obs.trace import current_tracer

#: Number of virtual nanoseconds per virtual second.
NANOS_PER_SECOND = 1_000_000_000

#: One virtual microsecond, in clock units.
MICROSECOND = 1_000

#: One virtual millisecond, in clock units.
MILLISECOND = 1_000_000

#: One virtual second, in clock units.
SECOND = NANOS_PER_SECOND


def seconds_to_ns(seconds: float) -> int:
    """Convert a duration in seconds to integer nanoseconds."""
    return int(round(seconds * NANOS_PER_SECOND))


def ns_to_seconds(nanos: int) -> float:
    """Convert integer nanoseconds to (float) seconds, for reporting."""
    return nanos / NANOS_PER_SECOND


class Engine:
    """A deterministic discrete-event scheduler.

    Events are ``(time, seq, callback)`` triples in a binary heap.  Two
    events scheduled for the same instant fire in insertion order, which is
    what makes whole-system runs reproducible.
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._running = False
        #: Observability hook: the active tracer at construction time.
        #: None (the default) keeps the dispatch loop tracer-free.
        self.tracer = current_tracer()
        #: Fault-injection hook, same pattern: None keeps the loop
        #: chaos-free.
        self.chaos = current_chaos()

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    def schedule_at(self, when: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < now {self._now}"
            )
        heapq.heappush(self._queue, (when, self._seq, callback))
        self._seq += 1

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.schedule_at(self._now + delay, callback)

    def advance_to(self, when: int) -> None:
        """Jump the clock forward without running events.

        Only legal when the queue holds no event earlier than ``when``;
        used by runtimes that compute completion times analytically.
        """
        if when < self._now:
            raise SimulationError("cannot move the clock backwards")
        if self._queue and self._queue[0][0] < when:
            raise SimulationError(
                "advance_to would skip over pending events"
            )
        self._now = when

    def run(self, until: Optional[int] = None) -> int:
        """Run events in order until the queue drains or ``until`` passes.

        Returns the final virtual time.  With ``until`` set, events at
        exactly ``until`` still fire; later ones stay queued and the clock
        stops at ``until``.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            while self._queue:
                when, _seq, callback = self._queue[0]
                if until is not None and when > until:
                    break
                heapq.heappop(self._queue)
                self._now = when
                if self.chaos is not None:
                    fault = self.chaos.fire("sim.event", when=when)
                    if fault is not None:
                        if fault.kind == "drop":
                            continue
                        # "delay": requeue the event later; ties broken
                        # by a fresh sequence number as usual.
                        delay = max(1, int(fault.param.get(
                            "delay_ns", MILLISECOND)))
                        heapq.heappush(
                            self._queue, (when + delay, self._seq, callback))
                        self._seq += 1
                        continue
                if self.tracer is not None:
                    self.tracer.on_sim_event(when, len(self._queue))
                callback()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

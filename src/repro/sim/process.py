"""Per-core CPU accounting.

Each server process (and each worker thread inside a multi-threaded server)
owns a :class:`CpuAccount`.  Work arriving at virtual time ``t`` starts at
``max(t, busy_until)`` — a single-server FIFO queue — and pushes
``busy_until`` forward by its cost.  This is how request queueing, update
pauses, and ring-buffer back-pressure all turn into measurable latency.
"""

from __future__ import annotations

from repro.errors import SimulationError


class CpuAccount:
    """Models one core's availability as a ``busy_until`` horizon."""

    def __init__(self, name: str = "cpu") -> None:
        self.name = name
        self._busy_until = 0
        self._total_busy = 0

    @property
    def busy_until(self) -> int:
        """Virtual time at which this core next becomes idle."""
        return self._busy_until

    @property
    def total_busy(self) -> int:
        """Cumulative busy nanoseconds, for utilisation reporting."""
        return self._total_busy

    def start_time(self, arrival: int) -> int:
        """When would work arriving at ``arrival`` begin executing?"""
        return max(arrival, self._busy_until)

    def charge(self, arrival: int, cost: int) -> int:
        """Enqueue ``cost`` nanoseconds of work arriving at ``arrival``.

        Returns the completion time.
        """
        if cost < 0:
            raise SimulationError(f"negative CPU cost: {cost}")
        start = self.start_time(arrival)
        self._busy_until = start + cost
        self._total_busy += cost
        return self._busy_until

    def block_until(self, when: int) -> None:
        """Stall the core (not counted as busy work) until ``when``.

        Used when the MVE leader blocks on a full ring buffer: the core is
        unavailable but not executing.
        """
        if when > self._busy_until:
            self._busy_until = when

    def reset(self) -> None:
        """Forget all accounting (used when forking a follower)."""
        self._busy_until = 0
        self._total_busy = 0

    def fork(self, name: str, at: int) -> "CpuAccount":
        """Create a new core whose availability starts at ``at``."""
        child = CpuAccount(name)
        child._busy_until = at
        return child

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CpuAccount({self.name!r}, busy_until={self._busy_until})"

"""Named, seeded random streams.

Every stochastic choice in the reproduction (keyspace sampling, request
mix, retry jitter) draws from a stream derived from a single root seed and
a stream name, so whole experiments replay bit-for-bit and changing one
consumer does not perturb another's sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """Factory for independent :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def reseed(self, name: str, salt: int) -> random.Random:
        """Replace ``name``'s stream using an extra salt (e.g. retry #)."""
        digest = hashlib.sha256(
            f"{self.root_seed}:{name}:{salt}".encode("utf-8")
        ).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

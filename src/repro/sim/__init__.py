"""Discrete-event simulation core.

The whole reproduction runs in *virtual time*: an integer nanosecond clock
advanced by an event queue.  Server processes charge CPU time against
:class:`~repro.sim.process.CpuAccount` objects, which model per-core
single-server queues; clients are closed-loop generators scheduled on the
:class:`~repro.sim.engine.Engine`.
"""

from repro.sim.engine import Engine, NANOS_PER_SECOND, MICROSECOND, MILLISECOND, SECOND, ns_to_seconds, seconds_to_ns
from repro.sim.process import CpuAccount
from repro.sim.rng import RngStreams

__all__ = [
    "Engine",
    "CpuAccount",
    "RngStreams",
    "NANOS_PER_SECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "ns_to_seconds",
    "seconds_to_ns",
]

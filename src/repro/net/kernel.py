"""The virtual kernel: fd tables, sockets, epoll, filesystem.

Fd tables are keyed by *domain id*.  A native server owns a private
domain; an MVE group shares one domain across leader and followers (only
the current leader actually calls into the kernel — this mirrors Varan's
kernel-state tracking, and makes follower promotion a pure role swap).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.chaos.injector import current_chaos
from repro.errors import (BadFileDescriptor, BrokenPipe, ConnectionReset,
                          FdExhausted, KernelError)
from repro.net.epoll import EpollSet
from repro.net.filesystem import VirtualFilesystem
from repro.net.sockets import Connection, Endpoint, ListeningSocket
from repro.obs.trace import current_tracer

#: Anything an fd can refer to.
FdObject = Union[Endpoint, ListeningSocket, EpollSet]


class _Domain:
    """One fd namespace."""

    def __init__(self, domain_id: int) -> None:
        self.domain_id = domain_id
        self.fds: Dict[int, FdObject] = {}
        self.endpoint_conn: Dict[int, Connection] = {}
        self._next_fd = 3  # 0/1/2 reserved, as on a real system

    def alloc(self, obj: FdObject) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self.fds[fd] = obj
        return fd

    def lookup(self, fd: int) -> FdObject:
        try:
            return self.fds[fd]
        except KeyError:
            raise BadFileDescriptor(
                f"fd {fd} not open in domain {self.domain_id}"
            ) from None


class VirtualKernel:
    """All kernel state for one simulated machine."""

    def __init__(self) -> None:
        self.fs = VirtualFilesystem()
        self._domains: Dict[int, _Domain] = {}
        self._listeners: Dict[Tuple[str, int], Tuple[int, int]] = {}
        self._next_domain = 1
        #: Observability hook: the active tracer at construction time
        #: (or one attached later via ``Tracer.attach``).  None — the
        #: default — keeps every syscall path tracer-free.
        self.tracer = current_tracer()
        #: Fault-injection hook, same pattern: None keeps every syscall
        #: path chaos-free.
        self.chaos = current_chaos()

    # -- domains -----------------------------------------------------------

    def create_domain(self) -> int:
        """Allocate a fresh fd namespace; returns its id."""
        domain_id = self._next_domain
        self._next_domain += 1
        self._domains[domain_id] = _Domain(domain_id)
        return domain_id

    def _domain(self, domain_id: int) -> _Domain:
        try:
            return self._domains[domain_id]
        except KeyError:
            raise KernelError(f"unknown domain {domain_id}") from None

    # -- sockets -----------------------------------------------------------

    def listen(self, domain_id: int, address: Tuple[str, int]) -> int:
        """socket+bind+listen in one step; returns the listening fd."""
        if self.tracer is not None:
            self.tracer.on_kernel("enter", "listen", domain_id)
        if address in self._listeners:
            raise KernelError(f"address in use: {address}")
        domain = self._domain(domain_id)
        sock = ListeningSocket(address)
        fd = domain.alloc(sock)
        self._listeners[address] = (domain_id, fd)
        if self.tracer is not None:
            self.tracer.on_kernel("exit", "listen", domain_id, fd)
        return fd

    def connect(self, domain_id: int, address: Tuple[str, int]) -> int:
        """Connect to a listening address; returns the client-side fd.

        The connection is queued on the listener's backlog until the server
        accepts it.
        """
        if self.tracer is not None:
            self.tracer.on_kernel("enter", "connect", domain_id)
        if self.chaos is not None:
            fault = self.chaos.kernel_call("kernel.connect", domain_id, -1)
            if fault is not None:
                raise FdExhausted(
                    f"connect in domain {domain_id}: out of file descriptors")
        if address not in self._listeners:
            raise KernelError(f"connection refused: {address}")
        listener_domain_id, listener_fd = self._listeners[address]
        listener = self._domains[listener_domain_id].fds[listener_fd]
        assert isinstance(listener, ListeningSocket)
        if not listener.open:
            raise KernelError(f"connection refused: {address}")
        connection = Connection()
        listener.enqueue(connection)
        domain = self._domain(domain_id)
        fd = domain.alloc(connection.client)
        domain.endpoint_conn[fd] = connection
        if self.tracer is not None:
            self.tracer.on_kernel("exit", "connect", domain_id, fd)
        return fd

    def accept(self, domain_id: int, listen_fd: int) -> int:
        """Accept a pending connection; returns the server-side fd."""
        if self.tracer is not None:
            self.tracer.on_kernel("enter", "accept", domain_id, listen_fd)
        domain = self._domain(domain_id)
        listener = domain.lookup(listen_fd)
        if not isinstance(listener, ListeningSocket):
            raise KernelError(f"fd {listen_fd} is not a listening socket")
        if not listener.has_pending():
            raise KernelError("accept would block: empty backlog")
        if self.chaos is not None:
            fault = self.chaos.kernel_call(
                "kernel.accept", domain_id, listen_fd)
            if fault is not None:
                # The pending connection is consumed and torn down so
                # the listener does not stay "readable" forever; the
                # client observes EOF, the server observes EMFILE.
                connection = listener.accept()
                connection.close(connection.server)
                raise FdExhausted(
                    f"accept in domain {domain_id}: out of file descriptors")
        connection = listener.accept()
        fd = domain.alloc(connection.server)
        domain.endpoint_conn[fd] = connection
        if self.tracer is not None:
            self.tracer.on_kernel("exit", "accept", domain_id, fd)
        return fd

    def read(self, domain_id: int, fd: int, max_bytes: Optional[int] = None) -> bytes:
        """Read buffered bytes; ``b""`` means EOF."""
        if self.tracer is not None:
            self.tracer.on_kernel("enter", "read", domain_id, fd)
        domain = self._domain(domain_id)
        endpoint = domain.lookup(fd)
        if not isinstance(endpoint, Endpoint):
            raise KernelError(f"fd {fd} is not a stream")
        if self.chaos is not None:
            fault = self.chaos.kernel_call("kernel.read", domain_id, fd)
            if fault is not None:
                if fault.kind == "econnreset":
                    raise ConnectionReset(
                        f"read fd {fd}: connection reset by peer")
                # "short-read": deliver fewer bytes than buffered.  The
                # fd stays readable (level-triggered epoll), so callers
                # that loop make progress — at least one byte always
                # comes back.
                short = max(1, int(fault.param.get("bytes", 1)))
                if max_bytes is None or short < max_bytes:
                    max_bytes = short
        data = endpoint.read(max_bytes)
        if self.tracer is not None:
            self.tracer.on_kernel("exit", "read", domain_id, fd)
        return data

    def write(self, domain_id: int, fd: int, data: bytes) -> int:
        """Write bytes to the peer; returns the byte count."""
        if self.tracer is not None:
            self.tracer.on_kernel("enter", "write", domain_id, fd)
        domain = self._domain(domain_id)
        endpoint = domain.lookup(fd)
        if not isinstance(endpoint, Endpoint):
            raise KernelError(f"fd {fd} is not a stream")
        connection = domain.endpoint_conn[fd]
        if self.chaos is not None:
            fault = self.chaos.kernel_call("kernel.write", domain_id, fd)
            if fault is not None:
                if fault.kind == "epipe":
                    raise BrokenPipe(f"write fd {fd}: broken pipe")
                # "short-write": accept only a prefix; the caller must
                # retry the remainder, as with a full socket buffer.
                short = max(1, int(fault.param.get("bytes", 1)))
                if short < len(data):
                    data = data[:short]
        written = connection.write(endpoint, data)
        if self.tracer is not None:
            self.tracer.on_kernel("exit", "write", domain_id, fd)
        return written

    def close(self, domain_id: int, fd: int) -> None:
        """Close any fd; streams signal EOF to their peer."""
        if self.tracer is not None:
            self.tracer.on_kernel("enter", "close", domain_id, fd)
        domain = self._domain(domain_id)
        obj = domain.lookup(fd)
        if isinstance(obj, Endpoint):
            connection = domain.endpoint_conn.pop(fd)
            connection.close(obj)
        elif isinstance(obj, ListeningSocket):
            obj.open = False
            self._listeners.pop(obj.address, None)
        del domain.fds[fd]
        for epoll in domain.fds.values():
            if isinstance(epoll, EpollSet):
                epoll.remove(fd)
        if self.tracer is not None:
            self.tracer.on_kernel("exit", "close", domain_id, fd)

    def is_open(self, domain_id: int, fd: int) -> bool:
        """True when ``fd`` is open in the domain."""
        return fd in self._domain(domain_id).fds

    # -- epoll ---------------------------------------------------------------

    def epoll_create(self, domain_id: int) -> int:
        """New epoll instance; returns its fd."""
        domain = self._domain(domain_id)
        fd_holder: List[int] = []
        epoll = EpollSet(epfd=-1)
        fd = domain.alloc(epoll)
        epoll.epfd = fd
        del fd_holder
        return fd

    def epoll_ctl(self, domain_id: int, epfd: int, fd: int, *, add: bool) -> None:
        """Register (``add=True``) or deregister interest in ``fd``."""
        domain = self._domain(domain_id)
        epoll = domain.lookup(epfd)
        if not isinstance(epoll, EpollSet):
            raise KernelError(f"fd {epfd} is not an epoll instance")
        domain.lookup(fd)  # validate target fd
        if add:
            epoll.add(fd)
        else:
            epoll.remove(fd)

    def epoll_wait(self, domain_id: int, epfd: int) -> List[int]:
        """Ready fds (level-triggered), in registration order."""
        if self.tracer is not None:
            self.tracer.on_kernel("enter", "epoll_wait", domain_id, epfd)
        domain = self._domain(domain_id)
        epoll = domain.lookup(epfd)
        if not isinstance(epoll, EpollSet):
            raise KernelError(f"fd {epfd} is not an epoll instance")
        ready: List[int] = []
        for fd in epoll.interest():
            obj = domain.fds.get(fd)
            if obj is None:
                continue
            if isinstance(obj, Endpoint) and obj.readable():
                ready.append(fd)
            elif isinstance(obj, ListeningSocket) and obj.has_pending():
                ready.append(fd)
        if self.tracer is not None:
            self.tracer.on_kernel("exit", "epoll_wait", domain_id, epfd)
        return ready

    # -- inspection (used by tests and the MVE runtime) ----------------------

    def open_fds(self, domain_id: int) -> List[int]:
        """All fds open in a domain."""
        return sorted(self._domain(domain_id).fds)

    def peer_endpoint(self, domain_id: int, fd: int) -> Endpoint:
        """The remote endpoint of a connected stream fd."""
        domain = self._domain(domain_id)
        endpoint = domain.lookup(fd)
        if not isinstance(endpoint, Endpoint):
            raise KernelError(f"fd {fd} is not a stream")
        return domain.endpoint_conn[fd].other(endpoint)

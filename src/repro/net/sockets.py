"""Byte-stream connections and listening sockets."""

from __future__ import annotations

from typing import Deque, List, Optional, Tuple
from collections import deque

from repro.errors import ConnectionClosed


class Endpoint:
    """One side of a :class:`Connection`.

    Holds the bytes this side has *received* but not yet read.  Reads are
    stream-oriented: a read may return fewer bytes than were written by the
    peer, and consecutive writes may coalesce, just like TCP.
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self._inbox: Deque[bytes] = deque()
        self.open = True
        self.peer_open = True
        self.bytes_received = 0

    def deliver(self, data: bytes) -> None:
        """Called by the connection when the peer writes."""
        if data:
            self._inbox.append(data)
            self.bytes_received += len(data)

    def unread(self, data: bytes) -> None:
        """Push bytes back to the *front* of the inbox.

        Used when a crashed MVE leader had consumed a request: the bytes
        are re-delivered so the promoted follower can process it.
        """
        if data:
            self._inbox.appendleft(data)

    def readable(self) -> bool:
        """True when a read would not block (data or peer-closed EOF)."""
        return bool(self._inbox) or not self.peer_open

    def pending_bytes(self) -> int:
        """Bytes buffered and not yet read."""
        return sum(len(chunk) for chunk in self._inbox)

    def read(self, max_bytes: Optional[int] = None) -> bytes:
        """Consume up to ``max_bytes`` buffered bytes.

        Returns ``b""`` at EOF (peer closed, nothing buffered).  Raises
        :class:`ConnectionClosed` if this side itself is closed.
        """
        if not self.open:
            raise ConnectionClosed(f"read on closed endpoint {self.label}")
        if not self._inbox:
            return b""
        pieces: List[bytes] = []
        remaining = max_bytes if max_bytes is not None else float("inf")
        while self._inbox and remaining > 0:
            chunk = self._inbox[0]
            if len(chunk) <= remaining:
                pieces.append(self._inbox.popleft())
                remaining -= len(chunk)
            else:
                take = int(remaining)
                pieces.append(chunk[:take])
                self._inbox[0] = chunk[take:]
                remaining = 0
        return b"".join(pieces)


class Connection:
    """A bidirectional byte stream between two endpoints."""

    _next_id = 1

    def __init__(self, client_label: str = "client", server_label: str = "server") -> None:
        self.conn_id = Connection._next_id
        Connection._next_id += 1
        self.client = Endpoint(f"{client_label}#{self.conn_id}")
        self.server = Endpoint(f"{server_label}#{self.conn_id}")

    def other(self, endpoint: Endpoint) -> Endpoint:
        """The peer of ``endpoint``."""
        if endpoint is self.client:
            return self.server
        if endpoint is self.server:
            return self.client
        raise ValueError("endpoint does not belong to this connection")

    def write(self, endpoint: Endpoint, data: bytes) -> int:
        """Write from ``endpoint`` to its peer; returns bytes written."""
        if not endpoint.open:
            raise ConnectionClosed(f"write on closed endpoint {endpoint.label}")
        peer = self.other(endpoint)
        if not peer.open:
            raise ConnectionClosed(f"peer of {endpoint.label} is closed")
        peer.deliver(data)
        return len(data)

    def close(self, endpoint: Endpoint) -> None:
        """Close one side; the peer sees EOF after draining its inbox."""
        endpoint.open = False
        self.other(endpoint).peer_open = False


class ListeningSocket:
    """A bound, listening socket with a backlog of pending connections."""

    def __init__(self, address: Tuple[str, int]) -> None:
        self.address = address
        self.backlog: Deque[Connection] = deque()
        self.open = True

    def enqueue(self, connection: Connection) -> None:
        """A client connected; park the connection until accepted."""
        self.backlog.append(connection)

    def has_pending(self) -> bool:
        """True when an accept would not block."""
        return bool(self.backlog)

    def accept(self) -> Connection:
        """Pop the oldest pending connection."""
        return self.backlog.popleft()

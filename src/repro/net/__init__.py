"""Virtual kernel: sockets, epoll, and a small filesystem.

The servers in this reproduction issue the same syscall sequences their C
counterparts would, but against this in-process kernel.  File descriptors,
listening sockets, byte-stream connections, epoll sets, and files are all
plain Python objects; the MVE layer (``repro.mve``) sits between servers
and this kernel exactly where Varan sits between real servers and Linux.

Fd tables are keyed by *domain*.  A native server owns its own domain; an
MVE group (leader + followers) shares one domain, which is how Varan's
kernel-state tracking lets a promoted follower adopt the leader's open
descriptors without re-establishing connections.
"""

from repro.net.kernel import VirtualKernel
from repro.net.sockets import Connection, Endpoint, ListeningSocket
from repro.net.epoll import EpollSet
from repro.net.filesystem import VirtualFilesystem
from repro.net.ring_wire import RING_WIRE_SCHEMA, RingLink, WireError

__all__ = [
    "VirtualKernel",
    "Connection",
    "Endpoint",
    "ListeningSocket",
    "EpollSet",
    "VirtualFilesystem",
    "RING_WIRE_SCHEMA",
    "RingLink",
    "WireError",
]

"""Epoll sets over virtual fds."""

from __future__ import annotations

from typing import Dict, List


class EpollSet:
    """Registered-interest set for one epoll instance.

    Readiness is level-triggered, matching how the simulated servers (and
    LibEvent) use epoll.  Registration order is preserved because LibEvent's
    round-robin dispatch — the source of Memcached's spurious divergences in
    the paper — depends on a stable iteration order.
    """

    def __init__(self, epfd: int) -> None:
        self.epfd = epfd
        self._interest: Dict[int, None] = {}

    def add(self, fd: int) -> None:
        """Register interest in ``fd`` (idempotent)."""
        self._interest.setdefault(fd, None)

    def remove(self, fd: int) -> None:
        """Drop interest in ``fd`` (idempotent)."""
        self._interest.pop(fd, None)

    def interest(self) -> List[int]:
        """All registered fds, in registration order."""
        return list(self._interest)

    def __contains__(self, fd: int) -> bool:
        return fd in self._interest

    def __len__(self) -> int:
        return len(self._interest)

"""A small virtual filesystem.

Vsftpd's data transfers (RETR/STOR/STOU), Redis's RDB snapshots, and the
fault-injection experiments all read and write files here.  Mirroring the
paper's observation about Varan, the filesystem is *shared* between MVE
versions: there is one namespace per :class:`VirtualFilesystem`, not one
per process — which is exactly why Vsftpd's STOU divergence is tolerable
(§5.1 of the paper).
"""

from __future__ import annotations

import posixpath
from typing import Dict, List

from repro.errors import FileNotFound, KernelError


def _normalise(path: str) -> str:
    if not path.startswith("/"):
        path = "/" + path
    normalised = posixpath.normpath(path)
    # POSIX preserves exactly two leading slashes; collapse them here so
    # "//f" and "/f" name the same file.
    if normalised.startswith("//"):
        normalised = normalised[1:]
    return normalised


class VirtualFilesystem:
    """Flat file store with directory bookkeeping."""

    def __init__(self) -> None:
        self._files: Dict[str, bytes] = {}
        self._dirs: Dict[str, None] = {"/": None}

    # -- directories ------------------------------------------------------

    def mkdir(self, path: str) -> None:
        """Create a directory; parents must already exist."""
        path = _normalise(path)
        parent = posixpath.dirname(path)
        if parent not in self._dirs:
            raise FileNotFound(f"no such directory: {parent}")
        if path in self._dirs:
            raise KernelError(f"directory exists: {path}")
        self._dirs[path] = None

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        path = _normalise(path)
        if path == "/":
            raise KernelError("cannot remove root")
        if path not in self._dirs:
            raise FileNotFound(f"no such directory: {path}")
        if any(name.startswith(path + "/") for name in self._files):
            raise KernelError(f"directory not empty: {path}")
        if any(d != path and d.startswith(path + "/") for d in self._dirs):
            raise KernelError(f"directory not empty: {path}")
        del self._dirs[path]

    def is_dir(self, path: str) -> bool:
        """True if ``path`` names a directory."""
        return _normalise(path) in self._dirs

    # -- files -------------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> None:
        """Create or overwrite a file."""
        path = _normalise(path)
        parent = posixpath.dirname(path)
        if parent not in self._dirs:
            raise FileNotFound(f"no such directory: {parent}")
        self._files[path] = bytes(data)

    def append_file(self, path: str, data: bytes) -> None:
        """Append to a file, creating it if absent."""
        path = _normalise(path)
        if path in self._files:
            self._files[path] += bytes(data)
        else:
            self.write_file(path, data)

    def read_file(self, path: str) -> bytes:
        """Full contents of a file."""
        path = _normalise(path)
        if path not in self._files:
            raise FileNotFound(f"no such file: {path}")
        return self._files[path]

    def exists(self, path: str) -> bool:
        """True if ``path`` names a file."""
        return _normalise(path) in self._files

    def size(self, path: str) -> int:
        """File size in bytes."""
        return len(self.read_file(path))

    def unlink(self, path: str) -> None:
        """Remove a file."""
        path = _normalise(path)
        if path not in self._files:
            raise FileNotFound(f"no such file: {path}")
        del self._files[path]

    def rename(self, src: str, dst: str) -> None:
        """Atomically move a file."""
        src, dst = _normalise(src), _normalise(dst)
        if src not in self._files:
            raise FileNotFound(f"no such file: {src}")
        parent = posixpath.dirname(dst)
        if parent not in self._dirs:
            raise FileNotFound(f"no such directory: {parent}")
        self._files[dst] = self._files.pop(src)

    def listdir(self, path: str) -> List[str]:
        """Names (not paths) of entries directly inside ``path``."""
        path = _normalise(path)
        if path not in self._dirs:
            raise FileNotFound(f"no such directory: {path}")
        prefix = path if path.endswith("/") else path + "/"
        names = set()
        for file_path in self._files:
            if file_path.startswith(prefix):
                rest = file_path[len(prefix):]
                names.add(rest.split("/", 1)[0])
        for dir_path in self._dirs:
            if dir_path != path and dir_path.startswith(prefix):
                rest = dir_path[len(prefix):]
                names.add(rest.split("/", 1)[0])
        return sorted(names)

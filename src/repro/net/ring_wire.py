"""The ``repro-ring/1`` wire protocol: the ring buffer over a link.

A distributed MVE pair (see :mod:`repro.mve.distring`) ships the
leader's syscall stream to a follower on another fleet node as
*frames*: one frame per published burst, carrying the burst's
:class:`~repro.syscalls.model.SyscallRecord` payloads (or one control
event) coalesced into a single length-prefixed line.  The framing is
deliberately the same shape as the ``repro-stream/1`` artifact format —
an 8-hex-digit byte length, one space, a canonical-JSON body — so the
same truncation/garbage detection applies on the wire as on disk.

Each frame carries a monotonically increasing ``seq``; the receiver
acknowledges frames by sequence number, and the sender bounds the
number of unacknowledged frames in flight with
:attr:`RingLink.window`.  A full window maps onto the existing
ring-stall accounting: the leader blocks exactly as it does when the
local ring is full, so Figure 7's back-pressure story extends to
network back-pressure unchanged.

:class:`RingLink` is the declared cost model of the leader→follower
link — propagation latency, bandwidth, window, and the partition
demotion timeout.  :func:`transit_ns` turns a frame's byte size into
virtual transit time; everything stays integer nanoseconds so
distributed runs are as bit-reproducible as local ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple, Union

from repro.errors import SimulationError
from repro.mve.events import ControlEvent, ControlKind
from repro.replay.stream import (deserialize_record, frame_line,
                                 serialize_record, unframe_line)
from repro.syscalls.model import SyscallRecord

#: Wire protocol identifier, stamped into every frame (bump on shape
#: changes; receivers reject anything else).
RING_WIRE_SCHEMA = "repro-ring/1"

#: What one frame can carry (mirrors the ring buffer's Payload).
Payload = Union[SyscallRecord, ControlEvent]


class WireError(SimulationError):
    """A malformed, truncated, or protocol-violating ring frame."""


@dataclass(frozen=True)
class RingLink:
    """Declared cost model of one leader→follower replication link.

    ``latency_ns`` is one-way propagation delay; ``bandwidth_bps`` is
    bytes per virtual second (serialisation delay is
    ``frame_bytes / bandwidth``); ``window`` bounds unacknowledged
    frames in flight; ``demote_timeout_ns`` is how much cumulative
    partition-induced delay the pair tolerates before the follower is
    demoted (rejoin happens via resync on the next fork).
    ``retransmit_ns`` is the recovery delay one dropped frame costs.
    """

    latency_ns: int = 500_000
    bandwidth_bps: int = 1_000_000_000
    window: int = 8
    demote_timeout_ns: int = 250_000_000
    retransmit_ns: int = 40_000_000

    def problems(self) -> List[str]:
        """Validation problems with the link budget (empty = usable)."""
        problems: List[str] = []
        if self.latency_ns < 0:
            problems.append(f"link latency must be >= 0 ns, "
                            f"got {self.latency_ns}")
        if self.bandwidth_bps < 1:
            problems.append(f"link bandwidth must be >= 1 byte/s, "
                            f"got {self.bandwidth_bps}")
        if self.window < 1:
            problems.append(f"link window must allow at least one frame "
                            f"in flight, got {self.window}")
        if self.demote_timeout_ns < 1:
            problems.append(f"partition demote timeout must be >= 1 ns, "
                            f"got {self.demote_timeout_ns}")
        if self.retransmit_ns < 0:
            problems.append(f"retransmit delay must be >= 0 ns, "
                            f"got {self.retransmit_ns}")
        return problems

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready form for fleet reports (sorted, deterministic)."""
        return {"latency_ns": self.latency_ns,
                "bandwidth_bps": self.bandwidth_bps,
                "window": self.window,
                "demote_timeout_ns": self.demote_timeout_ns,
                "retransmit_ns": self.retransmit_ns}


def transit_ns(link: RingLink, n_bytes: int) -> int:
    """Virtual transit time of ``n_bytes`` over ``link``.

    Propagation plus serialisation, rounded up to whole nanoseconds so
    a non-empty frame over a finite link always costs at least the
    propagation delay.
    """
    serialise = -(-n_bytes * 1_000_000_000 // link.bandwidth_bps)
    return link.latency_ns + serialise


# ---------------------------------------------------------------------------
# Frame encode/decode
# ---------------------------------------------------------------------------

def _serialize_payload(payload: Payload) -> Dict[str, Any]:
    if isinstance(payload, ControlEvent):
        entry: Dict[str, Any] = {"ctl": payload.kind.value}
        if payload.at is not None:
            entry["at"] = payload.at
        if payload.version is not None:
            entry["version"] = payload.version
        return entry
    return serialize_record(payload)


def _deserialize_payload(entry: Any) -> Payload:
    if not isinstance(entry, dict):
        raise WireError(f"frame payload entry is not an object: {entry!r}")
    if "ctl" in entry:
        try:
            kind = ControlKind(entry["ctl"])
        except ValueError as exc:
            raise WireError(f"unknown control kind {entry['ctl']!r}") \
                from exc
        return ControlEvent(kind, at=entry.get("at"),
                            version=entry.get("version"))
    try:
        return deserialize_record(entry)
    except SimulationError as exc:
        raise WireError(f"bad syscall record on the wire: {exc}") from exc


def encode_frame(sequence: int, payloads: List[Payload]) -> str:
    """One ``repro-ring/1`` frame: a length-prefixed JSON line.

    ``sequence`` is the frame's position in the stream (0-based,
    monotonic); the receiver uses it to detect gaps and to reassemble
    out-of-order delivery.
    """
    if sequence < 0:
        raise WireError(f"frame sequence must be >= 0, got {sequence}")
    if not payloads:
        raise WireError("refusing to encode an empty frame")
    body = {"schema": RING_WIRE_SCHEMA, "seq": sequence,
            "records": [_serialize_payload(payload)
                        for payload in payloads]}
    return frame_line(body)


def decode_frame(line: str) -> Tuple[int, List[Payload]]:
    """Parse one frame; returns ``(sequence, payloads)``.

    Raises :class:`WireError` on truncation, garbage, a wrong schema,
    or a malformed body — the receiver treats any of those as a
    partition event, never as data.
    """
    try:
        body = unframe_line(line, 0)
    except SimulationError as exc:
        raise WireError(str(exc)) from exc
    if body.get("schema") != RING_WIRE_SCHEMA:
        raise WireError(f"frame schema is {body.get('schema')!r}, "
                        f"expected {RING_WIRE_SCHEMA!r}")
    sequence = body.get("seq")
    if not isinstance(sequence, int) or sequence < 0:
        raise WireError(f"frame sequence {sequence!r} is not a "
                        f"non-negative integer")
    records = body.get("records")
    if not isinstance(records, list) or not records:
        raise WireError("frame carries no records")
    return sequence, [_deserialize_payload(entry) for entry in records]


def encode_ack(sequence: int) -> str:
    """The receiver's acknowledgement for frame ``sequence``."""
    return frame_line({"schema": RING_WIRE_SCHEMA, "ack": sequence})


def decode_ack(line: str) -> int:
    """Parse one ack; returns the acknowledged sequence number."""
    try:
        body = unframe_line(line, 0)
    except SimulationError as exc:
        raise WireError(str(exc)) from exc
    if body.get("schema") != RING_WIRE_SCHEMA:
        raise WireError(f"ack schema is {body.get('schema')!r}, "
                        f"expected {RING_WIRE_SCHEMA!r}")
    sequence = body.get("ack")
    if not isinstance(sequence, int) or sequence < 0:
        raise WireError(f"ack sequence {sequence!r} is not a "
                        f"non-negative integer")
    return sequence

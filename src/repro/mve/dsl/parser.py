"""Textual rule DSL, in the spirit of the paper's Figures 4 and 5.

Varan's DSL (Pina et al., USENIX ATC'17) writes rules as a match over the
leader's syscalls followed by the sequence the follower should issue.
This parser accepts a line-oriented rendering of the same idea::

    # Figure 4, Rule 1: direct new-typed PUTs to an invalid command.
    rule put_typed outdated-leader:
        read(fd, s) where startswith(s, "PUT-") => read(fd, "bad-cmd\\r\\n")

    # Figure 5: redirect commands the old leader rejected.
    rule stou outdated-leader:
        read(fd, s), write(fd, r) where r == "500 Unknown command.\\r\\n"
            => read(fd, "FOOBAR\\r\\n"), write(fd, r)

    # Merge a split banner write.
    rule banner both:
        write(fd, a), write(fd, b) where startswith(a, "220") => write(fd, a + b)

    # Swap two adjacent syscalls (Redis 2.0.0 -> 2.0.1).
    rule aof_order outdated-leader:
        write(f1, a), write(f2, b) where startswith(b, "*") => write(f2, b), write(f1, a)

Grammar (informal)::

    rules      := { rule }
    rule       := "rule" NAME [direction] ":" match_seq "=>" emit_seq
    direction  := "outdated-leader" | "updated-leader" | "both"
    match_seq  := match { "," match } [ "where" cond { "and" cond } ]
    match      := SYSCALL "(" fdvar "," var ")"
    cond       := var "==" STRING | var "!=" STRING
                | PRED "(" var "," STRING ")"          # startswith/endswith/contains
    emit_seq   := emit { "," emit }
    emit       := SYSCALL "(" fdvar "," expr ")"
    expr       := STRING | var | var "+" var
                | "replace_prefix" "(" var "," STRING "," STRING ")"
                | "replace" "(" var "," STRING "," STRING ")"

Variables bind the fd and payload of the matched records; emitted records
reuse the matched record's fd (patterns in this reproduction always apply
per-connection, which is what the paper's rules do too).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DslSyntaxError
from repro.mve.dsl.rules import Direction, RewriteRule, SyscallPattern
from repro.syscalls.model import Sys, SyscallRecord

_SYSCALLS = {
    "read": Sys.READ,
    "write": Sys.WRITE,
    "open": Sys.OPEN,
    "close": Sys.CLOSE,
    "unlink": Sys.UNLINK,
}

_DIRECTIONS = {
    "outdated-leader": Direction.OUTDATED_LEADER,
    "updated-leader": Direction.UPDATED_LEADER,
    "both": Direction.BOTH,
}

_PREDICATES = {
    "startswith": bytes.startswith,
    "endswith": bytes.endswith,
    "contains": lambda data, lit: lit in data,
}

_TOKEN_RE = re.compile(
    r"""
    \s*(
        "(?:[^"\\]|\\.)*"      # string literal
      | =>                     # arrow
      | == | != | \+ | , | \( | \) | :
      | [A-Za-z_][A-Za-z0-9_-]*
    )
    """,
    re.VERBOSE,
)


def _unescape(literal: str) -> bytes:
    body = literal[1:-1]
    return body.encode("utf-8").decode("unicode_escape").encode("latin-1")


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    stripped = "\n".join(
        line.split("#", 1)[0] for line in text.splitlines()
    )
    while position < len(stripped):
        match = _TOKEN_RE.match(stripped, position)
        if match is None:
            remainder = stripped[position:].strip()
            if not remainder:
                break
            raise DslSyntaxError(f"cannot tokenize near: {remainder[:30]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


@dataclass
class _MatchItem:
    syscall: Sys
    fd_var: str
    data_var: str


@dataclass
class _EmitItem:
    syscall: Sys
    fd_var: str
    expr: Callable[[Dict[str, bytes]], bytes]


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.position = 0

    def at_end(self) -> bool:
        return self.position >= len(self.tokens)

    def peek(self) -> Optional[str]:
        if self.at_end():
            return None
        return self.tokens[self.position]

    def next(self) -> str:
        if self.at_end():
            raise DslSyntaxError("unexpected end of input")
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise DslSyntaxError(f"expected {token!r}, got {got!r}")

    # -- grammar -------------------------------------------------------------

    def parse_rules(self) -> List[RewriteRule]:
        rules = []
        while not self.at_end():
            rules.append(self.parse_rule())
        return rules

    def parse_rule(self) -> RewriteRule:
        self.expect("rule")
        name = self.next()
        direction = Direction.OUTDATED_LEADER
        if self.peek() in _DIRECTIONS:
            direction = _DIRECTIONS[self.next()]
        self.expect(":")
        matches = [self.parse_match()]
        while self.peek() == ",":
            self.next()
            matches.append(self.parse_match())
        conditions = []
        if self.peek() == "where":
            self.next()
            conditions.append(self.parse_condition(matches))
            while self.peek() == "and":
                self.next()
                conditions.append(self.parse_condition(matches))
        self.expect("=>")
        emits = [self.parse_emit(matches)]
        while self.peek() == ",":
            self.next()
            emits.append(self.parse_emit(matches))
        return _build_rule(name, direction, matches, conditions, emits)

    def parse_match(self) -> _MatchItem:
        syscall_name = self.next()
        if syscall_name not in _SYSCALLS:
            raise DslSyntaxError(f"unknown syscall {syscall_name!r}")
        self.expect("(")
        fd_var = self.next()
        self.expect(",")
        data_var = self.next()
        self.expect(")")
        return _MatchItem(_SYSCALLS[syscall_name], fd_var, data_var)

    def parse_condition(self, matches: List[_MatchItem]):
        """Returns (var_name, predicate over payload bytes)."""
        head = self.next()
        if head in _PREDICATES:
            predicate = _PREDICATES[head]
            self.expect("(")
            var = self.next()
            self.expect(",")
            literal = self._string()
            self.expect(")")
            _require_var(var, matches)
            return (var, lambda data, p=predicate, lit=literal: p(data, lit))
        var = head
        operator = self.next()
        literal = self._string()
        _require_var(var, matches)
        if operator == "==":
            return (var, lambda data, lit=literal: data == lit)
        if operator == "!=":
            return (var, lambda data, lit=literal: data != lit)
        raise DslSyntaxError(f"unknown operator {operator!r}")

    def parse_emit(self, matches: List[_MatchItem]) -> _EmitItem:
        syscall_name = self.next()
        if syscall_name not in _SYSCALLS:
            raise DslSyntaxError(f"unknown syscall {syscall_name!r}")
        self.expect("(")
        fd_var = self.next()
        self.expect(",")
        expr = self.parse_expr(matches)
        self.expect(")")
        _require_fd_var(fd_var, matches)
        return _EmitItem(_SYSCALLS[syscall_name], fd_var, expr)

    def parse_expr(self, matches: List[_MatchItem]):
        head = self.next()
        if head.startswith('"'):
            literal = _unescape(head)
            return lambda env, lit=literal: lit
        if head in ("replace_prefix", "replace"):
            self.expect("(")
            var = self.next()
            self.expect(",")
            old = self._string()
            self.expect(",")
            new = self._string()
            self.expect(")")
            _require_var(var, matches)
            if head == "replace_prefix":
                def prefix_expr(env, v=var, o=old, n=new):
                    data = env[v]
                    if data.startswith(o):
                        return n + data[len(o):]
                    return data
                return prefix_expr
            return lambda env, v=var, o=old, n=new: env[v].replace(o, n)
        var = head
        _require_var(var, matches)
        if self.peek() == "+":
            self.next()
            other = self.next()
            _require_var(other, matches)
            return lambda env, a=var, b=other: env[a] + env[b]
        return lambda env, v=var: env[v]

    def _string(self) -> bytes:
        token = self.next()
        if not token.startswith('"'):
            raise DslSyntaxError(f"expected string literal, got {token!r}")
        return _unescape(token)


def _require_var(var: str, matches: List[_MatchItem]) -> None:
    if var not in {m.data_var for m in matches}:
        raise DslSyntaxError(f"unbound payload variable {var!r}")


def _require_fd_var(var: str, matches: List[_MatchItem]) -> None:
    if var not in {m.fd_var for m in matches}:
        raise DslSyntaxError(f"unbound fd variable {var!r}")


def _build_rule(name: str, direction: Direction,
                matches: List[_MatchItem],
                conditions: List[Tuple[str, Callable[[bytes], bool]]],
                emits: List[_EmitItem]) -> RewriteRule:
    """Compile the parsed pieces into a RewriteRule."""
    per_var: Dict[str, List[Callable[[bytes], bool]]] = {}
    for var, predicate in conditions:
        per_var.setdefault(var, []).append(predicate)

    pattern = []
    for item in matches:
        predicates = per_var.get(item.data_var, [])
        if predicates:
            def combined(data, preds=tuple(predicates)):
                return all(p(data) for p in preds)
            pattern.append(SyscallPattern(item.syscall, predicate=combined))
        else:
            pattern.append(SyscallPattern(item.syscall))

    fd_of = {m.fd_var: index for index, m in enumerate(matches)}
    var_of = {m.data_var: index for index, m in enumerate(matches)}

    def action(matched: List[SyscallRecord],
               emits=tuple(emits)) -> List[SyscallRecord]:
        env = {var: matched[index].data for var, index in var_of.items()}
        out = []
        for emit in emits:
            source = matched[fd_of[emit.fd_var]]
            data = emit.expr(env)
            out.append(SyscallRecord(emit.syscall, fd=source.fd, data=data,
                                     result=len(data)))
        return out

    return RewriteRule(name, pattern, action, direction)


def parse_rules(text: str) -> List[RewriteRule]:
    """Parse DSL ``text`` into :class:`RewriteRule` objects."""
    return _Parser(_tokenize(text)).parse_rules()

"""Textual rule DSL, in the spirit of the paper's Figures 4 and 5.

Varan's DSL (Pina et al., USENIX ATC'17) writes rules as a match over the
leader's syscalls followed by the sequence the follower should issue.
This parser accepts a line-oriented rendering of the same idea::

    # Figure 4, Rule 1: direct new-typed PUTs to an invalid command.
    rule put_typed outdated-leader:
        read(fd, s) where startswith(s, "PUT-") => read(fd, "bad-cmd\\r\\n")

    # Figure 5: redirect commands the old leader rejected.
    rule stou outdated-leader:
        read(fd, s), write(fd, r) where r == "500 Unknown command.\\r\\n"
            => read(fd, "FOOBAR\\r\\n"), write(fd, r)

    # Merge a split banner write.
    rule banner both:
        write(fd, a), write(fd, b) where startswith(a, "220") => write(fd, a + b)

    # Swap two adjacent syscalls (Redis 2.0.0 -> 2.0.1).
    rule aof_order outdated-leader:
        write(f1, a), write(f2, b) where startswith(b, "*") => write(f2, b), write(f1, a)

Grammar (informal)::

    rules      := { rule }
    rule       := "rule" NAME [direction] ":" match_seq "=>" emit_seq
    direction  := "outdated-leader" | "updated-leader" | "both"
    match_seq  := match { "," match } [ "where" cond { "and" cond } ]
    match      := SYSCALL "(" fdvar "," var ")"
    cond       := var "==" STRING | var "!=" STRING
                | PRED "(" var "," STRING ")"          # startswith/endswith/contains
    emit_seq   := emit { "," emit }
    emit       := SYSCALL "(" fdvar "," expr ")"
    expr       := STRING | var | var "+" var
                | "replace_prefix" "(" var "," STRING "," STRING ")"
                | "replace" "(" var "," STRING "," STRING ")"

Variables bind the fd and payload of the matched records; emitted records
reuse the matched record's fd (patterns in this reproduction always apply
per-connection, which is what the paper's rules do too).

Parsing happens in two stages: the grammar above is first read into an
inspectable AST (:class:`RuleAst` and friends), which ``mvelint``
(:mod:`repro.analysis`) walks for static checks, and the AST is then
compiled into executable :class:`~repro.mve.dsl.rules.RewriteRule`
objects.  Compiled rules keep a reference to their source AST in
``RewriteRule.ast``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DslSyntaxError
from repro.mve.dsl.rules import Direction, RewriteRule, SyscallPattern
from repro.syscalls.model import Sys, SyscallRecord

_SYSCALLS = {
    "read": Sys.READ,
    "write": Sys.WRITE,
    "open": Sys.OPEN,
    "close": Sys.CLOSE,
    "unlink": Sys.UNLINK,
}

_DIRECTIONS = {
    "outdated-leader": Direction.OUTDATED_LEADER,
    "updated-leader": Direction.UPDATED_LEADER,
    "both": Direction.BOTH,
}

_PREDICATES = {
    "startswith": bytes.startswith,
    "endswith": bytes.endswith,
    "contains": lambda data, lit: lit in data,
}

_TOKEN_RE = re.compile(
    r"""
    \s*(
        "(?:[^"\\]|\\.)*"      # string literal
      | =>                     # arrow
      | == | != | \+ | , | \( | \) | :
      | [A-Za-z_][A-Za-z0-9_-]*
    )
    """,
    re.VERBOSE,
)


def _unescape(literal: str) -> bytes:
    body = literal[1:-1]
    return body.encode("utf-8").decode("unicode_escape").encode("latin-1")


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    stripped = "\n".join(
        line.split("#", 1)[0] for line in text.splitlines()
    )
    while position < len(stripped):
        match = _TOKEN_RE.match(stripped, position)
        if match is None:
            remainder = stripped[position:].strip()
            if not remainder:
                break
            raise DslSyntaxError(f"cannot tokenize near: {remainder[:30]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatchAst:
    """One ``syscall(fdvar, datavar)`` match position."""

    syscall: Sys
    fd_var: str
    data_var: str


@dataclass(frozen=True)
class CondAst:
    """One ``where`` condition over a bound payload variable.

    ``op`` is one of ``eq``, ``ne``, ``startswith``, ``endswith``,
    ``contains``.
    """

    op: str
    var: str
    literal: bytes

    def evaluate(self, data: bytes) -> bool:
        """Apply this condition to a payload."""
        if self.op == "eq":
            return data == self.literal
        if self.op == "ne":
            return data != self.literal
        return _PREDICATES[self.op](data, self.literal)


@dataclass(frozen=True)
class ExprAst:
    """One emit expression.

    ``op`` is one of ``literal``, ``var``, ``concat``, ``replace``,
    ``replace_prefix``; the operand fields used depend on the op.
    """

    op: str
    var: Optional[str] = None
    other: Optional[str] = None
    literal: Optional[bytes] = None
    old: Optional[bytes] = None
    new: Optional[bytes] = None

    def variables(self) -> Tuple[str, ...]:
        """Payload variables this expression reads."""
        return tuple(v for v in (self.var, self.other) if v is not None)


@dataclass(frozen=True)
class EmitAst:
    """One ``syscall(fdvar, expr)`` emission."""

    syscall: Sys
    fd_var: str
    expr: ExprAst


@dataclass(frozen=True)
class RuleAst:
    """One parsed rule, before compilation."""

    name: str
    direction: Direction
    matches: Tuple[MatchAst, ...]
    conditions: Tuple[CondAst, ...] = ()
    emits: Tuple[EmitAst, ...] = ()

    def conditions_for(self, data_var: str) -> Tuple[CondAst, ...]:
        """The conditions constraining one payload variable."""
        return tuple(c for c in self.conditions if c.var == data_var)

    def used_variables(self) -> frozenset:
        """Payload variables referenced by any condition or emit."""
        used = {c.var for c in self.conditions}
        for emit in self.emits:
            used.update(emit.expr.variables())
        return frozenset(used)


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.position = 0

    def at_end(self) -> bool:
        return self.position >= len(self.tokens)

    def peek(self) -> Optional[str]:
        if self.at_end():
            return None
        return self.tokens[self.position]

    def next(self) -> str:
        if self.at_end():
            raise DslSyntaxError("unexpected end of input")
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise DslSyntaxError(f"expected {token!r}, got {got!r}")

    # -- grammar -------------------------------------------------------------

    def parse_rules(self) -> List[RuleAst]:
        rules = []
        seen = set()
        while not self.at_end():
            rule = self.parse_rule()
            if rule.name in seen:
                raise DslSyntaxError(f"duplicate rule name {rule.name!r}")
            seen.add(rule.name)
            rules.append(rule)
        return rules

    def parse_rule(self) -> RuleAst:
        self.expect("rule")
        name = self.next()
        direction = Direction.OUTDATED_LEADER
        if self.peek() in _DIRECTIONS:
            direction = _DIRECTIONS[self.next()]
        self.expect(":")
        matches = [self.parse_match()]
        while self.peek() == ",":
            self.next()
            matches.append(self.parse_match())
        conditions = []
        if self.peek() == "where":
            self.next()
            conditions.append(self.parse_condition(matches))
            while self.peek() == "and":
                self.next()
                conditions.append(self.parse_condition(matches))
        self.expect("=>")
        emits = [self.parse_emit(matches)]
        while self.peek() == ",":
            self.next()
            emits.append(self.parse_emit(matches))
        return RuleAst(name, direction, tuple(matches), tuple(conditions),
                       tuple(emits))

    def parse_match(self) -> MatchAst:
        syscall_name = self.next()
        if syscall_name not in _SYSCALLS:
            raise DslSyntaxError(f"unknown syscall {syscall_name!r}")
        self.expect("(")
        fd_var = self.next()
        self.expect(",")
        data_var = self.next()
        self.expect(")")
        return MatchAst(_SYSCALLS[syscall_name], fd_var, data_var)

    def parse_condition(self, matches: List[MatchAst]) -> CondAst:
        head = self.next()
        if head in _PREDICATES:
            self.expect("(")
            var = self.next()
            self.expect(",")
            literal = self._string()
            self.expect(")")
            _require_var(var, matches)
            return CondAst(head, var, literal)
        var = head
        operator = self.next()
        literal = self._string()
        _require_var(var, matches)
        if operator == "==":
            return CondAst("eq", var, literal)
        if operator == "!=":
            return CondAst("ne", var, literal)
        raise DslSyntaxError(f"unknown operator {operator!r}")

    def parse_emit(self, matches: List[MatchAst]) -> EmitAst:
        syscall_name = self.next()
        if syscall_name not in _SYSCALLS:
            raise DslSyntaxError(f"unknown syscall {syscall_name!r}")
        self.expect("(")
        fd_var = self.next()
        self.expect(",")
        expr = self.parse_expr(matches)
        self.expect(")")
        _require_fd_var(fd_var, matches)
        return EmitAst(_SYSCALLS[syscall_name], fd_var, expr)

    def parse_expr(self, matches: List[MatchAst]) -> ExprAst:
        head = self.next()
        if head.startswith('"'):
            return ExprAst("literal", literal=_unescape(head))
        if head in ("replace_prefix", "replace"):
            self.expect("(")
            var = self.next()
            self.expect(",")
            old = self._string()
            self.expect(",")
            new = self._string()
            self.expect(")")
            _require_var(var, matches)
            return ExprAst(head, var=var, old=old, new=new)
        var = head
        _require_var(var, matches)
        if self.peek() == "+":
            self.next()
            other = self.next()
            _require_var(other, matches)
            return ExprAst("concat", var=var, other=other)
        return ExprAst("var", var=var)

    def _string(self) -> bytes:
        token = self.next()
        if not token.startswith('"'):
            raise DslSyntaxError(f"expected string literal, got {token!r}")
        return _unescape(token)


def _require_var(var: str, matches: List[MatchAst]) -> None:
    if var not in {m.data_var for m in matches}:
        raise DslSyntaxError(f"unbound payload variable {var!r}")


def _require_fd_var(var: str, matches: List[MatchAst]) -> None:
    if var not in {m.fd_var for m in matches}:
        raise DslSyntaxError(f"unbound fd variable {var!r}")


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def _compile_expr(expr: ExprAst) -> Callable[[Dict[str, bytes]], bytes]:
    if expr.op == "literal":
        return lambda env, lit=expr.literal: lit
    if expr.op == "var":
        return lambda env, v=expr.var: env[v]
    if expr.op == "concat":
        return lambda env, a=expr.var, b=expr.other: env[a] + env[b]
    if expr.op == "replace_prefix":
        def prefix_expr(env, v=expr.var, o=expr.old, n=expr.new):
            data = env[v]
            if data.startswith(o):
                return n + data[len(o):]
            return data
        return prefix_expr
    if expr.op == "replace":
        return lambda env, v=expr.var, o=expr.old, n=expr.new: \
            env[v].replace(o, n)
    raise DslSyntaxError(f"unknown expression op {expr.op!r}")


def compile_rule(ast: RuleAst) -> RewriteRule:
    """Compile one parsed rule into an executable :class:`RewriteRule`."""
    pattern = []
    for item in ast.matches:
        conds = ast.conditions_for(item.data_var)
        if conds:
            def combined(data, conds=conds):
                return all(c.evaluate(data) for c in conds)
            pattern.append(SyscallPattern(item.syscall, predicate=combined))
        else:
            pattern.append(SyscallPattern(item.syscall))

    fd_of = {m.fd_var: index for index, m in enumerate(ast.matches)}
    var_of = {m.data_var: index for index, m in enumerate(ast.matches)}
    emits = tuple((e.syscall, e.fd_var, _compile_expr(e.expr))
                  for e in ast.emits)

    def action(matched: List[SyscallRecord],
               emits=emits) -> List[SyscallRecord]:
        env = {var: matched[index].data for var, index in var_of.items()}
        out = []
        for syscall, fd_var, expr in emits:
            source = matched[fd_of[fd_var]]
            data = expr(env)
            out.append(SyscallRecord(syscall, fd=source.fd, data=data,
                                     result=len(data)))
        return out

    return RewriteRule(ast.name, pattern, action, ast.direction, ast=ast)


def parse_rules_ast(text: str) -> List[RuleAst]:
    """Parse DSL ``text`` into inspectable :class:`RuleAst` objects."""
    return _Parser(_tokenize(text)).parse_rules()


def parse_rules(text: str) -> List[RewriteRule]:
    """Parse DSL ``text`` into :class:`RewriteRule` objects."""
    return [compile_rule(ast) for ast in parse_rules_ast(text)]

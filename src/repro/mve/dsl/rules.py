"""Rewrite rules: patterns over leader syscall sequences and the
transformations that yield the follower's expected sequence.

The engine consumes the leader's record stream lazily.  A rule matches a
*prefix* of the unconsumed stream; when it fires, its action replaces the
matched records with the follower-side expectation.  Records no rule
touches pass through unchanged — the common case, since most syscalls are
identical across versions.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import RuleError
from repro.syscalls.model import Sys, SyscallRecord

#: Wildcard fd in a pattern.
ANY_FD = -1


class Direction(enum.Enum):
    """Which MVE stage a rule applies to."""

    OUTDATED_LEADER = "outdated-leader"
    UPDATED_LEADER = "updated-leader"
    BOTH = "both"

    def active_in(self, stage: "Direction") -> bool:
        """True when a rule tagged with this direction fires in ``stage``."""
        if self is Direction.BOTH:
            return True
        return self is stage


@dataclass(frozen=True)
class SyscallPattern:
    """Matches one syscall record.

    ``predicate`` (if given) receives the record's payload bytes and must
    return True for the pattern to match — this is the ``parse($(s))``
    guard of the paper's DSL.
    """

    name: Sys
    fd: int = ANY_FD
    predicate: Optional[Callable[[bytes], bool]] = None

    def matches(self, record: SyscallRecord) -> bool:
        """Does ``record`` satisfy this pattern?"""
        if record.name is not self.name:
            return False
        if self.fd != ANY_FD and record.fd != self.fd:
            return False
        if self.predicate is not None and not self.predicate(record.data):
            return False
        return True


#: An action maps the matched leader records to the follower expectation.
Action = Callable[[List[SyscallRecord]], List[SyscallRecord]]


@dataclass
class RewriteRule:
    """One rewrite rule: a sequence pattern plus an action."""

    name: str
    pattern: Sequence[SyscallPattern]
    action: Action
    direction: Direction = Direction.OUTDATED_LEADER
    #: Source AST for rules built from the textual DSL (a
    #: :class:`repro.mve.dsl.parser.RuleAst`); None for rules built with
    #: the programmatic API.  mvelint uses it for structural checks.
    ast: Any = None
    #: Annotation naming the intentional cross-version difference this
    #: rule covers (e.g. "memcached-noreply").  Stamped into trace events
    #: when the rule fires; mvelint's MVE501 requires it on rules that
    #: drop records from the expected stream.
    trace_tag: Optional[str] = None
    #: True when the rule emits fewer records than it matches, i.e. it
    #: would silently swallow a would-be divergence.
    suppresses: bool = False

    def __post_init__(self) -> None:
        if not self.pattern:
            raise RuleError(f"rule {self.name!r} has an empty pattern")

    def matches_prefix(self, records: Sequence[SyscallRecord]) -> bool:
        """Full match against the first ``len(pattern)`` records."""
        if len(records) < len(self.pattern):
            return False
        return all(p.matches(r) for p, r in zip(self.pattern, records))

    def viable(self, records: Sequence[SyscallRecord]) -> bool:
        """Could this rule still match once more records arrive?

        True when every record seen so far matches the corresponding
        pattern position (the window may be shorter than the pattern).
        """
        return all(p.matches(r) for p, r in zip(self.pattern, records))

    def apply(self, records: Sequence[SyscallRecord]) -> List[SyscallRecord]:
        """Run the action over exactly the matched records."""
        matched = list(islice(records, len(self.pattern)))
        rewritten = self.action(matched)
        if rewritten is None:
            raise RuleError(f"rule {self.name!r} action returned None")
        return rewritten


def dispatch_key(pattern: SyscallPattern) -> Tuple[Sys, int]:
    """The dispatch-index bucket a first-position pattern lands in.

    The engine dispatches on the head record's ``(name, fd)`` only;
    predicates are evaluated *inside* the bucket.  mvelint imports this
    so its MVE107 hot-bucket check stays in sync with the engine.
    """
    return (pattern.name, pattern.fd)


class DispatchIndex:
    """Rules bucketed by their first pattern's ``(Sys, fd)``.

    A rule can only match — or be *viable* — when its first pattern
    matches the window's head record, and name/fd mismatches decide
    that without calling any predicate.  Bucketing rules by the first
    pattern's name (with pinned-fd sub-buckets) therefore preserves
    exact priority-order semantics while letting pass-through records —
    the common case per the paper — skip rule evaluation entirely.

    Immutable once built; shareable across engines (see
    :meth:`RuleSet.engine_for_stage`).
    """

    __slots__ = ("rules", "_exact", "_wild", "_cache")

    def __init__(self, rules: Iterable[RewriteRule]) -> None:
        self.rules: List[RewriteRule] = list(rules)
        #: (Sys, fd) -> [(priority, rule)] for pinned-fd first patterns.
        self._exact: Dict[Tuple[Sys, int], List[Tuple[int, RewriteRule]]] = {}
        #: Sys -> [(priority, rule)] for wildcard-fd first patterns.
        self._wild: Dict[Sys, List[Tuple[int, RewriteRule]]] = {}
        #: (Sys, fd) -> merged candidate tuple, filled on first lookup.
        self._cache: Dict[Tuple[Sys, int], Tuple[RewriteRule, ...]] = {}
        for priority, rule in enumerate(self.rules):
            first = rule.pattern[0]
            if first.fd == ANY_FD:
                self._wild.setdefault(first.name, []).append((priority, rule))
            else:
                self._exact.setdefault((first.name, first.fd), []) \
                    .append((priority, rule))

    def candidates(self, record: SyscallRecord) -> Tuple[RewriteRule, ...]:
        """Rules whose first pattern could match ``record``, in priority
        order.  Everything else provably neither fires nor stays viable."""
        key = (record.name, record.fd)
        cached = self._cache.get(key)
        if cached is None:
            wild = self._wild.get(record.name, [])
            exact = ([] if record.fd == ANY_FD
                     else self._exact.get(key, []))
            merged = sorted(exact + wild) if exact else wild
            cached = tuple(rule for _, rule in merged)
            self._cache[key] = cached
        return cached


@dataclass
class RuleSet:
    """The rules registered for one update pair, both directions."""

    rules: List[RewriteRule] = field(default_factory=list)
    #: stage -> (rule count at compute time, filtered rules).  Keyed on
    #: the count so direct ``rules`` appends also invalidate.
    _stage_cache: Dict[Direction, Tuple[int, List[RewriteRule]]] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    #: stage -> (rule count at compute time, shared dispatch index).
    _index_cache: Dict[Direction, Tuple[int, DispatchIndex]] = field(
        default_factory=dict, init=False, repr=False, compare=False)

    def add(self, rule: RewriteRule) -> "RuleSet":
        self.rules.append(rule)
        self._stage_cache.clear()
        self._index_cache.clear()
        return self

    def for_stage(self, stage: Direction) -> List[RewriteRule]:
        """Rules active in ``stage``, preserving priority order.

        Memoized; do not mutate the returned list.
        """
        cached = self._stage_cache.get(stage)
        if cached is not None and cached[0] == len(self.rules):
            return cached[1]
        result = [r for r in self.rules if r.direction.active_in(stage)]
        self._stage_cache[stage] = (len(self.rules), result)
        return result

    def engine_for_stage(self, stage: Direction) -> "RuleEngine":
        """A fresh engine for ``stage`` backed by a cached dispatch index.

        The index build is O(rules); replaying one iteration is not —
        so the runtime asks for a new engine per iteration and this
        method amortises the index across all of them.
        """
        cached = self._index_cache.get(stage)
        if cached is not None and cached[0] == len(self.rules):
            index = cached[1]
        else:
            index = DispatchIndex(self.for_stage(stage))
            self._index_cache[stage] = (len(self.rules), index)
        return RuleEngine(index)

    def count(self, stage: Direction = Direction.OUTDATED_LEADER) -> int:
        """Rule count for reporting (Table 1 counts outdated-leader rules)."""
        return len(self.for_stage(stage))

    def __len__(self) -> int:
        return len(self.rules)


class RuleEngine:
    """Lazily rewrites a leader record stream into follower expectations.

    Fed raw leader records via :meth:`offer`; emits transformed records
    via :meth:`next_expected` (or in bulk via :meth:`take_ready`).
    Maintains a window of records that might still complete a
    multi-record pattern.  Dispatch is indexed: only rules whose first
    pattern is compatible with the window's head record are consulted,
    so records no rule targets pass straight through.
    """

    def __init__(self,
                 rules: Union[DispatchIndex, Iterable[RewriteRule]]) -> None:
        if isinstance(rules, DispatchIndex):
            self._index = rules
        else:
            self._index = DispatchIndex(rules)
        self.rules = self._index.rules
        self._window: Deque[SyscallRecord] = deque()
        self._ready: Deque[SyscallRecord] = deque()
        self.fired: List[str] = []

    def offer(self, record: SyscallRecord) -> None:
        """Feed one raw leader record into the engine."""
        self._window.append(record)
        self._reduce(flush=False)

    def flush(self) -> None:
        """No more records are coming soon; give up on partial matches."""
        self._reduce(flush=True)

    def next_expected(self) -> Optional[SyscallRecord]:
        """Pop the next follower-expected record, if one is ready."""
        if self._ready:
            return self._ready.popleft()
        return None

    def has_ready(self) -> bool:
        """True when :meth:`next_expected` would return a record."""
        return bool(self._ready)

    def take_ready(self) -> List[SyscallRecord]:
        """Drain every ready record at once (the bulk-replay fast path)."""
        out = list(self._ready)
        self._ready.clear()
        return out

    def pending_window(self) -> int:
        """Records held back awaiting a possible multi-record match."""
        return len(self._window)

    def _reduce(self, flush: bool) -> None:
        window = self._window
        ready = self._ready
        candidates_for = self._index.candidates
        while window:
            candidates = candidates_for(window[0])
            if not candidates:
                # No rule targets this record: pass it through.
                ready.append(window.popleft())
                continue
            fired = False
            any_viable = False
            window_len = len(window)
            for rule in candidates:
                if rule.matches_prefix(window):
                    consumed = len(rule.pattern)
                    ready.extend(rule.apply(window))
                    for _ in range(consumed):
                        window.popleft()
                    self.fired.append(rule.name)
                    fired = True
                    break
                # With window >= pattern, viable() would just repeat the
                # failed matches_prefix(); only shorter windows can grow
                # into a match.
                if window_len < len(rule.pattern) and rule.viable(window):
                    any_viable = True
            if fired:
                continue
            if any_viable and not flush:
                # A longer pattern might still match; wait for more input.
                return
            # Nothing can use the head record: pass it through.
            ready.append(window.popleft())


# ---------------------------------------------------------------------------
# Rule constructors covering the paper's catalogue of divergences.
# ---------------------------------------------------------------------------


def redirect_read(name: str, trigger: Callable[[bytes], bool],
                  replacement: bytes,
                  direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """Serve the follower different input for a matching read.

    This is Figure 4's Rule 1 / Figure 5: a command the leader rejected is
    replaced by one the follower is guaranteed to reject the same way
    (``bad-cmd``), keeping both versions' states related.
    """
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        return [matched[0].with_data(replacement)]

    return RewriteRule(name, [SyscallPattern(Sys.READ, predicate=trigger)],
                       action, direction)


def rewrite_read(name: str, trigger: Callable[[bytes], bool],
                 rewriter: Callable[[bytes], bytes],
                 direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """Transform the payload the follower reads (Figure 4's Rules 2/3)."""
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        return [matched[0].with_data(rewriter(matched[0].data))]

    return RewriteRule(name, [SyscallPattern(Sys.READ, predicate=trigger)],
                       action, direction)


def rewrite_write(name: str, trigger: Callable[[bytes], bool],
                  rewriter: Callable[[bytes], bytes],
                  direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """Expect the follower to write different bytes than the leader did.

    Used when response text intentionally changed between versions (e.g.
    a reworded banner): the leader's write is mapped to the text the other
    version produces.
    """
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        return [matched[0].with_data(rewriter(matched[0].data))]

    return RewriteRule(name, [SyscallPattern(Sys.WRITE, predicate=trigger)],
                       action, direction)


def split_write(name: str, trigger: Callable[[bytes], bool],
                splitter: Callable[[bytes], List[bytes]],
                direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """One leader write becomes several follower writes.

    The paper's canonical benign divergence: "a single system call in the
    old version might be broken into multiple system calls in the new".
    """
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        record = matched[0]
        return [record.with_data(part) for part in splitter(record.data)]

    return RewriteRule(name, [SyscallPattern(Sys.WRITE, predicate=trigger)],
                       action, direction)


def merge_writes(name: str, first: Callable[[bytes], bool],
                 second: Callable[[bytes], bool],
                 direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """Two leader writes become one concatenated follower write."""
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        return [matched[0].with_data(matched[0].data + matched[1].data)]

    return RewriteRule(
        name,
        [SyscallPattern(Sys.WRITE, predicate=first),
         SyscallPattern(Sys.WRITE, predicate=second)],
        action, direction)


def suppress_reply(name: str, trigger: Callable[[bytes], bool],
                   direction: Direction = Direction.OUTDATED_LEADER,
                   trace_tag: Optional[str] = None) -> RewriteRule:
    """The follower issues *no* reply where the leader wrote one.

    For protocol extensions like Memcached's ``noreply``: the old leader
    answers every storage command, the new follower (which understands
    the suppression flag) stays silent — so the leader's write is simply
    dropped from the expected stream.
    """
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        return [matched[0]]  # keep the read, drop the reply write

    return RewriteRule(
        name,
        [SyscallPattern(Sys.READ, predicate=trigger),
         SyscallPattern(Sys.WRITE)],
        action, direction, trace_tag=trace_tag, suppresses=True)


def tolerate_extra_reply(name: str, trigger: Callable[[bytes], bool],
                         direction: Direction = Direction.UPDATED_LEADER,
                         trace_tag: Optional[str] = None) -> RewriteRule:
    """The follower writes a reply the leader suppressed.

    The reverse of :func:`suppress_reply`: the new leader (told
    ``noreply``) records only the read; the old follower will answer
    anyway, and its reply content is irrelevant to clients — so the rule
    appends a *wildcard* write that matches any write the follower
    issues.
    """
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        wildcard = SyscallRecord(Sys.WRITE, fd=matched[0].fd,
                                 aux={"wildcard": True})
        return [matched[0], wildcard]

    # The wildcard write accepts *any* follower reply content, so this
    # rule also masks would-be divergences and wants a trace_tag.
    return RewriteRule(name, [SyscallPattern(Sys.READ, predicate=trigger)],
                       action, direction, trace_tag=trace_tag,
                       suppresses=True)


def swap_adjacent(name: str, first: SyscallPattern, second: SyscallPattern,
                  direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """The follower issues two adjacent syscalls in the opposite order.

    Needed for Redis 2.0.0 -> 2.0.1, which "reverses the order of two
    system calls when handling client commands" (paper §5.2).
    """
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        return [matched[1], matched[0]]

    return RewriteRule(name, [first, second], action, direction)

"""Rewrite rules: patterns over leader syscall sequences and the
transformations that yield the follower's expected sequence.

The engine consumes the leader's record stream lazily.  A rule matches a
*prefix* of the unconsumed stream; when it fires, its action replaces the
matched records with the follower-side expectation.  Records no rule
touches pass through unchanged — the common case, since most syscalls are
identical across versions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.errors import RuleError
from repro.syscalls.model import Sys, SyscallRecord

#: Wildcard fd in a pattern.
ANY_FD = -1


class Direction(enum.Enum):
    """Which MVE stage a rule applies to."""

    OUTDATED_LEADER = "outdated-leader"
    UPDATED_LEADER = "updated-leader"
    BOTH = "both"

    def active_in(self, stage: "Direction") -> bool:
        """True when a rule tagged with this direction fires in ``stage``."""
        if self is Direction.BOTH:
            return True
        return self is stage


@dataclass(frozen=True)
class SyscallPattern:
    """Matches one syscall record.

    ``predicate`` (if given) receives the record's payload bytes and must
    return True for the pattern to match — this is the ``parse($(s))``
    guard of the paper's DSL.
    """

    name: Sys
    fd: int = ANY_FD
    predicate: Optional[Callable[[bytes], bool]] = None

    def matches(self, record: SyscallRecord) -> bool:
        """Does ``record`` satisfy this pattern?"""
        if record.name is not self.name:
            return False
        if self.fd != ANY_FD and record.fd != self.fd:
            return False
        if self.predicate is not None and not self.predicate(record.data):
            return False
        return True


#: An action maps the matched leader records to the follower expectation.
Action = Callable[[List[SyscallRecord]], List[SyscallRecord]]


@dataclass
class RewriteRule:
    """One rewrite rule: a sequence pattern plus an action."""

    name: str
    pattern: Sequence[SyscallPattern]
    action: Action
    direction: Direction = Direction.OUTDATED_LEADER
    #: Source AST for rules built from the textual DSL (a
    #: :class:`repro.mve.dsl.parser.RuleAst`); None for rules built with
    #: the programmatic API.  mvelint uses it for structural checks.
    ast: Any = None

    def __post_init__(self) -> None:
        if not self.pattern:
            raise RuleError(f"rule {self.name!r} has an empty pattern")

    def matches_prefix(self, records: Sequence[SyscallRecord]) -> bool:
        """Full match against the first ``len(pattern)`` records."""
        if len(records) < len(self.pattern):
            return False
        return all(p.matches(r) for p, r in zip(self.pattern, records))

    def viable(self, records: Sequence[SyscallRecord]) -> bool:
        """Could this rule still match once more records arrive?

        True when every record seen so far matches the corresponding
        pattern position (the window may be shorter than the pattern).
        """
        return all(p.matches(r) for p, r in zip(self.pattern, records))

    def apply(self, records: List[SyscallRecord]) -> List[SyscallRecord]:
        """Run the action over exactly the matched records."""
        matched = records[: len(self.pattern)]
        rewritten = self.action(matched)
        if rewritten is None:
            raise RuleError(f"rule {self.name!r} action returned None")
        return rewritten


@dataclass
class RuleSet:
    """The rules registered for one update pair, both directions."""

    rules: List[RewriteRule] = field(default_factory=list)

    def add(self, rule: RewriteRule) -> "RuleSet":
        self.rules.append(rule)
        return self

    def for_stage(self, stage: Direction) -> List[RewriteRule]:
        """Rules active in ``stage``, preserving priority order."""
        return [r for r in self.rules if r.direction.active_in(stage)]

    def count(self, stage: Direction = Direction.OUTDATED_LEADER) -> int:
        """Rule count for reporting (Table 1 counts outdated-leader rules)."""
        return len(self.for_stage(stage))

    def __len__(self) -> int:
        return len(self.rules)


class RuleEngine:
    """Lazily rewrites a leader record stream into follower expectations.

    Fed raw leader records via :meth:`offer`; emits transformed records
    via :meth:`next_expected`.  Maintains a window of records that might
    still complete a multi-record pattern.
    """

    def __init__(self, rules: Iterable[RewriteRule]) -> None:
        self.rules = list(rules)
        self._window: List[SyscallRecord] = []
        self._ready: List[SyscallRecord] = []
        self.fired: List[str] = []

    def offer(self, record: SyscallRecord) -> None:
        """Feed one raw leader record into the engine."""
        self._window.append(record)
        self._reduce(flush=False)

    def flush(self) -> None:
        """No more records are coming soon; give up on partial matches."""
        self._reduce(flush=True)

    def next_expected(self) -> Optional[SyscallRecord]:
        """Pop the next follower-expected record, if one is ready."""
        if self._ready:
            return self._ready.pop(0)
        return None

    def has_ready(self) -> bool:
        """True when :meth:`next_expected` would return a record."""
        return bool(self._ready)

    def pending_window(self) -> int:
        """Records held back awaiting a possible multi-record match."""
        return len(self._window)

    def _reduce(self, flush: bool) -> None:
        while self._window:
            fired = False
            any_viable = False
            for rule in self.rules:
                if rule.matches_prefix(self._window):
                    consumed = len(rule.pattern)
                    self._ready.extend(rule.apply(self._window))
                    del self._window[:consumed]
                    self.fired.append(rule.name)
                    fired = True
                    break
                if rule.viable(self._window):
                    any_viable = True
            if fired:
                continue
            if any_viable and not flush:
                # A longer pattern might still match; wait for more input.
                return
            # Nothing can use the head record: pass it through.
            self._ready.append(self._window.pop(0))


# ---------------------------------------------------------------------------
# Rule constructors covering the paper's catalogue of divergences.
# ---------------------------------------------------------------------------


def redirect_read(name: str, trigger: Callable[[bytes], bool],
                  replacement: bytes,
                  direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """Serve the follower different input for a matching read.

    This is Figure 4's Rule 1 / Figure 5: a command the leader rejected is
    replaced by one the follower is guaranteed to reject the same way
    (``bad-cmd``), keeping both versions' states related.
    """
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        return [matched[0].with_data(replacement)]

    return RewriteRule(name, [SyscallPattern(Sys.READ, predicate=trigger)],
                       action, direction)


def rewrite_read(name: str, trigger: Callable[[bytes], bool],
                 rewriter: Callable[[bytes], bytes],
                 direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """Transform the payload the follower reads (Figure 4's Rules 2/3)."""
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        return [matched[0].with_data(rewriter(matched[0].data))]

    return RewriteRule(name, [SyscallPattern(Sys.READ, predicate=trigger)],
                       action, direction)


def rewrite_write(name: str, trigger: Callable[[bytes], bool],
                  rewriter: Callable[[bytes], bytes],
                  direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """Expect the follower to write different bytes than the leader did.

    Used when response text intentionally changed between versions (e.g.
    a reworded banner): the leader's write is mapped to the text the other
    version produces.
    """
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        return [matched[0].with_data(rewriter(matched[0].data))]

    return RewriteRule(name, [SyscallPattern(Sys.WRITE, predicate=trigger)],
                       action, direction)


def split_write(name: str, trigger: Callable[[bytes], bool],
                splitter: Callable[[bytes], List[bytes]],
                direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """One leader write becomes several follower writes.

    The paper's canonical benign divergence: "a single system call in the
    old version might be broken into multiple system calls in the new".
    """
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        record = matched[0]
        return [record.with_data(part) for part in splitter(record.data)]

    return RewriteRule(name, [SyscallPattern(Sys.WRITE, predicate=trigger)],
                       action, direction)


def merge_writes(name: str, first: Callable[[bytes], bool],
                 second: Callable[[bytes], bool],
                 direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """Two leader writes become one concatenated follower write."""
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        return [matched[0].with_data(matched[0].data + matched[1].data)]

    return RewriteRule(
        name,
        [SyscallPattern(Sys.WRITE, predicate=first),
         SyscallPattern(Sys.WRITE, predicate=second)],
        action, direction)


def suppress_reply(name: str, trigger: Callable[[bytes], bool],
                   direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """The follower issues *no* reply where the leader wrote one.

    For protocol extensions like Memcached's ``noreply``: the old leader
    answers every storage command, the new follower (which understands
    the suppression flag) stays silent — so the leader's write is simply
    dropped from the expected stream.
    """
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        return [matched[0]]  # keep the read, drop the reply write

    return RewriteRule(
        name,
        [SyscallPattern(Sys.READ, predicate=trigger),
         SyscallPattern(Sys.WRITE)],
        action, direction)


def tolerate_extra_reply(name: str, trigger: Callable[[bytes], bool],
                         direction: Direction = Direction.UPDATED_LEADER
                         ) -> RewriteRule:
    """The follower writes a reply the leader suppressed.

    The reverse of :func:`suppress_reply`: the new leader (told
    ``noreply``) records only the read; the old follower will answer
    anyway, and its reply content is irrelevant to clients — so the rule
    appends a *wildcard* write that matches any write the follower
    issues.
    """
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        wildcard = SyscallRecord(Sys.WRITE, fd=matched[0].fd,
                                 aux={"wildcard": True})
        return [matched[0], wildcard]

    return RewriteRule(name, [SyscallPattern(Sys.READ, predicate=trigger)],
                       action, direction)


def swap_adjacent(name: str, first: SyscallPattern, second: SyscallPattern,
                  direction: Direction = Direction.OUTDATED_LEADER) -> RewriteRule:
    """The follower issues two adjacent syscalls in the opposite order.

    Needed for Redis 2.0.0 -> 2.0.1, which "reverses the order of two
    system calls when handling client commands" (paper §5.2).
    """
    def action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
        return [matched[1], matched[0]]

    return RewriteRule(name, [first, second], action, direction)

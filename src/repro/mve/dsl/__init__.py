"""The rewrite-rule DSL (paper §3.3, Figures 4 and 5).

Rules map the *leader's* recorded syscall sequence into the sequence the
*follower* is expected to issue, tolerating intentional cross-version
differences while still catching real divergences.  Two stages use two
rule directions:

* ``OUTDATED_LEADER`` — old version leads; rules force the new follower
  to adhere to old-version semantics (e.g. redirect a new command the old
  leader rejected to ``bad-cmd`` so the follower rejects it too).
* ``UPDATED_LEADER`` — new version leads after promotion; the reverse
  mapping.

Rules can be built programmatically (:mod:`repro.mve.dsl.rules`) or
parsed from the paper-style textual syntax (:mod:`repro.mve.dsl.parser`).
"""

from repro.mve.dsl.rules import (
    ANY_FD,
    Direction,
    DispatchIndex,
    RewriteRule,
    RuleEngine,
    RuleSet,
    SyscallPattern,
    dispatch_key,
    merge_writes,
    redirect_read,
    rewrite_read,
    rewrite_write,
    split_write,
    suppress_reply,
    swap_adjacent,
    tolerate_extra_reply,
)
from repro.mve.dsl.parser import (
    CondAst,
    EmitAst,
    ExprAst,
    MatchAst,
    RuleAst,
    compile_rule,
    parse_rules,
    parse_rules_ast,
)

__all__ = [
    "CondAst",
    "EmitAst",
    "ExprAst",
    "MatchAst",
    "RuleAst",
    "compile_rule",
    "parse_rules_ast",
    "ANY_FD",
    "Direction",
    "DispatchIndex",
    "RewriteRule",
    "RuleEngine",
    "RuleSet",
    "SyscallPattern",
    "dispatch_key",
    "merge_writes",
    "redirect_read",
    "rewrite_read",
    "rewrite_write",
    "split_write",
    "suppress_reply",
    "swap_adjacent",
    "tolerate_extra_reply",
    "parse_rules",
]

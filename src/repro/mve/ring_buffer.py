"""The shared ring buffer between leader and followers.

The leader appends one entry per intercepted syscall; followers consume in
FIFO order.  The buffer is bounded: when it fills, the leader *blocks*
until the follower frees a slot — the mechanism behind Figure 7, where a
2^10-entry buffer turns a background update into a multi-second service
pause while a 2^24-entry buffer masks it entirely.

Entries carry their produce timestamp so replay can respect causality
(a follower cannot consume an entry before it was produced).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Union

from repro.errors import SimulationError
from repro.mve.events import ControlEvent
from repro.syscalls.model import SyscallRecord

#: What one slot can hold.
Payload = Union[SyscallRecord, ControlEvent]


@dataclass(frozen=True)
class RingEntry:
    """One occupied slot."""

    payload: Payload
    produced_at: int
    sequence: int


class RingBuffer:
    """Bounded FIFO with producer back-pressure.

    ``push`` raises :class:`BufferFull` rather than blocking; the MVE
    runtime catches it, advances the follower far enough to free a slot,
    and retries — that dance is what converts a slow follower into leader
    latency.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(f"ring buffer capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._entries: Deque[RingEntry] = deque()
        self._produced = 0
        self._consumed = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def produced_total(self) -> int:
        """Entries pushed over the buffer's lifetime."""
        return self._produced

    @property
    def consumed_total(self) -> int:
        """Entries popped over the buffer's lifetime."""
        return self._consumed

    def is_full(self) -> bool:
        """True when a push would block the leader."""
        return len(self._entries) >= self.capacity

    def free_slots(self) -> int:
        """Slots a batch push could fill right now."""
        return self.capacity - len(self._entries)

    def is_empty(self) -> bool:
        """True when the follower has fully caught up."""
        return not self._entries

    def push(self, payload: Payload, produced_at: int) -> RingEntry:
        """Append an entry; raises :class:`BufferFull` when at capacity."""
        if self.is_full():
            raise BufferFull(self.capacity)
        entry = RingEntry(payload, produced_at, self._produced)
        self._entries.append(entry)
        self._produced += 1
        self.high_watermark = max(self.high_watermark, len(self._entries))
        return entry

    def push_many(self, payloads: Sequence[Payload],
                  produced_at: int) -> List[RingEntry]:
        """Append a batch atomically, all stamped with ``produced_at``.

        Raises :class:`BufferFull` — pushing *nothing* — when the batch
        does not fit; the caller chunks to :meth:`free_slots` and
        interleaves follower replay, exactly like single-entry
        back-pressure but one call per burst instead of per record.
        """
        if len(payloads) > self.capacity - len(self._entries):
            raise BufferFull(self.capacity)
        sequence = self._produced
        entries = [RingEntry(payload, produced_at, sequence + offset)
                   for offset, payload in enumerate(payloads)]
        self._entries.extend(entries)
        self._produced = sequence + len(entries)
        if len(self._entries) > self.high_watermark:
            self.high_watermark = len(self._entries)
        return entries

    def peek(self, index: int = 0) -> Optional[RingEntry]:
        """Look at the ``index``-th unconsumed entry without removing it."""
        if index < len(self._entries):
            return self._entries[index]
        return None

    def pop(self) -> RingEntry:
        """Consume the oldest entry."""
        if not self._entries:
            raise SimulationError("pop from empty ring buffer")
        self._consumed += 1
        return self._entries.popleft()

    def pop_many(self, count: int) -> List[RingEntry]:
        """Consume the ``count`` oldest entries in one call."""
        if count > len(self._entries):
            raise SimulationError(
                f"pop_many({count}) from ring buffer holding "
                f"{len(self._entries)} entries")
        self._consumed += count
        popleft = self._entries.popleft
        return [popleft() for _ in range(count)]

    def clear(self) -> None:
        """Drop all entries (used when a follower is terminated)."""
        self._consumed += len(self._entries)
        self._entries.clear()


class BufferFull(SimulationError):
    """Raised by ``push`` when the buffer is at capacity."""

    def __init__(self, capacity: int) -> None:
        super().__init__(f"ring buffer full ({capacity} entries)")
        self.capacity = capacity

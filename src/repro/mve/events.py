"""Control events carried on the ring buffer alongside syscalls.

The paper's promotion/demotion (t4 in Figure 2) works by the leader
"registering a special demotion/promotion event on the ring buffer, and
becoming a follower immediately".  These events flow through the same
FIFO as syscall records so the follower observes them at the right point
in the stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class ControlKind(enum.Enum):
    """Kinds of control events."""

    #: The leader demotes itself; the consuming follower becomes leader
    #: once it has drained everything before this event.
    PROMOTE = "promote"
    #: The MVE session is ending; the follower should terminate cleanly.
    TERMINATE = "terminate"


@dataclass(frozen=True)
class ControlEvent:
    """A non-syscall marker in the ring-buffer stream.

    ``at`` and ``version`` attribute the event to the virtual instant it
    was registered and the version that registered it, so log lines and
    traces can place a promotion precisely on the t1–t6 timeline.
    """

    kind: ControlKind
    #: Virtual time the event entered the ring stream (None: unknown).
    at: Optional[int] = None
    #: Version name of the process that registered the event.
    version: Optional[str] = None

    def describe(self) -> str:
        """Log-friendly form; carries time/version when known."""
        base = f"<control:{self.kind.value}"
        if self.at is not None:
            base += f" at={self.at}"
        if self.version is not None:
            base += f" by={self.version}"
        return base + ">"

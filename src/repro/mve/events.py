"""Control events carried on the ring buffer alongside syscalls.

The paper's promotion/demotion (t4 in Figure 2) works by the leader
"registering a special demotion/promotion event on the ring buffer, and
becoming a follower immediately".  These events flow through the same
FIFO as syscall records so the follower observes them at the right point
in the stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ControlKind(enum.Enum):
    """Kinds of control events."""

    #: The leader demotes itself; the consuming follower becomes leader
    #: once it has drained everything before this event.
    PROMOTE = "promote"
    #: The MVE session is ending; the follower should terminate cleanly.
    TERMINATE = "terminate"


@dataclass(frozen=True)
class ControlEvent:
    """A non-syscall marker in the ring-buffer stream."""

    kind: ControlKind

    def describe(self) -> str:
        """Log-friendly form."""
        return f"<control:{self.kind.value}>"

"""The MVE runtime (Varan analogue).

One :class:`VaranRuntime` supervises an MVE group: a leader executing
against the virtual kernel and (optionally) one follower replaying the
leader's syscall stream through the ring buffer and rewrite rules.

Responsibilities, matching the paper's description of Varan plus the
extensions Mvedsua made to it (§4):

* **single-leader mode** — syscall interception with kernel-state
  tracking but no recording; the steady-state of a Mvedsua deployment.
* **fork** — create a follower as a copy of the leader at quiescence.
* **leader serving** — execute iterations, register records on the ring
  buffer, and *block* when the buffer fills until the follower frees
  slots (the source of Figure 7's latency dynamics).
* **follower replay** — re-execute iterations against the expected
  stream (leader records after rewrite rules), detecting divergences.
* **promotion/demotion** — swap roles via a control event in the stream.
* **failure policy** — terminate the diverging or crashed process and
  continue with the survivor as sole leader (the paper's recovery story
  for both new-version and old-version errors).

Virtual-time accounting: the leader and follower own separate CPUs.
Leader iterations charge leader time (with the mode's overhead factors);
records are pushed at leader completion times; follower replay charges
follower time, starting no earlier than the records' produce times.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional, Tuple

from repro.errors import DivergenceError, ServerCrash, SimulationError
from repro.mve.dsl.rules import Direction, RuleSet
from repro.mve.events import ControlEvent, ControlKind
from repro.mve.gateway import GatewayRole, IterationTrace, SyscallGateway
from repro.mve.ring_buffer import BufferFull, RingBuffer
from repro.obs.forensics import ForensicsBundle, build_divergence_bundle
from repro.net.kernel import VirtualKernel
from repro.replay.recorder import current_recorder
from repro.net.sockets import Endpoint
from repro.sim.process import CpuAccount
from repro.syscalls.costs import AppProfile, ExecutionMode, FORK_PAUSE_NS
from repro.syscalls.model import DATA_BEARING, Sys, SyscallRecord

#: Bytes prepended by the "corrupt-record" chaos fault; distinctive so
#: forensics tests can assert the diverging pair carries the corruption.
CORRUPTION_MARKER = b"\xff<chaos-corrupt>"


def _corrupt_expected(expected: List[SyscallRecord],
                      param) -> List[SyscallRecord]:
    """Corrupt one data-bearing record in the follower's expected stream.

    Targets the first record with non-empty data (or the
    ``record_index``-th data-bearing record when the fault says so).
    The marker is *prepended*: a corrupted READ then frames into a
    corrupted request the replica answers differently right away, and a
    corrupted WRITE mismatches the replica's own output directly.
    (Appending after a request's CRLF would instead park the corruption
    in framing leftovers, where it could survive a promotion unseen —
    precisely the silent propagation the divergence check must prevent.)
    """
    target = int(param.get("record_index", 0))
    seen = 0
    corrupted = list(expected)
    for index, record in enumerate(corrupted):
        if record.name in DATA_BEARING and record.data:
            if seen == target:
                corrupted[index] = record.with_data(
                    CORRUPTION_MARKER + record.data)
                break
            seen += 1
    return corrupted


@dataclass
class IterationDescriptor:
    """Bookkeeping for one leader iteration awaiting follower replay."""

    n_records: int
    requests: int
    control: Optional[ControlEvent] = None


@dataclass
class RuntimeEvent:
    """One entry in the runtime's event log (consumed by tests/reports)."""

    at: int
    kind: str
    detail: str = ""


class ManagedProcess:
    """One version under MVE supervision: server + CPU + gateway."""

    def __init__(self, server: Any, gateway: SyscallGateway,
                 cpu: CpuAccount, label: str) -> None:
        self.server = server
        self.gateway = gateway
        self.cpu = cpu
        self.label = label
        self.crashed = False

    @property
    def version_name(self) -> str:
        return self.server.version.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ManagedProcess {self.label} {self.version_name}>"


class VaranRuntime:
    """Supervises one MVE group over one kernel domain."""

    def __init__(self, kernel: VirtualKernel, server: Any,
                 profile: AppProfile, *,
                 ring_capacity: int = 256,
                 with_kitsune: bool = True,
                 rules: Optional[RuleSet] = None,
                 ring: Optional[RingBuffer] = None) -> None:
        self.kernel = kernel
        self.profile = profile
        #: ``ring`` substitutes the buffer wholesale (a
        #: :class:`~repro.mve.distring.DistributedRing` for cross-node
        #: pairs); by default local pairs get the plain in-memory ring
        #: and every code path below stays exactly as before.
        self.ring = ring if ring is not None else RingBuffer(ring_capacity)
        #: True when the ring is link-backed (duck-typed on the wire
        #: API so this module never imports distring).
        self._ring_distributed = hasattr(self.ring, "next_free_at")
        self.rules = rules if rules is not None else RuleSet()
        self.with_kitsune = with_kitsune
        self.domain = server.domain
        gateway = SyscallGateway(kernel, self.domain, GatewayRole.DIRECT)
        server.bind_gateway(gateway)
        self.leader = ManagedProcess(server, gateway, CpuAccount("leader"),
                                     "leader")
        self.follower: Optional[ManagedProcess] = None
        #: Which stage's rules apply to follower replay.
        self.stage_direction = Direction.OUTDATED_LEADER
        #: True once the *new* version is the leader (post-promotion).
        self.leader_is_updated = False
        self._iterations: Deque[IterationDescriptor] = deque()
        self.events: List[RuntimeEvent] = []
        self.rules_fired: List[str] = []
        self.last_divergence: Optional[DivergenceError] = None
        #: Optional callback invoked with every RuntimeEvent as it is
        #: logged; the Mvedsua orchestrator subscribes to track stages.
        self.observer = None
        #: (completion_time, requests_handled) per leader iteration; the
        #: workload layer samples this for latency measurements.
        self.completions: List[Tuple[int, int]] = []
        #: Cumulative syscall records the leader emitted (perf telemetry).
        self.total_syscalls = 0
        #: Times a full ring blocked the leader (always counted — the
        #: perf harness reports it next to ``ring.high_watermark``).
        self.ring_stalls = 0
        #: The rule engine of the most recently replayed iteration,
        #: kept for divergence forensics (window state, fired rules).
        self._last_engine = None
        #: Forensics bundle for the most recent divergence, if any.
        self.last_forensics: Optional[ForensicsBundle] = None
        #: Stream recorder (see :mod:`repro.replay`): the active one if
        #: this runtime won the claim, else None — scenarios that build
        #: several MVE groups record only the first, and the disabled
        #: path stays one attribute load + ``is None`` per iteration.
        recorder = current_recorder()
        self.recorder = recorder if recorder is not None \
            and recorder.claim(self) else None

    @property
    def tracer(self):
        """The attached tracer, if any (lives on the shared kernel)."""
        return self.kernel.tracer

    @property
    def chaos(self):
        """The active chaos injector, if any (lives on the shared kernel)."""
        return self.kernel.chaos

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def in_mve_mode(self) -> bool:
        """True while a follower is attached (leader-follower mode)."""
        return self.follower is not None

    def leader_mode(self) -> ExecutionMode:
        """Cost-model mode for leader execution right now."""
        if self.in_mve_mode:
            return (ExecutionMode.MVEDSUA_LEADER if self.with_kitsune
                    else ExecutionMode.VARAN_LEADER)
        return (ExecutionMode.MVEDSUA_SINGLE if self.with_kitsune
                else ExecutionMode.VARAN_SINGLE)

    def log(self, at: int, kind: str, detail: str = "") -> None:
        """Append to the runtime event log (and notify any observer)."""
        event = RuntimeEvent(at, kind, detail)
        self.events.append(event)
        if self.observer is not None:
            self.observer(event)
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.emit(f"mve.{kind}", "mve", at=at, detail=detail)

    def event_kinds(self) -> List[str]:
        """Just the kinds, in order — convenient for assertions."""
        return [event.kind for event in self.events]

    def events_since(self, index: int) -> List[RuntimeEvent]:
        """Events appended after position ``index``.

        Orchestrators snapshot ``len(events)`` before a lifecycle step
        and read back exactly what the step produced — the fleet
        orchestrator uses this to attribute a demotion to its cause
        (divergence vs crash) without re-scanning the whole log.
        """
        return self.events[index:]

    # ------------------------------------------------------------------
    # Leader serving
    # ------------------------------------------------------------------

    def pump(self, now: int) -> int:
        """Run leader iterations until no input is ready.

        Returns the virtual time at which the leader finished.  Crashes
        and divergences are handled by the failure policy; after a crash
        the surviving process carries on within the same call.
        """
        chaos = self.kernel.chaos
        if chaos is not None:
            chaos.advance(now)
        t = max(now, self.leader.cpu.busy_until)
        while True:
            if self.leader.crashed:
                raise ServerCrash("leader crashed with no survivor")
            ready = self.kernel.epoll_wait(self.domain,
                                           self.leader.server.epoll_fd)
            if not ready:
                break
            t = self._run_leader_iteration(max(now, t))
        return t

    def _run_leader_iteration(self, start: int) -> int:
        leader = self.leader
        gateway = leader.gateway
        gateway.begin_iteration()
        crash: Optional[ServerCrash] = None
        chaos = self.kernel.chaos
        if chaos is not None and chaos.fire("mve.leader") is not None:
            # Injected leader kill: the process dies before consuming
            # any input, so a promoted survivor finds it still buffered.
            crash = ServerCrash("chaos: injected leader crash")
        if crash is None:
            try:
                leader.server.run_iteration(gateway)
            except ServerCrash as exc:
                crash = exc
        trace = gateway.trace
        self.total_syscalls += len(trace.records)
        cost = self.iteration_cost(trace, self.leader_mode())
        completion = leader.cpu.charge(start, cost)
        if crash is not None:
            self.log(completion, "leader-crash", str(crash))
            return self._handle_leader_crash(completion, trace)
        if self.in_mve_mode:
            completion = self._publish_iteration(trace, completion)
            leader.cpu.block_until(completion)
        recorder = self.recorder
        if recorder is not None:
            recorder.on_iteration(completion, leader.version_name,
                                  self.in_mve_mode, trace.records)
            tracer = self.kernel.tracer
            if tracer is not None:
                tracer.on_stream_record(completion, len(trace.records))
        self.completions.append((completion, trace.requests_handled))
        return completion

    def _publish_iteration(self, trace: IterationTrace, at: int) -> int:
        """Push an iteration's records onto the ring buffer.

        Batched: each burst pushes as many records as the ring has free
        slots, then (if records remain) replays one follower iteration
        to free space.  Virtual-time semantics match the per-record
        formulation exactly — a burst's records all carry the produce
        time the per-record loop would have stamped them with, and
        back-pressure still advances ``t`` to the replay completion.
        """
        t = at
        records = trace.records
        pushed, total = 0, len(records)
        tracer = self.kernel.tracer
        chaos = self.kernel.chaos
        while pushed < total:
            if self.follower is None:
                return t  # follower died while we were blocked
            if self._ring_distributed:
                self.ring.advance(t)
                if self._check_ring_partition(t):
                    return t
            free = self.ring.free_slots()
            if free > 0 and chaos is not None and self._iterations \
                    and chaos.fire("mve.ring") is not None:
                # Injected stall: pretend the ring is full so the leader
                # blocks on one follower replay (needs a queued
                # iteration to replay, hence the _iterations guard).
                free = 0
            if free == 0:
                self.ring_stalls += 1
                if tracer is not None:
                    tracer.on_ring_stall(t, self.ring.capacity)
                freed_at = self._replay_one()
                if freed_at is None and self._ring_distributed:
                    # Nothing left to replay: the stall is the in-flight
                    # window, freed when the earliest ack lands.
                    freed_at = self.ring.next_free_at()
                if freed_at is None:
                    raise SimulationError(
                        "ring buffer cannot hold one leader iteration "
                        f"(capacity {self.ring.capacity})")
                if tracer is not None and tracer.spans is not None:
                    tracer.spans.add("mve.ring-stall", "mve", t,
                                     max(t, freed_at),
                                     capacity=self.ring.capacity)
                t = max(t, freed_at)
                continue
            take = min(free, total - pushed)
            self.ring.push_many(records[pushed:pushed + take], t)
            pushed += take
            if tracer is not None:
                tracer.on_ring_publish(t, take, len(self.ring),
                                       self.ring.high_watermark)
        if self._ring_distributed and self._check_ring_partition(t):
            return t
        if self.follower is not None:
            self._iterations.append(IterationDescriptor(
                n_records=total,
                requests=trace.requests_handled))
        return t

    def _push_with_backpressure(self, payload, t: int) -> int:
        while True:
            if self.follower is None:
                return t
            if self._ring_distributed:
                self.ring.advance(t)
                if self._check_ring_partition(t):
                    return t
            try:
                self.ring.push(payload, t)
                return t
            except BufferFull:
                self.ring_stalls += 1
                tracer = self.kernel.tracer
                if tracer is not None:
                    tracer.on_ring_stall(t, self.ring.capacity)
                freed_at = self._replay_one()
                if freed_at is None and self._ring_distributed:
                    freed_at = self.ring.next_free_at()
                if freed_at is None:
                    raise SimulationError(
                        "ring buffer cannot hold one leader iteration "
                        f"(capacity {self.ring.capacity})")
                if tracer is not None and tracer.spans is not None:
                    tracer.spans.add("mve.ring-stall", "mve", t,
                                     max(t, freed_at),
                                     capacity=self.ring.capacity)
                t = max(t, freed_at)

    def _check_ring_partition(self, t: int) -> bool:
        """Demote the follower when a distributed ring's partition
        budget is exhausted; True when the demotion ran.  Only called
        on link-backed rings (``_ring_distributed``)."""
        ring = self.ring
        if not ring.partition_timed_out or self.follower is None:
            return False
        at = max(t, ring.partition_timed_out_at or t)
        self.log(at, "ring-partition",
                 f"cumulative partition delay {ring.partition_delay_ns}ns "
                 f"exceeded the link budget "
                 f"({ring.link.demote_timeout_ns}ns)")
        self._terminate_process(self.follower, at,
                                reason="ring-partition-timeout")
        return True

    def iteration_cost(self, trace: IterationTrace,
                       mode: ExecutionMode) -> int:
        """Virtual CPU cost of one iteration in ``mode``."""
        return self.profile.iteration_cost_ns(
            mode, n_requests=trace.requests_handled,
            n_syscalls=len(trace.records),
            n_bytes=trace.bytes_transferred)

    # ------------------------------------------------------------------
    # Fork and follower replay
    # ------------------------------------------------------------------

    def fork_follower(self, now: int, *,
                      server: Optional[Any] = None) -> ManagedProcess:
        """Fork the leader into a follower at quiescence.

        ``server`` overrides the forked copy (used by Mvedsua, which
        forks and then dynamically updates the child); by default the
        follower is an identical copy — plain Varan's N-version mode.

        The leader pays a copy-on-write fork pause.  Returns the new
        follower; the follower's CPU becomes available at fork time.
        """
        if self.follower is not None:
            raise SimulationError("an MVE follower is already attached")
        fork_done = self.leader.cpu.charge(now, FORK_PAUSE_NS)
        forked = server if server is not None else self.leader.server.fork()
        gateway = SyscallGateway(self.kernel, self.domain, GatewayRole.REPLAY)
        forked.bind_gateway(gateway)
        cpu = self.leader.cpu.fork("follower", at=fork_done)
        self.follower = ManagedProcess(forked, gateway, cpu, "follower")
        if self._ring_distributed:
            # A fresh follower rejoins the replicated stream from the
            # fork point: flush the wire and reset partition accounting.
            self.ring.resync(fork_done)
        self.log(fork_done, "fork", forked.version.name)
        recorder = self.recorder
        if recorder is not None:
            recorder.on_fork(fork_done, forked.version.name)
        return self.follower

    def drain_follower(self, *, max_iterations: Optional[int] = None) -> Optional[int]:
        """Replay queued iterations on the follower.

        Returns the follower's completion time of the last replayed
        iteration, or None when nothing was replayed.
        """
        last = None
        replayed = 0
        while self._iterations and self.follower is not None:
            if max_iterations is not None and replayed >= max_iterations:
                break
            last = self._replay_one()
            replayed += 1
        return last

    def _replay_one(self) -> Optional[int]:
        """Replay one queued iteration; returns its completion time."""
        if not self._iterations or self.follower is None:
            return None
        descriptor = self._iterations.popleft()
        if descriptor.control is not None:
            entry = self.ring.pop()
            swap_at = max(self.follower.cpu.busy_until, entry.produced_at)
            if descriptor.control.kind is ControlKind.PROMOTE:
                self._swap_roles(swap_at)
            return swap_at

        entries = self.ring.pop_many(descriptor.n_records)
        ready_at = max((entry.produced_at for entry in entries), default=0)
        expected = self._rewrite(entry.payload for entry in entries)

        fault = None
        chaos = self.kernel.chaos
        if chaos is not None:
            chaos.advance(ready_at)
            fault = chaos.fire("mve.follower")
        if fault is not None and fault.kind == "corrupt-record":
            expected = _corrupt_expected(expected, fault.param)

        follower = self.follower
        gateway = follower.gateway
        stream = iter(expected)
        gateway.expected_source = lambda: next(stream, None)
        gateway.begin_iteration()
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.advance(ready_at)
            tracer.on_ring_replay(ready_at, len(entries), len(self.ring),
                                  entries)
        try:
            if fault is not None and fault.kind == "crash":
                raise ServerCrash("chaos: injected follower crash")
            follower.server.run_iteration(gateway)
            gateway.finish_iteration()
        except DivergenceError as divergence:
            at = max(follower.cpu.busy_until, ready_at)
            divergence.annotate(at=at, version=follower.version_name)
            self.last_divergence = divergence
            self.last_forensics = self._capture_forensics(
                at, divergence, entries, expected, follower)
            if tracer is not None:
                tracer.on_divergence_check(at, False, len(entries),
                                           detail=str(divergence))
                tracer.on_forensics(self.last_forensics)
                if tracer.spans is not None:
                    tracer.spans.add("mve.divergence", "mve", at, at,
                                     version=follower.version_name)
            self.log(at, "divergence", str(divergence))
            self._terminate_process(follower, at, reason="divergence")
            return at
        except ServerCrash as crash:
            follower.crashed = True
            at = max(follower.cpu.busy_until, ready_at)
            self.log(at, "follower-crash", str(crash))
            self._terminate_process(follower, at, reason="crash")
            return at
        cost = self.iteration_cost(gateway.trace, ExecutionMode.FOLLOWER)
        start = max(follower.cpu.busy_until, ready_at)
        done = follower.cpu.charge(start, cost)
        if tracer is not None:
            tracer.on_divergence_check(done, True, len(entries))
        return done

    def _rewrite(self, payloads) -> List[SyscallRecord]:
        """Run one iteration's leader records through the stage rules."""
        engine = self.rules.engine_for_stage(self.stage_direction)
        n_in = 0
        for payload in payloads:
            engine.offer(payload)
            n_in += 1
        engine.flush()
        self.rules_fired.extend(engine.fired)
        self._last_engine = engine
        expected = engine.take_ready()
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.on_rules_applied(n_in, len(expected), engine.fired)
        return expected

    def _capture_forensics(self, at: int, divergence: DivergenceError,
                           entries, expected, follower) -> ForensicsBundle:
        """Bundle the monitor's state at a divergence (see
        :mod:`repro.obs.forensics`)."""
        tracer = self.kernel.tracer
        history = tracer.ring_history if tracer is not None else entries
        engine = self._last_engine
        return build_divergence_bundle(
            at=at,
            version=follower.version_name,
            leader_version=self.leader.version_name,
            error=divergence,
            ring_history=history,
            ring_pending=[self.ring.peek(i) for i in range(len(self.ring))],
            expected_records=expected,
            issued_records=follower.gateway.trace.records,
            rule_window=engine.pending_window() if engine is not None else 0,
            rules_fired=list(engine.fired) if engine is not None else [],
        )

    # ------------------------------------------------------------------
    # Promotion, termination, failure policy
    # ------------------------------------------------------------------

    def promote(self, now: int) -> int:
        """Swap leader and follower (the paper's t4 -> t5 transition).

        The leader registers a promotion event and stops serving; the
        follower drains the buffer, observes the event, and takes over.
        Returns t5, when the new leader resumes service.
        """
        if self.follower is None:
            raise SimulationError("no follower to promote")
        start = max(now, self.leader.cpu.busy_until)
        event = ControlEvent(ControlKind.PROMOTE, at=start,
                             version=self.leader.version_name)
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.on_control("promote", start, self.leader.version_name)
        self._push_with_backpressure(event, start)
        self._iterations.append(IterationDescriptor(
            n_records=1, requests=0, control=event))
        self.log(start, "demote-requested", event.describe())
        last = None
        while self._iterations and self.follower is not None:
            last = self._replay_one()
        done = last if last is not None else start
        if tracer is not None and tracer.spans is not None:
            tracer.spans.add("mve.promote", "mve", start, done,
                             version=self.leader.version_name)
        recorder = self.recorder
        if recorder is not None:
            # self.leader is the post-swap leader; if the follower died
            # mid-drain the swap never happened and leadership is
            # unchanged — new_leader reflects either outcome.
            recorder.on_control("promote", done, event.version,
                                self.leader.version_name)
        return done

    def _swap_roles(self, at: int) -> None:
        old_leader, new_leader = self.leader, self.follower
        assert new_leader is not None
        old_leader.gateway.role = GatewayRole.REPLAY
        old_leader.label = "follower"
        new_leader.gateway.role = GatewayRole.DIRECT
        new_leader.label = "leader"
        new_leader.cpu.block_until(at)
        self.leader, self.follower = new_leader, old_leader
        self.stage_direction = Direction.UPDATED_LEADER
        self.leader_is_updated = True
        self.log(at, "promoted", new_leader.version_name)

    def finalize(self, now: int) -> int:
        """Terminate the follower and return to single-leader mode (t6)."""
        if self.follower is None:
            raise SimulationError("no follower to finalize")
        self.drain_follower()
        if self.follower is not None:
            at = max(now, self.follower.cpu.busy_until)
            self._terminate_process(self.follower, at, reason="finalize")
            return at
        return now

    def terminate_follower(self, now: int, reason: str = "operator") -> int:
        """Explicitly drop the follower (operator-initiated rollback)."""
        if self.follower is None:
            raise SimulationError("no follower to terminate")
        at = max(now, self.follower.cpu.busy_until)
        self._terminate_process(self.follower, at, reason=reason)
        return at

    def _terminate_process(self, process: ManagedProcess, at: int,
                           reason: str) -> None:
        """Drop ``process`` from the group; survivor becomes sole leader."""
        if process is self.follower:
            self.follower = None
            self.ring.clear()
            self._iterations.clear()
            tracer = self.kernel.tracer
            if tracer is not None and tracer.spans is not None:
                tracer.spans.add("mve.demotion", "mve", at, at,
                                 reason=reason)
            self.log(at, "follower-terminated", reason)
        else:  # pragma: no cover - leader termination goes via crash path
            raise SimulationError("cannot terminate the leader directly")

    def _handle_leader_crash(self, at: int, trace: IterationTrace) -> int:
        """The paper's old-version-error recovery: promote the follower."""
        crashed_version = self.leader.version_name
        self.leader.crashed = True
        if self.follower is None or self.follower.crashed:
            raise ServerCrash("leader crashed with no healthy follower",
                              pid=self.domain)
        # Let the follower catch up on everything before the crash.
        self.drain_follower()
        if self.follower is None:
            raise ServerCrash("follower died during crash recovery",
                              pid=self.domain)
        survivor = self.follower
        at = max(at, survivor.cpu.busy_until)
        # Re-deliver the input the crashed leader had consumed so the
        # promoted process can serve it.
        self._redeliver_reads(trace)
        survivor.gateway.role = GatewayRole.DIRECT
        survivor.label = "leader"
        survivor.cpu.block_until(at)
        self.leader = survivor
        self.follower = None
        self.ring.clear()
        self._iterations.clear()
        self.leader_is_updated = True
        tracer = self.kernel.tracer
        if tracer is not None and tracer.spans is not None:
            tracer.spans.add("mve.crash-promote", "mve", at, at,
                             version=survivor.version_name)
        self.log(at, "follower-promoted-after-crash")
        recorder = self.recorder
        if recorder is not None:
            recorder.on_control("crash-promote", at, crashed_version,
                                survivor.version_name)
        return at

    def _redeliver_reads(self, trace: IterationTrace) -> None:
        for record in reversed(trace.records):
            if record.name is Sys.READ and record.fd >= 0 and record.data:
                if self.kernel.is_open(self.domain, record.fd):
                    domain_obj = self.kernel._domain(self.domain)
                    endpoint = domain_obj.lookup(record.fd)
                    if isinstance(endpoint, Endpoint):
                        endpoint.unread(record.data)

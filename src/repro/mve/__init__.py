"""Multi-Version Execution — the Varan analogue.

One process is the *leader*: it executes syscalls against the (virtual)
kernel and registers each on a shared ring buffer.  *Followers* replay the
buffer: their own syscalls are matched against the leader's (after
programmer-supplied rewrite rules) and they take results from the buffer
instead of the kernel.  A mismatch is a *divergence*.

Layout:

* :mod:`repro.mve.ring_buffer` — the bounded buffer with back-pressure.
* :mod:`repro.mve.events` — non-syscall control events (promotion).
* :mod:`repro.mve.dsl` — rewrite rules and the textual rule DSL.
* :mod:`repro.mve.gateway` — leader/follower syscall gateways.
* :mod:`repro.mve.divergence` — divergence detection and reporting.
* :mod:`repro.mve.varan` — the runtime: fork, replay, promote, rollback.
"""

from repro.mve.ring_buffer import RingBuffer, RingEntry
from repro.mve.events import ControlEvent, ControlKind
from repro.mve.varan import ManagedProcess, VaranRuntime
from repro.mve.nversion import NVersionRuntime

__all__ = [
    "RingBuffer",
    "RingEntry",
    "ControlEvent",
    "ControlKind",
    "ManagedProcess",
    "VaranRuntime",
    "NVersionRuntime",
]

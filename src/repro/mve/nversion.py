"""N-version execution: one leader, many followers.

Varan is an *N-version* execution framework: beyond Mvedsua's
leader + single-follower arrangement, it can shepherd several diversified
or differently-versioned replicas at once — "a bug that affects only some
of the processes is tolerated by the others which continue execution".

This runtime generalises the two-process :class:`~repro.mve.varan
.VaranRuntime`: each follower consumes the leader's record stream through
its own bounded queue (the shared ring buffer's slot is freed when the
*slowest* follower has consumed it, which is what bounds the leader).
A divergence or crash terminates only the offending follower; a leader
crash promotes the most caught-up healthy follower.

Mvedsua itself only ever needs two versions, so this module is an
extension of the substrate rather than part of the paper's evaluation;
the cost model reuses the calibrated leader/follower modes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional, Tuple

from repro.errors import DivergenceError, ServerCrash, SimulationError
from repro.mve.dsl.rules import Direction, RuleSet
from repro.mve.gateway import GatewayRole, SyscallGateway
from repro.mve.varan import ManagedProcess, RuntimeEvent
from repro.net.kernel import VirtualKernel
from repro.sim.process import CpuAccount
from repro.syscalls.costs import AppProfile, ExecutionMode, FORK_PAUSE_NS
from repro.syscalls.model import SyscallRecord


@dataclass
class _FollowerState:
    """One follower plus its private consumption queue."""

    process: ManagedProcess
    #: (records, produced_at, requests) per pending leader iteration.
    pending: Deque[Tuple[List[SyscallRecord], int, int]] = field(
        default_factory=deque)
    pending_records: int = 0
    rules: RuleSet = field(default_factory=RuleSet)
    alive: bool = True


class NVersionRuntime:
    """Leader + N followers over one kernel domain."""

    def __init__(self, kernel: VirtualKernel, server: Any,
                 profile: AppProfile, *,
                 queue_capacity: int = 4096) -> None:
        self.kernel = kernel
        self.profile = profile
        self.queue_capacity = queue_capacity
        self.domain = server.domain
        gateway = SyscallGateway(kernel, self.domain, GatewayRole.DIRECT)
        server.bind_gateway(gateway)
        self.leader = ManagedProcess(server, gateway, CpuAccount("leader"),
                                     "leader")
        self.followers: List[_FollowerState] = []
        self.events: List[RuntimeEvent] = []
        self.divergences: List[str] = []

    # ------------------------------------------------------------------

    def log(self, at: int, kind: str, detail: str = "") -> None:
        self.events.append(RuntimeEvent(at, kind, detail))

    def event_kinds(self) -> List[str]:
        return [event.kind for event in self.events]

    def alive_followers(self) -> List[_FollowerState]:
        return [f for f in self.followers if f.alive]

    @property
    def group_size(self) -> int:
        """Processes currently executing (leader + live followers)."""
        return 1 + len(self.alive_followers())

    def add_follower(self, now: int, *, server: Optional[Any] = None,
                     rules: Optional[RuleSet] = None) -> ManagedProcess:
        """Fork one more follower (identical copy unless given)."""
        fork_done = self.leader.cpu.charge(now, FORK_PAUSE_NS)
        forked = server if server is not None else self.leader.server.fork()
        gateway = SyscallGateway(self.kernel, self.domain,
                                 GatewayRole.REPLAY)
        forked.bind_gateway(gateway)
        label = f"follower-{len(self.followers)}"
        process = ManagedProcess(forked, gateway,
                                 self.leader.cpu.fork(label, at=fork_done),
                                 label)
        self.followers.append(_FollowerState(
            process=process, rules=rules or RuleSet()))
        self.log(fork_done, "fork", forked.version.name)
        return process

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def pump(self, now: int) -> int:
        """Run leader iterations until no input is ready."""
        t = max(now, self.leader.cpu.busy_until)
        while True:
            if self.leader.crashed:
                raise ServerCrash("leader crashed with no survivor")
            ready = self.kernel.epoll_wait(self.domain,
                                           self.leader.server.epoll_fd)
            if not ready:
                return t
            t = self._run_leader_iteration(t)

    def _run_leader_iteration(self, start: int) -> int:
        gateway = self.leader.gateway
        gateway.begin_iteration()
        crash: Optional[ServerCrash] = None
        try:
            self.leader.server.run_iteration(gateway)
        except ServerCrash as exc:
            crash = exc
        trace = gateway.trace
        mode = (ExecutionMode.VARAN_LEADER if self.alive_followers()
                else ExecutionMode.VARAN_SINGLE)
        completion = self.leader.cpu.charge(start,
                                            self._cost(trace, mode))
        if crash is not None:
            self.log(completion, "leader-crash", str(crash))
            return self._promote_survivor(completion, trace)
        completion = self._broadcast(trace, completion)
        self.leader.cpu.block_until(completion)
        return completion

    def _cost(self, trace, mode: ExecutionMode) -> int:
        return self.profile.iteration_cost_ns(
            mode, n_requests=trace.requests_handled,
            n_syscalls=len(trace.records),
            n_bytes=trace.bytes_transferred)

    def _broadcast(self, trace, at: int) -> int:
        """Hand the iteration to every live follower's queue.

        The leader blocks until the slowest follower frees enough queue
        space — the N-version generalisation of ring back-pressure.
        """
        t = at
        # The gateway's trace list is abandoned at begin_iteration(), so
        # sharing it across follower queues is safe — no defensive copy.
        records = trace.records
        for follower in self.alive_followers():
            while (follower.pending_records + len(records)
                   > self.queue_capacity):
                freed_at = self._replay_one(follower)
                if freed_at is None:
                    raise SimulationError(
                        "follower queue cannot hold one iteration")
                t = max(t, freed_at)
            follower.pending.append((records, t, trace.requests_handled))
            follower.pending_records += len(records)
        return t

    # ------------------------------------------------------------------
    # Follower replay
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Let every live follower fully catch up."""
        for follower in self.alive_followers():
            while follower.pending and follower.alive:
                self._replay_one(follower)

    def _replay_one(self, follower: _FollowerState) -> Optional[int]:
        if not follower.pending:
            return None
        records, produced_at, requests = follower.pending.popleft()
        follower.pending_records -= len(records)
        expected = self._rewrite(follower, records)
        process = follower.process
        gateway = process.gateway
        stream = iter(expected)
        gateway.expected_source = lambda: next(stream, None)
        gateway.begin_iteration()
        try:
            process.server.run_iteration(gateway)
            gateway.finish_iteration()
        except DivergenceError as divergence:
            at = max(process.cpu.busy_until, produced_at)
            self.divergences.append(str(divergence))
            self.log(at, "divergence", f"{process.label}: {divergence}")
            self._terminate(follower, at)
            return at
        except ServerCrash as crash:
            process.crashed = True
            at = max(process.cpu.busy_until, produced_at)
            self.log(at, "follower-crash", f"{process.label}: {crash}")
            self._terminate(follower, at)
            return at
        cost = self._cost(gateway.trace, ExecutionMode.FOLLOWER)
        start = max(process.cpu.busy_until, produced_at)
        return process.cpu.charge(start, cost)

    def _rewrite(self, follower: _FollowerState,
                 records: List[SyscallRecord]) -> List[SyscallRecord]:
        engine = follower.rules.engine_for_stage(Direction.OUTDATED_LEADER)
        for record in records:
            engine.offer(record)
        engine.flush()
        return engine.take_ready()

    def _terminate(self, follower: _FollowerState, at: int) -> None:
        follower.alive = False
        follower.pending.clear()
        follower.pending_records = 0
        self.log(at, "follower-terminated", follower.process.label)

    # ------------------------------------------------------------------
    # Leader fail-over
    # ------------------------------------------------------------------

    def _promote_survivor(self, at: int, trace) -> int:
        self.leader.crashed = True
        candidates = self.alive_followers()
        if not candidates:
            raise ServerCrash("leader crashed with no healthy follower",
                              pid=self.domain)
        # Drain everyone, then promote the first healthy survivor.
        self.drain()
        candidates = self.alive_followers()
        if not candidates:
            raise ServerCrash("all followers died during fail-over",
                              pid=self.domain)
        survivor = candidates[0]
        survivor.alive = False  # leaves the follower pool
        self.followers.remove(survivor)
        process = survivor.process
        at = max(at, process.cpu.busy_until)
        self._redeliver_reads(trace)
        process.gateway.role = GatewayRole.DIRECT
        process.label = "leader"
        process.cpu.block_until(at)
        self.leader = process
        self.log(at, "follower-promoted-after-crash", process.version_name)
        return at

    def _redeliver_reads(self, trace) -> None:
        from repro.net.sockets import Endpoint
        from repro.syscalls.model import Sys
        for record in reversed(trace.records):
            if record.name is Sys.READ and record.fd >= 0 and record.data:
                if self.kernel.is_open(self.domain, record.fd):
                    endpoint = self.kernel._domain(
                        self.domain).lookup(record.fd)
                    if isinstance(endpoint, Endpoint):
                        endpoint.unread(record.data)

"""Divergence detection.

A follower diverges when the syscall it is about to issue does not match
the next expected record (the leader's record stream after rewrite
rules), when it issues more syscalls than expected, or when it issues
fewer.  Divergences carry both sides so operators (and tests) can see
exactly what disagreed — mirroring Varan's divergence reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import DivergenceError
from repro.syscalls.model import SyscallRecord


@dataclass
class DivergenceReport:
    """What the MVE monitor saw when leader and follower disagreed."""

    reason: str
    expected: Optional[SyscallRecord]
    actual: Optional[SyscallRecord]

    def describe(self) -> str:
        expected = self.expected.describe() if self.expected else "<nothing>"
        actual = self.actual.describe() if self.actual else "<nothing>"
        return (f"divergence ({self.reason}): leader expected {expected}, "
                f"follower issued {actual}")


def check_match(expected: Optional[SyscallRecord],
                actual: SyscallRecord) -> None:
    """Raise :class:`DivergenceError` unless ``actual`` matches ``expected``."""
    if expected is None:
        report = DivergenceReport("follower issued extra syscall", None, actual)
        raise DivergenceError(report.describe(), expected=None, actual=actual)
    if expected.aux.get("wildcard"):
        # A rewrite rule declared this position "any syscall of this
        # kind is fine" (e.g. the reply an older version writes where a
        # newer one, told 'noreply', stays silent).
        if expected.name is actual.name:
            return
    if not expected.matches(actual):
        report = DivergenceReport("syscall mismatch", expected, actual)
        raise DivergenceError(report.describe(), expected=expected, actual=actual)


def check_drained(leftover: List[SyscallRecord]) -> None:
    """Raise when the follower finished while expected records remain."""
    if leftover:
        report = DivergenceReport("follower issued fewer syscalls",
                                  leftover[0], None)
        raise DivergenceError(report.describe(), expected=leftover[0], actual=None)

"""Syscall gateways: where server code meets the MVE monitor.

Servers never call the virtual kernel directly; every syscall goes through
a :class:`SyscallGateway`, whose *role* determines what happens:

* ``DIRECT`` — execute against the kernel and trace (native execution, and
  Varan's single-leader mode, which intercepts but does not record).
* ``RECORDING`` — execute against the kernel, trace, and the runtime
  pushes the trace onto the ring buffer (MVE leader).
* ``REPLAY`` — never touch the kernel: serve results from the expected
  record stream and flag any mismatch as a divergence (MVE follower).

The gateway also accumulates the per-iteration syscall trace used for both
ring-buffer contents and virtual-time cost accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import BrokenPipe, ConnectionReset, FdExhausted
from repro.mve.divergence import check_drained, check_match
from repro.net.kernel import VirtualKernel
from repro.syscalls.model import Sys, SyscallRecord

#: Kernel errors that record as error-bearing syscall records
#: (``aux={"error": name}``): when the leader's syscall fails this way
#: the follower must fail identically during replay, so both versions
#: drop the session at the same point and stay convergent.
_ERRNO_CLASSES = {"ECONNRESET": ConnectionReset, "EPIPE": BrokenPipe,
                  "EMFILE": FdExhausted}
_ERRNO_NAMES = {cls: name for name, cls in _ERRNO_CLASSES.items()}


class GatewayRole(enum.Enum):
    """How syscalls are executed."""

    DIRECT = "direct"
    RECORDING = "recording"
    REPLAY = "replay"


@dataclass
class IterationTrace:
    """Everything one event-loop iteration did, for accounting."""

    records: List[SyscallRecord] = field(default_factory=list)
    requests_handled: int = 0
    bytes_transferred: int = 0

    def syscall_count(self) -> int:
        return len(self.records)


class SyscallGateway:
    """One process's syscall interface, in one of the three roles."""

    def __init__(self, kernel: VirtualKernel, domain: int,
                 role: GatewayRole = GatewayRole.DIRECT) -> None:
        self.kernel = kernel
        self.domain = domain
        self.role = role
        self.trace = IterationTrace()
        #: REPLAY role: yields the next expected record, or None when the
        #: per-iteration expected stream is exhausted.
        self.expected_source: Optional[Callable[[], Optional[SyscallRecord]]] = None
        self._peeked: Optional[SyscallRecord] = None

    # -- iteration bookkeeping ------------------------------------------------

    def begin_iteration(self) -> None:
        """Reset the trace for a new event-loop iteration."""
        self.trace = IterationTrace()

    def note_request(self, count: int = 1) -> None:
        """Server code reports a fully parsed client request."""
        self.trace.requests_handled += count

    def finish_iteration(self) -> IterationTrace:
        """Close out the iteration; REPLAY role verifies full drain."""
        if self.role is GatewayRole.REPLAY:
            leftover = []
            record = self._peek_expected()
            if record is not None:
                leftover.append(record)
            check_drained(leftover)
        return self.trace

    # -- replay plumbing --------------------------------------------------------

    def _peek_expected(self) -> Optional[SyscallRecord]:
        if self._peeked is None and self.expected_source is not None:
            self._peeked = self.expected_source()
        return self._peeked

    def _take_expected(self) -> Optional[SyscallRecord]:
        record = self._peek_expected()
        self._peeked = None
        return record

    def _replay(self, actual: SyscallRecord) -> SyscallRecord:
        """Match ``actual`` against the stream; returns the expected record."""
        expected = self._take_expected()
        check_match(expected, actual)
        return expected

    def _emit(self, record: SyscallRecord) -> SyscallRecord:
        self.trace.records.append(record)
        if record.name in (Sys.READ, Sys.WRITE):
            self.trace.bytes_transferred += len(record.data)
        # Observability: read the tracer off the kernel each time so a
        # tracer attached after construction is still seen; the disabled
        # path is one attribute load and an ``is None`` test.
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.on_syscall(self.role.value, record)
        return record

    # -- sockets ------------------------------------------------------------------

    def epoll_wait(self, epfd: int) -> List[int]:
        """Ready fds; followers receive the leader's recorded ready set."""
        if self.role is GatewayRole.REPLAY:
            actual = SyscallRecord(Sys.EPOLL_WAIT, fd=epfd)
            expected = self._replay(actual)
            self._emit(expected)
            return list(expected.result)
        ready = self.kernel.epoll_wait(self.domain, epfd)
        self._emit(SyscallRecord(Sys.EPOLL_WAIT, fd=epfd, result=tuple(ready)))
        return ready

    def epoll_ctl(self, epfd: int, fd: int, *, add: bool) -> None:
        """Kernel-state tracking only; Varan does not log epoll_ctl."""
        if self.role is GatewayRole.REPLAY:
            return
        self.kernel.epoll_ctl(self.domain, epfd, fd, add=add)

    def connect(self, address) -> int:
        """Open an outbound connection (FTP active mode, replication).

        Recorded so followers learn the fd; only the leader actually
        dials the peer.
        """
        payload = f"{address[0]}:{address[1]}".encode()
        if self.role is GatewayRole.REPLAY:
            actual = SyscallRecord(Sys.CONNECT, data=payload)
            expected = self._replay(actual)
            self._emit(expected)
            return int(expected.result)
        fd = self.kernel.connect(self.domain, tuple(address))
        self._emit(SyscallRecord(Sys.CONNECT, data=payload, result=fd))
        return fd

    def listen(self, address) -> int:
        """socket+bind+listen (one recorded syscall, e.g. FTP PASV ports).

        Followers learn the fd from the record; the port number must be
        deterministic server state so both versions' replies agree.
        """
        payload = f"{address[0]}:{address[1]}".encode()
        if self.role is GatewayRole.REPLAY:
            actual = SyscallRecord(Sys.LISTEN, data=payload)
            expected = self._replay(actual)
            self._emit(expected)
            return int(expected.result)
        fd = self.kernel.listen(self.domain, tuple(address))
        self._emit(SyscallRecord(Sys.LISTEN, data=payload, result=fd))
        return fd

    def accept(self, listen_fd: int) -> int:
        """Accept a connection; followers learn the fd from the record."""
        if self.role is GatewayRole.REPLAY:
            actual = SyscallRecord(Sys.ACCEPT, fd=listen_fd)
            expected = self._replay(actual)
            self._emit(expected)
            error = expected.aux.get("error")
            if error:
                raise _ERRNO_CLASSES[error](
                    f"replayed {error} on accept fd {listen_fd}")
            return int(expected.result)
        try:
            fd = self.kernel.accept(self.domain, listen_fd)
        except FdExhausted:
            self._emit(SyscallRecord(Sys.ACCEPT, fd=listen_fd,
                                     aux={"error": "EMFILE"}))
            raise
        self._emit(SyscallRecord(Sys.ACCEPT, fd=listen_fd, result=fd))
        return fd

    def read(self, fd: int, max_bytes: Optional[int] = None) -> bytes:
        """Read from a stream; followers get the leader's bytes (possibly
        rewritten by rules)."""
        if self.role is GatewayRole.REPLAY:
            actual = SyscallRecord(Sys.READ, fd=fd)
            expected = self._take_expected()
            # Reads match on (name, fd) only: the *data* is an input the
            # leader received, served to the follower as-is.
            if expected is None or expected.name is not Sys.READ \
                    or expected.fd != fd:
                check_match(expected, actual)
            self._emit(expected)
            error = expected.aux.get("error")
            if error:
                raise _ERRNO_CLASSES[error](
                    f"replayed {error} on read fd {fd}")
            return expected.data
        try:
            data = self.kernel.read(self.domain, fd, max_bytes)
        except ConnectionReset:
            self._emit(SyscallRecord(Sys.READ, fd=fd,
                                     aux={"error": "ECONNRESET"}))
            raise
        self._emit(SyscallRecord(Sys.READ, fd=fd, data=data, result=len(data)))
        return data

    def write(self, fd: int, data: bytes) -> int:
        """Write to a stream; follower writes are compared, not executed.

        Short kernel writes are retried until the payload drains (each
        accepted prefix is its own record); EPIPE/ECONNRESET records as
        an error-bearing record before propagating, so followers fail at
        the same point during replay.
        """
        if self.role is GatewayRole.REPLAY:
            return self._replay_write(fd, data)
        total = len(data)
        remaining = data
        while True:
            try:
                written = self.kernel.write(self.domain, fd, remaining)
            except (BrokenPipe, ConnectionReset) as exc:
                self._emit(SyscallRecord(
                    Sys.WRITE, fd=fd, data=remaining, result=len(remaining),
                    aux={"error": _ERRNO_NAMES[type(exc)]}))
                raise
            self._emit(SyscallRecord(Sys.WRITE, fd=fd,
                                     data=remaining[:written],
                                     result=written))
            remaining = remaining[written:]
            if not remaining:
                return total

    def _replay_write(self, fd: int, data: bytes) -> int:
        """Match a follower write against possibly-chunked leader records."""
        total = len(data)
        remaining = data
        while True:
            actual = SyscallRecord(Sys.WRITE, fd=fd, data=remaining,
                                   result=len(remaining))
            expected = self._take_expected()
            if expected is not None and expected.name is Sys.WRITE \
                    and expected.fd == fd:
                error = expected.aux.get("error")
                if error:
                    self._emit(expected)
                    raise _ERRNO_CLASSES[error](
                        f"replayed {error} on write fd {fd}")
                if expected.data and remaining != expected.data \
                        and remaining.startswith(expected.data):
                    # Possibly a truncated leader write (short-write
                    # fault).  Only treat it as a chunk when the stream
                    # continues with another write on the same fd —
                    # a genuine prefix *divergence* must still trip
                    # check_match below.
                    nxt = self._peek_expected()
                    if nxt is not None and nxt.name is Sys.WRITE \
                            and nxt.fd == fd:
                        self._emit(expected)
                        remaining = remaining[len(expected.data):]
                        continue
            check_match(expected, actual)
            self._emit(actual)
            return total

    def close(self, fd: int) -> None:
        """Close an fd; recorded so both versions agree on session ends."""
        actual = SyscallRecord(Sys.CLOSE, fd=fd)
        if self.role is GatewayRole.REPLAY:
            self._replay(actual)
            self._emit(actual)
            return
        self.kernel.close(self.domain, fd)
        self._emit(actual)

    # -- filesystem ------------------------------------------------------------

    def fs_read(self, path: str) -> bytes:
        """Open+read a whole file (one OPEN record, one READ record)."""
        path_bytes = path.encode()
        if self.role is GatewayRole.REPLAY:
            self._emit(self._replay(SyscallRecord(Sys.OPEN, data=path_bytes)))
            expected = self._take_expected()
            actual = SyscallRecord(Sys.READ, fd=-2)
            if expected is None or expected.name is not Sys.READ:
                check_match(expected, actual)
            self._emit(expected)
            return expected.data
        data = self.kernel.fs.read_file(path)
        self._emit(SyscallRecord(Sys.OPEN, data=path_bytes, result=0))
        self._emit(SyscallRecord(Sys.READ, fd=-2, data=data, result=len(data)))
        return data

    def fs_write(self, path: str, data: bytes) -> None:
        """Create/overwrite a file (one OPEN record, one WRITE record)."""
        path_bytes = path.encode()
        if self.role is GatewayRole.REPLAY:
            self._emit(self._replay(SyscallRecord(Sys.OPEN, data=path_bytes)))
            self._emit(self._replay(
                SyscallRecord(Sys.WRITE, fd=-2, data=data, result=len(data))))
            return
        self.kernel.fs.write_file(path, data)
        self._emit(SyscallRecord(Sys.OPEN, data=path_bytes, result=0))
        self._emit(SyscallRecord(Sys.WRITE, fd=-2, data=data, result=len(data)))

    def fs_append(self, path: str, data: bytes) -> None:
        """Append to a file (one WRITE record on the append-log fd).

        Used for Redis's append-only file: a single recorded write, which
        is what the 2.0.0 -> 2.0.1 syscall-order rule reorders against
        the client-reply write.
        """
        actual = SyscallRecord(Sys.WRITE, fd=-3, data=data, result=len(data))
        if self.role is GatewayRole.REPLAY:
            self._replay(actual)
            self._emit(actual)
            return
        self.kernel.fs.append_file(path, data)
        self._emit(actual)

    def fs_unlink(self, path: str) -> None:
        """Delete a file."""
        actual = SyscallRecord(Sys.UNLINK, data=path.encode(), result=0)
        if self.role is GatewayRole.REPLAY:
            self._replay(actual)
            self._emit(actual)
            return
        self.kernel.fs.unlink(path)
        self._emit(actual)

    def fs_rename(self, src: str, dst: str) -> None:
        """Atomically rename a file."""
        payload = f"{src}\x00{dst}".encode()
        actual = SyscallRecord(Sys.RENAME, data=payload, result=0)
        if self.role is GatewayRole.REPLAY:
            self._replay(actual)
            self._emit(actual)
            return
        self.kernel.fs.rename(src, dst)
        self._emit(actual)

    def fs_stat(self, path: str) -> Optional[int]:
        """File size, or None when absent (shared namespace, untraced in
        followers via replay of the leader's answer)."""
        actual = SyscallRecord(Sys.STAT, data=path.encode())
        if self.role is GatewayRole.REPLAY:
            expected = self._take_expected()
            if expected is None or expected.name is not Sys.STAT:
                check_match(expected, actual)
            self._emit(expected)
            return expected.result
        result = (self.kernel.fs.size(path)
                  if self.kernel.fs.exists(path) else None)
        self._emit(SyscallRecord(Sys.STAT, data=path.encode(), result=result))
        return result

    def fs_mkdir(self, path: str) -> None:
        """Create a directory."""
        actual = SyscallRecord(Sys.MKDIR, data=path.encode(), result=0)
        if self.role is GatewayRole.REPLAY:
            self._replay(actual)
            self._emit(actual)
            return
        self.kernel.fs.mkdir(path)
        self._emit(actual)

    def fs_rmdir(self, path: str) -> None:
        """Remove an (empty) directory."""
        actual = SyscallRecord(Sys.RMDIR, data=path.encode(), result=0)
        if self.role is GatewayRole.REPLAY:
            self._replay(actual)
            self._emit(actual)
            return
        self.kernel.fs.rmdir(path)
        self._emit(actual)

    def fs_is_dir(self, path: str) -> bool:
        """Directory check, replayed to followers like stat."""
        actual = SyscallRecord(Sys.STAT, data=("d:" + path).encode())
        if self.role is GatewayRole.REPLAY:
            expected = self._take_expected()
            if expected is None or expected.name is not Sys.STAT:
                check_match(expected, actual)
            self._emit(expected)
            return bool(expected.result)
        result = self.kernel.fs.is_dir(path)
        self._emit(SyscallRecord(Sys.STAT, data=("d:" + path).encode(),
                                 result=result))
        return result

    def fs_listdir(self, path: str) -> List[str]:
        """Directory listing, replayed to followers like stat."""
        actual = SyscallRecord(Sys.STAT, data=(path + "/").encode())
        if self.role is GatewayRole.REPLAY:
            expected = self._take_expected()
            if expected is None or expected.name is not Sys.STAT:
                check_match(expected, actual)
            self._emit(expected)
            return list(expected.result)
        entries = self.kernel.fs.listdir(path)
        self._emit(SyscallRecord(Sys.STAT, data=(path + "/").encode(),
                                 result=tuple(entries)))
        return entries

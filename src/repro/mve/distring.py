"""A replicated ring buffer across fleet nodes (dMVX-style).

:class:`DistributedRing` keeps the :class:`~repro.mve.ring_buffer.RingBuffer`
contract — the Varan runtime drives it through the exact same
``free_slots`` / ``push_many`` / ``pop_many`` dance — but every published
burst actually crosses a :class:`~repro.net.ring_wire.RingLink`: the
burst is coalesced into one ``repro-ring/1`` frame, encoded, charged
propagation + serialisation time, decoded on the far side, and only
then lands in the follower's buffer.  Entries are stamped with their
*delivery* time, so the existing causality rule in follower replay
("start no earlier than the records' produce times") automatically
becomes "start no earlier than the frame arrived".

Back-pressure has two sources instead of one:

* **receiver capacity** — the inherited bounded buffer, unchanged;
* **the in-flight window** — at most :attr:`RingLink.window`
  unacknowledged frames on the wire.  While the window is full,
  :meth:`free_slots` reports zero and the leader blocks through the
  existing ring-stall accounting; :meth:`advance` retires acks as
  virtual time passes and :meth:`next_free_at` tells the runtime when
  the earliest ack lands.

Partitions are injected at the chaos site ``fleet.ring`` (kinds
``partition-drop`` / ``partition-delay`` / ``partition-reorder``).  A
fault delays the current frame — a drop costs one retransmit, a
reorder parks the frame in the receiver's reassembly buffer until the
monotone delivery clamp releases it — and the delay accrues against
:attr:`RingLink.demote_timeout_ns`.  Crossing the budget sets
:attr:`partition_timed_out`; the runtime demotes the follower
("ring-partition-timeout") and a later fork rejoins via
:meth:`resync`, which resets the partition accounting and counts a
``ring.resync``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.mve.ring_buffer import (BufferFull, Payload, RingBuffer,
                                   RingEntry)
from repro.net.ring_wire import (RingLink, decode_frame, encode_frame,
                                 transit_ns)

#: Default extra delay of a ``partition-delay`` fault (param ``delay_ns``).
PARTITION_DELAY_NS = 25_000_000
#: Default reassembly deferral of a ``partition-reorder`` fault
#: (param ``defer_ns``).
PARTITION_REORDER_NS = 10_000_000


class DistributedRing(RingBuffer):
    """The ring buffer with a network link between push and pop."""

    def __init__(self, capacity: int, link: RingLink,
                 kernel=None) -> None:
        super().__init__(capacity)
        problems = link.problems()
        if problems:
            raise SimulationError("bad ring link: " + "; ".join(problems))
        self.link = link
        #: The shared kernel, for the live chaos injector and tracer
        #: (both installed after construction; resolved per frame).
        self.kernel = kernel
        self._inflight: Deque[Tuple[int, int]] = deque()
        self._vnow = 0
        #: Monotone delivery clamp — the receiver's reassembly buffer:
        #: a frame can never *apply* before its predecessor, so a
        #: reordered (late) frame parks every later frame behind it.
        self._last_delivery = 0
        self._frame_seq = 0
        # Wire telemetry (all deterministic; surfaced in fleet reports).
        self.frames_sent = 0
        self.acks_received = 0
        self.bytes_sent = 0
        self.frames_dropped = 0
        self.frames_delayed = 0
        self.frames_reordered = 0
        self.inflight_high_watermark = 0
        self.resyncs = 0
        #: Chaos-induced delay accrued since the last resync; crossing
        #: ``link.demote_timeout_ns`` trips the partition timeout.
        self.partition_delay_ns = 0
        self.partition_timed_out = False
        self.partition_timed_out_at: Optional[int] = None
        #: Lifetime count of tripped timeouts (survives resync).
        self.partition_timeouts = 0

    # ------------------------------------------------------------------
    # Link-side accessors
    # ------------------------------------------------------------------

    @property
    def _chaos(self):
        return self.kernel.chaos if self.kernel is not None else None

    @property
    def _tracer(self):
        return self.kernel.tracer if self.kernel is not None else None

    def window_free(self) -> int:
        """Frames the in-flight window can still accept."""
        return self.link.window - len(self._inflight)

    def inflight(self) -> int:
        """Unacknowledged frames currently on the wire."""
        return len(self._inflight)

    # ------------------------------------------------------------------
    # RingBuffer contract, window-aware
    # ------------------------------------------------------------------

    def is_full(self) -> bool:
        return self.free_slots() == 0

    def free_slots(self) -> int:
        """Zero while the in-flight window is exhausted — network
        back-pressure surfaces as the familiar full-ring stall."""
        if len(self._inflight) >= self.link.window:
            return 0
        return self.capacity - len(self._entries)

    def push(self, payload: Payload, produced_at: int) -> RingEntry:
        if len(self._inflight) >= self.link.window \
                or self.capacity - len(self._entries) < 1:
            raise BufferFull(self.capacity)
        decoded, deliver_at = self._transmit([payload], produced_at)
        # The transmit may fill the window to exactly ``link.window``;
        # landing the entry must check *capacity* only (the frame is
        # already on the wire), so go through the base push_many, whose
        # guard does not consult the overridden is_full().
        return super().push_many(decoded, deliver_at)[0]

    def push_many(self, payloads: Sequence[Payload],
                  produced_at: int) -> List[RingEntry]:
        if len(self._inflight) >= self.link.window \
                or len(payloads) > self.capacity - len(self._entries):
            raise BufferFull(self.capacity)
        decoded, deliver_at = self._transmit(payloads, produced_at)
        return super().push_many(decoded, deliver_at)

    def clear(self) -> None:
        """Drop buffered entries *and* in-flight frames (the follower
        they were bound for is gone); partition accounting survives
        until :meth:`resync` so the demotion cause stays readable."""
        super().clear()
        self._inflight.clear()

    # ------------------------------------------------------------------
    # Virtual-time plumbing
    # ------------------------------------------------------------------

    def advance(self, at: int) -> None:
        """Move link time forward, retiring acks that have landed."""
        if at > self._vnow:
            self._vnow = at
        while self._inflight and self._inflight[0][0] <= self._vnow:
            self._inflight.popleft()
            self.acks_received += 1

    def next_free_at(self) -> Optional[int]:
        """When the earliest in-flight ack lands (None if none are
        outstanding — then the stall is a capacity problem, not a
        window problem, and the local diagnosis applies)."""
        if self._inflight:
            return self._inflight[0][0]
        return None

    def resync(self, at: int) -> None:
        """Rejoin the stream at a fork: flush the wire, zero the
        partition accounting, count a resync."""
        self.advance(at)
        self._inflight.clear()
        self.partition_delay_ns = 0
        self.partition_timed_out = False
        self.partition_timed_out_at = None
        if at > self._last_delivery:
            self._last_delivery = at
        self.resyncs += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.on_ring_resync(at, self.resyncs)

    # ------------------------------------------------------------------
    # The wire
    # ------------------------------------------------------------------

    def _partition_delay(self, produced_at: int) -> int:
        """Fire the ``fleet.ring`` chaos site for this frame; returns
        the injected delay (0 when no fault is armed)."""
        chaos = self._chaos
        if chaos is None:
            return 0
        chaos.advance(produced_at)
        fault = chaos.fire("fleet.ring")
        if fault is None:
            return 0
        if fault.kind == "partition-drop":
            delay = int(fault.param.get("delay_ns", self.link.retransmit_ns))
            self.frames_dropped += 1
        elif fault.kind == "partition-delay":
            delay = int(fault.param.get("delay_ns", PARTITION_DELAY_NS))
            self.frames_delayed += 1
        elif fault.kind == "partition-reorder":
            delay = int(fault.param.get("defer_ns", PARTITION_REORDER_NS))
            self.frames_reordered += 1
        else:
            return 0
        self.partition_delay_ns += delay
        if not self.partition_timed_out \
                and self.partition_delay_ns >= self.link.demote_timeout_ns:
            self.partition_timed_out = True
            self.partition_timed_out_at = produced_at + delay
            self.partition_timeouts += 1
        return delay

    def _transmit(self, payloads: Sequence[Payload],
                  produced_at: int) -> Tuple[List[Payload], int]:
        """Ship one frame; returns the decoded payloads and the virtual
        time they become visible to the follower."""
        line = encode_frame(self._frame_seq, list(payloads))
        n_bytes = len(line.encode("utf-8"))
        delay = self._partition_delay(produced_at)
        deliver_at = produced_at + transit_ns(self.link, n_bytes) + delay
        if deliver_at < self._last_delivery:
            deliver_at = self._last_delivery
        self._last_delivery = deliver_at
        sequence, decoded = decode_frame(line)
        ack_at = deliver_at + self.link.latency_ns
        self._inflight.append((ack_at, sequence))
        if len(self._inflight) > self.inflight_high_watermark:
            self.inflight_high_watermark = len(self._inflight)
        self.frames_sent += 1
        self.bytes_sent += n_bytes
        self._frame_seq = sequence + 1
        tracer = self._tracer
        if tracer is not None:
            tracer.on_ring_frame(produced_at, sequence, len(decoded),
                                 n_bytes, len(self._inflight), deliver_at)
        return decoded, deliver_at

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Deterministic wire telemetry for fleet/perf reports."""
        return {
            "acks_received": self.acks_received,
            "bytes_sent": self.bytes_sent,
            "frames_delayed": self.frames_delayed,
            "frames_dropped": self.frames_dropped,
            "frames_reordered": self.frames_reordered,
            "frames_sent": self.frames_sent,
            "inflight_high_watermark": self.inflight_high_watermark,
            "partition_delay_ns": self.partition_delay_ns,
            "partition_timeouts": self.partition_timeouts,
            "resyncs": self.resyncs,
        }

"""Rolling-upgrade coordinators.

:class:`RollingUpgrade` is the industry-standard strategy the paper's
§1.1 describes: drain each node (stop routing new connections to it,
wait for existing sessions to finish), stop-restart it on the new
version, move on.  Two problems fall out, both measured here:

* sessions that never finish must eventually be *dropped* (the paper's
  SSH/long-lived-session argument);
* a restarted stateful node loses its in-memory state.

:class:`MvedsuaRollingUpgrade` runs the same per-node schedule but
updates each node in place with Mvedsua: no draining, no drops, no state
loss — and only one node at a time pays the leader-follower overhead,
which is the paper's §1.2 suggestion for mitigating MVE cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.baselines.restart import StopRestart
from repro.cluster.balancer import LoadBalancer
from repro.cluster.node import ClusterNode, NodeStatus
from repro.dsu.version import ServerVersion
from repro.mve.dsl import RuleSet
from repro.sim.engine import SECOND


@dataclass
class NodeUpgradeRecord:
    """What happened to one node during the rolling upgrade."""

    node: str
    started_at: int
    finished_at: int
    sessions_dropped: int
    state_entries_lost: int
    leader_pause_ns: int = 0


@dataclass
class UpgradeSummary:
    """Cluster-wide result."""

    strategy: str
    records: List[NodeUpgradeRecord] = field(default_factory=list)

    @property
    def total_sessions_dropped(self) -> int:
        return sum(r.sessions_dropped for r in self.records)

    @property
    def total_state_lost(self) -> int:
        return sum(r.state_entries_lost for r in self.records)

    @property
    def duration_ns(self) -> int:
        if not self.records:
            return 0
        return (max(r.finished_at for r in self.records)
                - min(r.started_at for r in self.records))

    def all_upgraded_to(self, version: str,
                        balancer: LoadBalancer) -> bool:
        return all(node.version_name == version
                   for node in balancer.nodes)


class RollingUpgrade:
    """Drain / stop-restart / resume, one node at a time."""

    def __init__(self, balancer: LoadBalancer, *,
                 drain_timeout_ns: int = 30 * SECOND) -> None:
        self.balancer = balancer
        self.drain_timeout_ns = drain_timeout_ns

    def upgrade(self, version_factory: Callable[[], ServerVersion],
                now: int) -> UpgradeSummary:
        """Upgrade every node; returns the cluster-wide summary."""
        summary = UpgradeSummary("rolling-restart")
        t = now
        for node in self.balancer.nodes:
            record = self._upgrade_node(node, version_factory(), t)
            summary.records.append(record)
            t = record.finished_at
        return summary

    def _upgrade_node(self, node: ClusterNode,
                      new_version: ServerVersion,
                      now: int) -> NodeUpgradeRecord:
        node.status = NodeStatus.DRAINING
        # Let in-flight work finish; sessions that survive the whole
        # drain window are long-lived and must be cut.
        node.pump(now)
        drained_at = now + self.drain_timeout_ns
        dropped = self._force_close_sessions(node)

        node.status = NodeStatus.RESTARTING
        entries_before = node.server.version.heap_entries(node.server.heap)
        report = StopRestart().perform(node.runtime, new_version,
                                       drained_at)
        entries_after = node.server.version.heap_entries(node.server.heap)
        node.status = NodeStatus.SERVING
        return NodeUpgradeRecord(
            node=node.name,
            started_at=now,
            finished_at=drained_at + report.pause_ns,
            sessions_dropped=dropped,
            state_entries_lost=entries_before - entries_after)

    @staticmethod
    def _force_close_sessions(node: ClusterNode) -> int:
        dropped = 0
        for fd in list(node.server.sessions):
            if node.kernel.is_open(node.server.domain, fd):
                node.kernel.close(node.server.domain, fd)
            node.server.sessions.pop(fd, None)
            dropped += 1
        return dropped


class MvedsuaRollingUpgrade:
    """Per-node Mvedsua updates: no drain, no drops, no state loss."""

    def __init__(self, balancer: LoadBalancer, *,
                 validation_window_ns: int = 5 * SECOND,
                 rules: Optional[RuleSet] = None) -> None:
        self.balancer = balancer
        self.validation_window_ns = validation_window_ns
        self.rules = rules

    def upgrade(self, version_factory: Callable[[], ServerVersion],
                now: int) -> UpgradeSummary:
        """Update every node in place, one at a time."""
        summary = UpgradeSummary("mvedsua-rolling")
        t = now
        for node in self.balancer.nodes:
            record = self._upgrade_node(node, version_factory(), t)
            summary.records.append(record)
            t = record.finished_at
        return summary

    def _upgrade_node(self, node: ClusterNode,
                      new_version: ServerVersion,
                      now: int) -> NodeUpgradeRecord:
        mvedsua = node.runtime
        leader_cpu = mvedsua.runtime.leader.cpu
        busy_before = max(now, leader_cpu.busy_until)
        entries_before = node.server.version.heap_entries(node.server.heap)

        attempt = mvedsua.request_update(new_version, now,
                                         rules=self.rules)
        if not attempt.ok:
            raise RuntimeError(f"update failed on {node.name}: "
                               f"{attempt.reason}")
        leader_pause = leader_cpu.busy_until - busy_before
        # The node keeps serving (still SERVING) while the new version
        # is validated against live traffic, then flips over.
        promote_at = now + self.validation_window_ns
        mvedsua.promote(promote_at)
        finished = mvedsua.finalize(promote_at + self.validation_window_ns)
        leader = mvedsua.runtime.leader.server
        entries_after = leader.version.heap_entries(leader.heap)
        return NodeUpgradeRecord(
            node=node.name,
            started_at=now,
            finished_at=finished,
            sessions_dropped=0,
            state_entries_lost=max(0, entries_before - entries_after),
            leader_pause_ns=leader_pause)

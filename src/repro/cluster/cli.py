"""``python -m repro fleet`` — run a fleet canary-upgrade scenario.

    python -m repro fleet canary-kvstore                # 3×3 fleet
    python -m repro fleet canary-kvstore --shards 2 --replicas 2
    python -m repro fleet canary-kvstore --seed 7 --report out.json

The report is JSON with schema ``repro-fleet/1`` (see
``docs/cluster.md``); stdout carries the topology, the per-round table,
and the invariant verdict.  Exit status is non-zero when any fleet
invariant is violated or the written report fails its own schema
validation — the CI ``fleet-smoke`` job gates on exactly that.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.bench.reporting import format_table
from repro.cluster.fleet import run_fleet_scenario, validate_report


def fleet_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Canary-staged Mvedsua upgrades across a sharded, "
                    "replicated fleet.")
    parser.add_argument("scenario", choices=["canary-kvstore"],
                        help="which fleet scenario to run")
    parser.add_argument("--seed", type=int, default=1,
                        help="traffic seed (default: 1)")
    parser.add_argument("--shards", type=int, default=3,
                        help="shard count (default: 3)")
    parser.add_argument("--replicas", type=int, default=3,
                        help="replicas per shard (default: 3)")
    parser.add_argument("--report", metavar="PATH",
                        help="where to write the JSON report (default: "
                             "FLEET_<scenario>.json)")
    args = parser.parse_args(argv)

    report = run_fleet_scenario(args.scenario, args.seed,
                                shards=args.shards,
                                replicas=args.replicas)

    topology = report["topology"]
    print(f"fleet scenario: {args.scenario} "
          f"({topology['shards']} shards x "
          f"{topology['replicas_per_shard']} replicas, "
          f"seed {report['seed']})")
    print()
    rows = []
    for round_payload in report["rounds"]:
        rows.append([round_payload["label"], round_payload["outcome"],
                     str(round_payload["updated"]),
                     str(round_payload["demotions"])])
    print(format_table(["round", "outcome", "updated", "demoted"], rows))
    print()
    print(f"max MVE pairs per shard: "
          f"{report['max_mve_pairs_per_shard']}  "
          f"rollbacks: {report['rollbacks']}  "
          f"failovers: {report['failovers']}")
    violations = report["invariants"]["problems"]
    if violations:
        for violation in violations:
            print(f"  VIOLATION: {violation}")
    else:
        print(f"invariants: clean over "
              f"{report['invariants']['checked_observations']} "
              f"observations")

    suffix = args.scenario.split("-")[-1]
    path = args.report or f"FLEET_{suffix}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote report: {path}")

    problems = validate_report(report)
    for problem in problems:
        print(f"  report problem: {problem}", file=sys.stderr)
    return 1 if violations or problems else 0


if __name__ == "__main__":
    sys.exit(fleet_main())

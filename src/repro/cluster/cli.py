"""``python -m repro fleet`` — run a fleet canary-upgrade scenario.

    python -m repro fleet canary-kvstore                # 3×3 fleet
    python -m repro fleet canary-kvstore --shards 2 --replicas 2
    python -m repro fleet canary-kvstore --seed 7 --report out.json
    python -m repro fleet canary-kvstore --slo          # + SLO accounting

The report is JSON with schema ``repro-fleet/1`` (see
``docs/cluster.md``); stdout carries the topology, the per-round table,
and the invariant verdict.  Exit status is non-zero when any fleet
invariant is violated or the written report fails its own schema
validation — the CI ``fleet-smoke`` job gates on exactly that.

``--slo`` runs the scenario under span tracing, embeds a full
``repro-slo/1`` section (see ``docs/observability.md``) under the
report's ``slo`` key, and adds per-round SLO availability columns to
the round table — requests whose gateway span overlaps the round, and
the fraction of them that got an answer.  Without the flag the report
is byte-identical to earlier releases.

``--openloop`` swaps the fixed 100 ms command pacing for the open-loop
generator's Poisson arrivals and Zipf-popular keys (see
``docs/workloads.md``).  Combined with ``--slo``, the per-round
availability column switches to *achieved* accounting: the denominator
is every request offered (sent) during the round window, and only
requests that actually completed with an answer count as available —
a request stalled behind an upgrade pause is not.

``--distributed`` houses each MVE follower on the shard's next replica
node (see ``docs/distributed.md``): every pair's ring crosses a
declared link as ``repro-ring/1`` frames, and the report grows a
``distring`` section (link budget, pair placement, wire telemetry).
Without the flag the report is byte-identical to earlier releases.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.bench.reporting import format_table
from repro.cluster.fleet import run_fleet_scenario, validate_report


def fleet_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Canary-staged Mvedsua upgrades across a sharded, "
                    "replicated fleet.")
    parser.add_argument("scenario", choices=["canary-kvstore"],
                        help="which fleet scenario to run")
    parser.add_argument("--seed", type=int, default=1,
                        help="traffic seed (default: 1)")
    parser.add_argument("--shards", type=int, default=3,
                        help="shard count (default: 3)")
    parser.add_argument("--replicas", type=int, default=3,
                        help="replicas per shard (default: 3)")
    parser.add_argument("--report", metavar="PATH",
                        help="where to write the JSON report (default: "
                             "FLEET_<scenario>.json)")
    parser.add_argument("--slo", action="store_true",
                        help="trace the run with spans, embed a "
                             "repro-slo/1 section under the report's "
                             "'slo' key, and add per-round SLO "
                             "availability columns")
    parser.add_argument("--openloop", action="store_true",
                        help="drive rounds from the open-loop "
                             "generator (Poisson arrivals, Zipf keys); "
                             "with --slo, round availability counts "
                             "achieved completions, not offered "
                             "requests")
    parser.add_argument("--distributed", action="store_true",
                        help="house each MVE follower on the shard's "
                             "next replica node: the pair's ring "
                             "crosses a declared link as repro-ring/1 "
                             "frames, and the report grows a "
                             "'distring' wire-telemetry section")
    args = parser.parse_args(argv)

    collector = None
    if args.slo:
        from repro.obs.slo import build_slo_report, collect_cell
        from repro.obs.slo_scenarios import SLO_SPECS
        from repro.obs.trace import Tracer, tracing
        spec = SLO_SPECS[args.scenario]
        tracer = Tracer(experiment=f"fleet-{args.scenario}", spans=True)
        with tracing(tracer):
            report = run_fleet_scenario(args.scenario, args.seed,
                                        shards=args.shards,
                                        replicas=args.replicas,
                                        openloop=args.openloop,
                                        distributed=args.distributed)
        collector = tracer.spans
        cell = collect_cell(collector, args.scenario, spec)
        report["slo"] = build_slo_report(args.scenario, args.seed,
                                         spec, [cell])
    else:
        report = run_fleet_scenario(args.scenario, args.seed,
                                    shards=args.shards,
                                    replicas=args.replicas,
                                    openloop=args.openloop,
                                    distributed=args.distributed)

    topology = report["topology"]
    print(f"fleet scenario: {args.scenario} "
          f"({topology['shards']} shards x "
          f"{topology['replicas_per_shard']} replicas, "
          f"seed {report['seed']})")
    if args.openloop:
        traffic = report["traffic"]
        print(f"traffic: open-loop ({traffic['process']} "
              f"@ {traffic['rate_per_sec']:g}/s, "
              f"{traffic['key_distribution']} keys)")
    if args.distributed:
        link = report["distring"]["link"]
        print(f"ring: distributed (follower on next replica, "
              f"{link['latency_ns']} ns one-way, window "
              f"{link['window']})")
    print()
    headers = ["round", "outcome", "updated", "demoted"]
    if args.slo:
        headers += ["requests", "slo avail"]
    rows = []
    for round_payload in report["rounds"]:
        row = [round_payload["label"], round_payload["outcome"],
               str(round_payload["updated"]),
               str(round_payload["demotions"])]
        if args.slo:
            total, answered = _round_availability(
                collector, round_payload["started_at"],
                round_payload["finished_at"],
                achieved=args.openloop)
            row += [str(total),
                    f"{answered / total:.4f}" if total else "-"]
        rows.append(row)
    print(format_table(headers, rows))
    print()
    print(f"max MVE pairs per shard: "
          f"{report['max_mve_pairs_per_shard']}  "
          f"rollbacks: {report['rollbacks']}  "
          f"failovers: {report['failovers']}")
    if args.distributed:
        wire = report["distring"]["wire"]
        print(f"wire: {wire['frames_sent']} frames / "
              f"{wire['bytes_sent']} bytes, inflight high watermark "
              f"{wire['inflight_high_watermark']}, "
              f"resyncs {wire['resyncs']}, partition timeouts "
              f"{wire['partition_timeouts']}")
    violations = report["invariants"]["problems"]
    if violations:
        for violation in violations:
            print(f"  VIOLATION: {violation}")
    else:
        print(f"invariants: clean over "
              f"{report['invariants']['checked_observations']} "
              f"observations")

    if args.slo:
        from repro.obs.slo_cli import render_report
        slo = report["slo"]
        print()
        print(f"slo ({slo['spec']['name']}): {slo['requests']} requests, "
              f"{slo['violating_requests']} over budget, "
              f"availability {slo['availability']:.4f}")
        print(render_report(slo))

    suffix = args.scenario.split("-")[-1]
    path = args.report or f"FLEET_{suffix}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote report: {path}")

    problems = validate_report(report)
    if args.slo:
        from repro.obs.slo import validate_slo_report
        problems += [f"slo: {p}"
                     for p in validate_slo_report(report["slo"])]
    for problem in problems:
        print(f"  report problem: {problem}", file=sys.stderr)
    return 1 if violations or problems else 0


def _round_availability(collector, start: int, finish: int, *,
                        achieved: bool = False):
    """(requests, answered) for gateway spans overlapping a round.

    A request counts toward a round when its span intersects the
    round's ``[started_at, finished_at]`` window — that is exactly the
    population whose latency the round's quiesce pauses can touch.

    ``achieved=True`` is the open-loop variant: the denominator is
    every request *offered* (span started) inside the window, and only
    spans that actually closed with an answer count — so a request the
    round's pause left stalled drags availability down instead of
    silently inflating the overlap set.
    """
    total = answered = 0
    for span in collector.request_spans():
        if achieved:
            if span.start_ns < start or span.start_ns > finish:
                continue
            total += 1
            if span.end_ns is not None \
                    and span.attrs.get("answered", True) \
                    and not span.attrs.get("error"):
                answered += 1
            continue
        end = span.end_ns if span.end_ns is not None else span.start_ns
        if end < start or span.start_ns > finish:
            continue
        total += 1
        if span.attrs.get("answered", True) and not span.attrs.get("error"):
            answered += 1
    return total, answered


if __name__ == "__main__":
    sys.exit(fleet_main())

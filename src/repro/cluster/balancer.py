"""Connection routing across cluster nodes."""

from __future__ import annotations

from typing import List

from repro.cluster.node import ClusterNode
from repro.errors import KernelError
from repro.workloads.client import VirtualClient


class LoadBalancer:
    """Round-robin routing that respects node drain state.

    New connections go to the next node that is accepting; existing
    connections stick to their node (the balancer never migrates a
    session — that is exactly why stateful nodes are hard to drain).
    """

    def __init__(self, nodes: List[ClusterNode]) -> None:
        self.nodes = list(nodes)
        self._cursor = 0

    def serving_nodes(self) -> List[ClusterNode]:
        """Nodes currently accepting new connections."""
        return [node for node in self.nodes
                if node.accepting_new_connections()]

    def pick(self) -> ClusterNode:
        """Choose a node for a new connection (round robin)."""
        candidates = self.serving_nodes()
        if not candidates:
            raise KernelError("no cluster node is accepting connections")
        node = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return node

    def connect(self, name: str = "client") -> tuple:
        """Open a new client connection via the balancer.

        Returns ``(client, node)`` so callers can pump the right runtime.
        """
        node = self.pick()
        client = VirtualClient(node.kernel, node.address, name)
        return client, node

    def pump_all(self, now: int) -> int:
        """Let every node serve its pending input."""
        latest = now
        for node in self.nodes:
            latest = max(latest, node.pump(now))
        return latest

"""Connection routing across cluster nodes and sharded fleets."""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.node import ClusterNode
from repro.cluster.shard import Shard, ShardMap
from repro.errors import KernelError
from repro.workloads.client import VirtualClient


class LoadBalancer:
    """Round-robin routing that respects node drain state.

    New connections go to the next node that is accepting; existing
    connections stick to their node (the balancer never migrates a
    session — that is exactly why stateful nodes are hard to drain).
    """

    def __init__(self, nodes: List[ClusterNode]) -> None:
        self.nodes = list(nodes)
        self._cursor = 0

    def serving_nodes(self) -> List[ClusterNode]:
        """Nodes currently accepting new connections."""
        return [node for node in self.nodes
                if node.accepting_new_connections()]

    def pick(self) -> ClusterNode:
        """Choose a node for a new connection (round robin).

        The cursor walks the *stable* node list and skips nodes that are
        not accepting.  Indexing the filtered candidate list instead
        (the old behaviour) reshuffled every subsequent assignment the
        moment one node entered or left drain, because the same cursor
        value suddenly named a different node.
        """
        if not any(node.accepting_new_connections()
                   for node in self.nodes):
            raise KernelError("no cluster node is accepting connections")
        while True:
            node = self.nodes[self._cursor % len(self.nodes)]
            self._cursor += 1
            if node.accepting_new_connections():
                return node

    def connect(self, name: str = "client") -> tuple:
        """Open a new client connection via the balancer.

        Returns ``(client, node)`` so callers can pump the right runtime.
        """
        node = self.pick()
        client = VirtualClient(node.kernel, node.address, name)
        return client, node

    def pump_all(self, now: int) -> int:
        """Let every node serve its pending input."""
        latest = now
        for node in self.nodes:
            latest = max(latest, node.pump(now))
        return latest


class FleetBalancer:
    """Shard-sticky, health- and demotion-aware routing for a fleet.

    Commands hash to a shard via the :class:`~repro.cluster.shard.
    ShardMap`; within the shard, new placements round-robin over the
    *stable* replica list (the same fix as :meth:`LoadBalancer.pick`),
    skipping replicas that are draining, demoted, or failed.  Existing
    sessions stick to their replica — a draining or demoted replica
    keeps serving the sessions it already has; only a *failed* replica
    forces a failover.

    A ``fleet.balancer``/``partition`` chaos fault makes the replica a
    pick would have chosen temporarily unreachable, forcing the pick to
    route around it (the replica itself keeps serving its sessions —
    the partition is between balancer and replica, not replica and
    world).
    """

    def __init__(self, shard_map: ShardMap) -> None:
        self.shard_map = shard_map
        self._cursors: Dict[int, int] = {}
        #: Sessions re-homed after their sticky replica failed.
        self.failovers = 0
        #: Picks the partition fault diverted to another replica.
        self.partitions = 0

    @property
    def kernel(self):
        """The (shared) virtual kernel all fleet nodes run on."""
        return self.shard_map.shards[0].nodes[0].kernel

    def shard_for(self, key: str) -> Shard:
        """The shard responsible for ``key``."""
        return self.shard_map.shard_for(key)

    def pick_replica(self, shard: Shard, now: int = 0) -> ClusterNode:
        """Choose a replica of ``shard`` for a new session placement."""
        if not any(node.accepting_new_connections()
                   for node in shard.nodes):
            raise KernelError(f"shard {shard.index} has no replica "
                              f"accepting connections")
        chaos = self.kernel.chaos
        cursor = self._cursors.get(shard.index, 0)
        for _ in range(2 * len(shard.nodes)):
            node = shard.nodes[cursor % len(shard.nodes)]
            cursor += 1
            if not node.accepting_new_connections():
                continue
            if chaos is not None:
                fault = chaos.fire("fleet.balancer", shard=shard.index,
                                   node=node.name, when=now)
                if fault is not None and fault.kind == "partition":
                    self.partitions += 1
                    tracer = self.kernel.tracer
                    if tracer is not None:
                        tracer.on_fleet("partition", now,
                                        shard=shard.index, node=node.name)
                    continue
            self._cursors[shard.index] = cursor
            return node
        raise KernelError(f"shard {shard.index} is partitioned from the "
                          f"balancer")

    def pump_all(self, now: int) -> int:
        """Let every replica in every shard serve its pending input."""
        latest = now
        for node in self.shard_map.nodes():
            latest = max(latest, node.pump(now))
        return latest

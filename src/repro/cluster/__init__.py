"""A cluster substrate: nodes, sharding, balancing, fleet orchestration.

The paper's introduction (§1.1) frames Mvedsua against the
industry-standard *rolling upgrade*: drain a node, restart it on the new
version, repeat.  That works for stateless nodes but drops per-node state
and stalls on long-lived sessions.  This package reproduces the argument
quantitatively, then scales it out to a sharded, replicated fleet:

* :mod:`repro.cluster.node` — one cluster node wrapping a server
  deployment (native or Mvedsua-supervised).
* :mod:`repro.cluster.balancer` — connection routing that steers new
  clients away from draining, demoted, or failed nodes, for flat
  clusters (:class:`LoadBalancer`) and sharded fleets
  (:class:`FleetBalancer`).
* :mod:`repro.cluster.rolling` — the rolling-upgrade coordinator (drain /
  restart / resume), and the Mvedsua alternative that updates each node
  in place — which also implements the paper's §1.2 note that MVE
  overhead "can be further mitigated by using rolling upgrades": only
  one node at a time runs in leader-follower mode.
* :mod:`repro.cluster.shard` — key-hash sharding: the declarative
  :class:`FleetSpec` topology, per-shard replica groups, the stable
  :class:`ShardMap`.
* :mod:`repro.cluster.orchestrator` — canary-staged fleet upgrades
  under the per-shard one-pair MVE budget, with fleet-wide rollback on
  a canary demotion.
* :mod:`repro.cluster.fleet` — the deterministic ``repro-fleet/1``
  scenario behind ``python -m repro fleet`` (see ``docs/cluster.md``).
"""

from repro.cluster.node import ClusterNode, NodeStatus
from repro.cluster.balancer import FleetBalancer, LoadBalancer
from repro.cluster.orchestrator import (
    FleetBudgetError,
    FleetNodeRecord,
    FleetOrchestrator,
    FleetRoundReport,
)
from repro.cluster.rolling import (
    MvedsuaRollingUpgrade,
    RollingUpgrade,
    UpgradeSummary,
)
from repro.cluster.shard import FleetSpec, Shard, ShardMap

__all__ = [
    "ClusterNode",
    "NodeStatus",
    "LoadBalancer",
    "FleetBalancer",
    "FleetBudgetError",
    "FleetNodeRecord",
    "FleetOrchestrator",
    "FleetRoundReport",
    "FleetSpec",
    "RollingUpgrade",
    "MvedsuaRollingUpgrade",
    "Shard",
    "ShardMap",
    "UpgradeSummary",
]

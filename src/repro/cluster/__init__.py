"""A small cluster substrate: nodes, load balancing, rolling upgrades.

The paper's introduction (§1.1) frames Mvedsua against the
industry-standard *rolling upgrade*: drain a node, restart it on the new
version, repeat.  That works for stateless nodes but drops per-node state
and stalls on long-lived sessions.  This package reproduces the argument
quantitatively:

* :mod:`repro.cluster.node` — one cluster node wrapping a server
  deployment (native or Mvedsua-supervised).
* :mod:`repro.cluster.balancer` — connection routing that steers new
  clients away from draining nodes.
* :mod:`repro.cluster.rolling` — the rolling-upgrade coordinator (drain /
  restart / resume), and the Mvedsua alternative that updates each node
  in place — which also implements the paper's §1.2 note that MVE
  overhead "can be further mitigated by using rolling upgrades": only
  one node at a time runs in leader-follower mode.
"""

from repro.cluster.node import ClusterNode, NodeStatus
from repro.cluster.balancer import LoadBalancer
from repro.cluster.rolling import (
    MvedsuaRollingUpgrade,
    RollingUpgrade,
    UpgradeSummary,
)

__all__ = [
    "ClusterNode",
    "NodeStatus",
    "LoadBalancer",
    "RollingUpgrade",
    "MvedsuaRollingUpgrade",
    "UpgradeSummary",
]

"""Canary-staged fleet upgrades under the per-shard MVE budget.

The :class:`FleetOrchestrator` drives one Mvedsua update round across a
sharded fleet (see :mod:`repro.cluster.shard`).  A round walks the
topology's :meth:`~repro.cluster.shard.FleetSpec.waves`:

* **wave 0 — the canary wave.**  Replica 0 of every shard gets the new
  version first.  Each canary is probed with live traffic while its
  leader-follower pair is validating; a divergence *demotes* the canary
  (the runtime already rolled the node itself back — the old leader
  never stopped) and triggers a **fleet-wide rollback**: every other
  in-flight update is abandoned and the round stops before the new
  version touches a second replica of any shard.
* **later waves** cover the remaining replica indexes, ``wave_size``
  replica slots at a time.  Within a shard the slots of one wave are
  processed strictly one after another, so a shard never runs more than
  one leader-follower pair — the paper's §1.2 suggestion for keeping
  MVE overhead bounded in replicated deployments.  The budget is
  *asserted*, not assumed: :meth:`FleetOrchestrator._sample_budget`
  raises :class:`FleetBudgetError` the moment any shard holds two pairs,
  and exports the worst case as the ``fleet.mve_pairs`` gauge.

Every step emits a ``fleet.*`` trace event via
:meth:`repro.obs.trace.Tracer.on_fleet`, and two chaos sites make the
round's failure paths reachable from fault plans: ``fleet.replica``
(``crash`` — the replica dies just as its slot comes up) and
``fleet.canary`` (``divergence`` — the canary is handed a buggy build,
exercising the demotion/rollback machinery end to end).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.balancer import FleetBalancer
from repro.cluster.node import ClusterNode, NodeStatus
from repro.cluster.shard import FleetSpec, Shard
from repro.core.stages import Stage
from repro.dsu.version import ServerVersion
from repro.mve.dsl import RuleSet
from repro.sim.engine import MILLISECOND, SECOND
from repro.workloads.client import VirtualClient

#: Outcomes a node can leave a round with (the report taxonomy).
NODE_OUTCOMES = ("updated", "demoted", "rolled-back", "crashed", "skipped")

#: Outcomes a round can end with.
ROUND_OUTCOMES = ("completed", "rolled-back", "aborted")


class FleetBudgetError(RuntimeError):
    """A shard held more than one leader-follower pair at once."""


@dataclass
class FleetNodeRecord:
    """What happened to one replica during a round."""

    shard: int
    node: str
    wave: int
    started_at: int
    finished_at: int
    outcome: str
    leader_pause_ns: int = 0
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {"shard": self.shard, "node": self.node, "wave": self.wave,
                "started_at": self.started_at,
                "finished_at": self.finished_at, "outcome": self.outcome,
                "leader_pause_ns": self.leader_pause_ns,
                "detail": self.detail}


@dataclass
class FleetRoundReport:
    """One upgrade round, fleet-wide."""

    label: str
    version: str
    outcome: str = "completed"
    started_at: int = 0
    finished_at: int = 0
    records: List[FleetNodeRecord] = field(default_factory=list)

    @property
    def demotions(self) -> int:
        return sum(1 for r in self.records if r.outcome == "demoted")

    @property
    def updated(self) -> int:
        return sum(1 for r in self.records if r.outcome == "updated")

    def as_dict(self) -> Dict[str, Any]:
        return {"label": self.label, "version": self.version,
                "outcome": self.outcome, "started_at": self.started_at,
                "finished_at": self.finished_at,
                "demotions": self.demotions, "updated": self.updated,
                "records": [r.as_dict() for r in self.records]}


class FleetOrchestrator:
    """Runs canary-staged Mvedsua rounds across a sharded fleet."""

    def __init__(self, balancer: FleetBalancer, spec: FleetSpec, *,
                 rules: Optional[RuleSet] = None,
                 validation_window_ns: int = 5 * SECOND) -> None:
        problems = spec.problems()
        if problems:
            raise ValueError("unusable fleet topology: "
                             + "; ".join(problems))
        self.balancer = balancer
        self.spec = spec
        self.rules = rules
        self.validation_window_ns = validation_window_ns
        #: Worst per-shard pair count ever sampled (must stay <= 1).
        self.max_mve_pairs_per_shard = 0
        #: Fleet-wide rollbacks triggered by canary demotions.
        self.rollbacks = 0

    # -- observability helpers -----------------------------------------

    @property
    def _tracer(self):
        return self.balancer.kernel.tracer

    def _emit(self, kind: str, at: int, **fields: Any) -> None:
        tracer = self._tracer
        if tracer is not None:
            tracer.on_fleet(kind, at, **fields)

    def _sample_budget(self, at: int) -> None:
        worst = max(shard.mve_pairs()
                    for shard in self.balancer.shard_map.shards)
        if worst > self.max_mve_pairs_per_shard:
            self.max_mve_pairs_per_shard = worst
        tracer = self._tracer
        if tracer is not None:
            tracer.metrics.gauge("fleet.mve_pairs").set(worst)
        if worst > 1:
            raise FleetBudgetError(
                f"a shard is running {worst} leader-follower pairs "
                f"(the fleet budget is one per shard)")

    # -- the round ------------------------------------------------------

    def run_round(self, version_factory: Callable[[], ServerVersion],
                  now: int, *, label: str = "") -> FleetRoundReport:
        """Upgrade the whole fleet to ``version_factory()``'s version.

        Returns the round report; the fleet is left either fully
        updated (``completed``) or fully on the old version
        (``rolled-back`` from the canary wave, ``aborted`` from a later
        one — either way no shard is left split across versions by this
        orchestrator's own doing).
        """
        probe_version = version_factory()
        report = FleetRoundReport(label=label or probe_version.name,
                                  version=probe_version.name,
                                  started_at=now)
        t = now
        self._emit("round_start", t, label=report.label,
                   version=report.version)
        tracer = self._tracer
        spans = tracer.spans if tracer is not None else None
        round_span = None
        if spans is not None:
            round_span = spans.open("fleet.round", "fleet", t,
                                    label=report.label,
                                    version=report.version)
        for wave_index, replica_slots in enumerate(self.spec.waves()):
            for slot in replica_slots:
                t, demoted = self._run_slot(version_factory, wave_index,
                                            slot, t, report)
                if demoted:
                    report.outcome = ("rolled-back" if wave_index == 0
                                      else "aborted")
                    report.finished_at = t
                    self._emit("round_end", t, label=report.label,
                               outcome=report.outcome)
                    if round_span is not None:
                        spans.close(round_span, t,
                                    outcome=report.outcome)
                    return report
        report.outcome = "completed"
        report.finished_at = t
        self._emit("round_end", t, label=report.label, outcome="completed")
        if round_span is not None:
            spans.close(round_span, t, outcome="completed")
        return report

    def _run_slot(self, version_factory: Callable[[], ServerVersion],
                  wave_index: int, slot: int, now: int,
                  report: FleetRoundReport) -> tuple:
        """One replica index across every shard: request, probe, settle.

        Returns ``(t, any_demotion)``.  All shards' updates for this
        slot run concurrently (each shard holds exactly one pair); a
        single demotion rolls back every other in-flight update.
        """
        chaos = self.balancer.kernel.chaos
        t = now
        in_flight: List[tuple] = []
        for shard in self.balancer.shard_map.shards:
            node = shard.nodes[slot]
            started = t
            if not node.healthy():
                report.records.append(FleetNodeRecord(
                    shard.index, node.name, wave_index, started, started,
                    "skipped", detail="replica is down"))
                continue
            if chaos is not None:
                fault = chaos.fire("fleet.replica", shard=shard.index,
                                   node=node.name, wave=wave_index,
                                   when=t)
                if fault is not None and fault.kind == "crash":
                    node.status = NodeStatus.FAILED
                    self._emit("replica_crash", t, shard=shard.index,
                               node=node.name, wave=wave_index)
                    report.records.append(FleetNodeRecord(
                        shard.index, node.name, wave_index, started, t,
                        "crashed", detail="fleet.replica/crash"))
                    continue
            version = version_factory()
            if wave_index == 0 and chaos is not None:
                fault = chaos.fire("fleet.canary", shard=shard.index,
                                   node=node.name, when=t)
                if fault is not None and fault.kind == "divergence":
                    # The canary gets a buggy build; validation traffic
                    # will catch the divergence and demote it.
                    version = fault.param["factory"](version)
            mvedsua = node.runtime
            leader_cpu = mvedsua.runtime.leader.cpu
            busy_before = max(t, leader_cpu.busy_until)
            attempt = mvedsua.request_update(version, t, rules=self.rules)
            if not attempt.ok:
                report.records.append(FleetNodeRecord(
                    shard.index, node.name, wave_index, started, t,
                    "skipped", detail=f"update refused: {attempt.reason}"))
                continue
            pause = leader_cpu.busy_until - busy_before
            self._emit("canary" if wave_index == 0 else "wave", t,
                       shard=shard.index, node=node.name,
                       wave=wave_index, version=version.name)
            self._sample_budget(t)
            in_flight.append((shard, node, mvedsua, started, pause))
            t += MILLISECOND

        # Validate every in-flight pair against live probe traffic; a
        # divergence auto-terminates the follower, which the stage check
        # below observes (last_divergence survives rollbacks, the stage
        # does not — that is why the verdict reads the stage).
        demoted: List[tuple] = []
        survivors: List[tuple] = []
        for shard, node, mvedsua, started, pause in in_flight:
            t = self._probe(node, t)
            if mvedsua.stage is Stage.OUTDATED_LEADER:
                survivors.append((shard, node, mvedsua, started, pause))
                continue
            node.status = NodeStatus.DEMOTED
            runtime = mvedsua.runtime
            detail = "divergence"
            if runtime.last_forensics is not None:
                detail = runtime.last_forensics.reason
            self._emit("demotion", t, shard=shard.index, node=node.name,
                       wave=wave_index, detail=detail)
            report.records.append(FleetNodeRecord(
                shard.index, node.name, wave_index, started, t,
                "demoted", leader_pause_ns=pause, detail=detail))
            demoted.append((shard, node))

        if demoted:
            # Fleet-wide rollback: abandon every other in-flight update
            # and re-admit the demoted canaries (their runtimes already
            # rolled back locally with no state loss).
            self.rollbacks += 1
            for shard, node, mvedsua, started, pause in survivors:
                mvedsua.rollback(t, reason="fleet-canary-rollback")
                self._emit("rollback", t, shard=shard.index,
                           node=node.name, wave=wave_index)
                report.records.append(FleetNodeRecord(
                    shard.index, node.name, wave_index, started, t,
                    "rolled-back", leader_pause_ns=pause,
                    detail="fleet-canary-rollback"))
            for shard, node in demoted:
                node.status = NodeStatus.SERVING
            self._sample_budget(t)
            return t, True

        for shard, node, mvedsua, started, pause in survivors:
            promote_at = t + self.validation_window_ns
            mvedsua.promote(promote_at)
            finished = mvedsua.finalize(
                promote_at + self.validation_window_ns)
            self._emit("promote", finished, shard=shard.index,
                       node=node.name, wave=wave_index)
            tracer = self._tracer
            if tracer is not None and tracer.spans is not None:
                tracer.spans.add("fleet.slot", "fleet", started, finished,
                                 shard=shard.index, node=node.name,
                                 wave=wave_index)
            report.records.append(FleetNodeRecord(
                shard.index, node.name, wave_index, started, finished,
                "updated", leader_pause_ns=pause))
            self._sample_budget(finished)
            t = max(t, finished)
        return t, False

    def _probe(self, node: ClusterNode, now: int) -> int:
        """Exercise a validating pair with one write/read round trip.

        The probe runs through the node's own runtime, so the follower
        replays it from the ring — exactly the traffic shape that
        surfaces a cross-version divergence during validation.  Probe
        keys are namespaced (``__probe-…``) so fleet scenarios can keep
        them out of their semantic tables.
        """
        client = VirtualClient(node.kernel, node.address,
                               f"probe-{node.name}")
        t = now
        key = f"__probe-{node.name}"
        for line in (f"PUT {key} ok".encode("ascii"),
                     f"GET {key}".encode("ascii")):
            client.command(node.runtime, line, now=t)
            t += MILLISECOND
        client.close()
        node.pump(t)
        return t

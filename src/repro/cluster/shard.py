"""Key-hash sharding: fleet topology, replica groups, the shard map.

A fleet is ``shards × replicas_per_shard`` nodes.  Every key hashes to
exactly one :class:`Shard` (CRC-32 modulo the shard count — stable
across runs and Python versions, so fleet reports stay bit-identical);
the shard's replicas jointly own that key range.  Writes fan out to
every healthy replica of the owning shard, which is what lets a session
fail over within the shard without losing an acknowledged write.

:class:`FleetSpec` is the declarative topology — it validates itself,
and the same validators back both the :class:`~repro.cluster.
orchestrator.FleetOrchestrator` (which refuses to drive a malformed
fleet) and mvelint's MVE7xx analyzer (which flags it before deploy).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.node import ClusterNode
from repro.net.ring_wire import RingLink


@dataclass(frozen=True)
class FleetSpec:
    """Shape of a fleet: shard count, replication factor, wave width.

    ``wave_size`` is how many replica *slots* per shard one upgrade wave
    covers.  The orchestrator still serializes within a shard (the
    §1.2 budget: at most one leader-follower pair per shard at a time),
    so the wave width trades upgrade duration against how much of a
    shard is tied up in one wave — which is exactly what MVE701/MVE702
    lint about.

    ``cross_node_pairs`` houses each MVE follower on the shard's *next*
    replica node instead of the leader's own host, which makes the pair
    a distributed system: its ring crosses ``ring_link``, whose
    latency/bandwidth/window/timeout budget must be declared explicitly
    (MVE704 territory — see :meth:`link_problems`).
    """

    shards: int
    replicas_per_shard: int
    wave_size: int = 1
    cross_node_pairs: bool = False
    ring_link: Optional[RingLink] = None

    def shape_problems(self) -> List[str]:
        """Malformed counts (MVE703 territory; empty list means sane)."""
        problems: List[str] = []
        if self.shards < 1:
            problems.append(f"fleet needs at least one shard, "
                            f"got {self.shards}")
        if self.replicas_per_shard < 1:
            problems.append(f"each shard needs at least one replica, "
                            f"got {self.replicas_per_shard}")
        if self.wave_size < 1:
            problems.append(f"upgrade waves need at least one replica "
                            f"slot, got {self.wave_size}")
        return problems

    def drain_problems(self) -> List[str]:
        """Topologies one wave would drain (MVE701 territory)."""
        if self.shape_problems():
            return []
        if self.replicas_per_shard < self.wave_size:
            return [f"upgrade waves span {self.wave_size} replica slots "
                    f"but each shard has only {self.replicas_per_shard} "
                    f"replica(s) — one wave would drain whole shards"]
        return []

    def advisories(self) -> List[str]:
        """Legal-but-risky shapes (MVE702 territory)."""
        if self.shape_problems() or self.drain_problems():
            return []
        if self.replicas_per_shard == self.wave_size:
            return [f"a full wave touches all {self.replicas_per_shard} "
                    f"replica(s) of a shard — no replica stays outside "
                    f"the upgrade"]
        return []

    def link_problems(self) -> List[str]:
        """Cross-node placement without a usable link (MVE704).

        A leader-follower pair split across nodes replicates the ring
        over the network; refusing to declare the link's cost budget
        hides real latency, back-pressure, and partition exposure from
        every downstream report — so the topology is rejected outright.
        """
        problems: List[str] = []
        if self.cross_node_pairs and self.ring_link is None:
            problems.append(
                "cross-node MVE pairs require a declared ring link "
                "budget (latency/bandwidth/window), got none")
        if self.cross_node_pairs and self.replicas_per_shard < 2:
            problems.append(
                "cross-node MVE pairs need a second replica node per "
                f"shard to house the follower, got "
                f"{self.replicas_per_shard}")
        if self.ring_link is not None:
            problems.extend(self.ring_link.problems())
        return problems

    def problems(self) -> List[str]:
        """Everything that must block an orchestrator (empty = usable)."""
        return self.shape_problems() + self.drain_problems() \
            + self.link_problems()

    def waves(self) -> List[Tuple[int, ...]]:
        """Replica indexes per upgrade wave; the canary wave comes first.

        Replica 0 of every shard is the canary.  The remaining indexes
        are chunked ``wave_size`` at a time::

            FleetSpec(3, 3, wave_size=1).waves()  ->  [(0,), (1,), (2,)]
            FleetSpec(2, 5, wave_size=2).waves()  ->  [(0,), (1, 2), (3, 4)]
        """
        plan: List[Tuple[int, ...]] = [(0,)]
        rest = list(range(1, self.replicas_per_shard))
        for start in range(0, len(rest), self.wave_size):
            plan.append(tuple(rest[start:start + self.wave_size]))
        return plan


class Shard:
    """One replica group: the nodes jointly owning one key range."""

    def __init__(self, index: int, nodes: List[ClusterNode]) -> None:
        if not nodes:
            raise ValueError(f"shard {index} has no replicas")
        self.index = index
        self.nodes = list(nodes)
        for replica_index, node in enumerate(self.nodes):
            node.shard_index = index
            node.replica_index = replica_index

    def healthy_nodes(self) -> List[ClusterNode]:
        """Replicas that have not crashed (writes fan out to these)."""
        return [node for node in self.nodes if node.healthy()]

    def serving_nodes(self) -> List[ClusterNode]:
        """Replicas new session placements may land on."""
        return [node for node in self.nodes
                if node.accepting_new_connections()]

    def mve_pairs(self) -> int:
        """Replicas currently running a leader-follower pair — the
        quantity the orchestrator's per-shard budget caps at one."""
        return sum(1 for node in self.nodes if node.in_mve_mode)


class ShardMap:
    """Stable key-hash routing across a fleet's shards."""

    def __init__(self, shards: List[Shard]) -> None:
        if not shards:
            raise ValueError("a shard map needs at least one shard")
        self.shards = list(shards)

    def shard_for(self, key: str) -> Shard:
        """The shard owning ``key`` (CRC-32 of the key, modulo)."""
        digest = zlib.crc32(key.encode("utf-8"))
        return self.shards[digest % len(self.shards)]

    def nodes(self) -> List[ClusterNode]:
        """Every node in the fleet, shard-major order."""
        return [node for shard in self.shards for node in shard.nodes]

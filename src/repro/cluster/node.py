"""One cluster node."""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.core import Mvedsua
from repro.dsu.transform import TransformRegistry
from repro.net.kernel import VirtualKernel
from repro.servers.native import NativeRuntime
from repro.syscalls.costs import AppProfile


class NodeStatus(enum.Enum):
    """Load-balancer-visible node state."""

    SERVING = "serving"
    DRAINING = "draining"
    RESTARTING = "restarting"
    #: A canary whose update was demoted (divergence during validation).
    #: Existing sessions keep being served — the runtime rolled back to
    #: the old leader with no state loss — but no *new* placement lands
    #: here until the fleet-wide rollback completes.
    DEMOTED = "demoted"
    #: Crashed or unreachable.  Routing must fail sessions over; only an
    #: operator replacing the node brings it back.
    FAILED = "failed"


class ClusterNode:
    """A server process plus its place in the cluster."""

    def __init__(self, name: str, kernel: VirtualKernel, server: Any,
                 profile: AppProfile, *,
                 transforms: Optional[TransformRegistry] = None,
                 ring_link: Optional[Any] = None) -> None:
        self.name = name
        self.kernel = kernel
        self.server = server
        self.profile = profile
        self.status = NodeStatus.SERVING
        #: Fleet identity, assigned by :class:`repro.cluster.shard.Shard`
        #: when the node joins a replica group (None in flat clusters).
        self.shard_index: Optional[int] = None
        self.replica_index: Optional[int] = None
        #: When set (a repro.net RingLink), this node's MVE follower is
        #: housed on a *different* fleet node and the pair's ring
        #: crosses the declared link.
        self.ring_link = ring_link
        if transforms is not None:
            self.runtime: Any = Mvedsua(kernel, server, profile,
                                        transforms=transforms,
                                        ring_link=ring_link)
        else:
            self.runtime = NativeRuntime(kernel, server, profile,
                                         with_kitsune=True)

    @property
    def address(self):
        return self.server.address

    @property
    def current_server(self) -> Any:
        """The process currently serving clients.

        Under Mvedsua this is the MVE group's *leader*, which after a
        promotion is the forked (updated) copy rather than the process
        the node started with.
        """
        if isinstance(self.runtime, Mvedsua):
            return self.runtime.runtime.leader.server
        return self.server

    @property
    def version_name(self) -> str:
        return self.current_server.version.name

    @property
    def in_mve_mode(self) -> bool:
        """True while this node pays for a leader-follower pair.

        The fleet orchestrator samples this per shard to enforce (and
        report) the paper's §1.2 budget: at most one replica per shard
        in MVE mode at any time.
        """
        if isinstance(self.runtime, Mvedsua):
            return self.runtime.runtime.in_mve_mode
        return False

    def accepting_new_connections(self) -> bool:
        """True when the balancer may route new clients here."""
        return self.status is NodeStatus.SERVING

    def healthy(self) -> bool:
        """False once the node has crashed; routing must avoid it."""
        return self.status is not NodeStatus.FAILED

    def active_sessions(self) -> int:
        """Connections currently attached to this node."""
        return len(self.current_server.sessions)

    def pump(self, now: int) -> int:
        """Serve pending input."""
        return self.runtime.pump(now)

"""The deterministic fleet scenario behind ``python -m repro fleet``.

This module assembles the pieces — :class:`~repro.cluster.shard.
ShardMap`, :class:`~repro.cluster.balancer.FleetBalancer`,
:class:`~repro.cluster.orchestrator.FleetOrchestrator` — into a
reproducible end-to-end run: a sharded kvstore fleet serves seeded
client traffic through two upgrade rounds (a buggy 2.0 build the canary
wave demotes and rolls back fleet-wide, then the fixed 2.0 build that
completes), with the chaos invariant checker auditing every
client-visible reply.  The emitted ``repro-fleet/1`` report is
bit-identical across runs with the same seed.

Sessions are *shard-sticky*: each session keeps one connection per
shard, pinned to a replica until that replica fails, at which point the
session fails over within the shard.  Writes fan out to every healthy
replica of the owning shard — that fan-out is what makes failover
lossless, and the per-shard replica-agreement cross-check at the end of
a run is what proves it stayed lossless.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.invariants import ClientObservation, check_run
from repro.chaos.scenarios import BuggyKVStoreV2, _semantic_table
from repro.cluster.balancer import FleetBalancer
from repro.cluster.node import ClusterNode, NodeStatus
from repro.cluster.orchestrator import (FleetOrchestrator, NODE_OUTCOMES,
                                        ROUND_OUTCOMES)
from repro.cluster.shard import FleetSpec, Shard, ShardMap
from repro.errors import KernelError, ServerCrash
from repro.net.kernel import VirtualKernel
from repro.net.ring_wire import RingLink
from repro.servers.kvstore import (KVStoreServer, KVStoreV1, KVStoreV2,
                                   kv_rules_from_dsl, kv_transforms)
from repro.sim.engine import MILLISECOND, SECOND
from repro.syscalls.costs import PROFILES
from repro.workloads.client import VirtualClient

#: Schema identifier stamped into every fleet report.
FLEET_SCHEMA = "repro-fleet/1"

#: Prefix of orchestrator validation-probe keys; they are per-node, so
#: they are excluded from cross-replica agreement and the final table.
PROBE_PREFIX = "__probe"

#: Offered rate of the ``--openloop`` traffic mode.  The closed-loop
#: default paces one command per 100 ms (10/s); the open-loop generator
#: offers 4x that so upgrade-round pauses actually queue arrivals.
OPENLOOP_RATE_PER_SEC = 40.0

#: The link budget ``--distributed`` declares for every leader→follower
#: pair: same-datacenter numbers (0.5 ms one way, 1 GB/s, 8 frames in
#: flight, 250 ms of tolerated partition delay before demotion).
DEFAULT_FLEET_LINK = RingLink()


def build_kv_fleet(spec: FleetSpec) -> Tuple[VirtualKernel, ShardMap,
                                             FleetBalancer]:
    """Stand up a ``shards × replicas`` kvstore fleet on one kernel.

    Node ``s<shard>-r<replica>`` listens on ``10.<shard>.0.<replica+1>``;
    every node runs under its own Mvedsua supervisor.  An installed
    chaos injector is armed with the *server* domains (client syscalls
    are never faulted) and wired to the tracer, same as the campaign
    scenario.
    """
    problems = spec.problems()
    if problems:
        raise ValueError("unusable fleet topology: " + "; ".join(problems))
    kernel = VirtualKernel()
    link = spec.ring_link if spec.cross_node_pairs else None
    shards: List[Shard] = []
    for s in range(spec.shards):
        nodes: List[ClusterNode] = []
        for r in range(spec.replicas_per_shard):
            server = KVStoreServer(KVStoreV1(),
                                   address=(f"10.{s}.0.{r + 1}", 7000))
            server.attach(kernel)
            nodes.append(ClusterNode(f"s{s}-r{r}", kernel, server,
                                     PROFILES["kvstore"],
                                     transforms=kv_transforms(),
                                     ring_link=link))
        shards.append(Shard(s, nodes))
    shard_map = ShardMap(shards)
    chaos = kernel.chaos
    if chaos is not None:
        chaos.domain_filter = {node.server.domain
                               for node in shard_map.nodes()}
        if kernel.tracer is not None:
            chaos.tracer = kernel.tracer
    return kernel, shard_map, FleetBalancer(shard_map)


class FleetSession:
    """One client session routed by the fleet balancer.

    A session is the fleet analogue of the campaign's closed-loop
    client: it records every exchange as a
    :class:`~repro.chaos.invariants.ClientObservation` so the kvstore
    invariant can audit the stream for gaps and lost acknowledged
    writes — including across a replica failover.
    """

    def __init__(self, name: str, balancer: FleetBalancer,
                 observations: List[ClientObservation]) -> None:
        self.name = name
        self.balancer = balancer
        self.observations = observations
        self._conns: Dict[str, VirtualClient] = {}
        self._sticky: Dict[int, ClusterNode] = {}

    def _client(self, node: ClusterNode) -> VirtualClient:
        client = self._conns.get(node.name)
        if client is None:
            client = VirtualClient(node.kernel, node.address,
                                   f"{self.name}@{node.name}")
            self._conns[node.name] = client
        return client

    def _mark_failed(self, node: ClusterNode) -> None:
        node.status = NodeStatus.FAILED
        self._conns.pop(node.name, None)
        for shard_index in [index for index, sticky
                            in self._sticky.items() if sticky is node]:
            del self._sticky[shard_index]

    def _sticky_replica(self, shard, now: int) -> ClusterNode:
        sticky = self._sticky.get(shard.index)
        if sticky is not None and sticky.healthy():
            return sticky
        node = self.balancer.pick_replica(shard, now)
        if sticky is not None:
            # The pinned replica died; the session re-homes within the
            # shard (the acked writes are safe — they fanned out).
            self.balancer.failovers += 1
            tracer = self.balancer.kernel.tracer
            if tracer is not None:
                tracer.on_fleet("failover", now, shard=shard.index,
                                session=self.name, node=node.name)
        self._sticky[shard.index] = node
        return node

    def _issue(self, node: ClusterNode, line: str,
               now: int) -> Optional[bytes]:
        """One request to one replica; ``None`` means the replica
        failed mid-exchange (and is marked failed)."""
        try:
            reply = self._client(node).command(node.runtime,
                                               line.encode("latin-1"),
                                               now=now)
        except (KernelError, ServerCrash):
            self._mark_failed(node)
            return None
        return reply if reply else None

    def command(self, line: str, now: int) -> Optional[bytes]:
        """Route one ``PUT``/``GET`` command and record the exchange."""
        key = line.split()[1]
        shard = self.balancer.shard_for(key)
        reply: Optional[bytes] = None
        try:
            sticky = self._sticky_replica(shard, now)
        except KernelError:
            self.observations.append(
                ClientObservation(self.name, line, None))
            return None
        if line.startswith("PUT "):
            # Fan the write out to the other healthy replicas first so
            # the acknowledgement below really means "replicated".
            for peer in shard.healthy_nodes():
                if peer is not sticky:
                    self._issue(peer, line, now)
        reply = self._issue(sticky, line, now)
        if reply is None and not sticky.healthy():
            # One retry on a fresh replica of the same shard.
            try:
                sticky = self._sticky_replica(shard, now)
                reply = self._issue(sticky, line, now)
            except KernelError:
                reply = None
        self.observations.append(
            ClientObservation(self.name, line, reply))
        return reply


def _merged_final_table(shard_map: ShardMap) -> Tuple[Dict[str, str],
                                                      List[str]]:
    """The fleet's semantic table plus replica-agreement problems.

    Each shard contributes the keys it owns, read from its first
    healthy replica; every other healthy replica must agree on those
    keys (probe keys excluded — they are deliberately per-node).
    """
    merged: Dict[str, str] = {}
    problems: List[str] = []
    for shard in shard_map.shards:
        healthy = shard.healthy_nodes()
        if not healthy:
            problems.append(f"shard {shard.index} has no healthy replica")
            continue
        tables = [(node, _semantic_table(node.current_server))
                  for node in healthy]
        _, authoritative = tables[0]
        for key, value in authoritative.items():
            if key.startswith(PROBE_PREFIX):
                continue
            if shard_map.shard_for(key) is not shard:
                continue
            merged[key] = value
            for node, table in tables[1:]:
                if table.get(key) != value:
                    problems.append(
                        f"replica disagreement on {key!r} in shard "
                        f"{shard.index}: {node.name} has "
                        f"{table.get(key)!r}, expected {value!r}")
    return merged, problems


def _pair_placement(spec: FleetSpec, shard_map: ShardMap) -> Dict[str, str]:
    """Which node houses each leader's follower: the shard's next
    replica, round-robin, so no node hosts two follower processes."""
    placement: Dict[str, str] = {}
    for shard in shard_map.shards:
        n = len(shard.nodes)
        for node in shard.nodes:
            peer = shard.nodes[(node.replica_index + 1) % n]
            placement[node.name] = peer.name
    return placement


def run_fleet_scenario(scenario: str = "canary-kvstore", seed: int = 1, *,
                       shards: int = 3, replicas: int = 3,
                       sessions: int = 4, commands: int = 36,
                       openloop: bool = False,
                       distributed: bool = False) -> Dict[str, Any]:
    """Run the canary-upgrade fleet scenario; returns the report dict.

    Three traffic phases bracket two upgrade rounds: a buggy 2.0 build
    whose canaries all diverge (round outcome ``rolled-back`` — the
    fleet stays on 1.0), then the fixed 2.0 build (``completed``).
    Everything is driven from ``random.Random(seed)`` and virtual time,
    so the report is bit-identical across runs.

    ``openloop=True`` replaces the fixed 100 ms command pacing with
    Poisson arrivals and Zipf-popular GET keys from dedicated
    :mod:`repro.sim.rng` streams (the closed-loop rng sequence is
    untouched, so the default report stays byte-identical).

    ``distributed=True`` houses each MVE follower on the shard's next
    replica node behind :data:`DEFAULT_FLEET_LINK`: every pair's ring
    crosses the link as ``repro-ring/1`` frames, and the report grows a
    ``distring`` section with the wire telemetry (again, only in that
    mode — the default report stays byte-identical).
    """
    spec = FleetSpec(shards, replicas, wave_size=1,
                     cross_node_pairs=distributed,
                     ring_link=DEFAULT_FLEET_LINK if distributed else None)
    kernel, shard_map, balancer = build_kv_fleet(spec)
    orchestrator = FleetOrchestrator(balancer, spec,
                                     rules=kv_rules_from_dsl(),
                                     validation_window_ns=SECOND)
    rng = random.Random(seed)
    observations: List[ClientObservation] = []
    pool = [FleetSession(f"s{i}", balancer, observations)
            for i in range(sessions)]
    known_keys: List[str] = []
    next_key = [0]
    if openloop:
        from repro.sim.rng import RngStreams
        from repro.workloads.arrivals import PoissonArrivals
        from repro.workloads.keyspace import ZipfKeys
        streams = RngStreams(seed)
        arrival_rng = streams.stream("fleet.openloop.arrivals")
        key_rng = streams.stream("fleet.openloop.keys")
        arrivals = PoissonArrivals(OPENLOOP_RATE_PER_SEC)
        # Rank 0 (most popular) maps onto the oldest known key; the
        # modulus keeps the rank meaningful while the key set grows.
        zipf = ZipfKeys(256, exponent=1.1)

    def traffic(t: int, count: int) -> int:
        times = (list(arrivals.times(arrival_rng, count, start_ns=t))
                 if openloop else None)
        for n in range(count):
            session = pool[n % len(pool)]
            at = times[n] if openloop else t
            if known_keys and rng.random() < 0.4:
                if openloop:
                    key = known_keys[zipf.sample(key_rng)
                                     % len(known_keys)]
                else:
                    key = rng.choice(known_keys)
                line = f"GET {key}"
            else:
                key = f"{session.name}-k{next_key[0]}"
                next_key[0] += 1
                line = f"PUT {key} v{next_key[0]}"
                known_keys.append(key)
            session.command(line, at)
            if not openloop:
                t += 100 * MILLISECOND
        return times[-1] + 1 if openloop and times else t

    phase = max(1, commands // 3)
    t = SECOND
    t = traffic(t, phase)
    round1 = orchestrator.run_round(BuggyKVStoreV2, t, label="2.0-buggy")
    t = max(t, round1.finished_at) + 100 * MILLISECOND
    t = traffic(t, phase)
    round2 = orchestrator.run_round(KVStoreV2, t, label="2.0")
    t = max(t, round2.finished_at) + 100 * MILLISECOND
    t = traffic(t, max(1, commands - 2 * phase))

    final_table, agreement_problems = _merged_final_table(shard_map)
    problems = check_run(observations, final_table) + agreement_problems
    syscalls = sum(getattr(node.runtime, "runtime", node.runtime)
                   .total_syscalls for node in shard_map.nodes())
    chaos = kernel.chaos
    report: Dict[str, Any] = {
        "schema": FLEET_SCHEMA,
        "scenario": scenario,
        "seed": seed,
        "topology": {
            "shards": spec.shards,
            "replicas_per_shard": spec.replicas_per_shard,
            "wave_size": spec.wave_size,
            "nodes": [node.name for node in shard_map.nodes()],
        },
        "rounds": [round1.as_dict(), round2.as_dict()],
        "observations": [obs.as_dict() for obs in observations],
        "invariants": {
            "problems": problems,
            "checked_observations": len(observations),
        },
        "final_versions": {node.name: node.version_name
                           for node in shard_map.nodes()},
        "max_mve_pairs_per_shard": orchestrator.max_mve_pairs_per_shard,
        "rollbacks": orchestrator.rollbacks,
        "failovers": balancer.failovers,
        "partitions": balancer.partitions,
        "syscalls": syscalls,
        "injections": ([injection.as_dict()
                        for injection in chaos.injections]
                       if chaos is not None else []),
    }
    if openloop:
        # Added only in open-loop mode: the default report must stay
        # byte-identical to earlier releases.
        report["traffic"] = {
            "mode": "open-loop",
            "process": "poisson",
            "rate_per_sec": OPENLOOP_RATE_PER_SEC,
            "key_distribution": "zipf",
        }
    if distributed:
        # Added only in distributed mode, for the same reason.
        wire = {"acks_received": 0, "bytes_sent": 0, "frames_delayed": 0,
                "frames_dropped": 0, "frames_reordered": 0,
                "frames_sent": 0, "inflight_high_watermark": 0,
                "partition_delay_ns": 0, "partition_timeouts": 0,
                "resyncs": 0}
        ring_stalls = 0
        for node in shard_map.nodes():
            runtime = node.runtime.runtime
            ring_stalls += runtime.ring_stalls
            stats = runtime.ring.stats()
            for key in wire:
                if key == "inflight_high_watermark":
                    wire[key] = max(wire[key], stats[key])
                else:
                    wire[key] += stats[key]
        report["distring"] = {
            "link": spec.ring_link.as_dict(),
            "pairs": _pair_placement(spec, shard_map),
            "ring_stalls": ring_stalls,
            "wire": wire,
        }
    return report


def validate_report(payload: Dict[str, Any]) -> List[str]:
    """Schema-level problems with a fleet report (empty = valid)."""
    problems: List[str] = []
    if payload.get("schema") != FLEET_SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, "
                        f"expected {FLEET_SCHEMA!r}")
    topology = payload.get("topology", {})
    for field in ("shards", "replicas_per_shard", "wave_size"):
        value = topology.get(field)
        if not isinstance(value, int) or value < 1:
            problems.append(f"topology.{field} must be a positive "
                            f"integer, got {value!r}")
    rounds = payload.get("rounds")
    if not isinstance(rounds, list) or not rounds:
        problems.append("report has no rounds")
        rounds = []
    for index, round_payload in enumerate(rounds):
        outcome = round_payload.get("outcome")
        if outcome not in ROUND_OUTCOMES:
            problems.append(f"rounds[{index}].outcome {outcome!r} not in "
                            f"{ROUND_OUTCOMES}")
        for rindex, record in enumerate(round_payload.get("records", [])):
            if record.get("outcome") not in NODE_OUTCOMES:
                problems.append(
                    f"rounds[{index}].records[{rindex}].outcome "
                    f"{record.get('outcome')!r} not in {NODE_OUTCOMES}")
    pairs = payload.get("max_mve_pairs_per_shard")
    if not isinstance(pairs, int) or pairs > 1 or pairs < 0:
        problems.append(f"max_mve_pairs_per_shard must be 0 or 1, "
                        f"got {pairs!r}")
    invariants = payload.get("invariants", {})
    if not isinstance(invariants.get("problems"), list):
        problems.append("invariants.problems must be a list")
    distring = payload.get("distring")
    if distring is not None:
        link = distring.get("link", {})
        for field in ("latency_ns", "bandwidth_bps", "window",
                      "demote_timeout_ns"):
            value = link.get(field)
            if not isinstance(value, int) or value < 0:
                problems.append(f"distring.link.{field} must be a "
                                f"non-negative integer, got {value!r}")
        wire = distring.get("wire", {})
        for field, value in sorted(wire.items()):
            if not isinstance(value, int) or value < 0:
                problems.append(f"distring.wire.{field} must be a "
                                f"non-negative integer, got {value!r}")
    return problems

"""Syscall-stream record/replay: persistent leader streams as artifacts.

``repro.replay`` turns the leader's syscall stream into a versioned
on-disk artifact (``repro-stream/1``, :mod:`repro.replay.stream`) via a
process-wide recorder (:mod:`repro.replay.recorder`) claimed by the
first MVE runtime, and re-drives candidate versions against recordings
offline (:mod:`repro.replay.engine`) — shadow testing of updates
against captured traffic, plus time-travel forensics for divergences.
:mod:`repro.replay.parallel` holds the shared multiprocessing machinery
the chaos and perf campaigns use to shard work across workers.

Only the stream format and the recorder are imported here: the MVE
runtime hooks the recorder at construction time, so this package's
import-time footprint must stay cycle-free (engine/apps/parallel import
servers and rules and are pulled in lazily by the CLIs).
"""

from repro.replay.recorder import (StreamRecorder, current_recorder,
                                   install_recorder, recording,
                                   uninstall_recorder)
from repro.replay.stream import (STREAM_SCHEMA, RecordedStream, StreamError,
                                 read_stream, validate_stream_file,
                                 write_stream)

__all__ = [
    "STREAM_SCHEMA",
    "RecordedStream",
    "StreamError",
    "StreamRecorder",
    "current_recorder",
    "install_recorder",
    "read_stream",
    "recording",
    "uninstall_recorder",
    "validate_stream_file",
    "write_stream",
]

"""``python -m repro replay`` — re-drive a version against a recording.

    python -m repro replay STREAM                       # recorded version
    python -m repro replay STREAM --against 2.0-buggy   # shadow test
    python -m repro replay STREAM --json                # report to stdout
    python -m repro replay STREAM --out REPLAY.json     # report to a file
    python -m repro replay STREAM --validate            # check the artifact

Exit status: 0 when the candidate matched the recording end to end,
1 on divergence or crash (the shadow-testing gate), 2 on a malformed
stream or an unknown app/version.  See ``docs/replay.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.replay.apps import ReplayAppError, replay_app
from repro.replay.engine import replay_stream
from repro.replay.stream import StreamError, read_stream, validate_stream_file


def replay_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro replay",
        description="Replay a candidate version against a recorded "
                    "syscall stream (repro-stream/1).")
    parser.add_argument("stream", metavar="STREAM",
                        help="path to a recorded stream artifact")
    parser.add_argument("--against", metavar="VERSION",
                        help="candidate version to re-drive (default: the "
                             "version the stream was recorded from)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the replay report as JSON")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the replay report JSON to PATH")
    parser.add_argument("--validate", action="store_true",
                        help="only validate the stream artifact and exit")
    args = parser.parse_args(argv)

    if args.validate:
        problems = validate_stream_file(args.stream)
        for problem in problems:
            print(f"invalid stream: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.stream}: valid repro-stream/1")
        return 2 if problems else 0

    try:
        stream = read_stream(args.stream)
        app = replay_app(stream.app)
        report = replay_stream(stream, against=args.against, app=app)
    except (OSError, StreamError, ReplayAppError) as exc:
        print(f"replay failed: {exc}", file=sys.stderr)
        return 2

    payload = report.as_dict()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"stream   : {args.stream}")
        print(f"app      : {report.app} scenario={report.scenario!r}")
        print(f"recorded : {report.recorded_version} "
              f"(final leader {report.final_version_recorded})")
        print(f"against  : {report.against}")
        print(f"replayed : {report.iterations_replayed}/{report.iterations} "
              f"iterations, {report.records_replayed} records, "
              f"{report.rules_fired} rules fired")
        if report.ok:
            print("outcome  : match (zero divergences)")
        else:
            detail = report.divergence or {}
            print(f"outcome  : {report.outcome} at iteration "
                  f"{detail.get('iteration')} "
                  f"(t={detail.get('at')} ns, recorded leader "
                  f"{detail.get('recorded_leader')})")
            print(f"           {detail.get('detail')}")
            if report.forensics is not None:
                bundle = report.forensics
                print(f"forensics: {len(bundle.ring_last_k)} ring records, "
                      f"{len(bundle.expected_records)} expected / "
                      f"{len(bundle.issued_records)} issued, "
                      f"rules fired {list(bundle.rules_fired)}")
        if args.out:
            print(f"wrote report: {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(replay_main())

"""The ``repro-stream/1`` artifact: a persisted leader syscall stream.

A recorded stream turns the leader's syscall/ring traffic into a
first-class, versioned artifact — following DiOS-style reproducible
execution: re-driving a follower (or a *candidate* new version) against
the recording reproduces the original divergence verdict offline, with
no workload, kernel scheduling, or chaos plan required at replay time.

Framing is **length-prefixed JSONL**: every line is

    ``XXXXXXXX <json>\\n``

where ``XXXXXXXX`` is the zero-padded lower-case hex byte length of the
UTF-8 ``<json>`` payload that follows the single separating space.  The
prefix makes truncation and in-place corruption detectable without
parsing: a reader checks the arithmetic before it ever calls
``json.loads``.  Entry order is the recording order:

* exactly one ``header`` first — schema id, app, scenario, the initial
  leader version, cost profile, ring capacity, and the fault plan in
  force (``null`` for a fault-free recording);
* ``iter`` entries — one leader event-loop iteration: completion time,
  the emitting leader's version, whether a follower was attached, and
  the iteration's syscall records *before* rewrite rules (rules are a
  replay-side concern: the same stream can be replayed against any
  candidate version);
* ``fork`` / ``control`` entries — follower attach points and
  promote/crash-promote markers, so replay knows which version produced
  each segment of the stream;
* exactly one ``footer`` last — iteration/record/control totals, which
  double as an integrity check.

Record payload bytes are stored as latin-1 strings (reversible for any
byte value); tuple results are tagged so they round-trip as tuples.

This module imports only the standard library plus the leaf modules
``repro.errors`` and ``repro.syscalls.model`` so the recorder hook in
``repro.mve.varan`` can depend on it without cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import SimulationError
from repro.syscalls.model import Sys, SyscallRecord

#: Stream artifact schema identifier (bump on shape changes).
STREAM_SCHEMA = "repro-stream/1"

#: Entry types legal after the header, in the vocabulary checked by
#: :func:`validate_stream_file`.
ENTRY_TYPES = ("iter", "fork", "control", "footer")


class StreamError(SimulationError):
    """A malformed or unreadable ``repro-stream/1`` artifact."""


# ---------------------------------------------------------------------------
# Record (de)serialization
# ---------------------------------------------------------------------------

def serialize_record(record: SyscallRecord) -> Dict[str, Any]:
    """One syscall record as JSON-ready data (reversible)."""
    entry: Dict[str, Any] = {"sys": record.name.value, "fd": record.fd}
    if record.data:
        entry["data"] = record.data.decode("latin-1")
    if record.result is not None:
        entry["result"] = _serialize_result(record.result)
    if record.aux:
        entry["aux"] = {str(k): v for k, v in record.aux.items()}
    return entry


def _serialize_result(result: Any) -> Any:
    if isinstance(result, (list, tuple)):
        return {"t": [_serialize_result(item) for item in result]}
    if isinstance(result, bytes):
        return {"b": result.decode("latin-1")}
    return result


def _deserialize_result(result: Any) -> Any:
    if isinstance(result, dict):
        if "t" in result:
            return tuple(_deserialize_result(item) for item in result["t"])
        if "b" in result:
            return result["b"].encode("latin-1")
    return result


def deserialize_record(entry: Dict[str, Any]) -> SyscallRecord:
    """Rebuild a :class:`SyscallRecord` from its serialized form."""
    try:
        name = Sys(entry["sys"])
    except (KeyError, ValueError) as exc:
        raise StreamError(f"bad syscall record entry: {entry!r}") from exc
    kwargs: Dict[str, Any] = {}
    if "aux" in entry:
        kwargs["aux"] = dict(entry["aux"])
    return SyscallRecord(name, fd=int(entry.get("fd", -1)),
                         data=entry.get("data", "").encode("latin-1"),
                         result=_deserialize_result(entry.get("result")),
                         **kwargs)


# ---------------------------------------------------------------------------
# Length-prefixed framing
# ---------------------------------------------------------------------------

def frame_line(payload: Dict[str, Any]) -> str:
    """One length-prefixed JSONL line (without the trailing newline)."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return f"{len(body.encode('utf-8')):08x} {body}"


def unframe_line(line: str, index: int) -> Dict[str, Any]:
    """Parse one framed line, checking the length prefix first."""
    if len(line) < 10 or line[8] != " ":
        raise StreamError(f"line {index}: missing length prefix")
    try:
        declared = int(line[:8], 16)
    except ValueError:
        raise StreamError(f"line {index}: bad length prefix "
                          f"{line[:8]!r}") from None
    body = line[9:]
    actual = len(body.encode("utf-8"))
    if actual != declared:
        raise StreamError(f"line {index}: length prefix says {declared} "
                          f"bytes but the payload has {actual} "
                          f"(truncated or corrupted artifact)")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise StreamError(f"line {index}: bad JSON payload: {exc}") from None
    if not isinstance(payload, dict):
        raise StreamError(f"line {index}: entry is not an object")
    return payload


# ---------------------------------------------------------------------------
# The in-memory form
# ---------------------------------------------------------------------------

@dataclass
class RecordedStream:
    """A parsed ``repro-stream/1`` artifact."""

    #: Header metadata (scenario, app, versions, fault plan, ...).
    header: Dict[str, Any]
    #: Every non-header, non-footer entry, in recording order.
    entries: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def app(self) -> str:
        return self.header.get("app", "")

    @property
    def scenario(self) -> str:
        return self.header.get("scenario", "")

    @property
    def initial_version(self) -> str:
        return self.header.get("initial_version", "")

    @property
    def fault_plan(self) -> Optional[Dict[str, Any]]:
        return self.header.get("fault_plan")

    def iterations(self) -> List[Dict[str, Any]]:
        return [entry for entry in self.entries if entry["type"] == "iter"]

    def record_count(self) -> int:
        return sum(len(entry["records"]) for entry in self.iterations())


def write_stream(path: str, header: Dict[str, Any],
                 entries: Iterable[Dict[str, Any]]) -> int:
    """Write a framed stream artifact; returns the entry count written
    (including header and footer)."""
    iterations = records = controls = 0
    lines = [frame_line(header)]
    for entry in entries:
        if entry.get("type") == "iter":
            iterations += 1
            records += len(entry.get("records", ()))
        elif entry.get("type") == "control":
            controls += 1
        lines.append(frame_line(entry))
    lines.append(frame_line({"type": "footer", "iterations": iterations,
                             "records": records, "controls": controls}))
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def read_stream(path: str) -> RecordedStream:
    """Parse a stream artifact, raising :class:`StreamError` on any
    framing, schema, or integrity problem."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle if line.strip()]
    if not lines:
        raise StreamError(f"{path}: empty stream artifact")
    header = unframe_line(lines[0], 0)
    if header.get("type") != "header":
        raise StreamError(f"{path}: first entry is "
                          f"{header.get('type')!r}, expected 'header'")
    if header.get("schema") != STREAM_SCHEMA:
        raise StreamError(f"{path}: schema is {header.get('schema')!r}, "
                          f"expected {STREAM_SCHEMA!r}")
    entries: List[Dict[str, Any]] = []
    footer: Optional[Dict[str, Any]] = None
    for index, line in enumerate(lines[1:], start=1):
        entry = unframe_line(line, index)
        kind = entry.get("type")
        if footer is not None:
            raise StreamError(f"line {index}: entry after the footer")
        if kind == "footer":
            footer = entry
            continue
        if kind not in ENTRY_TYPES:
            raise StreamError(f"line {index}: unknown entry type {kind!r}")
        entries.append(entry)
    if footer is None:
        raise StreamError(f"{path}: missing footer (truncated artifact)")
    iterations = sum(1 for e in entries if e["type"] == "iter")
    records = sum(len(e.get("records", ())) for e in entries
                  if e["type"] == "iter")
    controls = sum(1 for e in entries if e["type"] == "control")
    for key, have in (("iterations", iterations), ("records", records),
                      ("controls", controls)):
        if footer.get(key) != have:
            raise StreamError(
                f"{path}: footer says {footer.get(key)} {key} but the "
                f"stream holds {have} (truncated artifact)")
    return RecordedStream(header=header, entries=entries)


def validate_stream_file(path: str) -> List[str]:
    """Problems with a stream artifact (empty list means valid)."""
    try:
        stream = read_stream(path)
    except (OSError, StreamError) as exc:
        return [str(exc)]
    problems: List[str] = []
    for key in ("app", "scenario", "initial_version"):
        if not isinstance(stream.header.get(key), str) \
                or not stream.header.get(key):
            problems.append(f"header missing {key!r}")
    if not isinstance(stream.header.get("ring_capacity"), int):
        problems.append("header missing 'ring_capacity'")
    for index, entry in enumerate(stream.entries):
        if entry["type"] == "iter":
            if not isinstance(entry.get("records"), list):
                problems.append(f"entry {index}: iter without records")
                continue
            for record in entry["records"]:
                try:
                    deserialize_record(record)
                except StreamError as exc:
                    problems.append(f"entry {index}: {exc}")
                    break
            if not isinstance(entry.get("at"), int):
                problems.append(f"entry {index}: iter without 'at'")
            if not isinstance(entry.get("version"), str):
                problems.append(f"entry {index}: iter without 'version'")
        elif entry["type"] == "control":
            if not entry.get("kind"):
                problems.append(f"entry {index}: control without 'kind'")
            if not isinstance(entry.get("new_leader"), str):
                problems.append(f"entry {index}: control without "
                                f"'new_leader'")
    if not stream.iterations():
        problems.append("stream holds no iterations")
    return problems

"""Shared multiprocessing machinery for parallel campaign execution.

The chaos campaign and the perf harness shard *independent* work items
(grid cells, scenarios) across worker processes and merge the results
deterministically — the parallel path must produce byte-identical
reports, so all nondeterminism (OS scheduling, completion order) is
confined to *when* a result arrives, never to *what* it says or where
it lands in the merged report.

The rules that make that hold:

* workers receive **picklable descriptions** of their work (names,
  seeds, indices), never closures — each worker regenerates the actual
  objects locally, relying on the same determinism the serial path
  relies on;
* worker functions are **top-level module functions**, so the machinery
  is spawn-safe (macOS/Windows default) while preferring ``fork`` where
  available (cheap on Linux, and the workers re-derive state anyway);
* results carry their **original indices** and the parent reorders
  before assembling the report, so the merge is order-insensitive.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence, Union


def resolve_workers(spec: Union[int, str, None]) -> int:
    """Parse a ``--workers N|auto`` value into a validated count.

    ``auto`` (or None) means one worker per available CPU; anything else
    must be a positive integer.
    """
    if spec is None or spec == "auto":
        return os.cpu_count() or 1
    try:
        workers = int(spec)
    except (TypeError, ValueError):
        raise ValueError(f"--workers must be a positive integer or "
                         f"'auto', not {spec!r}") from None
    if workers < 1:
        raise ValueError(f"--workers must be >= 1, got {workers}")
    return workers


def mp_context(method: Optional[str] = None):
    """A multiprocessing context, preferring ``fork`` where available.

    Workers regenerate all state from picklable descriptions, so either
    start method is correct; ``fork`` just skips the interpreter
    re-exec.  Pass ``method`` to force one (tests force ``spawn`` to
    prove spawn-safety).
    """
    if method is None:
        method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                  else "spawn")
    return multiprocessing.get_context(method)


def shard_round_robin(n_items: int, workers: int) -> List[List[int]]:
    """Deal item indices round-robin into at most ``workers`` shards.

    Round-robin (rather than contiguous blocks) spreads any
    position-correlated cost skew — e.g. the chaos grid's heavyweight
    predicate cells all sit at the tail — evenly across workers.  Empty
    shards are dropped.
    """
    shards: List[List[int]] = [[] for _ in range(max(1, workers))]
    for index in range(n_items):
        shards[index % len(shards)].append(index)
    return [shard for shard in shards if shard]


def run_sharded(worker: Callable[[Any], Any], shard_args: Sequence[Any],
                workers: int, *, method: Optional[str] = None) -> List[Any]:
    """Run ``worker`` over ``shard_args``, one result per arg, in order.

    ``workers <= 1`` (or a single shard) runs in-process — the serial
    path stays the golden reference and needs no pool at all.  So does
    any call made from inside a pool worker: daemonic processes cannot
    have children, so a sharded run nested under another sharded run
    (e.g. the chaos-campaign-parallel perf scenario inside
    ``repro perf --workers N``) degrades to the serial path instead of
    crashing the outer pool.
    """
    if (workers <= 1 or len(shard_args) <= 1
            or multiprocessing.current_process().daemon):
        return [worker(args) for args in shard_args]
    ctx = mp_context(method)
    with ctx.Pool(processes=min(workers, len(shard_args))) as pool:
        return pool.map(worker, shard_args)

"""Offline replay: re-drive a candidate version against a recorded stream.

The engine reconstructs the follower's side of MVE from a
``repro-stream/1`` artifact alone — no workload, no scheduler, no chaos
plan.  A fresh server runs the chosen candidate version behind a
``REPLAY``-role gateway (which never touches a kernel: every syscall is
served from, and checked against, the expected stream), and each
recorded leader iteration is rewritten through the pair's rules exactly
as :meth:`repro.mve.varan.VaranRuntime._rewrite` would before being fed
to the candidate.

Because recording starts at process start (single-leader iterations
included), the candidate builds its heap by serving the same traffic the
recorded leader served — so "replay from scratch" needs no checkpoint
and works for any candidate the app registry can bridge with rules.
Control entries switch the leader version mid-stream, so a recording of
a full update lifecycle replays each segment under the right stage
rules (``OUTDATED_LEADER`` while the recorded leader is older than the
candidate, ``UPDATED_LEADER`` once it is newer, identity when equal).

A mismatch raises the same :class:`~repro.errors.DivergenceError` the
live monitor raises, and the engine packages the same
:class:`~repro.obs.forensics.ForensicsBundle` — time-travel forensics
for a run that may have happened on another machine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import DivergenceError, ServerCrash
from repro.mve.gateway import GatewayRole, SyscallGateway
from repro.net.kernel import VirtualKernel
from repro.obs.forensics import ForensicsBundle, build_divergence_bundle
from repro.replay.apps import ReplayApp, replay_app
from repro.replay.stream import (RecordedStream, deserialize_record,
                                 read_stream)

#: Replay report schema identifier (bump on shape changes).
REPLAY_SCHEMA = "repro-replay/1"

#: Ring records kept for forensics (mirrors the tracer's last-K window).
FORENSICS_LAST_K = 32


@dataclass
class _HistoryEntry:
    """Ring-entry shape for forensics: the expected record as the
    follower would have popped it, stamped with the recorded iteration
    time and a running sequence number."""

    payload: Any
    produced_at: int
    sequence: int


@dataclass
class ReplayReport:
    """The verdict of one offline replay."""

    app: str
    scenario: str
    recorded_version: str
    against: str
    iterations: int = 0
    iterations_replayed: int = 0
    records_replayed: int = 0
    controls_seen: int = 0
    rules_fired: int = 0
    #: ``match`` | ``divergence`` | ``crash``
    outcome: str = "match"
    divergence: Optional[Dict[str, Any]] = None
    forensics: Optional[ForensicsBundle] = None
    final_version_recorded: str = ""
    rules_fired_names: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.outcome == "match"

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": REPLAY_SCHEMA,
            "app": self.app,
            "scenario": self.scenario,
            "recorded_version": self.recorded_version,
            "against": self.against,
            "outcome": self.outcome,
            "iterations": self.iterations,
            "iterations_replayed": self.iterations_replayed,
            "records_replayed": self.records_replayed,
            "controls_seen": self.controls_seen,
            "rules_fired": self.rules_fired,
            "final_version_recorded": self.final_version_recorded,
            "divergence": self.divergence,
        }
        if self.forensics is not None:
            payload["forensics"] = self.forensics.as_dict()
        return payload


def replay_stream(stream: RecordedStream, *,
                  against: Optional[str] = None,
                  app: Optional[ReplayApp] = None) -> ReplayReport:
    """Re-drive ``against`` (default: the recorded initial version)
    through the recording; returns the verdict."""
    if app is None:
        app = replay_app(stream.app)
    candidate = against if against else stream.initial_version
    server = app.make_server(candidate)
    # REPLAY gateways never execute against a kernel, so the candidate
    # does not attach(); it only needs the recorded fd labels so its
    # epoll/accept calls name the fds the leader's records name.
    kernel = VirtualKernel()
    gateway = SyscallGateway(kernel, domain=0, role=GatewayRole.REPLAY)
    server.bind_gateway(gateway)
    server.listen_fd = int(stream.header.get("listen_fd", 0))
    server.epoll_fd = int(stream.header.get("epoll_fd", 1))

    report = ReplayReport(
        app=app.name,
        scenario=stream.scenario,
        recorded_version=stream.initial_version,
        against=candidate,
        iterations=len(stream.iterations()),
    )
    leader_version = stream.initial_version
    report.final_version_recorded = leader_version
    history: deque = deque(maxlen=FORENSICS_LAST_K)
    last_engine = None
    sequence = 0
    # Iter-only index of the entry being replayed, so the reported
    # "iteration" lines up with report.iterations / iterations_replayed
    # (which never count control or fork entries).
    iteration = -1

    for index, entry in enumerate(stream.entries):
        kind = entry["type"]
        if kind == "control":
            leader_version = entry["new_leader"]
            report.final_version_recorded = leader_version
            report.controls_seen += 1
            continue
        if kind != "iter":
            continue
        iteration += 1
        records = [deserialize_record(raw) for raw in entry["records"]]
        ruleset, direction = app.stage_for(leader_version, candidate)
        if ruleset is None:
            expected = records
        else:
            engine = ruleset.engine_for_stage(direction)
            for record in records:
                engine.offer(record)
            engine.flush()
            report.rules_fired_names.extend(engine.fired)
            report.rules_fired = len(report.rules_fired_names)
            expected = engine.take_ready()
            last_engine = engine
        at = int(entry.get("at", 0))
        for record in expected:
            history.append(_HistoryEntry(record, at, sequence))
            sequence += 1
        feed = iter(expected)
        gateway.expected_source = lambda: next(feed, None)
        gateway.begin_iteration()
        try:
            server.run_iteration(gateway)
            gateway.finish_iteration()
        except DivergenceError as divergence:
            divergence.annotate(at=at, version=candidate)
            report.outcome = "divergence"
            report.divergence = {
                "at": at,
                "iteration": iteration,
                "entry_index": index,
                "recorded_leader": leader_version,
                "detail": str(divergence),
            }
            report.forensics = build_divergence_bundle(
                at=at,
                version=candidate,
                leader_version=leader_version,
                error=divergence,
                ring_history=list(history),
                ring_pending=[],
                expected_records=expected,
                issued_records=gateway.trace.records,
                rule_window=(last_engine.pending_window()
                             if last_engine is not None else 0),
                rules_fired=(list(last_engine.fired)
                             if last_engine is not None else []),
            )
            return report
        except ServerCrash as crash:
            report.outcome = "crash"
            report.divergence = {
                "at": at,
                "iteration": iteration,
                "entry_index": index,
                "recorded_leader": leader_version,
                "detail": str(crash),
            }
            return report
        report.iterations_replayed += 1
        report.records_replayed += len(records)
    return report


def replay_file(path: str, *, against: Optional[str] = None) -> ReplayReport:
    """Convenience wrapper: read a stream artifact and replay it."""
    return replay_stream(read_stream(path), against=against)

"""The stream recorder: taps the leader's syscall stream into an artifact.

A :class:`StreamRecorder` is installed process-wide (mirroring the
tracer and the chaos injector) and *claimed* by the first
:class:`~repro.mve.varan.VaranRuntime` constructed while it is active —
scenarios that build several MVE groups in sequence record only the
first, which keeps the artifact a single coherent stream.  The claimed
runtime then drives three hooks:

* :meth:`on_iteration` — one completed **leader** iteration with its
  raw syscall records (pre-rewrite: rules are applied at replay time,
  so one recording can be replayed against any candidate version).
  This is a superset of the ring-publish hook: single-leader iterations
  are recorded too, so a stream covers the full scenario lifecycle, not
  just the MVE window.
* :meth:`on_control` — promote / crash-promote markers, so replay knows
  which version produced each segment of the stream.
* :meth:`on_fork` — follower attach points.

Every hook is one attribute load plus an ``is None`` test on the hot
path, same zero-cost discipline as the tracer; the class-level
``created_total`` / ``recorded_total`` counters let the regression
suite assert the disabled path allocates nothing.

This module imports only the standard library and
:mod:`repro.replay.stream`, so :mod:`repro.mve.varan` can hook it
without cycles; runtime metadata is captured duck-typed at claim time.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, List, Optional

from repro.replay.stream import (STREAM_SCHEMA, serialize_record,
                                 write_stream)


def _app_of(profile_name: str) -> str:
    """Canonical app name from a cost-profile name.

    Profiles suffix a size class (``vsftpd-small``/``vsftpd-large``);
    the app registry keys on the bare name.
    """
    return profile_name.split("-", 1)[0]


class StreamRecorder:
    """Accumulates one scenario's leader stream for :func:`write`."""

    #: Recorder instances ever constructed (process lifetime).
    created_total = 0
    #: Iterations ever recorded, across all recorders (process lifetime).
    recorded_total = 0

    def __init__(self, scenario: str = "") -> None:
        StreamRecorder.created_total += 1
        self.scenario = scenario
        self.header: Optional[Dict[str, Any]] = None
        self.entries: List[Dict[str, Any]] = []
        self._claimed_by: Optional[weakref.ref] = None
        self.iterations = 0
        self.records = 0

    # -- claiming -----------------------------------------------------------

    def claim(self, runtime: Any) -> bool:
        """Bind this recorder to ``runtime`` (first MVE group wins).

        Returns True when ``runtime`` holds the claim; later runtimes
        get False and must not record.  The claim is held by weakref —
        not ``id()`` — so a later runtime allocated at a dead claimant's
        address cannot falsely win; once the claimant dies the claim
        simply stays closed.  Metadata is captured here, once,
        duck-typed off the runtime: app + cost profile, the initial
        leader version, ring capacity, and the fault plan in force.
        """
        if self._claimed_by is not None:
            return self._claimed_by() is runtime
        self._claimed_by = weakref.ref(runtime)
        profile_name = getattr(runtime.profile, "name", "")
        chaos = runtime.kernel.chaos
        fault_plan = None
        if chaos is not None and getattr(chaos.plan, "faults", ()):
            fault_plan = chaos.plan.as_dict()
        server = runtime.leader.server
        self.header = {
            "type": "header",
            "schema": STREAM_SCHEMA,
            "app": _app_of(profile_name),
            "scenario": self.scenario,
            "initial_version": runtime.leader.version_name,
            "profile": profile_name,
            "ring_capacity": runtime.ring.capacity,
            # fd labels the replayed candidate must use so its epoll /
            # accept calls name the fds the leader's records name.
            "listen_fd": getattr(server, "listen_fd", 0),
            "epoll_fd": getattr(server, "epoll_fd", 1),
            "fault_plan": fault_plan,
        }
        return True

    # -- hooks (called by the claimed VaranRuntime) -------------------------

    def on_iteration(self, at: int, version: str, mve: bool,
                     records: List[Any]) -> None:
        """One completed leader iteration (records pre-rewrite)."""
        self.entries.append({
            "type": "iter",
            "at": at,
            "version": version,
            "mve": mve,
            "records": [serialize_record(record) for record in records],
        })
        self.iterations += 1
        self.records += len(records)
        StreamRecorder.recorded_total += 1

    def on_control(self, kind: str, at: int, version: str,
                   new_leader: str) -> None:
        """A promote or crash-promote changed which version leads."""
        self.entries.append({
            "type": "control",
            "kind": kind,
            "at": at,
            "version": version,
            "new_leader": new_leader,
        })

    def on_fork(self, at: int, version: str) -> None:
        """A follower attached (the stream enters its MVE window)."""
        self.entries.append({"type": "fork", "at": at, "version": version})

    # -- output -------------------------------------------------------------

    def write(self, path: str) -> int:
        """Write the ``repro-stream/1`` artifact; returns entries written
        (header and footer included)."""
        if self.header is None:
            raise ValueError("recorder was never claimed by a runtime — "
                             "nothing to write")
        return write_stream(path, self.header, self.entries)


# ---------------------------------------------------------------------------
# The active (global) recorder
# ---------------------------------------------------------------------------

_ACTIVE: Optional[StreamRecorder] = None


def install_recorder(recorder: StreamRecorder) -> StreamRecorder:
    """Make ``recorder`` the active recorder; MVE runtimes built while it
    is installed try to claim it."""
    global _ACTIVE
    _ACTIVE = recorder
    return recorder


def uninstall_recorder() -> Optional[StreamRecorder]:
    """Clear the active recorder; returns the one that was installed."""
    global _ACTIVE
    recorder, _ACTIVE = _ACTIVE, None
    return recorder


def current_recorder() -> Optional[StreamRecorder]:
    """The active recorder, or None (the zero-cost default)."""
    return _ACTIVE


class recording:
    """Context manager: install a recorder for the duration of a block."""

    def __init__(self, recorder: StreamRecorder) -> None:
        self.recorder = recorder
        self._previous: Optional[StreamRecorder] = None

    def __enter__(self) -> StreamRecorder:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.recorder
        return self.recorder

    def __exit__(self, *exc_info: Any) -> None:
        global _ACTIVE
        _ACTIVE = self._previous

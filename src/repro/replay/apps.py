"""Replayable applications: version factories + rewrite rules per pair.

The replay engine needs three things per application: a fresh server for
any *candidate* version label, the candidate's canonical release name
(so rewrite-rule lookup works for patched builds like the chaos
campaign's buggy 2.0), and the :class:`~repro.mve.dsl.rules.RuleSet`
bridging a recorded leader version to the candidate.  This module is
that registry — keyed by the ``app`` field a stream's header carries.

Candidate labels beyond the released versions make shadow testing
candid: ``kvstore 2.0-buggy`` is the chaos campaign's read-path-bug
build, so the replay acceptance test can demonstrate a recording
catching a bad update offline.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import SimulationError
from repro.mve.dsl.rules import Direction, RuleSet


class ReplayAppError(SimulationError):
    """An unknown app/version label or an unbridgeable version pair."""


class ReplayApp:
    """One application's replayable versions and pairwise rules."""

    def __init__(self, name: str, order: Tuple[str, ...],
                 factories: Dict[str, Callable[[], object]],
                 rules: Callable[[str, str], RuleSet],
                 canonical: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        #: Release order of the canonical versions.
        self.order = order
        self._factories = factories
        self._rules = rules
        #: Candidate label -> canonical release (identity by default).
        self._canonical = canonical or {}
        self._ruleset_cache: Dict[Tuple[str, str], RuleSet] = {}

    def versions(self) -> Tuple[str, ...]:
        """Every label a stream can be replayed ``--against``."""
        return tuple(sorted(self._factories))

    def make_server(self, label: str):
        """A fresh server running candidate version ``label``."""
        factory = self._factories.get(label)
        if factory is None:
            raise ReplayAppError(
                f"{self.name} has no replayable version {label!r} "
                f"(choose from {', '.join(self.versions())})")
        return factory()

    def canonical(self, label: str) -> str:
        """The canonical release name rules are registered under."""
        return self._canonical.get(label, label)

    def ruleset(self, old: str, new: str) -> RuleSet:
        """Rules for the update pair ``old -> new`` (release order)."""
        key = (old, new)
        if key not in self._ruleset_cache:
            try:
                self._ruleset_cache[key] = self._rules(old, new)
            except (KeyError, ValueError) as exc:
                raise ReplayAppError(
                    f"{self.name} has no rewrite rules bridging "
                    f"{old} -> {new}: {exc}") from exc
        return self._ruleset_cache[key]

    def stage_for(self, leader: str, candidate: str) \
            -> Tuple[Optional[RuleSet], Optional[Direction]]:
        """How to rewrite a ``leader``-version stream for ``candidate``.

        Returns ``(None, None)`` when the versions agree (identity);
        otherwise the pair's rule set plus the replay direction — the
        candidate plays follower, so an older leader means
        ``OUTDATED_LEADER`` (the pre-promotion stage) and a newer leader
        means ``UPDATED_LEADER`` (the post-promotion mirror stage).
        """
        leader_c = self.canonical(leader)
        candidate_c = self.canonical(candidate)
        if leader_c == candidate_c:
            return None, None
        try:
            leader_i = self.order.index(leader_c)
            candidate_i = self.order.index(candidate_c)
        except ValueError as exc:
            raise ReplayAppError(
                f"{self.name}: version pair {leader_c} / {candidate_c} "
                f"is outside the release order {self.order}") from exc
        if leader_i < candidate_i:
            return self.ruleset(leader_c, candidate_c), \
                Direction.OUTDATED_LEADER
        return self.ruleset(candidate_c, leader_c), \
            Direction.UPDATED_LEADER


# ---------------------------------------------------------------------------
# Per-app wiring (server imports stay inside factories/builders so that
# importing the registry does not drag every server package in)
# ---------------------------------------------------------------------------

def _kvstore_app() -> ReplayApp:
    from repro.servers.kvstore import (KVStoreServer, KVStoreV1, KVStoreV2,
                                       kv_rules_from_dsl)

    def buggy():
        # The chaos campaign's read-path-bug build (answers GET wrongly).
        from repro.chaos.scenarios import BuggyKVStoreV2
        return KVStoreServer(BuggyKVStoreV2())

    def rules(old: str, new: str) -> RuleSet:
        if (old, new) != ("1.0", "2.0"):
            raise KeyError(f"kvstore only ships rules for 1.0 -> 2.0, "
                           f"not {old} -> {new}")
        return kv_rules_from_dsl()

    return ReplayApp(
        "kvstore", ("1.0", "2.0"),
        factories={
            "1.0": lambda: KVStoreServer(KVStoreV1()),
            "2.0": lambda: KVStoreServer(KVStoreV2()),
            "2.0-buggy": buggy,
        },
        rules=rules,
        canonical={"2.0-buggy": "2.0"},
    )


def _redis_app() -> ReplayApp:
    from repro.servers.redis import (REDIS_VERSIONS, RedisServer,
                                     redis_rules, redis_version)
    factories = {
        name: (lambda name=name: RedisServer(redis_version(name)))
        for name in REDIS_VERSIONS
    }
    return ReplayApp("redis", REDIS_VERSIONS, factories, redis_rules)


def _vsftpd_app() -> ReplayApp:
    from repro.servers.vsftpd import (VSFTPD_VERSIONS, VsftpdServer,
                                      vsftpd_rules, vsftpd_version)
    factories = {
        name: (lambda name=name: VsftpdServer(vsftpd_version(name)))
        for name in VSFTPD_VERSIONS
    }
    return ReplayApp("vsftpd", VSFTPD_VERSIONS, factories, vsftpd_rules)


_BUILDERS: Dict[str, Callable[[], ReplayApp]] = {
    "kvstore": _kvstore_app,
    "redis": _redis_app,
    "vsftpd": _vsftpd_app,
}

_APPS: Dict[str, ReplayApp] = {}


def replay_app(name: str) -> ReplayApp:
    """The registry entry for ``name`` (memoized)."""
    if name not in _APPS:
        builder = _BUILDERS.get(name)
        if builder is None:
            raise ReplayAppError(
                f"no replayable app {name!r} "
                f"(known: {', '.join(sorted(_BUILDERS))})")
        _APPS[name] = builder()
    return _APPS[name]


def replayable_apps() -> Tuple[str, ...]:
    """Names the registry can build."""
    return tuple(sorted(_BUILDERS))

"""The benchmark scenarios ``python -m repro perf`` runs.

Each scenario separates *setup* (building kernels, servers, rule sets —
untimed) from the *measured thunk* (the request or record loop — timed
by the harness).  Thunks return ``(virtual_requests, syscalls, extras)``
so the harness can normalise wall time into virtual-requests-per-second
and syscalls-per-second; ``extras`` carries scenario-specific gauges
(ring high-watermark and BufferFull stall count for scenarios that run
a real ring buffer, empty for the stream scenarios).

Scenario catalogue:

* ``single-leader`` — Redis steady state, no follower: the paper's
  common case, where interposition must be nearly free.
* ``mve-follower`` — plain Varan leader + identical follower: the full
  publish/replay path with no rewrite rules.
* ``rule-heavy-mve-redis`` — a Redis 2.0.0 -> 2.0.1 update held in
  outdated-leader mode with a large rule catalogue registered; every
  leader record crosses the rule engine on its way to the follower.
* ``rules-redis-stream`` / ``rules-vsftpd-stream`` — the rule engine in
  isolation over synthetic leader streams, with heavy catalogues.
* ``fig7-ring-2^N`` — leader + follower under a small/medium/large ring,
  interleaving publish and back-pressure replay like Figure 7 does.
* ``chaos-recovery-kvstore`` — full update lifecycles under
  recovery-class chaos faults (``repro.chaos``), reporting deterministic
  virtual-time recovery-latency gauges alongside wall-clock throughput.
* ``fleet-canary-upgrade`` — the sharded-fleet canary scenario
  (``repro.cluster.fleet``): two upgrade rounds over seeded traffic,
  reporting the fleet's rollback and MVE-budget gauges.
* ``chaos-campaign-parallel`` — the chaos campaign grid serial vs
  sharded across 8 workers, recording the measured speedup and a
  byte-identity check between the two reports.
* ``openloop-upgrade-waves`` — the open-loop kvstore workload
  (``repro.workloads.openloop``) through restart vs Mvedsua upgrade
  waves, reporting the deterministic coordinated-omission gauges
  (offered vs achieved rate, upgrade-window p99, SLO availability).
* ``distributed-ring-kvstore`` — the kvstore update lifecycle over the
  local ring vs :class:`~repro.mve.distring.DistributedRing` at three
  link-latency points (``repro.bench.distring``), reporting how ring
  stalls, request p99 and SLO availability shift as the MVE pair's
  ring crosses a link.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import Mvedsua
from repro.mve import VaranRuntime
from repro.mve.dsl.rules import (
    Direction,
    RewriteRule,
    RuleEngine,
    RuleSet,
    SyscallPattern,
)
from repro.net import VirtualKernel
from repro.obs.slo import summarize_latencies
from repro.servers.kvstore import KVStoreServer, KVStoreV1
from repro.servers.redis import (
    RedisServer,
    redis_rules,
    redis_transforms,
    redis_version,
)
from repro.servers.vsftpd import vsftpd_rules
from repro.servers.vsftpd.rules import TABLE1_RULE_COUNTS
from repro.syscalls.costs import PROFILES
from repro.syscalls.model import Sys, SyscallRecord, read_record, write_record
from repro.workloads import VirtualClient
from repro.workloads.memtier import MemtierSpec

#: A measured thunk: run the workload, return
#: (virtual_requests, syscalls, extras).
Thunk = Callable[[], Tuple[int, int, Dict[str, int]]]


@dataclass(frozen=True)
class Scenario:
    """One named benchmark configuration."""

    name: str
    description: str
    #: ops -> thunk; setup happens inside build, the thunk is timed.
    build: Callable[[int], Thunk]
    #: Default operation count (``--quick`` divides by 5).
    default_ops: int = 2000


# ---------------------------------------------------------------------------
# Rule-catalogue builders
# ---------------------------------------------------------------------------

#: Syscalls a realistic filesystem/session rule catalogue spreads over.
_CATALOG_SYSCALLS = (Sys.OPEN, Sys.UNLINK, Sys.RENAME, Sys.STAT, Sys.MKDIR,
                     Sys.RMDIR, Sys.CONNECT, Sys.LISTEN, Sys.ACCEPT,
                     Sys.CLOSE, Sys.READ, Sys.WRITE)


def _identity_action(matched: List[SyscallRecord]) -> List[SyscallRecord]:
    return list(matched)


def rule_heavy_catalog(n_rules: int = 120, *,
                       base: Optional[RuleSet] = None) -> RuleSet:
    """A large rule catalogue in the shape real deployments accumulate.

    Starts from ``base`` (e.g. the genuine Redis 2.0.0 -> 2.0.1 rules)
    and pads with guarded single-record rules spread across the syscall
    vocabulary — banner rewrites, path renames, session tweaks — whose
    predicates never fire for the benchmark stream.  This mirrors the
    paper's observation that the overwhelming majority of records match
    no rule: the engine's job is to get out of the way.
    """
    rules = RuleSet()
    if base is not None:
        for rule in base.rules:
            rules.add(rule)
    for index in range(n_rules):
        sysname = _CATALOG_SYSCALLS[index % len(_CATALOG_SYSCALLS)]
        token = f"#pad-{sysname.value}-{index}".encode()
        rules.add(RewriteRule(
            f"pad_{sysname.value}_{index}",
            [SyscallPattern(sysname,
                            predicate=lambda d, t=token: d.startswith(t))],
            _identity_action,
            direction=Direction.BOTH))
    return rules


def full_vsftpd_catalog() -> RuleSet:
    """Every shipped Vsftpd rule (all Table 1 update pairs), in one set."""
    rules = RuleSet()
    for old, new, count in TABLE1_RULE_COUNTS:
        if count == 0:
            continue
        for rule in vsftpd_rules(old, new).rules:
            # Rule names must stay unique across pairs.
            rules.add(RewriteRule(f"{old}-{new}/{rule.name}", rule.pattern,
                                  rule.action, rule.direction, rule.ast,
                                  trace_tag=rule.trace_tag,
                                  suppresses=rule.suppresses))
    return rules


# ---------------------------------------------------------------------------
# Semantic-stack scenarios
# ---------------------------------------------------------------------------

def _redis_runtime() -> Tuple[VirtualKernel, VaranRuntime, VirtualClient]:
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0", hmget_bug=False))
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["redis"],
                           ring_capacity=1 << 14)
    client = VirtualClient(kernel, server.address)
    return kernel, runtime, client


def _command_loop(runtime, client, commands) -> Thunk:
    def thunk() -> Tuple[int, int, Dict[str, int]]:
        now = 0
        handled = 0
        for command in commands:
            _, now = client.request(runtime, command, now + 1)
            handled += 1
        extras = _ring_extras(runtime)
        # Exact virtual-time request percentiles (deterministic, so they
        # are gauges for --diff purposes, not wall-clock quantities).
        extras.update(summarize_latencies(client.latencies_ns))
        return handled, _total_syscalls(runtime), extras
    return thunk


def _total_syscalls(runtime) -> int:
    inner = getattr(runtime, "runtime", runtime)  # Mvedsua wraps VaranRuntime
    return inner.total_syscalls


def _ring_extras(runtime) -> Dict[str, int]:
    """Ring pressure gauges for scenarios that run a real ring buffer."""
    inner = getattr(runtime, "runtime", runtime)
    return {"ring_high_watermark": inner.ring.high_watermark,
            "ring_stalls": inner.ring_stalls}


def build_single_leader(ops: int) -> Thunk:
    _, runtime, client = _redis_runtime()
    commands = list(MemtierSpec().commands(ops, protocol="redis", seed=11))
    return _command_loop(runtime, client, commands)


def build_mve_follower(ops: int) -> Thunk:
    _, runtime, client = _redis_runtime()
    runtime.fork_follower(0)
    commands = list(MemtierSpec().commands(ops, protocol="redis", seed=12))
    loop = _command_loop(runtime, client, commands)

    def thunk() -> Tuple[int, int, Dict[str, int]]:
        handled, syscalls, _ = loop()
        runtime.drain_follower()
        extras = _ring_extras(runtime)
        extras.update(summarize_latencies(client.latencies_ns))
        return handled, syscalls, extras
    return thunk


def build_rule_heavy_mve_redis(ops: int) -> Thunk:
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0", hmget_bug=False))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["redis"],
                      transforms=redis_transforms(),
                      ring_capacity=1 << 14)
    client = VirtualClient(kernel, server.address)
    catalog = rule_heavy_catalog(base=redis_rules("2.0.0", "2.0.1"))
    attempt = mvedsua.request_update(
        redis_version("2.0.1", hmget_bug=False), 10**9, rules=catalog)
    if not attempt.ok:  # pragma: no cover - setup invariant
        raise RuntimeError(f"update failed: {attempt.reason}")
    commands = list(MemtierSpec().commands(ops, protocol="redis", seed=13))
    return _command_loop(mvedsua, client, commands)


def build_ring_sweep(capacity: int) -> Callable[[int], Thunk]:
    def build(ops: int) -> Thunk:
        kernel = VirtualKernel()
        server = KVStoreServer(KVStoreV1())
        server.attach(kernel)
        runtime = VaranRuntime(kernel, server, PROFILES["kvstore"],
                               ring_capacity=capacity)
        client = VirtualClient(kernel, server.address)
        runtime.fork_follower(0)
        commands = [b"PUT k%d v%d\r\n" % (i % 512, i) for i in range(ops)]

        def thunk() -> Tuple[int, int, Dict[str, int]]:
            now = 0
            for command in commands:
                _, now = client.request(runtime, command, now + 1)
            runtime.drain_follower()
            extras = _ring_extras(runtime)
            extras.update(summarize_latencies(client.latencies_ns))
            return len(commands), runtime.total_syscalls, extras
        return thunk
    return build


# ---------------------------------------------------------------------------
# Chaos-recovery scenario: how fast does MVE contain an injected fault?
# ---------------------------------------------------------------------------

def build_chaos_recovery(ops: int) -> Thunk:
    """``ops`` full kvstore update lifecycles, each under one
    recovery-class chaos fault, cycling a fixed cell list.

    Wall-clock throughput measures the simulator's fault paths (crash
    handling, divergence forensics, rollback); the extras are *virtual*
    recovery latencies — injection to the recovery event — which are
    deterministic and therefore regression-pinnable, unlike wall time.
    """
    # Imported lazily: the chaos package pulls in the full server stack.
    from repro.chaos.campaign import run_cell
    from repro.chaos.plan import Fault, FaultPlan, on_call
    from repro.chaos.scenarios import buggy_v2_factory
    from repro.servers.kvstore import xform_drop_table

    cells = [
        # E1: buggy new version — divergence caught at the first
        # post-update replay, a full virtual second after injection.
        FaultPlan("e1-buggy-version", (
            Fault("dsu.update", "buggy-version", on_call(1),
                  param={"factory": buggy_v2_factory}),)),
        # E2: transformer drops the table — same detection window.
        FaultPlan("e2-drop-table", (
            Fault("dsu.transform", "replace", on_call(1),
                  param={"transformer": xform_drop_table}),)),
        # Follower crashes mid-catch-up: rollback, old version serves on.
        FaultPlan("follower-crash", (
            Fault("mve.follower", "crash", on_call(1)),)),
        # Corrupted follower record: divergence forensics + rollback.
        FaultPlan("follower-corrupt", (
            Fault("mve.follower", "corrupt-record", on_call(2)),)),
        # Leader crashes while outdated: the follower is promoted.
        FaultPlan("leader-crash", (
            Fault("mve.leader", "crash", on_call(12)),)),
    ]

    def thunk() -> Tuple[int, int, Dict[str, int]]:
        vrequests = 0
        syscalls = 0
        latencies: List[int] = []
        for index in range(ops):
            result = run_cell(cells[index % len(cells)])
            vrequests += len(result.observations)
            syscalls += result.syscalls
            if result.injections and result.recovery_at is not None:
                # Raw signed delta — a negative value is an ordering
                # anomaly the campaign classifier reports loudly, so the
                # perf extras must not paper over it either.
                latencies.append(result.recovery_at
                                 - result.injections[0]["at"])
        extras = {"recovered_runs": len(latencies)}
        if latencies:
            extras["recovery_latency_min_ns"] = min(latencies)
            extras["recovery_latency_max_ns"] = max(latencies)
            extras["recovery_latency_mean_ns"] = \
                sum(latencies) // len(latencies)
        return vrequests, syscalls, extras
    return thunk


# ---------------------------------------------------------------------------
# Parallel-campaign scenario: serial golden run vs sharded execution
# ---------------------------------------------------------------------------

def build_chaos_campaign_parallel(ops: int) -> Thunk:
    """The chaos campaign over its first ``ops`` grid cells, run twice:
    serially (the golden reference) and sharded across 8 workers.

    The deterministic gauges pin what must never regress: the cell
    count, the worker count, and — the whole point of the parallel
    executor — that the two reports are byte-identical.  The wall-clock
    extras (``*_wall_ms``, ``*_speedup_pct``) record the measured
    speedup honestly; on a box with fewer cores than workers the
    "speedup" is a slowdown, which is exactly what the trajectory file
    should say for that machine.
    """
    # Imported lazily: the chaos package pulls in the full server stack.
    from repro.chaos.campaign import run_campaign

    workers = 8

    def thunk() -> Tuple[int, int, Dict[str, int]]:
        start = time.perf_counter()
        serial = run_campaign("kvstore", seed=1, max_cells=ops)
        serial_wall = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_campaign("kvstore", seed=1, max_cells=ops,
                                workers=workers)
        parallel_wall = time.perf_counter() - start
        identical = (json.dumps(serial, sort_keys=True)
                     == json.dumps(parallel, sort_keys=True))
        extras = {
            "campaign_cells": serial["cells"],
            "campaign_workers": workers,
            "reports_identical": int(identical),
            "serial_wall_ms": int(serial_wall * 1000),
            "parallel_wall_ms": int(parallel_wall * 1000),
            "campaign_speedup_pct": (
                int(round(100 * serial_wall / parallel_wall))
                if parallel_wall > 0 else 0),
        }
        return 2 * serial["cells"], 0, extras
    return thunk


# ---------------------------------------------------------------------------
# Fleet scenario: canary-staged upgrades across a sharded fleet
# ---------------------------------------------------------------------------

def build_fleet_canary_upgrade(ops: int) -> Thunk:
    """The ``python -m repro fleet`` canary scenario on a 2×2 fleet.

    ``ops`` is the client command budget spread over the three traffic
    phases.  Wall-clock throughput measures the whole orchestration
    stack (sharded routing, fan-out writes, canary probes, fleet-wide
    rollback); the extras pin the deterministic fleet gauges — the
    rollback count and the per-shard MVE-pair budget, which must
    never exceed one.
    """
    # Imported lazily: the fleet pulls in the chaos invariant checker.
    from repro.cluster.fleet import run_fleet_scenario

    def thunk() -> Tuple[int, int, Dict[str, int]]:
        report = run_fleet_scenario(seed=1, shards=2, replicas=2,
                                    commands=ops)
        extras = {
            "fleet_rollbacks": report["rollbacks"],
            "fleet_max_mve_pairs_per_shard":
                report["max_mve_pairs_per_shard"],
            "fleet_failovers": report["failovers"],
        }
        return len(report["observations"]), report["syscalls"], extras
    return thunk


# ---------------------------------------------------------------------------
# Open-loop scenario: tail latency through identical upgrade waves
# ---------------------------------------------------------------------------

def build_openloop_upgrade_waves(ops: int) -> Thunk:
    """The ``python -m repro openloop kvstore`` scenario end to end.

    ``ops`` maps onto the workload's arrival budget: anything below the
    spec's full 2400 requests runs the ``--quick`` variant.  Wall-clock
    throughput measures the whole open-loop stack (arrival generation,
    flyweight churn, six serve cells, histogram reporting); the extras
    pin the deterministic virtual-time gauges the coordinated-omission
    headline rests on — offered vs achieved rate, the upgrade-window
    p99 for restart vs Mvedsua, both pause lengths, per-cell SLO
    availability in per-mille, and the contrast-check tally.
    """
    # Imported lazily: the scenario pulls in the full server stack.
    from repro.workloads.openloop_scenarios import run_openloop_scenario

    quick = ops < 2400

    def thunk() -> Tuple[int, int, Dict[str, int]]:
        report = run_openloop_scenario("kvstore", seed=1, quick=quick)
        cells = {row["cell"]: row for row in report["cells"]}
        contrast = report["contrast"]
        restart = cells["restart-open"]
        mvedsua = cells["mvedsua-open"]
        extras = {
            "offered_rps": restart["offered_rps"],
            "achieved_rps_restart": restart["achieved_rps"],
            "achieved_rps_mvedsua": mvedsua["achieved_rps"],
            "window_p99_restart_ns": restart["window_p99_ns"],
            "window_p99_mvedsua_ns": mvedsua["window_p99_ns"],
            "p999_restart_open_ns": restart["p999_ns"],
            "p999_mvedsua_open_ns": mvedsua["p999_ns"],
            "pause_restart_ns": contrast["restart_pause_ns"],
            "pause_mvedsua_ns": contrast["mvedsua_pause_ns"],
            "slo_availability_restart_permille":
                int(round(1000 * restart["slo_availability"])),
            "slo_availability_mvedsua_permille":
                int(round(1000 * mvedsua["slo_availability"])),
            "contrast_checks_ok":
                sum(1 for check in report["checks"] if check["ok"]),
        }
        vrequests = sum(row["requests"] for row in report["cells"])
        return vrequests, 0, extras
    return thunk


# ---------------------------------------------------------------------------
# Distributed-ring scenario: the link-latency sweep vs the local ring
# ---------------------------------------------------------------------------

def build_distributed_ring_kvstore(ops: int) -> Thunk:
    """The ``repro.bench.distring`` sweep: the same kvstore update
    lifecycle over the in-process ring and over a ``repro-ring/1`` link
    at each latency point.

    ``ops`` is the per-row request budget.  Wall-clock throughput
    measures the wire path (frame encode/decode, window accounting);
    the extras pin the deterministic shape the EXPERIMENTS.md table
    rests on — per-point ring stalls, p99, and SLO availability in
    per-mille, which must degrade monotonically with link latency.
    """
    # Imported lazily: the driver pulls in the full server stack.
    from repro.bench.distring import link_label, run_distring_comparison

    def thunk() -> Tuple[int, int, Dict[str, int]]:
        report = run_distring_comparison(seed=1, commands=ops)
        extras: Dict[str, int] = {}
        vrequests = 0
        syscalls = 0
        for row in report["rows"]:
            point = link_label(row["link_latency_ns"])
            extras[f"ring_stalls_{point}"] = row["ring_stalls"]
            extras[f"p99_{point}_ns"] = row["latency_p99_ns"]
            extras[f"slo_availability_{point}_permille"] = \
                int(round(1000 * row["slo_availability"]))
            vrequests += row["requests"]
            syscalls += row["syscalls"]
        distributed = [row for row in report["rows"]
                       if row["ring"] == "distributed"]
        extras["wire_frames"] = sum(row["frames"] for row in distributed)
        extras["wire_bytes"] = sum(row["wire_bytes"]
                                   for row in distributed)
        extras["rows_finalized"] = sum(1 for row in report["rows"]
                                       if row["finalized"])
        return vrequests, syscalls, extras
    return thunk


# ---------------------------------------------------------------------------
# Stream scenarios: the rule engine in isolation
# ---------------------------------------------------------------------------

def _redis_stream(n_records: int) -> List[SyscallRecord]:
    """A leader stream shaped like Redis under Memtier: mostly GET reads
    and replies, a 10% SET tail with AOF writes."""
    records: List[SyscallRecord] = []
    index = 0
    while len(records) < n_records:
        fd = 4 + (index % 7)
        records.append(SyscallRecord(Sys.EPOLL_WAIT, fd=3, result=(fd,)))
        if index % 10 == 3:
            records.append(read_record(fd, b"SET memtier-%d vvvv\r\n" % index))
            records.append(write_record(fd, b"+OK\r\n"))
            records.append(write_record(-3, b"AOF SET memtier-%d\r\n" % index))
        else:
            records.append(read_record(fd, b"GET memtier-%d\r\n" % index))
            records.append(write_record(fd, b"$4\r\nvvvv\r\n"))
        index += 1
    return records[:n_records]


def _vsftpd_stream(n_records: int) -> List[SyscallRecord]:
    """A control-channel stream shaped like the paper's FtpBench: RETR
    loops with 150/226 replies and file opens."""
    records: List[SyscallRecord] = []
    index = 0
    while len(records) < n_records:
        fd = 5 + (index % 3)
        records.append(read_record(fd, b"RETR bench.bin\r\n"))
        records.append(write_record(fd, b"150 Opening BINARY mode data "
                                        b"connection.\r\n"))
        records.append(SyscallRecord(Sys.OPEN, data=b"/srv/bench.bin",
                                     result=0))
        records.append(read_record(-2, b"x" * 5))
        records.append(write_record(fd, b"226 Transfer complete.\r\n"))
        index += 1
    return records[:n_records]


def _engine_stream_thunk(rules: List[RewriteRule],
                         records: List[SyscallRecord]) -> Thunk:
    def thunk() -> Tuple[int, int, Dict[str, int]]:
        engine = RuleEngine(rules)
        out = 0
        for record in records:
            engine.offer(record)
            while engine.has_ready():
                engine.next_expected()
                out += 1
        engine.flush()
        while engine.has_ready():
            engine.next_expected()
            out += 1
        return len(records), out, {}
    return thunk


def build_rules_redis_stream(ops: int) -> Thunk:
    catalog = rule_heavy_catalog(base=redis_rules("2.0.0", "2.0.1"))
    rules = catalog.for_stage(Direction.OUTDATED_LEADER)
    return _engine_stream_thunk(rules, _redis_stream(ops))


def build_rules_vsftpd_stream(ops: int) -> Thunk:
    catalog = rule_heavy_catalog(base=full_vsftpd_catalog())
    rules = catalog.for_stage(Direction.OUTDATED_LEADER)
    return _engine_stream_thunk(rules, _vsftpd_stream(ops))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

SCENARIOS: Dict[str, Scenario] = {s.name: s for s in (
    Scenario("single-leader",
             "Redis steady state, no follower (interception only)",
             build_single_leader, default_ops=2000),
    Scenario("mve-follower",
             "Varan leader + identical follower, no rules",
             build_mve_follower, default_ops=1500),
    Scenario("rule-heavy-mve-redis",
             "Redis 2.0.0->2.0.1 outdated-leader stage, 120-rule catalogue",
             build_rule_heavy_mve_redis, default_ops=1500),
    Scenario("rules-redis-stream",
             "rule engine alone over a Memtier-shaped record stream",
             build_rules_redis_stream, default_ops=30000),
    Scenario("rules-vsftpd-stream",
             "rule engine alone over an FtpBench-shaped record stream",
             build_rules_vsftpd_stream, default_ops=30000),
    Scenario("fig7-ring-2^5",
             "leader+follower through a 32-entry ring (heavy back-pressure)",
             build_ring_sweep(1 << 5), default_ops=1500),
    Scenario("fig7-ring-2^8",
             "leader+follower through a 256-entry ring",
             build_ring_sweep(1 << 8), default_ops=1500),
    Scenario("fig7-ring-2^11",
             "leader+follower through a 2048-entry ring",
             build_ring_sweep(1 << 11), default_ops=1500),
    Scenario("chaos-recovery-kvstore",
             "update lifecycles under recovery-class chaos faults "
             "(virtual recovery-latency gauges)",
             build_chaos_recovery, default_ops=30),
    Scenario("fleet-canary-upgrade",
             "canary-staged fleet upgrade: sharded routing, fan-out "
             "writes, rollback on divergence",
             build_fleet_canary_upgrade, default_ops=60),
    Scenario("chaos-campaign-parallel",
             "chaos campaign grid serial vs 8 workers (measured "
             "speedup + report byte-identity)",
             build_chaos_campaign_parallel, default_ops=211),
    Scenario("openloop-upgrade-waves",
             "open-loop kvstore workload through restart vs Mvedsua "
             "upgrade waves (coordinated-omission gauges)",
             build_openloop_upgrade_waves, default_ops=2400),
    Scenario("distributed-ring-kvstore",
             "kvstore update lifecycle over the local ring vs a "
             "repro-ring/1 link at three latency points",
             build_distributed_ring_kvstore, default_ops=240),
)}

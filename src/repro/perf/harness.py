"""Timing harness and BENCH_perf.json writer for ``repro perf``.

Wall-clock numbers are machine-dependent; the value of this file is the
*trajectory*: the same scenarios, run on the same machine across PRs,
must not regress.  ``BENCH_perf.json`` maps each scenario name to
``{wall_s, vreq_per_s, syscalls_per_s}`` — plus every deterministic
gauge the scenario's thunk returned in its ``extras`` dict (ring
pressure for the ring scenarios, recovery latency for the chaos
scenario, exact virtual-time request percentiles
``latency_p50_ns``/``latency_p99_ns``/``latency_p999_ns`` for the
request-loop scenarios) — and a ``_meta`` entry that records how the
run was parameterized: ops per scenario, worker count, CPU count, and
the scenario execution order (``repro-perf/4``).

Scenarios are independent, so ``run_scenarios`` can shard them across
worker processes (``workers > 1``).  Results come back indexed and are
reordered to registry order, so the report differs from a serial run
only in the wall-clock measurements themselves — every deterministic
gauge and every key is identical.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.perf.scenarios import SCENARIOS, Scenario

#: BENCH_perf.json schema identifier (bump on shape changes).
#: /4 added per-scenario virtual-time latency percentiles
#: (``latency_p50_ns``/``latency_p99_ns``/``latency_p999_ns``).
SCHEMA = "repro-perf/4"

#: Per-scenario keys whose values are wall-clock measurements.  They are
#: machine-dependent by nature: the ``--diff`` gate compares them by
#: ratio, never exactly, and parallel runs are expected to differ from
#: serial runs only in these keys.
WALL_CLOCK_KEYS = frozenset({"wall_s", "vreq_per_s", "syscalls_per_s"})

#: ``_meta`` keys every repro-perf/4 payload must carry.
_META_KEYS = ("schema", "quick", "ops", "python", "workers", "cpu_count",
              "scenario_order")


@dataclass
class BenchResult:
    """One scenario's measured outcome."""

    name: str
    description: str
    ops: int
    wall_s: float
    vrequests: int
    syscalls: int
    #: Deterministic scenario gauges, copied into BENCH_perf.json
    #: verbatim (ring pressure, chaos recovery latency, ...).
    extras: Dict[str, int] = field(default_factory=dict)

    @property
    def ring_high_watermark(self) -> Optional[int]:
        """Peak ring occupancy; None for scenarios without a ring."""
        return self.extras.get("ring_high_watermark")

    @property
    def ring_stalls(self) -> Optional[int]:
        """How often a full ring stalled the leader (BufferFull waits)."""
        return self.extras.get("ring_stalls")

    @property
    def vreq_per_s(self) -> float:
        return self.vrequests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def syscalls_per_s(self) -> float:
        return self.syscalls / self.wall_s if self.wall_s > 0 else 0.0


def run_scenario(scenario: Scenario, ops: int, *,
                 repeat: int = 1) -> BenchResult:
    """Build and time one scenario; with ``repeat`` > 1, keep the
    fastest run (each repeat rebuilds the scenario from scratch)."""
    best: Optional[BenchResult] = None
    for _ in range(max(1, repeat)):
        thunk = scenario.build(ops)
        start = time.perf_counter()
        vrequests, syscalls, extras = thunk()
        wall = time.perf_counter() - start
        result = BenchResult(scenario.name, scenario.description, ops,
                             wall, vrequests, syscalls,
                             extras=dict(extras))
        if best is None or result.wall_s < best.wall_s:
            best = result
    return best


def _scenario_ops(name: str, *, quick: bool, ops: Optional[int]) -> int:
    """The operation count one scenario runs at, resolving --quick/--ops.
    Shared by the serial loop and the shard workers so both run the
    scenarios identically."""
    n = ops if ops is not None else SCENARIOS[name].default_ops
    if quick and ops is None:
        n = max(1, n // 5)
    return n


def run_shard(args: Tuple[List[Tuple[int, str]], Optional[int], bool, int]) \
        -> List[Tuple[int, BenchResult]]:
    """Run one worker's scenarios; returns ``(index, result)`` pairs.

    Top-level by design: multiprocessing's spawn start method pickles
    the worker function by qualified name, and BenchResult (plain
    str/int/float fields) crosses the process boundary intact.
    """
    indexed_names, ops, quick, repeat = args
    out: List[Tuple[int, BenchResult]] = []
    for index, name in indexed_names:
        n = _scenario_ops(name, quick=quick, ops=ops)
        out.append((index, run_scenario(SCENARIOS[name], n, repeat=repeat)))
    return out


def run_scenarios(names: Optional[Iterable[str]] = None, *,
                  quick: bool = False, ops: Optional[int] = None,
                  repeat: int = 1, workers: int = 1,
                  mp_method: Optional[str] = None) -> List[BenchResult]:
    """Run the named scenarios (default: all, in registry order).

    ``workers > 1`` shards the scenario list across processes; the
    result list is reordered to the requested order, so only wall-clock
    fields can differ from a serial run.
    """
    selected = list(names) if names else list(SCENARIOS)
    unknown = [n for n in selected if n not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenario(s): {', '.join(unknown)} "
                       f"(have: {', '.join(SCENARIOS)})")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > 1 and len(selected) > 1:
        from repro.replay.parallel import run_sharded, shard_round_robin
        shards = shard_round_robin(len(selected), workers)
        shard_args = [([(i, selected[i]) for i in shard], ops, quick, repeat)
                      for shard in shards]
        shard_results = run_sharded(run_shard, shard_args, workers,
                                    method=mp_method)
        indexed = [pair for shard in shard_results for pair in shard]
        indexed.sort(key=lambda pair: pair[0])
        return [result for _, result in indexed]
    return [run_scenario(SCENARIOS[name],
                         _scenario_ops(name, quick=quick, ops=ops),
                         repeat=repeat)
            for name in selected]


def to_bench_dict(results: List[BenchResult], *, quick: bool = False,
                  workers: int = 1) -> Dict:
    """The BENCH_perf.json payload: scenario -> metrics, plus ``_meta``."""
    payload: Dict[str, Dict] = {}
    for result in results:
        entry = {
            "wall_s": round(result.wall_s, 6),
            "vreq_per_s": round(result.vreq_per_s, 1),
            "syscalls_per_s": round(result.syscalls_per_s, 1),
        }
        entry.update(result.extras)
        payload[result.name] = entry
    payload["_meta"] = {
        "schema": SCHEMA,
        "quick": quick,
        "ops": {r.name: r.ops for r in results},
        "python": platform.python_version(),
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "scenario_order": [r.name for r in results],
    }
    return payload


def validate_bench(payload: Dict) -> List[str]:
    """Schema check for a repro-perf/4 payload; returns problem strings
    (empty means valid).  Mirrors ``repro.chaos.campaign.validate_report``
    so CI can gate on the artifact it just wrote."""
    problems: List[str] = []
    meta = payload.get("_meta")
    if not isinstance(meta, dict):
        return ["missing or malformed _meta"]
    if meta.get("schema") != SCHEMA:
        problems.append(f"schema is {meta.get('schema')!r}, want {SCHEMA!r}")
    for key in _META_KEYS:
        if key not in meta:
            problems.append(f"_meta missing {key!r}")
    for key in ("workers", "cpu_count"):
        value = meta.get(key)
        if key in meta and (not isinstance(value, int) or value < 1):
            problems.append(f"_meta[{key!r}] must be a positive int, "
                            f"got {value!r}")
    scenario_names = sorted(k for k in payload if k != "_meta")
    if not scenario_names:
        problems.append("no scenario entries")
    order = meta.get("scenario_order")
    if isinstance(order, list) and sorted(order) != scenario_names:
        problems.append("_meta.scenario_order does not match the "
                        "scenario entries")
    ops = meta.get("ops")
    for name in scenario_names:
        entry = payload[name]
        if not isinstance(entry, dict):
            problems.append(f"{name}: entry is not an object")
            continue
        for key in sorted(WALL_CLOCK_KEYS):
            if not isinstance(entry.get(key), (int, float)):
                problems.append(f"{name}: missing numeric {key!r}")
        if isinstance(ops, dict) and name not in ops:
            problems.append(f"_meta.ops missing {name!r}")
    return problems


def write_bench_json(results: List[BenchResult], path: str, *,
                     quick: bool = False, workers: int = 1) -> None:
    """Write BENCH_perf.json (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_bench_dict(results, quick=quick, workers=workers),
                  handle, indent=2, sort_keys=True)
        handle.write("\n")

"""Timing harness and BENCH_perf.json writer for ``repro perf``.

Wall-clock numbers are machine-dependent; the value of this file is the
*trajectory*: the same scenarios, run on the same machine across PRs,
must not regress.  ``BENCH_perf.json`` maps each scenario name to
``{wall_s, vreq_per_s, syscalls_per_s}`` — plus every deterministic
gauge the scenario's thunk returned in its ``extras`` dict (ring
pressure for the ring scenarios, recovery latency for the chaos
scenario) — and a ``_meta`` entry that records how the run was
parameterized.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.perf.scenarios import SCENARIOS, Scenario

#: BENCH_perf.json schema identifier (bump on shape changes).
SCHEMA = "repro-perf/2"


@dataclass
class BenchResult:
    """One scenario's measured outcome."""

    name: str
    description: str
    ops: int
    wall_s: float
    vrequests: int
    syscalls: int
    #: Deterministic scenario gauges, copied into BENCH_perf.json
    #: verbatim (ring pressure, chaos recovery latency, ...).
    extras: Dict[str, int] = field(default_factory=dict)

    @property
    def ring_high_watermark(self) -> Optional[int]:
        """Peak ring occupancy; None for scenarios without a ring."""
        return self.extras.get("ring_high_watermark")

    @property
    def ring_stalls(self) -> Optional[int]:
        """How often a full ring stalled the leader (BufferFull waits)."""
        return self.extras.get("ring_stalls")

    @property
    def vreq_per_s(self) -> float:
        return self.vrequests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def syscalls_per_s(self) -> float:
        return self.syscalls / self.wall_s if self.wall_s > 0 else 0.0


def run_scenario(scenario: Scenario, ops: int, *,
                 repeat: int = 1) -> BenchResult:
    """Build and time one scenario; with ``repeat`` > 1, keep the
    fastest run (each repeat rebuilds the scenario from scratch)."""
    best: Optional[BenchResult] = None
    for _ in range(max(1, repeat)):
        thunk = scenario.build(ops)
        start = time.perf_counter()
        vrequests, syscalls, extras = thunk()
        wall = time.perf_counter() - start
        result = BenchResult(scenario.name, scenario.description, ops,
                             wall, vrequests, syscalls,
                             extras=dict(extras))
        if best is None or result.wall_s < best.wall_s:
            best = result
    return best


def run_scenarios(names: Optional[Iterable[str]] = None, *,
                  quick: bool = False, ops: Optional[int] = None,
                  repeat: int = 1) -> List[BenchResult]:
    """Run the named scenarios (default: all, in registry order)."""
    selected = list(names) if names else list(SCENARIOS)
    unknown = [n for n in selected if n not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenario(s): {', '.join(unknown)} "
                       f"(have: {', '.join(SCENARIOS)})")
    results = []
    for name in selected:
        scenario = SCENARIOS[name]
        n = ops if ops is not None else scenario.default_ops
        if quick and ops is None:
            n = max(1, n // 5)
        results.append(run_scenario(scenario, n, repeat=repeat))
    return results


def to_bench_dict(results: List[BenchResult], *, quick: bool = False) -> Dict:
    """The BENCH_perf.json payload: scenario -> metrics, plus ``_meta``."""
    payload: Dict[str, Dict] = {}
    for result in results:
        entry = {
            "wall_s": round(result.wall_s, 6),
            "vreq_per_s": round(result.vreq_per_s, 1),
            "syscalls_per_s": round(result.syscalls_per_s, 1),
        }
        entry.update(result.extras)
        payload[result.name] = entry
    payload["_meta"] = {
        "schema": SCHEMA,
        "quick": quick,
        "ops": {r.name: r.ops for r in results},
        "python": platform.python_version(),
    }
    return payload


def write_bench_json(results: List[BenchResult], path: str, *,
                     quick: bool = False) -> None:
    """Write BENCH_perf.json (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_bench_dict(results, quick=quick), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")

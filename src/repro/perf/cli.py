"""The ``python -m repro perf`` entry point.

    python -m repro perf                  # run every scenario, print table
    python -m repro perf --quick          # 1/5th the ops (CI smoke)
    python -m repro perf --json           # also write BENCH_perf.json
    python -m repro perf --scenario NAME  # subset (repeatable)
    python -m repro perf --repeat 3       # best-of-3 per scenario
    python -m repro perf --workers auto   # shard scenarios across CPUs
    python -m repro perf --diff BENCH_perf.json  # regression gate
    python -m repro perf --slo            # virtual-time latency percentiles

The BENCH_perf.json schema and the scenario catalogue are documented in
``docs/performance.md``.  ``--diff`` compares the fresh run against a
committed baseline and exits 1 when a deterministic gauge drifted or
``vreq_per_s`` dropped beyond ``--tolerance``; ``--workers`` changes
only wall-clock numbers, never gauges or report shape.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, Optional

from repro.bench.reporting import format_table
from repro.perf.diff import DEFAULT_TOLERANCE, diff_bench, format_diff
from repro.perf.harness import (run_scenarios, to_bench_dict, validate_bench,
                                write_bench_json)
from repro.perf.scenarios import SCENARIOS
from repro.replay.parallel import resolve_workers


def perf_main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description="Wall-clock benchmark of the MVE simulator hot paths.")
    parser.add_argument("--quick", action="store_true",
                        help="run 1/5th of each scenario's default ops")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_perf.json next to the cwd")
    parser.add_argument("--out", metavar="PATH", default="BENCH_perf.json",
                        help="where --json writes (default: %(default)s)")
    parser.add_argument("--scenario", action="append", metavar="NAME",
                        choices=sorted(SCENARIOS),
                        help="run only NAME (repeatable); choices: "
                             + ", ".join(sorted(SCENARIOS)))
    parser.add_argument("--ops", type=int, metavar="N",
                        help="override every scenario's operation count")
    parser.add_argument("--repeat", type=int, default=1, metavar="K",
                        help="run each scenario K times, keep the fastest")
    parser.add_argument("--workers", default="1", metavar="N|auto",
                        help="shard scenarios across N processes ('auto' = "
                             "one per CPU; default: 1). Gauges and report "
                             "shape are identical to a serial run")
    parser.add_argument("--slo", action="store_true",
                        help="print the per-scenario virtual-time "
                             "latency percentile table (the "
                             "latency_p*_ns gauges from repro-perf/4)")
    parser.add_argument("--diff", metavar="BASELINE",
                        help="compare against a committed BENCH_perf.json; "
                             "exit 1 on gauge drift or rate regression")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        metavar="F",
                        help="allowed fractional vreq_per_s drop before "
                             "--diff fails (default: %(default)s)")
    args = parser.parse_args(list(argv) if argv is not None else None)

    try:
        workers = resolve_workers(args.workers)
    except ValueError as exc:
        parser.error(str(exc))
    if not 0 < args.tolerance < 1:
        parser.error(f"--tolerance must be in (0, 1), got {args.tolerance}")

    results = run_scenarios(args.scenario, quick=args.quick, ops=args.ops,
                            repeat=args.repeat, workers=workers)
    print("repro perf: virtual requests simulated per wall-clock second")
    print(format_table(
        ["scenario", "ops", "wall s", "vreq/s", "syscalls/s",
         "ring hwm", "stalls"],
        [[r.name, r.ops, f"{r.wall_s:.3f}", f"{r.vreq_per_s:,.0f}",
          f"{r.syscalls_per_s:,.0f}",
          "-" if r.ring_high_watermark is None else r.ring_high_watermark,
          "-" if r.ring_stalls is None else r.ring_stalls]
         for r in results]))

    if args.slo:
        latency_rows = [
            [r.name, r.extras["latency_p50_ns"], r.extras["latency_p99_ns"],
             r.extras["latency_p999_ns"]]
            for r in results if "latency_p50_ns" in r.extras]
        print()
        if latency_rows:
            print("virtual-time request latency (exact, deterministic):")
            print(format_table(
                ["scenario", "p50 (ns)", "p99 (ns)", "p999 (ns)"],
                latency_rows))
        else:
            print("no selected scenario reports latency percentiles")

    exit_code = 0
    payload = to_bench_dict(results, quick=args.quick, workers=workers)
    if args.json:
        write_bench_json(results, args.out, quick=args.quick,
                         workers=workers)
        print(f"wrote {args.out}")
        for problem in validate_bench(payload):
            print(f"  bench problem: {problem}", file=sys.stderr)
            exit_code = 1

    if args.diff:
        try:
            with open(args.diff, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.diff}: {exc}",
                  file=sys.stderr)
            return 2
        deltas = diff_bench(payload, baseline, tolerance=args.tolerance)
        print(f"\ndiff vs {args.diff} (tolerance {args.tolerance}):")
        print(format_diff(deltas))
        failures = [p for d in deltas for p in d.problems]
        if failures:
            print(f"\n--diff gate FAILED: {len(failures)} problem(s)")
            exit_code = 1
        else:
            print("\n--diff gate passed")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(perf_main())

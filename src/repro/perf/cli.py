"""The ``python -m repro perf`` entry point.

    python -m repro perf                  # run every scenario, print table
    python -m repro perf --quick          # 1/5th the ops (CI smoke)
    python -m repro perf --json           # also write BENCH_perf.json
    python -m repro perf --scenario NAME  # subset (repeatable)
    python -m repro perf --repeat 3       # best-of-3 per scenario

The BENCH_perf.json schema and the scenario catalogue are documented in
``docs/performance.md``.
"""

from __future__ import annotations

import argparse
from typing import Iterable, Optional

from repro.bench.reporting import format_table
from repro.perf.harness import run_scenarios, write_bench_json
from repro.perf.scenarios import SCENARIOS


def perf_main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description="Wall-clock benchmark of the MVE simulator hot paths.")
    parser.add_argument("--quick", action="store_true",
                        help="run 1/5th of each scenario's default ops")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_perf.json next to the cwd")
    parser.add_argument("--out", metavar="PATH", default="BENCH_perf.json",
                        help="where --json writes (default: %(default)s)")
    parser.add_argument("--scenario", action="append", metavar="NAME",
                        choices=sorted(SCENARIOS),
                        help="run only NAME (repeatable); choices: "
                             + ", ".join(sorted(SCENARIOS)))
    parser.add_argument("--ops", type=int, metavar="N",
                        help="override every scenario's operation count")
    parser.add_argument("--repeat", type=int, default=1, metavar="K",
                        help="run each scenario K times, keep the fastest")
    args = parser.parse_args(list(argv) if argv is not None else None)

    results = run_scenarios(args.scenario, quick=args.quick, ops=args.ops,
                            repeat=args.repeat)
    print("repro perf: virtual requests simulated per wall-clock second")
    print(format_table(
        ["scenario", "ops", "wall s", "vreq/s", "syscalls/s",
         "ring hwm", "stalls"],
        [[r.name, r.ops, f"{r.wall_s:.3f}", f"{r.vreq_per_s:,.0f}",
          f"{r.syscalls_per_s:,.0f}",
          "-" if r.ring_high_watermark is None else r.ring_high_watermark,
          "-" if r.ring_stalls is None else r.ring_stalls]
         for r in results]))
    if args.json:
        write_bench_json(results, args.out, quick=args.quick)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(perf_main())

"""Wall-clock performance harness for the MVE simulator.

The paper's evaluation lives and dies by the cost of the interposition
hot path: the leader records syscalls, the ring buffer carries them, the
rewrite-rule engine transforms them, and the follower replays them.  The
rest of the repository measures *virtual* time — this package measures
how fast the simulator itself runs on real hardware, so every PR can be
held to a wall-clock trajectory.

``python -m repro perf`` runs parameterized scenarios (single-leader
steady state, MVE leader+follower, rule-heavy redis/vsftpd streams, a
Figure-7-style ring sweep) and reports virtual requests simulated per
wall-clock second.  ``--json`` writes ``BENCH_perf.json`` with the
schema ``scenario -> {wall_s, vreq_per_s, syscalls_per_s}``; see
``docs/performance.md``.
"""

from repro.perf.diff import diff_bench
from repro.perf.harness import (BenchResult, run_scenarios, validate_bench,
                                write_bench_json)
from repro.perf.scenarios import SCENARIOS, Scenario, rule_heavy_catalog

__all__ = [
    "BenchResult",
    "SCENARIOS",
    "Scenario",
    "diff_bench",
    "rule_heavy_catalog",
    "run_scenarios",
    "validate_bench",
    "write_bench_json",
]

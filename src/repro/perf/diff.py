"""Regression gate: diff a fresh perf run against a BENCH baseline.

``python -m repro perf --diff BASELINE.json`` runs the scenarios, then
compares the fresh payload against the committed baseline:

* **Deterministic gauges** (every per-scenario key that is neither a
  wall-clock measurement nor a ``*_wall_ms`` / ``*_speedup_pct``
  timing extra) must match *exactly* — ring high-watermarks, stall
  counts, recovery latencies, fleet rollbacks are all virtual-time
  quantities and any drift is a behaviour change, not noise.
* **Wall-clock rates** are ratio-gated: ``vreq_per_s`` may not drop
  below ``baseline * (1 - tolerance)``.  The default tolerance is
  generous (0.5) because CI machines are noisy; the trajectory matters,
  not the absolute number.
* **Missing scenarios** (in the baseline but not the fresh run) fail
  the gate; scenarios new to the fresh run are reported but pass.
* Gauge and rate comparisons are skipped when the two runs used
  different operation counts (``--quick`` vs full, ``--ops`` override):
  the gauges are deterministic *given the ops*, not across them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.perf.harness import WALL_CLOCK_KEYS

#: Default allowed fractional drop in vreq_per_s before --diff fails.
DEFAULT_TOLERANCE = 0.5

#: Extras with these suffixes are timing measurements, not gauges —
#: exempt from the exact-match requirement.
_TIMING_SUFFIXES = ("_wall_ms", "_speedup_pct")


def _is_gauge(key: str) -> bool:
    return key not in WALL_CLOCK_KEYS and not key.endswith(_TIMING_SUFFIXES)


@dataclass
class ScenarioDelta:
    """One scenario's comparison verdict."""

    name: str
    #: ``ok`` | ``regression`` | ``gauge-mismatch`` | ``missing`` |
    #: ``new`` | ``ops-changed``
    status: str
    #: Human-readable gate failures (empty for passing statuses).
    problems: List[str] = field(default_factory=list)
    #: current vreq_per_s / baseline vreq_per_s (None when not compared).
    vreq_ratio: Optional[float] = None

    @property
    def ok(self) -> bool:
        return not self.problems


def diff_bench(current: Dict, baseline: Dict, *,
               tolerance: float = DEFAULT_TOLERANCE) -> List[ScenarioDelta]:
    """Compare two BENCH payloads; the gate fails iff any delta carries
    problems.  Scenario order follows the baseline (then new arrivals)."""
    if not 0 < tolerance < 1:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    current_ops = (current.get("_meta") or {}).get("ops") or {}
    baseline_ops = (baseline.get("_meta") or {}).get("ops") or {}
    deltas: List[ScenarioDelta] = []
    baseline_names = [k for k in sorted(baseline) if k != "_meta"]
    for name in baseline_names:
        if name not in current:
            deltas.append(ScenarioDelta(
                name, "missing",
                [f"{name}: in baseline but not in this run"]))
            continue
        old, new = baseline[name], current[name]
        if current_ops.get(name) != baseline_ops.get(name):
            deltas.append(ScenarioDelta(name, "ops-changed"))
            continue
        problems: List[str] = []
        for key in sorted(set(old) | set(new)):
            if not _is_gauge(key):
                continue
            if key not in new:
                problems.append(f"{name}: gauge {key!r} disappeared "
                                f"(baseline {old[key]!r})")
            elif key not in old:
                pass  # new gauge: nothing to compare against yet
            elif new[key] != old[key]:
                problems.append(f"{name}: gauge {key!r} changed "
                                f"{old[key]!r} -> {new[key]!r}")
        ratio: Optional[float] = None
        old_rate = old.get("vreq_per_s")
        new_rate = new.get("vreq_per_s")
        if isinstance(old_rate, (int, float)) and old_rate > 0 \
                and isinstance(new_rate, (int, float)):
            ratio = new_rate / old_rate
            if ratio < 1 - tolerance:
                problems.append(
                    f"{name}: vreq_per_s regressed {old_rate:,.0f} -> "
                    f"{new_rate:,.0f} ({ratio:.2f}x, floor "
                    f"{1 - tolerance:.2f}x)")
        status = "ok"
        if any("gauge" in p for p in problems):
            status = "gauge-mismatch"
        elif problems:
            status = "regression"
        deltas.append(ScenarioDelta(name, status, problems, ratio))
    for name in sorted(current):
        if name != "_meta" and name not in baseline:
            deltas.append(ScenarioDelta(name, "new"))
    return deltas


def format_diff(deltas: List[ScenarioDelta]) -> str:
    """A per-scenario delta table plus one line per gate failure."""
    lines = []
    for delta in deltas:
        ratio = ("-" if delta.vreq_ratio is None
                 else f"{delta.vreq_ratio:.2f}x")
        lines.append(f"  {delta.name:<28} {delta.status:<14} vreq {ratio}")
    for delta in deltas:
        for problem in delta.problems:
            lines.append(f"  REGRESSION {problem}")
    return "\n".join(lines)

"""Structured, virtual-time-stamped tracing for the whole stack.

One :class:`Tracer` collects :class:`TraceEvent` records from
instrumentation hooks in the simulation engine, the virtual kernel, the
MVE runtime, and the DSU engine.  The design constraint is the paper's:
the common case is *no* observer, and then tracing must cost nothing.
Every hook therefore reduces to one attribute load plus an ``is None``
test — no wrappers, no decorators, no conditional imports on hot paths.

The tracer is found two ways:

* a module-global *active* tracer (:func:`install_tracer`), picked up by
  :class:`~repro.net.kernel.VirtualKernel` and
  :class:`~repro.sim.engine.Engine` at construction time — this is what
  ``python -m repro trace`` and the ``--trace PATH`` flag use;
* explicit attachment (:meth:`Tracer.attach`) to an existing kernel —
  what ``examples/operator_console.py`` does.

Timestamps are virtual nanoseconds.  Layers that know the virtual time
(the MVE runtime, the orchestrator) call :meth:`Tracer.advance`; layers
that do not (the kernel, the gateway) stamp events with the most
recently advanced time, which is exact at iteration granularity.

Traces export as JSONL (schema ``repro-trace/1``): a header line, one
line per event, and a final ``metrics.snapshot`` line.  See
``docs/observability.md`` for the full schema and event taxonomy.

This module imports only the standard library and
:mod:`repro.obs.metrics`, so any layer of the stack can depend on it
without cycles.
"""

from __future__ import annotations

import json
from collections import Counter as _TallyCounter
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanCollector

#: JSONL trace schema identifier (bump on shape changes).
TRACE_SCHEMA = "repro-trace/1"

#: Ring records a forensics bundle keeps (the "last K" of the issue).
DEFAULT_LAST_K = 32


def jsonable(value: Any) -> Any:
    """Best-effort conversion of event field values to JSON-ready data.

    Bytes become latin-1 strings with non-printables escaped; enums use
    their ``value``; tuples become lists; mappings become dicts.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return value.decode("latin-1").encode("unicode_escape") \
            .decode("ascii")
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if hasattr(value, "value") and not callable(value.value):  # enums
        return jsonable(value.value)
    return repr(value)


@dataclass
class TraceEvent:
    """One structured trace record."""

    at: int
    kind: str
    layer: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"at": self.at, "kind": self.kind,
                                   "layer": self.layer}
        for key, value in self.fields.items():
            payload[key] = jsonable(value)
        return payload


class Tracer:
    """Collects trace events, metrics, and divergence forensics.

    Class-level tallies (``created_total``, ``emitted_total``) exist so
    the overhead regression test can assert the disabled path creates
    *nothing* — counts, not wall-clock.
    """

    #: Tracer instances ever constructed (process lifetime).
    created_total = 0
    #: Trace events ever emitted, across all tracers (process lifetime).
    emitted_total = 0

    def __init__(self, experiment: str = "",
                 last_k: int = DEFAULT_LAST_K,
                 spans: bool = False) -> None:
        Tracer.created_total += 1
        self.experiment = experiment
        self.events: List[TraceEvent] = []
        self.metrics = MetricsRegistry()
        #: Causal span collector, or None (the default): call sites guard
        #: with ``tracer.spans is not None`` so span-off runs allocate no
        #: span objects at all (see :mod:`repro.obs.spans`).
        self.spans: Optional[SpanCollector] = \
            SpanCollector() if spans else None
        #: Most recently advanced virtual time; used to stamp events
        #: from layers that do not carry a clock.
        self.vnow = 0
        #: Recently consumed ring entries, kept for divergence forensics.
        self.ring_history: Deque[Any] = deque(maxlen=last_k)
        self.last_k = last_k
        #: Forensics bundles captured on divergences (see
        #: :mod:`repro.obs.forensics`).
        self.forensics: List[Any] = []

    # -- core emission ------------------------------------------------------

    def advance(self, at: int) -> None:
        """Move the tracer's notion of virtual time forward (never back)."""
        if at > self.vnow:
            self.vnow = at

    def emit(self, kind: str, layer: str, at: Optional[int] = None,
             **fields: Any) -> TraceEvent:
        """Record one event; ``at=None`` stamps the current virtual time."""
        if at is None:
            at = self.vnow
        else:
            self.advance(at)
        event = TraceEvent(at, kind, layer, fields)
        self.events.append(event)
        Tracer.emitted_total += 1
        return event

    def attach(self, kernel: Any) -> "Tracer":
        """Attach this tracer to an existing kernel (and everything that
        reads ``kernel.tracer`` — gateways, MVE runtimes)."""
        kernel.tracer = self
        return self

    # -- layer hooks --------------------------------------------------------
    #
    # Call sites guard with ``if tracer is not None:`` and then call one
    # of these, keeping instrumented modules to a single line each.

    def on_syscall(self, role: str, record: Any) -> None:
        """A gateway emitted one syscall record (any role)."""
        self.emit("syscall", "mve", role=role, name=record.name.value,
                  fd=record.fd, nbytes=len(record.data))
        self.metrics.counter("syscalls.total").inc()
        self.metrics.counter(f"syscalls.{role}").inc()

    def on_kernel(self, phase: str, op: str, domain: int,
                  fd: int = -1) -> None:
        """The virtual kernel entered/exited one syscall implementation."""
        self.emit(f"kernel.{phase}", "kernel", op=op, domain=domain, fd=fd)
        if phase == "enter":
            self.metrics.counter("kernel.syscalls").inc()

    def on_sim_event(self, at: int, pending: int) -> None:
        """The discrete-event engine dispatched one scheduled event."""
        self.emit("sim.event", "sim", at=at, pending=pending)
        self.metrics.counter("sim.events").inc()

    def on_ring_publish(self, at: int, count: int, occupancy: int,
                        high_watermark: int) -> None:
        """The leader pushed a batch of records onto the ring."""
        self.emit("ring.publish", "mve", at=at, count=count,
                  occupancy=occupancy)
        self.metrics.counter("ring.published").inc(count)
        self.metrics.gauge("ring.occupancy").set(occupancy)
        self.metrics.gauge("ring.high_watermark").set(high_watermark)

    def on_ring_replay(self, at: int, count: int, occupancy: int,
                       entries: Iterable[Any] = ()) -> None:
        """The follower consumed one iteration's entries from the ring."""
        self.ring_history.extend(entries)
        self.emit("ring.replay", "mve", at=at, count=count,
                  occupancy=occupancy)
        self.metrics.counter("ring.replayed").inc(count)
        self.metrics.gauge("ring.occupancy").set(occupancy)

    def on_ring_stall(self, at: int, capacity: int) -> None:
        """A full ring blocked the leader (Figure 7's back-pressure)."""
        self.emit("ring.stall", "mve", at=at, capacity=capacity)
        self.metrics.counter("ring.stalls").inc()

    def on_ring_frame(self, at: int, sequence: int, count: int,
                      n_bytes: int, inflight: int,
                      deliver_at: int) -> None:
        """A distributed ring shipped one repro-ring/1 frame."""
        self.emit("net.ring.frame", "net", at=at, sequence=sequence,
                  count=count, bytes=n_bytes, inflight=inflight,
                  deliver_at=deliver_at)
        self.metrics.counter("ring.frames").inc()
        self.metrics.gauge("ring.inflight").set(inflight)
        if self.spans is not None:
            self.spans.add("net.ring", "net", at, deliver_at,
                           sequence=sequence, bytes=n_bytes)

    def on_ring_resync(self, at: int, resyncs: int) -> None:
        """A distributed ring resynchronised its stream at a fork."""
        self.emit("net.ring.resync", "net", at=at, resyncs=resyncs)
        self.metrics.counter("ring.resync").inc()

    def on_rules_applied(self, n_in: int, n_out: int,
                         fired: List[str]) -> None:
        """One iteration's records crossed the rewrite-rule engine."""
        self.metrics.counter("rules.records_in").inc(n_in)
        self.metrics.counter("rules.dispatch_hits").inc(len(fired))
        for name in fired:
            self.emit("rule.fired", "mve", rule=name)

    def on_divergence_check(self, at: int, ok: bool, records: int,
                            detail: str = "") -> None:
        """One replayed iteration's verdict: matched or diverged."""
        self.emit("divergence.check", "mve", at=at, ok=ok, records=records,
                  detail=detail)
        self.metrics.counter("divergence.checks").inc()
        if not ok:
            self.metrics.counter("divergence.detected").inc()

    def on_forensics(self, bundle: Any) -> None:
        """A divergence produced a forensics bundle; keep and announce it."""
        self.forensics.append(bundle)
        self.emit("divergence.forensics", "mve", at=bundle.at,
                  reason=bundle.reason, bundle=len(self.forensics) - 1,
                  ring_records=len(bundle.ring_last_k))

    def on_dsu(self, kind: str, at: int, **fields: Any) -> None:
        """A DSU lifecycle step (request/quiesce/xform/applied/...)."""
        self.emit(f"dsu.{kind}", "dsu", at=at, **fields)
        self.metrics.counter(f"dsu.{kind}").inc()
        if kind == "quiesce" and "ns" in fields:
            self.metrics.histogram("dsu.quiescence_wait_ns") \
                .observe(fields["ns"])
        if kind == "xform" and "ns" in fields:
            self.metrics.histogram("dsu.xform_ns").observe(fields["ns"])

    def on_stream_record(self, at: int, count: int) -> None:
        """The stream recorder persisted one leader iteration."""
        self.emit("stream.record", "replay", at=at, count=count)
        self.metrics.counter("stream.recorded").inc(count)

    def on_control(self, kind: str, at: int, version: str) -> None:
        """A promote/demote control event entered the ring stream."""
        self.emit(f"control.{kind}", "mve", at=at, version=version)
        self.metrics.counter(f"control.{kind}").inc()

    def on_fleet(self, kind: str, at: int, **fields: Any) -> None:
        """A fleet-orchestration step (canary/wave/promote/rollback/
        demotion/failover/partition/replica_crash)."""
        self.emit(f"fleet.{kind}", "fleet", at=at, **fields)
        self.metrics.counter(f"fleet.{kind}").inc()

    def on_chaos(self, at: int, site: str, kind: str, *,
                 call_index: int = 0, stage: str = "") -> None:
        """A chaos injector fired one fault at an instrumented site."""
        self.emit("chaos.inject", "chaos", at=at, site=site, fault=kind,
                  call_index=call_index, stage=stage)
        self.metrics.counter("chaos.injected").inc()
        self.metrics.counter(f"chaos.site.{site}").inc()

    # -- reporting ----------------------------------------------------------

    def kind_tally(self) -> Dict[str, int]:
        """Event counts per kind (for summaries and tests)."""
        return dict(_TallyCounter(event.kind for event in self.events))

    def to_jsonl_lines(self) -> List[str]:
        """The full trace as JSONL lines (header, events, metrics)."""
        lines = [json.dumps({"schema": TRACE_SCHEMA,
                             "experiment": self.experiment,
                             "events": len(self.events)})]
        lines.extend(json.dumps(event.as_dict()) for event in self.events)
        lines.append(json.dumps({"at": self.vnow, "kind": "metrics.snapshot",
                                 "layer": "obs",
                                 "metrics": self.metrics.snapshot()}))
        return lines

    def write_jsonl(self, path: str) -> None:
        """Write the trace to ``path`` (one JSON object per line)."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.to_jsonl_lines():
                handle.write(line + "\n")


# ---------------------------------------------------------------------------
# The active (global) tracer
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def install_tracer(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the active tracer; kernels and engines built while
    it is installed pick it up automatically."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def uninstall_tracer() -> Optional[Tracer]:
    """Clear the active tracer; returns the one that was installed."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def current_tracer() -> Optional[Tracer]:
    """The active tracer, or None (the zero-cost default)."""
    return _ACTIVE


class tracing:
    """Context manager: install a tracer for the duration of a block."""

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.tracer
        return self.tracer

    def __exit__(self, *exc_info: Any) -> None:
        global _ACTIVE
        _ACTIVE = self._previous


# ---------------------------------------------------------------------------
# Schema validation (used by tests and the CI trace-smoke job)
# ---------------------------------------------------------------------------

def validate_trace_lines(lines: List[str]) -> List[str]:
    """Check JSONL trace lines against ``repro-trace/1``.

    Returns a list of problems (empty means valid): a header with the
    right schema id, events carrying integer ``at`` plus non-empty
    ``kind``/``layer`` strings, and a final metrics snapshot.
    """
    problems: List[str] = []
    if not lines:
        return ["trace is empty"]
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        return [f"line 1: not JSON ({exc})"]
    if header.get("schema") != TRACE_SCHEMA:
        problems.append(f"line 1: schema is {header.get('schema')!r}, "
                        f"expected {TRACE_SCHEMA!r}")
    if len(lines) < 2:
        problems.append("trace has no metrics snapshot line")
        return problems
    for index, line in enumerate(lines[1:], start=2):
        try:
            event = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {index}: not JSON ({exc})")
            continue
        at = event.get("at")
        if not isinstance(at, int):
            problems.append(f"line {index}: 'at' is {at!r}, expected int")
        kind = event.get("kind")
        if not isinstance(kind, str) or not kind:
            problems.append(f"line {index}: missing 'kind'")
        layer = event.get("layer")
        if not isinstance(layer, str) or not layer:
            problems.append(f"line {index}: missing 'layer'")
    try:
        last = json.loads(lines[-1])
    except ValueError:
        last = {}
    if last.get("kind") != "metrics.snapshot":
        problems.append("last line is not a metrics.snapshot")
    elif not isinstance(last.get("metrics"), dict):
        problems.append("metrics.snapshot carries no metrics dict")
    return problems


def validate_trace_file(path: str) -> List[str]:
    """Validate a JSONL trace file; returns a list of problems."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle if line.strip()]
    return validate_trace_lines(lines)

"""Traced companion scenarios for ``python -m repro trace``.

The headline experiments (``fig6``, ``fig7``, ``table1``, ``table2``,
``faults``) reproduce the paper's *numbers* with the fluid simulator,
which is batch-granular and therefore nearly silent at trace level.
Each experiment here gets a *semantic companion*: the same lifecycle —
same servers, same rules, same fault injections — driven through the
full semantic stack (virtual kernel, ring buffer, rewrite rules, DSU
engine), so its trace carries the per-syscall, per-ring-batch, and
per-divergence-check events forensics needs.

``run_trace_scenario(name)`` builds a :class:`~repro.obs.trace.Tracer`,
installs it for the duration of the run, and returns it loaded with
events, metrics, and (for ``faults``) forensics bundles.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.obs.trace import DEFAULT_LAST_K, Tracer, tracing


def _trace_fig6(tracer: Tracer, quick: bool) -> None:
    """Redis 2.0.0 -> 2.0.1 through the full Mvedsua lifecycle."""
    from repro.core import Mvedsua
    from repro.net import VirtualKernel
    from repro.servers.redis import (RedisServer, redis_rules,
                                     redis_transforms, redis_version)
    from repro.sim.engine import SECOND
    from repro.syscalls.costs import PROFILES
    from repro.workloads import VirtualClient
    from repro.workloads.memtier import MemtierSpec

    ops = 8 if quick else 40
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0", hmget_bug=False))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["redis"],
                      transforms=redis_transforms(), ring_capacity=1 << 10)
    client = VirtualClient(kernel, server.address)
    spec = MemtierSpec()

    def serve(start_ns: int, seed: int) -> None:
        now = start_ns
        for command in spec.commands(ops, protocol="redis", seed=seed):
            _, now = client.request(mvedsua, command, now)

    serve(SECOND, seed=1)
    mvedsua.request_update(redis_version("2.0.1", hmget_bug=False),
                           100 * SECOND,
                           rules=redis_rules("2.0.0", "2.0.1"))
    serve(101 * SECOND, seed=2)
    mvedsua.promote(200 * SECOND)
    serve(201 * SECOND, seed=3)
    mvedsua.finalize(300 * SECOND)
    serve(301 * SECOND, seed=4)


def _trace_table1(tracer: Tracer, quick: bool) -> None:
    """One Vsftpd Table 1 update pair (2.0.4 -> 2.0.5, RETR reorder)."""
    from repro.core import Mvedsua
    from repro.net import VirtualKernel
    from repro.servers.vsftpd import (VsftpdServer, vsftpd_rules,
                                      vsftpd_transforms, vsftpd_version)
    from repro.sim.engine import SECOND
    from repro.syscalls.costs import PROFILES
    from repro.workloads.ftpclient import FtpClient

    retrs = 1 if quick else 4
    kernel = VirtualKernel()
    kernel.fs.write_file("/f.txt", b"trace payload")
    server = VsftpdServer(vsftpd_version("2.0.4"))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["vsftpd-small"],
                      transforms=vsftpd_transforms())
    client = FtpClient(kernel, server.address)
    client.login(mvedsua)
    mvedsua.request_update(vsftpd_version("2.0.5"), SECOND,
                           rules=vsftpd_rules("2.0.4", "2.0.5"))
    now = 2 * SECOND
    for _ in range(retrs):
        client.retr(mvedsua, "f.txt", now=now)
        now += SECOND
    mvedsua.promote(now)
    client.retr(mvedsua, "f.txt", now=now + SECOND)
    mvedsua.finalize(now + 2 * SECOND)


def _trace_table2(tracer: Tracer, quick: bool) -> None:
    """Redis steady state: single leader, then a plain Varan follower."""
    from repro.mve import VaranRuntime
    from repro.net import VirtualKernel
    from repro.servers.redis import RedisServer, redis_version
    from repro.syscalls.costs import PROFILES
    from repro.workloads import VirtualClient
    from repro.workloads.memtier import MemtierSpec

    ops = 8 if quick else 40
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0", hmget_bug=False))
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["redis"],
                           ring_capacity=1 << 10, with_kitsune=False)
    client = VirtualClient(kernel, server.address)
    spec = MemtierSpec()
    now = 0
    for command in spec.commands(ops, protocol="redis", seed=5):
        _, now = client.request(runtime, command, now + 1)
    runtime.fork_follower(now)
    for command in spec.commands(ops, protocol="redis", seed=6):
        _, now = client.request(runtime, command, now + 1)
    runtime.drain_follower()


def _trace_fig7(tracer: Tracer, quick: bool) -> None:
    """KV store through a tiny (8-entry) ring: heavy back-pressure."""
    from repro.mve import VaranRuntime
    from repro.net import VirtualKernel
    from repro.servers.kvstore import KVStoreServer, KVStoreV1
    from repro.syscalls.costs import PROFILES
    from repro.workloads import VirtualClient

    ops = 12 if quick else 80
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    runtime = VaranRuntime(kernel, server, PROFILES["kvstore"],
                           ring_capacity=8)
    client = VirtualClient(kernel, server.address)
    runtime.fork_follower(0)
    now = 0
    for index in range(ops):
        _, now = client.request(runtime, b"PUT k%d v%d" % (index % 16, index),
                                now + 1)
    runtime.drain_follower()


def _trace_faults(tracer: Tracer, quick: bool) -> None:
    """Forced failures: an xform bug (divergence + forensics bundle) and
    a new-code crash (follower terminated, service survives)."""
    from repro.core import Mvedsua
    from repro.dsu.transform import TransformRegistry
    from repro.net import VirtualKernel
    from repro.servers.kvstore import (KVStoreServer, KVStoreV1, KVStoreV2,
                                       kv_rules, xform_drop_table)
    from repro.servers.redis import (RedisServer, redis_rules,
                                     redis_transforms, redis_version)
    from repro.sim.engine import SECOND
    from repro.syscalls.costs import PROFILES
    from repro.workloads import VirtualClient

    # -- xform bug: the dropped table makes the follower's GET diverge.
    buggy = TransformRegistry()
    buggy.register("kvstore", "1.0", "2.0", xform_drop_table)
    kernel = VirtualKernel()
    server = KVStoreServer(KVStoreV1())
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["kvstore"], transforms=buggy)
    client = VirtualClient(kernel, server.address)
    client.command(mvedsua, b"PUT balance 1000")
    mvedsua.request_update(KVStoreV2(), SECOND, rules=kv_rules())
    client.command(mvedsua, b"GET balance", now=2 * SECOND)
    client.command(mvedsua, b"GET balance", now=3 * SECOND)

    # -- new-code crash: the E1 Redis HMGET bug kills the follower.
    kernel = VirtualKernel()
    server = RedisServer(redis_version("2.0.0", hmget_bug=False))
    server.attach(kernel)
    mvedsua = Mvedsua(kernel, server, PROFILES["redis"],
                      transforms=redis_transforms())
    client = VirtualClient(kernel, server.address)
    client.command(mvedsua, b"SET wrongtype value")
    mvedsua.request_update(redis_version("2.0.1", hmget_bug=True),
                           SECOND, rules=redis_rules("2.0.0", "2.0.1"))
    client.command(mvedsua, b"HMGET wrongtype f", now=2 * SECOND)
    client.command(mvedsua, b"GET wrongtype", now=3 * SECOND)


#: experiment name -> scenario driver.  Keys deliberately mirror the
#: ``python -m repro <experiment>`` names the trace is a companion to.
TRACE_SCENARIOS: Dict[str, Callable[[Tracer, bool], None]] = {
    "fig6": _trace_fig6,
    "fig7": _trace_fig7,
    "table1": _trace_table1,
    "table2": _trace_table2,
    "faults": _trace_faults,
}


def run_trace_scenario(name: str, *, quick: bool = False,
                       last_k: int = DEFAULT_LAST_K) -> Tracer:
    """Run one traced companion scenario; returns the loaded tracer."""
    try:
        scenario = TRACE_SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown trace scenario {name!r} "
                       f"(have: {', '.join(sorted(TRACE_SCENARIOS))})")
    tracer = Tracer(experiment=name, last_k=last_k)
    with tracing(tracer):
        scenario(tracer, quick)
    return tracer

"""Causal spans: who waited on what, across the whole upgrade.

The trace layer answers "what happened, in order"; spans answer "what
*caused* this request's latency".  A :class:`Span` is an interval of
virtual time with a parent link, so a request span (gateway accept →
response) can own the ring-stall waits that happened while it was being
served, and an SLO report can walk from a violated request down to the
dominant wait (see :mod:`repro.obs.slo`).

Span kinds, by layer:

* ``request`` (layer ``gateway``) — one closed-loop client request,
  opened at send time and closed when the reply is read;
* ``dsu.update`` / ``dsu.quiesce`` / ``dsu.fork`` / ``dsu.xform``
  (layer ``dsu``) — the update lifecycle; ``dsu.update`` is the
  umbrella, the others its children;
* ``mve.ring-stall`` / ``mve.divergence`` / ``mve.demotion`` /
  ``mve.promote`` (layer ``mve``) — ring back-pressure waits and
  lifecycle transitions;
* ``fleet.round`` / ``fleet.slot`` (layer ``fleet``) — canary-staged
  upgrade rounds; probe requests issued inside a round become its
  children via the open-span stack.

Parenting uses **dynamic extent**: :meth:`SpanCollector.open` pushes the
span on a stack, :meth:`SpanCollector.close` pops it, and any span
created in between (opened or added closed) gets the stack top as its
parent.  Known-interval waits (a ring stall is ``[t, freed_at]`` the
moment it resolves) use :meth:`SpanCollector.add` and are born closed.

The collector mirrors the tracer's zero-cost contract: spans are off by
default (``Tracer(spans=False)`` keeps ``tracer.spans`` None), every
instrumented call site guards with ``spans is not None``, and the
class-level tallies (``created_total`` / ``opened_total``) let the
overhead test assert the disabled path allocates *zero* span objects.

Spans export as JSONL (schema ``repro-span/1``): a header line then one
line per span.  ``validate_span_lines`` / ``validate_span_file`` check
the shape; span *hygiene* (unclosed spans, orphan parents, end before
start) is the MVE9xx lint's job (:mod:`repro.analysis.trace_lint`).

Standard library only, so any layer of the stack can import it without
cycles.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

#: JSONL span schema identifier (bump on shape changes).
SPAN_SCHEMA = "repro-span/1"

#: Upgrade phases a request can be served in, in lifecycle order.
PHASES = ("normal", "mve-active", "quiesce-pause", "promoted",
          "rolled-back")


class Span:
    """One interval of virtual time with a causal parent link."""

    __slots__ = ("span_id", "parent_id", "kind", "layer", "start_ns",
                 "end_ns", "phase", "attrs")

    def __init__(self, span_id: int, parent_id: Optional[int], kind: str,
                 layer: str, start_ns: int, end_ns: Optional[int] = None,
                 phase: str = "normal",
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.layer = layer
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.phase = phase
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration_ns(self) -> Optional[int]:
        """Span length, or None while the span is still open."""
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def overlap_ns(self, start_ns: int, end_ns: int) -> int:
        """How much of ``[start_ns, end_ns]`` this (closed) span covers."""
        if self.end_ns is None:
            return 0
        return max(0, min(self.end_ns, end_ns) - max(self.start_ns,
                                                     start_ns))

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "span": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "layer": self.layer,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "phase": self.phase,
        }
        for key, value in self.attrs.items():
            payload[key] = value
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span {self.span_id} {self.kind} "
                f"[{self.start_ns}, {self.end_ns}]>")


class SpanCollector:
    """Collects spans with dynamic-extent causal parenting.

    Class-level tallies exist so the zero-allocation regression test can
    assert the disabled path creates nothing — counts, not wall-clock,
    exactly like :class:`~repro.obs.trace.Tracer`'s tallies.
    """

    #: Collectors ever constructed (process lifetime).
    created_total = 0
    #: Spans ever created, across all collectors (process lifetime).
    opened_total = 0

    def __init__(self) -> None:
        SpanCollector.created_total += 1
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        #: Current upgrade phase, stamped onto spans at creation.  The
        #: DSU orchestrator advances it through :data:`PHASES`.
        self.phase = PHASES[0]

    # -- creation -----------------------------------------------------------

    def _new_span(self, kind: str, layer: str, start_ns: int,
                  end_ns: Optional[int], parent: Optional[int],
                  attrs: Dict[str, Any]) -> Span:
        if parent is None and self._stack:
            parent = self._stack[-1].span_id
        span = Span(self._next_id, parent, kind, layer, start_ns, end_ns,
                    phase=self.phase, attrs=attrs)
        self._next_id += 1
        self.spans.append(span)
        SpanCollector.opened_total += 1
        return span

    def open(self, kind: str, layer: str, at: int,
             **attrs: Any) -> Span:
        """Start a span; spans created before :meth:`close` become its
        children."""
        span = self._new_span(kind, layer, at, None, None, attrs)
        self._stack.append(span)
        return span

    def close(self, span: Span, at: int, **attrs: Any) -> Span:
        """End an open span (must be the innermost open one)."""
        if not self._stack or self._stack[-1] is not span:
            raise ValueError(f"span {span.span_id} is not the innermost "
                             f"open span")
        self._stack.pop()
        span.end_ns = at
        span.attrs.update(attrs)
        return span

    def add(self, kind: str, layer: str, start_ns: int, end_ns: int,
            parent: Optional[int] = None, **attrs: Any) -> Span:
        """Record a known interval as a born-closed span.

        ``parent`` overrides the dynamic-extent parent (the innermost
        open span, if any).
        """
        return self._new_span(kind, layer, start_ns, end_ns, parent, attrs)

    def set_phase(self, phase: str) -> None:
        """Advance the upgrade phase stamped onto subsequent spans."""
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r} "
                             f"(have: {', '.join(PHASES)})")
        self.phase = phase

    # -- introspection ------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def request_spans(self) -> List[Span]:
        """All ``request`` spans, in creation order."""
        return [span for span in self.spans if span.kind == "request"]

    def children_of(self, span_id: int) -> List[Span]:
        return [span for span in self.spans if span.parent_id == span_id]

    def kind_tally(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for span in self.spans:
            tally[span.kind] = tally.get(span.kind, 0) + 1
        return tally

    # -- export -------------------------------------------------------------

    def to_jsonl_lines(self, experiment: str = "") -> List[str]:
        """The spans as JSONL (header line, then one line per span)."""
        lines = [json.dumps({"schema": SPAN_SCHEMA,
                             "experiment": experiment,
                             "spans": len(self.spans)})]
        lines.extend(json.dumps(span.as_dict()) for span in self.spans)
        return lines

    def write_jsonl(self, path: str, experiment: str = "") -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.to_jsonl_lines(experiment):
                handle.write(line + "\n")


def iter_span_dicts(lines: List[str]) -> Iterator[Dict[str, Any]]:
    """Parsed span objects from JSONL lines (header skipped); raises
    ``ValueError`` on non-JSON lines."""
    for line in lines[1:]:
        yield json.loads(line)


# ---------------------------------------------------------------------------
# Schema validation (shape only; hygiene is the MVE9xx lint's job)
# ---------------------------------------------------------------------------

def validate_span_lines(lines: List[str]) -> List[str]:
    """Check JSONL span lines against ``repro-span/1``.

    Returns a list of problems (empty means valid): a header with the
    right schema id and span count, then span lines carrying an integer
    ``span`` id, integer ``start_ns``, ``end_ns`` integer or null,
    ``parent`` integer or null, non-empty ``kind``/``layer`` strings,
    and a ``phase`` from :data:`PHASES`.
    """
    problems: List[str] = []
    if not lines:
        return ["span file is empty"]
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        return [f"line 1: not JSON ({exc})"]
    if not isinstance(header, dict) \
            or header.get("schema") != SPAN_SCHEMA:
        schema = header.get("schema") if isinstance(header, dict) else None
        problems.append(f"line 1: schema is {schema!r}, "
                        f"expected {SPAN_SCHEMA!r}")
    declared = header.get("spans") if isinstance(header, dict) else None
    if not isinstance(declared, int) or declared < 0:
        problems.append(f"line 1: 'spans' is {declared!r}, "
                        f"expected a non-negative int")
    elif declared != len(lines) - 1:
        problems.append(f"header declares {declared} spans but the file "
                        f"has {len(lines) - 1} span lines (truncated?)")
    for index, line in enumerate(lines[1:], start=2):
        try:
            span = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {index}: not JSON ({exc})")
            continue
        if not isinstance(span, dict):
            problems.append(f"line {index}: not an object")
            continue
        if not isinstance(span.get("span"), int):
            problems.append(f"line {index}: 'span' is "
                            f"{span.get('span')!r}, expected int")
        if not isinstance(span.get("start_ns"), int):
            problems.append(f"line {index}: 'start_ns' is "
                            f"{span.get('start_ns')!r}, expected int")
        end_ns = span.get("end_ns", "missing")
        if end_ns is not None and not isinstance(end_ns, int):
            problems.append(f"line {index}: 'end_ns' is {end_ns!r}, "
                            f"expected int or null")
        parent = span.get("parent", "missing")
        if parent is not None and not isinstance(parent, int):
            problems.append(f"line {index}: 'parent' is {parent!r}, "
                            f"expected int or null")
        for key in ("kind", "layer"):
            value = span.get(key)
            if not isinstance(value, str) or not value:
                problems.append(f"line {index}: missing {key!r}")
        if span.get("phase") not in PHASES:
            problems.append(f"line {index}: phase {span.get('phase')!r} "
                            f"not in {PHASES}")
    return problems


def validate_span_file(path: str) -> List[str]:
    """Validate a JSONL span file; returns a list of problems."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle if line.strip()]
    return validate_span_lines(lines)

"""Request-level SLO accounting over causal spans.

This is where the span layer pays off: given a
:class:`~repro.obs.spans.SpanCollector` full of request / DSU / MVE /
fleet spans, this module answers the operator's questions —

* *Did we meet the latency budget?*  :class:`SloSpec` states the budget
  (p50/p99/p999 ceilings in virtual ns, an availability floor) and
  :func:`build_slo_report` checks it against exact nearest-rank
  percentiles (:class:`~repro.obs.metrics.Histogram`).
* *Which requests blew it, during which upgrade phase?*  Every request
  span carries the phase it was served in (normal / mve-active /
  quiesce-pause / promoted / rolled-back); requests that overlap a
  quiescence or fork window are re-tagged ``quiesce-pause`` even if they
  were admitted before the update began.
* *Why?*  :func:`attribute_request` walks an SLO-violating request's
  span tree — child waits contribute their full duration, background
  waits (a ring stall, a quiescence pause on another span stack)
  contribute their overlap with the request window — and blames the
  dominant cause: ``ring-stall``, ``quiesce-pause``, ``transform``,
  ``divergence``, ``promote-drain``, or ``self`` when the request's own
  service time dominates.

Reports use schema ``repro-slo/1`` and are bit-stable per seed: all
quantities are exact integers or round()-ed floats derived from them,
histograms merge losslessly across workers
(:meth:`~repro.obs.metrics.Histogram.merge`), and nothing
non-deterministic (wall clock, worker count) is allowed into the
payload.

Standard library + :mod:`repro.obs.metrics` + :mod:`repro.obs.spans`
only, so scenario runners at any layer can import it without cycles.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import Histogram
from repro.obs.spans import PHASES, Span, SpanCollector

#: SLO report schema identifier (bump on shape changes).
SLO_SCHEMA = "repro-slo/1"

#: Span kinds that can be blamed for a request's latency, and the
#: attribution category each maps to.  ``dsu.update`` is deliberately
#: absent: it is an umbrella over quiesce/fork/xform and would
#: double-count them.
BLAME = {
    "mve.ring-stall": "ring-stall",
    "dsu.quiesce": "quiesce-pause",
    "dsu.fork": "quiesce-pause",
    "dsu.xform": "transform",
    "mve.divergence": "divergence",
    "mve.promote": "promote-drain",
    "mve.demotion": "demotion",
}

#: Attribution category when no blameable wait overlaps the request.
SELF_BLAME = "self"

#: Most attributions kept per report (worst-first), so reports stay
#: readable and bit-stable regardless of how many requests violate.
MAX_ATTRIBUTIONS = 10

#: Quantiles reported per phase: (key, q).
QUANTILES = (("p50_ns", 0.50), ("p99_ns", 0.99), ("p999_ns", 0.999))


class SloSpec:
    """A latency/availability budget in virtual time.

    ``p50_ns``/``p99_ns``/``p999_ns`` are ceilings on the corresponding
    nearest-rank percentile of request latency; ``availability`` is a
    floor on the answered-request ratio in ``[0, 1]``.  Any ceiling may
    be None (unconstrained).  ``p99_ns`` doubles as the *per-request*
    budget: a request slower than it is an SLO-violating request and
    gets a critical-path attribution.
    """

    __slots__ = ("name", "p50_ns", "p99_ns", "p999_ns", "availability")

    def __init__(self, name: str = "default", *,
                 p50_ns: Optional[int] = None,
                 p99_ns: Optional[int] = None,
                 p999_ns: Optional[int] = None,
                 availability: Optional[float] = None) -> None:
        self.name = name
        self.p50_ns = p50_ns
        self.p99_ns = p99_ns
        self.p999_ns = p999_ns
        self.availability = availability

    def problems(self) -> List[str]:
        """Schema errors in the spec itself (empty means well-formed)."""
        problems: List[str] = []
        if not isinstance(self.name, str) or not self.name:
            problems.append(f"spec name {self.name!r} must be a "
                            f"non-empty string")
        for key in ("p50_ns", "p99_ns", "p999_ns"):
            value = getattr(self, key)
            if value is not None and (not isinstance(value, int)
                                      or value <= 0):
                problems.append(f"{key} is {value!r}, expected a "
                                f"positive int or None")
        availability = self.availability
        if availability is not None:
            if not isinstance(availability, (int, float)) \
                    or not 0.0 <= availability <= 1.0:
                problems.append(f"availability is {availability!r}, "
                                f"expected a float in [0, 1] or None")
        ordered = [getattr(self, key) for key in
                   ("p50_ns", "p99_ns", "p999_ns")]
        known = [value for value in ordered if isinstance(value, int)]
        if known != sorted(known):
            problems.append("percentile budgets must be non-decreasing "
                            "(p50_ns <= p99_ns <= p999_ns)")
        return problems

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "p50_ns": self.p50_ns,
                "p99_ns": self.p99_ns, "p999_ns": self.p999_ns,
                "availability": self.availability}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SloSpec":
        return cls(payload.get("name", "default"),
                   p50_ns=payload.get("p50_ns"),
                   p99_ns=payload.get("p99_ns"),
                   p999_ns=payload.get("p999_ns"),
                   availability=payload.get("availability"))


# ---------------------------------------------------------------------------
# Sample extraction and critical-path attribution
# ---------------------------------------------------------------------------

def effective_phase(request: Span, collector: SpanCollector) -> str:
    """The upgrade phase the request was *actually* served in.

    The stamped phase is the collector's phase at admission; a request
    that overlaps a quiescence or fork window was paused by the update
    regardless of when it was admitted, so it reports ``quiesce-pause``.
    """
    if request.end_ns is None:
        return request.phase
    for span in collector.spans:
        if span.kind in ("dsu.quiesce", "dsu.fork") \
                and span.overlap_ns(request.start_ns, request.end_ns) > 0:
            return "quiesce-pause"
    return request.phase


def _descendant_ids(request: Span, collector: SpanCollector) -> set:
    ids = {request.span_id}
    # Spans are appended in creation order, so one forward pass links
    # every descendant (a child is always created after its parent).
    for span in collector.spans:
        if span.parent_id in ids:
            ids.add(span.span_id)
    return ids


def attribute_request(request: Span,
                      collector: SpanCollector) -> Dict[str, Any]:
    """Critical-path attribution for one (closed) request span.

    Returns ``{"blame": category, "blame_ns": ns, "breakdown": {...}}``:
    child waits count in full, background waits count by overlap with
    the request window, and the dominant category wins (ties break
    alphabetically so reports are bit-stable).  ``self`` means the
    request's own service time dominates every blameable wait.
    """
    assert request.end_ns is not None
    descendants = _descendant_ids(request, collector)
    breakdown: Dict[str, int] = {}
    for span in collector.spans:
        category = BLAME.get(span.kind)
        if category is None or span.end_ns is None:
            continue
        if span.span_id in descendants:
            ns = span.end_ns - span.start_ns
        else:
            ns = span.overlap_ns(request.start_ns, request.end_ns)
        if ns > 0:
            breakdown[category] = breakdown.get(category, 0) + ns
    if not breakdown:
        latency = request.end_ns - request.start_ns
        return {"blame": SELF_BLAME, "blame_ns": latency,
                "breakdown": {}}
    blame = min(breakdown, key=lambda cat: (-breakdown[cat], cat))
    return {"blame": blame, "blame_ns": breakdown[blame],
            "breakdown": dict(sorted(breakdown.items()))}


def collect_cell(collector: SpanCollector, cell: str,
                 spec: SloSpec) -> Dict[str, Any]:
    """Reduce one scenario cell's spans to a JSON/pickle-safe summary.

    This is the unit that crosses worker-process boundaries when a
    scenario runs sharded: exact per-phase value counts (losslessly
    mergeable), the answered tally, and the cell's SLO-violating
    requests with their attributions.  Value keys are stringified for
    JSON round-tripping; :func:`phase_histograms` undoes that.
    """
    phase_values: Dict[str, Dict[str, int]] = {}
    violations: List[Dict[str, Any]] = []
    requests = answered = 0
    for request in collector.request_spans():
        if request.end_ns is None:
            continue
        requests += 1
        if request.attrs.get("answered", True) \
                and not request.attrs.get("error"):
            answered += 1
        latency = request.end_ns - request.start_ns
        phase = effective_phase(request, collector)
        values = phase_values.setdefault(phase, {})
        key = str(latency)
        values[key] = values.get(key, 0) + 1
        if spec.p99_ns is not None and latency > spec.p99_ns:
            attribution = attribute_request(request, collector)
            violations.append({
                "cell": cell,
                "client": request.attrs.get("client", ""),
                "start_ns": request.start_ns,
                "latency_ns": latency,
                "budget_ns": spec.p99_ns,
                "phase": phase,
                "blame": attribution["blame"],
                "blame_ns": attribution["blame_ns"],
                "breakdown": attribution["breakdown"],
            })
    return {
        "cell": cell,
        "requests": requests,
        "answered": answered,
        "spans": len(collector.spans),
        "span_kinds": collector.kind_tally(),
        "phase_values": phase_values,
        "violations": violations,
    }


# ---------------------------------------------------------------------------
# Report assembly
# ---------------------------------------------------------------------------

def phase_histograms(cells: List[Dict[str, Any]]) -> Dict[str, Histogram]:
    """Merge per-cell phase value counts into one histogram per phase."""
    merged: Dict[str, Histogram] = {}
    for entry in cells:
        for phase, values in entry["phase_values"].items():
            histogram = merged.get(phase)
            if histogram is None:
                histogram = merged[phase] = Histogram(f"latency.{phase}")
            shard = Histogram(f"latency.{phase}")
            for key, count in values.items():
                value = int(key)
                shard.count += count
                shard.total += value * count
                shard.counts[value] = shard.counts.get(value, 0) + count
                if shard.min_value is None or value < shard.min_value:
                    shard.min_value = value
                if shard.max_value is None or value > shard.max_value:
                    shard.max_value = value
            histogram.merge(shard)
    return merged


def _phase_table(histograms: Dict[str, Histogram]) -> Dict[str, Any]:
    table: Dict[str, Any] = {}
    for phase in PHASES:
        histogram = histograms.get(phase)
        if histogram is None or histogram.count == 0:
            continue
        row: Dict[str, Any] = {"count": histogram.count}
        for key, q in QUANTILES:
            row[key] = histogram.quantile(q)
        row["max_ns"] = histogram.max_value
        table[phase] = row
    return table


def build_slo_report(scenario: str, seed: int, spec: SloSpec,
                     cells: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Assemble the ``repro-slo/1`` report from per-cell summaries.

    ``cells`` must be in cell order (the scenario's declared order, not
    worker completion order) — histogram merging is order-insensitive
    but attribution ordering is not, and bit-stability demands both.
    """
    histograms = phase_histograms(cells)
    overall = Histogram("latency.overall")
    for histogram in histograms.values():
        overall.merge(histogram)
    requests = sum(entry["requests"] for entry in cells)
    answered = sum(entry["answered"] for entry in cells)
    availability = round(answered / requests, 4) if requests else 1.0

    checks: List[Dict[str, Any]] = []
    for key, q in QUANTILES:
        budget = getattr(spec, key)
        if budget is None:
            continue
        actual = overall.quantile(q)
        checks.append({"check": key, "budget": budget, "actual": actual,
                       "ok": actual is not None and actual <= budget})
    if spec.availability is not None:
        checks.append({"check": "availability",
                       "budget": spec.availability,
                       "actual": availability,
                       "ok": availability >= spec.availability})

    violations = [violation for entry in cells
                  for violation in entry["violations"]]
    # Worst first; then deterministic tiebreaks so the cap is bit-stable.
    violations.sort(key=lambda v: (-v["latency_ns"], v["cell"],
                                   v["start_ns"], v["client"]))
    span_kinds: Dict[str, int] = {}
    for entry in cells:
        for kind, count in entry["span_kinds"].items():
            span_kinds[kind] = span_kinds.get(kind, 0) + count

    return {
        "schema": SLO_SCHEMA,
        "scenario": scenario,
        "seed": seed,
        "spec": spec.as_dict(),
        "cells": [{"cell": entry["cell"],
                   "requests": entry["requests"],
                   "answered": entry["answered"],
                   "spans": entry["spans"],
                   "violations": len(entry["violations"])}
                  for entry in cells],
        "span_kinds": dict(sorted(span_kinds.items())),
        "requests": requests,
        "answered": answered,
        "availability": availability,
        "phases": _phase_table(histograms),
        "checks": checks,
        "ok": all(check["ok"] for check in checks),
        "violating_requests": len(violations),
        "attributions": violations[:MAX_ATTRIBUTIONS],
    }


# ---------------------------------------------------------------------------
# Report validation
# ---------------------------------------------------------------------------

def validate_slo_report(report: Dict[str, Any]) -> List[str]:
    """Check a ``repro-slo/1`` report's shape; returns problems."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not an object"]
    if report.get("schema") != SLO_SCHEMA:
        problems.append(f"schema is {report.get('schema')!r}, "
                        f"expected {SLO_SCHEMA!r}")
    for key in ("scenario", "seed", "spec", "cells", "phases", "checks",
                "attributions"):
        if key not in report:
            problems.append(f"missing key {key!r}")
    spec_payload = report.get("spec")
    if isinstance(spec_payload, dict):
        problems.extend(SloSpec.from_dict(spec_payload).problems())
    elif "spec" in report:
        problems.append(f"spec is {spec_payload!r}, expected an object")
    for key in ("requests", "answered", "violating_requests"):
        value = report.get(key)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{key} is {value!r}, expected a "
                            f"non-negative int")
    availability = report.get("availability")
    if not isinstance(availability, (int, float)) \
            or not 0.0 <= availability <= 1.0:
        problems.append(f"availability is {availability!r}, expected a "
                        f"float in [0, 1]")
    cells = report.get("cells")
    if isinstance(cells, list) and cells:
        for key in ("requests", "answered"):
            tallied = sum(entry.get(key, 0) for entry in cells
                          if isinstance(entry, dict))
            if isinstance(report.get(key), int) \
                    and report[key] != tallied:
                problems.append(f"{key} is {report[key]} but the cells "
                                f"tally {tallied} (tampered?)")
    elif "cells" in report and not isinstance(cells, list):
        problems.append(f"cells is {cells!r}, expected a list")
    phases = report.get("phases")
    if isinstance(phases, dict):
        for phase, row in phases.items():
            if phase not in PHASES:
                problems.append(f"phase table has unknown phase "
                                f"{phase!r}")
                continue
            if not isinstance(row, dict):
                problems.append(f"phase {phase!r} row is not an object")
                continue
            for key in ("count", "p50_ns", "p99_ns", "p999_ns",
                        "max_ns"):
                if not isinstance(row.get(key), int):
                    problems.append(f"phase {phase!r} {key} is "
                                    f"{row.get(key)!r}, expected int")
    elif "phases" in report:
        problems.append(f"phases is {phases!r}, expected an object")
    checks = report.get("checks")
    if isinstance(checks, list):
        for index, check in enumerate(checks):
            if not isinstance(check, dict) \
                    or not isinstance(check.get("check"), str) \
                    or not isinstance(check.get("ok"), bool):
                problems.append(f"checks[{index}] is malformed")
    elif "checks" in report:
        problems.append(f"checks is {checks!r}, expected a list")
    attributions = report.get("attributions")
    if isinstance(attributions, list):
        for index, attribution in enumerate(attributions):
            if not isinstance(attribution, dict):
                problems.append(f"attributions[{index}] is not an "
                                f"object")
                continue
            for key in ("cell", "phase", "blame"):
                if not isinstance(attribution.get(key), str):
                    problems.append(f"attributions[{index}] {key} is "
                                    f"{attribution.get(key)!r}, "
                                    f"expected str")
            for key in ("latency_ns", "blame_ns"):
                if not isinstance(attribution.get(key), int):
                    problems.append(f"attributions[{index}] {key} is "
                                    f"{attribution.get(key)!r}, "
                                    f"expected int")
    elif "attributions" in report:
        problems.append(f"attributions is {attributions!r}, "
                        f"expected a list")
    return problems


def percentile_oracle(values: List[int], q: float) -> Optional[int]:
    """Sorted-list nearest-rank percentile — the oracle the Histogram's
    :meth:`~repro.obs.metrics.Histogram.quantile` is property-tested
    against, kept here so tests and docs share one definition."""
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    ordered = sorted(values)
    rank = q * len(ordered)
    target = int(rank) if rank == int(rank) else int(rank) + 1
    return ordered[max(0, target - 1)]


def summarize_latencies(values: List[int]) -> Dict[str, int]:
    """p50/p99/p999 extras for a latency list (perf-harness helper)."""
    summary: Dict[str, int] = {}
    if not values:
        return summary
    for key, q in QUANTILES:
        quantile = percentile_oracle(values, q)
        assert quantile is not None
        summary[f"latency_{key}"] = quantile
    return summary

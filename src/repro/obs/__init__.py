"""repro.obs — structured tracing, metrics, and divergence forensics.

Zero-cost when disabled: instrumented hot paths guard every hook with a
single ``tracer is not None`` test.  See ``docs/observability.md``.
"""

from repro.obs.forensics import ForensicsBundle, build_divergence_bundle
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.scenarios import TRACE_SCENARIOS, run_trace_scenario
from repro.obs.slo import SLO_SCHEMA, SloSpec, build_slo_report, validate_slo_report
from repro.obs.spans import (
    PHASES,
    SPAN_SCHEMA,
    Span,
    SpanCollector,
    validate_span_file,
    validate_span_lines,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceEvent,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
    validate_trace_file,
    validate_trace_lines,
)

__all__ = [
    "PHASES",
    "SLO_SCHEMA",
    "SPAN_SCHEMA",
    "SloSpec",
    "Span",
    "SpanCollector",
    "build_slo_report",
    "validate_slo_report",
    "validate_span_file",
    "validate_span_lines",
    "TRACE_SCHEMA",
    "TRACE_SCENARIOS",
    "run_trace_scenario",
    "TraceEvent",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ForensicsBundle",
    "build_divergence_bundle",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing",
    "validate_trace_file",
    "validate_trace_lines",
]

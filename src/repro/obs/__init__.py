"""repro.obs — structured tracing, metrics, and divergence forensics.

Zero-cost when disabled: instrumented hot paths guard every hook with a
single ``tracer is not None`` test.  See ``docs/observability.md``.
"""

from repro.obs.forensics import ForensicsBundle, build_divergence_bundle
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.scenarios import TRACE_SCENARIOS, run_trace_scenario
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceEvent,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
    validate_trace_file,
    validate_trace_lines,
)

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_SCENARIOS",
    "run_trace_scenario",
    "TraceEvent",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ForensicsBundle",
    "build_divergence_bundle",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing",
    "validate_trace_file",
    "validate_trace_lines",
]

"""The ``python -m repro trace`` entry point.

    python -m repro trace fig6              # run + write TRACE_fig6.jsonl
    python -m repro trace fig6 --quick      # smaller workload (CI smoke)
    python -m repro trace faults --check    # validate the JSONL afterwards
    python -m repro trace fig7 --out t.jsonl
    python -m repro trace fig6 --record STREAM_fig6.jsonl

Runs the experiment's *semantic companion* scenario (see
:mod:`repro.obs.scenarios`) with a tracer installed, writes the JSONL
trace, and prints an event/metric summary — plus a forensics summary
for every divergence the run hit.  The trace schema is documented in
``docs/observability.md``.  ``--record`` additionally captures the
leader's syscall stream as a ``repro-stream/1`` artifact that
``python -m repro replay`` can re-drive offline — see
``docs/replay.md``.
"""

from __future__ import annotations

import argparse
from typing import Iterable, Optional

from repro.bench.reporting import format_table
from repro.obs.scenarios import TRACE_SCENARIOS, run_trace_scenario
from repro.obs.trace import DEFAULT_LAST_K, validate_trace_file
from repro.replay.recorder import StreamRecorder, recording


def trace_main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run an experiment's semantic companion under the "
                    "tracer and write a structured JSONL trace.")
    parser.add_argument("experiment", choices=sorted(TRACE_SCENARIOS),
                        help="which experiment's companion scenario to run")
    parser.add_argument("--out", metavar="PATH",
                        help="trace output path "
                             "(default: TRACE_<experiment>.jsonl)")
    parser.add_argument("--quick", action="store_true",
                        help="run a reduced workload (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="validate the written JSONL against the "
                             "trace schema; non-zero exit on problems")
    parser.add_argument("--last-k", type=int, default=DEFAULT_LAST_K,
                        metavar="K",
                        help="ring records kept for divergence forensics "
                             "(default: %(default)s)")
    parser.add_argument("--record", metavar="PATH",
                        help="also record the leader's syscall stream as "
                             "a repro-stream/1 artifact at PATH (replay "
                             "it with 'python -m repro replay PATH')")
    args = parser.parse_args(list(argv) if argv is not None else None)

    recorder = (StreamRecorder(scenario=args.experiment)
                if args.record else None)
    if recorder is not None:
        with recording(recorder):
            tracer = run_trace_scenario(args.experiment, quick=args.quick,
                                        last_k=args.last_k)
        recorder.write(args.record)
    else:
        tracer = run_trace_scenario(args.experiment, quick=args.quick,
                                    last_k=args.last_k)
    out = args.out or f"TRACE_{args.experiment}.jsonl"
    tracer.write_jsonl(out)

    print(f"repro trace {args.experiment}: {len(tracer.events)} events "
          f"-> {out}")
    if recorder is not None:
        print(f"wrote stream: {args.record} "
              f"({recorder.iterations} iterations)")
    tally = tracer.kind_tally()
    print(format_table(
        ["event kind", "count"],
        [[kind, tally[kind]] for kind in sorted(tally)]))
    snapshot = tracer.metrics.snapshot()
    if snapshot:
        print()
        print(format_table(
            ["metric", "value"],
            [[name, _render_metric(value)]
             for name, value in snapshot.items()]))
    for index, bundle in enumerate(tracer.forensics):
        print()
        print(f"forensics bundle {index}:")
        print(bundle.summary())

    if args.check:
        problems = validate_trace_file(out)
        if problems:
            for problem in problems:
                print(f"schema problem: {problem}")
            return 1
        print(f"schema ok: {out} is valid {_schema_id()}")
    return 0


def _render_metric(value) -> str:
    if isinstance(value, dict):
        return " ".join(f"{k}={v}" for k, v in sorted(value.items()))
    return str(value)


def _schema_id() -> str:
    from repro.obs.trace import TRACE_SCHEMA
    return TRACE_SCHEMA


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(trace_main())

"""The ``python -m repro slo`` entry point.

    python -m repro slo fig7                 # run + write SLO_fig7.json
    python -m repro slo fig7 --quick         # smaller workload (CI smoke)
    python -m repro slo canary-kvstore --check
    python -m repro slo table1 --workers 2   # byte-identical to serial
    python -m repro slo fig7 --spans PATH    # also dump repro-span/1 JSONL

Runs every cell of an SLO scenario (see
:mod:`repro.obs.slo_scenarios`) under span tracing, checks the
scenario's :class:`~repro.obs.slo.SloSpec`, and writes the
``repro-slo/1`` report: per-upgrade-phase p50/p99/p999 tables, SLO
pass/fail checks, and critical-path attributions for the worst
SLO-violating requests.  The schema is documented in
``docs/observability.md``.

Exit codes: 0 on success (SLO violations are *findings*, not errors),
1 when ``--check`` finds schema problems or the spec itself is
malformed, 2 on unknown scenarios.
"""

from __future__ import annotations

import argparse
import json
from typing import Iterable, Optional

from repro.bench.reporting import format_table
from repro.obs.slo import SLO_SCHEMA, validate_slo_report
from repro.obs.slo_scenarios import (
    SLO_SCENARIOS,
    SLO_SPECS,
    run_slo_scenario,
)
from repro.obs.trace import Tracer, tracing
from repro.replay.parallel import resolve_workers


def slo_main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro slo",
        description="Run an SLO scenario under span tracing and write "
                    "a repro-slo/1 report with per-phase percentiles "
                    "and critical-path attributions.")
    parser.add_argument("scenario", choices=sorted(SLO_SCENARIOS),
                        help="which SLO scenario to run")
    parser.add_argument("--out", metavar="PATH",
                        help="report output path "
                             "(default: SLO_<scenario>.json)")
    parser.add_argument("--seed", type=int, default=1,
                        help="scenario seed (default: %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="run a reduced workload (CI smoke)")
    parser.add_argument("--workers", default="1", metavar="N",
                        help="worker processes ('auto' = one per CPU); "
                             "the report is byte-identical at any count")
    parser.add_argument("--check", action="store_true",
                        help="validate the report against repro-slo/1; "
                             "non-zero exit on problems")
    parser.add_argument("--spans", metavar="PATH",
                        help="also write the first cell's spans as a "
                             "repro-span/1 JSONL file at PATH")
    args = parser.parse_args(list(argv) if argv is not None else None)

    spec = SLO_SPECS[args.scenario]
    spec_problems = spec.problems()
    if spec_problems:
        for problem in spec_problems:
            print(f"slo spec problem: {problem}")
        return 1

    workers = resolve_workers(args.workers)
    report = run_slo_scenario(args.scenario, seed=args.seed,
                              quick=args.quick, workers=workers)
    out = args.out or f"SLO_{args.scenario}.json"
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=False)
        handle.write("\n")

    if args.spans:
        _dump_spans(args.scenario, args.seed, args.quick, args.spans)

    print(f"repro slo {args.scenario}: {report['requests']} requests, "
          f"{report['violating_requests']} over budget -> {out}")
    print(render_report(report))

    if args.check:
        problems = validate_slo_report(report)
        if problems:
            for problem in problems:
                print(f"schema problem: {problem}")
            return 1
        print(f"schema ok: {out} is valid {SLO_SCHEMA}")
    return 0


def _dump_spans(scenario: str, seed: int, quick: bool, path: str) -> None:
    """Re-run the scenario's first cell and dump its raw spans."""
    tracer = Tracer(experiment=f"slo-{scenario}", spans=True)
    with tracing(tracer):
        # run_slo_cell builds its own tracer; re-drive the cell under
        # ours so the dump and the report share one code path.
        driver, cells = SLO_SCENARIOS[scenario]
        name, params = cells[0]
        driver(params, seed, quick)
    assert tracer.spans is not None
    tracer.spans.write_jsonl(path, experiment=f"slo-{scenario}")
    print(f"wrote spans: {path} ({len(tracer.spans.spans)} spans)")


def render_report(report: dict) -> str:
    """Human-readable tables for a repro-slo/1 report."""
    sections = []
    phases = report.get("phases", {})
    if phases:
        sections.append(format_table(
            ["phase", "requests", "p50 (ns)", "p99 (ns)", "p999 (ns)",
             "max (ns)"],
            [[phase, row["count"], row["p50_ns"], row["p99_ns"],
              row["p999_ns"], row["max_ns"]]
             for phase, row in phases.items()]))
    checks = report.get("checks", [])
    if checks:
        sections.append(format_table(
            ["check", "budget", "actual", "status"],
            [[check["check"], _exact(check["budget"]),
              _exact(check["actual"]),
              "ok" if check["ok"] else "VIOLATED"]
             for check in checks]))
    attributions = report.get("attributions", [])
    if attributions:
        sections.append(format_table(
            ["cell", "phase", "latency (ns)", "blame", "blame (ns)"],
            [[a["cell"], a["phase"], a["latency_ns"], a["blame"],
              a["blame_ns"]]
             for a in attributions]))
    return "\n\n".join(sections)


def _exact(value) -> object:
    """Keep ratio budgets exact in tables (format_table rounds floats
    to one decimal, which would print 0.99 as 1.0)."""
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return value


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(slo_main())

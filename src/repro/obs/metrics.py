"""Metrics registry: counters, gauges, and histograms.

The observability layer keeps runtime telemetry separate from the trace
event stream: events answer "what happened, in order", metrics answer
"how much, in total".  A :class:`MetricsRegistry` snapshot is appended
as the final line of every JSONL trace and (for the perf harness) lands
in ``BENCH_perf.json``.

This module deliberately imports nothing from the rest of ``repro`` so
that instrumented modules (kernel, engine) can import the observability
layer without cycles.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class Counter:
    """Monotonically increasing count (e.g. ``syscalls.total``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time level (e.g. ``ring.occupancy``); tracks its max."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.max_value = 0

    def set(self, value: int) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value, "max": self.max_value}


class Histogram:
    """Summary statistics over observed values (e.g. quiescence waits).

    Keeps count/total/min/max rather than buckets: the simulator's
    virtual-time values are exact, so percentile bucketing adds nothing
    the experiment reports need.
    """

    __slots__ = ("name", "count", "total", "min_value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min_value: Optional[int] = None
        self.max_value: Optional[int] = None

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": round(self.mean, 3),
        }


class MetricsRegistry:
    """Named metrics, created lazily on first touch.

    A name belongs to exactly one metric type for the registry's
    lifetime; asking for the same name with a different type raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All metrics as plain JSON-ready dicts, sorted by name."""
        return {name: metric.as_dict()
                for name, metric in sorted(self._metrics.items())}
